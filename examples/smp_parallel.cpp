/// Real (wall-clock) parallel execution with the SMP thread pool.
///
/// Everything else in this repository measures virtual time on a simulated
/// platform; this example shows the genuinely parallel side of the library:
/// the OmpSs-style team of SMP threads (rt::ThreadPool) pricing a batch of
/// options with Black-Scholes on the host, chunked like CPU task instances.
#include <chrono>
#include <cmath>
#include <iostream>
#include <vector>

#include "common/rng.hpp"
#include "common/strings.hpp"
#include "runtime/thread_pool.hpp"

namespace {

double cnd(double d) { return 0.5 * std::erfc(-d / std::sqrt(2.0)); }

float price_call(float s, float x, float t) {
  constexpr double r = 0.02, v = 0.30;
  const double sqrt_t = std::sqrt(static_cast<double>(t));
  const double d1 =
      (std::log(static_cast<double>(s) / x) + (r + 0.5 * v * v) * t) /
      (v * sqrt_t);
  const double d2 = d1 - v * sqrt_t;
  return static_cast<float>(s * cnd(d1) - x * std::exp(-r * t) * cnd(d2));
}

}  // namespace

int main() {
  using namespace hetsched;
  constexpr std::int64_t kOptions = 2'000'000;

  Rng rng(42);
  std::vector<float> spot(kOptions), strike(kOptions), expiry(kOptions);
  for (std::int64_t i = 0; i < kOptions; ++i) {
    spot[i] = static_cast<float>(rng.uniform(5.0, 30.0));
    strike[i] = static_cast<float>(rng.uniform(1.0, 100.0));
    expiry[i] = static_cast<float>(rng.uniform(0.25, 10.0));
  }
  std::vector<float> call(kOptions);

  rt::ThreadPool pool;  // one worker per hardware thread
  std::cout << "pricing " << kOptions << " options on "
            << pool.thread_count() << " SMP thread(s)...\n";

  const auto start = std::chrono::steady_clock::now();
  rt::parallel_for(pool, 0, kOptions, /*grain=*/65536,
                   [&](std::int64_t lo, std::int64_t hi) {
                     for (std::int64_t i = lo; i < hi; ++i)
                       call[i] = price_call(spot[i], strike[i], expiry[i]);
                   });
  const auto elapsed = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - start)
                           .count();

  // Spot-check a few results against a direct computation.
  for (std::int64_t i = 0; i < kOptions; i += kOptions / 7) {
    const float expected = price_call(spot[i], strike[i], expiry[i]);
    if (std::abs(call[i] - expected) > 1e-5f) {
      std::cerr << "mismatch at option " << i << "\n";
      return 1;
    }
  }

  double checksum = 0.0;
  for (float c : call) checksum += c;
  std::cout << "done in " << format_fixed(elapsed, 1) << " ms (wall clock), "
            << format_fixed(kOptions / elapsed / 1e3, 2)
            << " Moptions/s, checksum " << format_fixed(checksum, 2) << "\n";
  return 0;
}
