/// Bringing your own application to the analyzer.
///
/// Defines a small two-kernel image pipeline (horizontal blur, then
/// threshold) as an Application subclass: real host data, kernel bodies,
/// byte-range access patterns and a cost descriptor. The analyzer
/// classifies it (MK-Seq, no inter-kernel synchronization needed), selects
/// SP-Unified, and the strategy runner profiles, partitions and executes
/// it — and we check the pixels are right.
#include <iostream>
#include <vector>

#include "analyzer/matchmaker.hpp"
#include "apps/app.hpp"
#include "common/strings.hpp"
#include "hw/platform.hpp"
#include "strategies/strategy_runner.hpp"

namespace {

using namespace hetsched;

class ImagePipelineApp final : public apps::Application {
 public:
  ImagePipelineApp(const hw::PlatformSpec& platform, std::int64_t rows,
                   std::int64_t cols)
      : Application(platform, Config{rows, 1, true}, make_descriptor(),
                    /*sync_each_iteration=*/false),
        rows_(rows),
        cols_(cols) {
    const std::int64_t row_bytes = cols_ * 4;
    input_ = executor_->register_buffer("input", rows_ * row_bytes);
    blurred_ = executor_->register_buffer("blurred", rows_ * row_bytes);
    mask_ = executor_->register_buffer("mask", rows_ * row_bytes);
    reset_data();

    // Kernel 1: horizontal 3-tap blur, row-partitioned.
    hw::KernelTraits blur_traits;
    blur_traits.name = "blur";
    blur_traits.flops_per_item = 5.0 * static_cast<double>(cols_);
    blur_traits.device_bytes_per_item = 2.0 * static_cast<double>(row_bytes);
    blur_traits.cpu_compute_efficiency = 0.2;
    blur_traits.gpu_compute_efficiency = 0.4;
    rt::KernelDef blur;
    blur.name = "blur";
    blur.traits = blur_traits;
    blur.accesses = [this, row_bytes](std::int64_t begin, std::int64_t end) {
      return std::vector<mem::RegionAccess>{
          {{input_, {begin * row_bytes, end * row_bytes}},
           mem::AccessMode::kRead},
          {{blurred_, {begin * row_bytes, end * row_bytes}},
           mem::AccessMode::kWrite},
      };
    };
    blur.body = [this](std::int64_t begin, std::int64_t end) {
      for (std::int64_t r = begin; r < end; ++r)
        for (std::int64_t c = 0; c < cols_; ++c)
          host_blurred_[r * cols_ + c] = blur_at(r, c);
    };

    // Kernel 2: threshold the blurred image into a binary mask.
    hw::KernelTraits thr_traits;
    thr_traits.name = "threshold";
    thr_traits.flops_per_item = 1.0 * static_cast<double>(cols_);
    thr_traits.device_bytes_per_item = 2.0 * static_cast<double>(row_bytes);
    rt::KernelDef thr;
    thr.name = "threshold";
    thr.traits = thr_traits;
    thr.accesses = [this, row_bytes](std::int64_t begin, std::int64_t end) {
      return std::vector<mem::RegionAccess>{
          {{blurred_, {begin * row_bytes, end * row_bytes}},
           mem::AccessMode::kRead},
          {{mask_, {begin * row_bytes, end * row_bytes}},
           mem::AccessMode::kWrite},
      };
    };
    thr.body = [this](std::int64_t begin, std::int64_t end) {
      for (std::int64_t i = begin * cols_; i < end * cols_; ++i)
        host_mask_[i] = host_blurred_[i] > 0.5f ? 1.0f : 0.0f;
    };

    set_kernels({executor_->register_kernel(std::move(blur)),
                 executor_->register_kernel(std::move(thr))});
  }

  void verify() const override {
    for (std::int64_t r = 0; r < rows_; ++r) {
      for (std::int64_t c = 0; c < cols_; ++c) {
        const float expected_blur = blur_at(r, c);
        apps::check_close(host_blurred_[r * cols_ + c], expected_blur, 1e-4,
                          "blurred pixel");
        apps::check_close(host_mask_[r * cols_ + c],
                          expected_blur > 0.5f ? 1.0f : 0.0f, 1e-6,
                          "mask pixel");
      }
    }
  }

  void reset_data() override {
    host_input_.resize(static_cast<std::size_t>(rows_ * cols_));
    host_blurred_.assign(host_input_.size(), 0.0f);
    host_mask_.assign(host_input_.size(), 0.0f);
    for (std::int64_t i = 0; i < rows_ * cols_; ++i)
      host_input_[i] = static_cast<float>((i * 2654435761u % 1000)) / 1000.0f;
  }

 private:
  static analyzer::AppDescriptor make_descriptor() {
    analyzer::AppDescriptor descriptor;
    descriptor.name = "image-pipeline";
    descriptor.structure =
        analyzer::KernelGraph::sequence({"blur", "threshold"});
    descriptor.sync = analyzer::SyncReason::kNone;  // pure producer-consumer
    return descriptor;
  }

  float blur_at(std::int64_t r, std::int64_t c) const {
    auto pixel = [&](std::int64_t cc) {
      cc = std::clamp<std::int64_t>(cc, 0, cols_ - 1);
      return host_input_[r * cols_ + cc];
    };
    return (pixel(c - 1) + pixel(c) + pixel(c + 1)) / 3.0f;
  }

  std::int64_t rows_, cols_;
  mem::BufferId input_ = 0, blurred_ = 0, mask_ = 0;
  std::vector<float> host_input_, host_blurred_, host_mask_;
};

}  // namespace

int main() {
  using namespace hetsched;
  const hw::PlatformSpec platform = hw::make_reference_platform();
  ImagePipelineApp app(platform, /*rows=*/512, /*cols=*/512);

  std::cout << analyzer::Matchmaker{}.explain(app.descriptor()) << "\n";

  strategies::StrategyRunner runner(app);
  const auto matched = runner.run_matched();
  const auto only_cpu = runner.run(analyzer::StrategyKind::kOnlyCpu);

  app.verify();
  std::cout << "results verified against the sequential reference.\n\n";
  std::cout << analyzer::strategy_name(matched.result.kind) << ": "
            << format_fixed(matched.result.time_ms(), 3) << " ms (GPU share "
            << format_percent(matched.result.gpu_fraction_overall)
            << "), Only-CPU: " << format_fixed(only_cpu.time_ms(), 3)
            << " ms\n";
  return 0;
}
