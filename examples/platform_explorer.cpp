/// What-if platform exploration: how the partitioning decision moves as the
/// hardware changes.
///
/// Runs Glinda's profile->predict->decide pipeline for MatrixMul and
/// HotSpot on three platforms (the paper's reference, a low-end GPU, and
/// the reference with a fast NVLink-class interconnect) and prints the
/// hardware-configuration decision and split for each — the "look before
/// you leap" usage of the partitioning model.
#include <iostream>

#include "apps/registry.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "glinda/partition_model.hpp"
#include "hw/platform.hpp"
#include "strategies/strategy_runner.hpp"

int main() {
  using namespace hetsched;

  const std::vector<std::pair<std::string, hw::PlatformSpec>> platforms = {
      {"reference (K20m, PCIe 6 GB/s)", hw::make_reference_platform()},
      {"low-end GPU (PCIe 3 GB/s)", hw::make_small_gpu_platform()},
      {"reference + 32 GB/s link", hw::make_reference_platform_with_link(32)},
  };

  Table table({"application", "platform", "decision", "GPU share",
               "measured (ms)"});

  for (apps::PaperApp kind :
       {apps::PaperApp::kMatrixMul, apps::PaperApp::kHotSpot}) {
    for (const auto& [label, platform] : platforms) {
      auto app = apps::make_paper_app(kind, platform,
                                      apps::paper_config(kind));
      strategies::StrategyRunner runner(*app);
      const auto result = runner.run(analyzer::StrategyKind::kSPSingle);
      const glinda::PartitionDecision& decision = result.decisions.at(0);
      table.add_row(
          {std::string(apps::paper_app_name(kind)), label,
           std::string(glinda::hardware_config_name(decision.config)),
           format_percent(decision.gpu_fraction(app->items())),
           format_fixed(result.time_ms(), 1)});
    }
  }

  std::cout << "Glinda decisions across platforms\n\n" << table.to_ascii();
  std::cout << "\nreading: the faster the link, the larger the GPU share of "
               "transfer-bound workloads; a weak GPU pushes the decision "
               "toward Only-CPU.\n";
  return 0;
}
