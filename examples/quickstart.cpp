/// Quickstart: the paper's Figure 2 flow on one application.
///
/// 1. Pick an application (HotSpot, an SK-Loop thermal simulation).
/// 2. Let the analyzer classify it and select the best partitioning
///    strategy for its class (Table I).
/// 3. Run the selected strategy on the reference CPU+GPU platform and
///    compare it against the Only-CPU / Only-GPU baselines.
#include <iostream>

#include "analyzer/matchmaker.hpp"
#include "apps/registry.hpp"
#include "common/strings.hpp"
#include "hw/platform.hpp"
#include "strategies/strategy_runner.hpp"

int main() {
  using namespace hetsched;

  // The platform: Intel Xeon E5-2620 + Nvidia Tesla K20m (paper Table III),
  // modelled in virtual time.
  const hw::PlatformSpec platform = hw::make_reference_platform();
  std::cout << "platform: " << platform.name << "\n\n";

  // The application, at the paper's problem size (8192x8192 grid).
  auto app = apps::make_paper_app(apps::PaperApp::kHotSpot, platform);

  // Step 1-2: analyze the kernel structure and match a strategy.
  const analyzer::Matchmaker matchmaker;
  std::cout << matchmaker.explain(app->descriptor()) << "\n";

  // Step 3: run the analyzer's selection, plus the baselines.
  strategies::StrategyRunner runner(*app);
  const auto matched = runner.run_matched();
  const auto only_cpu = runner.run(analyzer::StrategyKind::kOnlyCpu);
  const auto only_gpu = runner.run(analyzer::StrategyKind::kOnlyGpu);

  std::cout << "execution times (simulated):\n";
  std::cout << "  " << analyzer::strategy_name(matched.result.kind) << ": "
            << format_fixed(matched.result.time_ms(), 1) << " ms  (GPU share "
            << format_percent(matched.result.gpu_fraction_overall) << ")\n";
  std::cout << "  Only-CPU: " << format_fixed(only_cpu.time_ms(), 1)
            << " ms\n";
  std::cout << "  Only-GPU: " << format_fixed(only_gpu.time_ms(), 1)
            << " ms\n\n";
  std::cout << "speedup vs Only-CPU: "
            << format_fixed(only_cpu.time_ms() / matched.result.time_ms(), 2)
            << "x,  vs Only-GPU: "
            << format_fixed(only_gpu.time_ms() / matched.result.time_ms(), 2)
            << "x\n";
  return 0;
}
