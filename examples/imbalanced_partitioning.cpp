/// Imbalanced workloads (Glinda's ICS'14 extension, ref [9]).
///
/// When per-item cost varies — here a triangular-solve-style workload where
/// item i costs proportional to (n - i) — the uniform split misplaces the
/// boundary badly. The weighted solver equalizes *work*, not item counts.
#include <iostream>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "glinda/partition_model.hpp"

int main() {
  using namespace hetsched;
  using namespace hetsched::glinda;

  constexpr std::int64_t kItems = 1'000'000;

  // A platform-ish estimate: GPU 8x the CPU per unit of work.
  KernelEstimate estimate;
  estimate.cpu.seconds_per_item = 8e-7;
  estimate.gpu.seconds_per_item = 1e-7;
  estimate.link_bytes_per_second = 6e9;
  estimate.gpu.h2d_bytes_per_item = 4.0;
  estimate.gpu.d2h_bytes_per_item = 4.0;
  estimate.transfer_on_critical_path = true;

  // Triangular weights: item i costs (n - i) units; the head is heavy.
  auto prefix_weight = [&](std::int64_t p) {
    const double pd = static_cast<double>(p);
    return pd * static_cast<double>(kItems) - pd * (pd - 1.0) / 2.0;
  };

  PartitionModel model;
  const PartitionDecision uniform = model.solve(estimate, kItems);
  const PartitionDecision weighted =
      model.solve_weighted(estimate, kItems, prefix_weight);

  const double total_weight = prefix_weight(kItems);
  Table table({"solver", "GPU items", "GPU item share", "GPU WORK share"});
  table.add_row({"uniform (assumes balanced)",
                 std::to_string(uniform.gpu_items),
                 format_percent(uniform.gpu_fraction(kItems)),
                 format_percent(prefix_weight(uniform.gpu_items) /
                                total_weight)});
  table.add_row({"weighted (imbalance-aware)",
                 std::to_string(weighted.gpu_items),
                 format_percent(weighted.gpu_fraction(kItems)),
                 format_percent(prefix_weight(weighted.gpu_items) /
                                total_weight)});

  std::cout << "Partitioning a triangular workload (" << kItems
            << " items, head-heavy)\n\n"
            << table.to_ascii();

  // What the uniform split would actually cost on this workload: it hands
  // the GPU far more WORK than intended because the head is heavy.
  const double mean_weight = total_weight / static_cast<double>(kItems);
  auto realized_seconds = [&](const PartitionDecision& decision) {
    const double gpu_work = prefix_weight(decision.gpu_items) / mean_weight;
    const double cpu_work =
        (total_weight - prefix_weight(decision.gpu_items)) / mean_weight;
    const double gpu_time =
        gpu_work * estimate.gpu_seconds_per_item_effective();
    const double cpu_time = cpu_work * estimate.cpu.seconds_per_item;
    return std::max(gpu_time, cpu_time);
  };
  std::cout << "\nrealized makespan: uniform "
            << format_fixed(realized_seconds(uniform) * 1e3, 1)
            << " ms vs weighted "
            << format_fixed(realized_seconds(weighted) * 1e3, 1) << " ms\n";
  return 0;
}
