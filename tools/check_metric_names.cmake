# Metric-name lint, runnable under ctest (lint.metric_names):
#
#   cmake -DNAMES_HEADER=<src/obs/metric_names.hpp> \
#         [-DEXTRA_HEADER=<src/obs/metrics.hpp>] \
#         -DDOC=<docs/observability.md> -P check_metric_names.cmake
#
# The daemon's metric names live as constants in obs/metric_names.hpp so
# exposition, tests, and docs share one spelling (the sweep layer's older
# kSweep* constants in obs/metrics.hpp ride along via EXTRA_HEADER). This
# script keeps that contract honest: every constant must be snake_case
# (Prometheus-safe before the hs_ prefix), unique, and documented in
# docs/observability.md — a metric nobody documented is a metric nobody
# can alert on.

cmake_policy(SET CMP0057 NEW)  # IN_LIST in script (-P) mode

if(NOT NAMES_HEADER)
  message(FATAL_ERROR "pass -DNAMES_HEADER=<path to metric_names.hpp>")
endif()
if(NOT DOC)
  message(FATAL_ERROR "pass -DDOC=<path to observability.md>")
endif()

file(READ ${NAMES_HEADER} header)
if(EXTRA_HEADER)
  file(READ ${EXTRA_HEADER} extra)
  string(APPEND header "\n${extra}")
endif()
file(READ ${DOC} doc)

# Every `kMetric… = "name";` / `kSweep… = "name";` constant.
string(REGEX MATCHALL
       "k(Metric|Sweep)[A-Za-z0-9]+[ \t\n]*=[ \t\n]*\"[^\"]+\""
       declarations "${header}")
if(declarations STREQUAL "")
  message(FATAL_ERROR "no kMetric… constants found in ${NAMES_HEADER}")
endif()

set(names "")
set(problems "")
foreach(declaration IN LISTS declarations)
  string(REGEX REPLACE ".*\"([^\"]+)\"" "\\1" name "${declaration}")

  if(NOT name MATCHES "^[a-z][a-z0-9]*(_[a-z0-9]+)*$")
    list(APPEND problems "'${name}' is not snake_case")
  endif()
  if(name IN_LIST names)
    list(APPEND problems "'${name}' is declared twice")
  endif()
  list(APPEND names ${name})

  # Counters end in _total; a _total suffix on a non-counter reads as one.
  # (Gauges and histograms carry no suffix.) Documented names are matched
  # literally: the doc table must contain the exact metric string.
  if(NOT doc MATCHES "${name}")
    list(APPEND problems "'${name}' is not documented in ${DOC}")
  endif()
endforeach()

if(NOT problems STREQUAL "")
  foreach(problem IN LISTS problems)
    message(SEND_ERROR "metric lint: ${problem}")
  endforeach()
  message(FATAL_ERROR "metric-name lint failed")
endif()

list(LENGTH names count)
message(STATUS "metric lint: ${count} names snake_case, unique, documented")
