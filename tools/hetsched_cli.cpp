/// hetsched_cli — command-line front end to the matchmaker and strategies.
///
///   hetsched_cli list                      # applications & platforms
///   hetsched_cli catalog                   # the 86-app structure study
///   hetsched_cli match   --app <name>      # classify + select (Figure 2)
///   hetsched_cli run     --app <name> [--strategy <s>] [--platform <p>]
///                        [--sync] [--tasks <m>] [--paper-size|--small]
///   hetsched_cli compare --app <name> [--sync] [--platform <p>] [--csv]
///   hetsched_cli trace   --app <name> --out <file.json>
///                        [--strategy <s>]  # chrome://tracing timeline
///   hetsched_cli analyze --app <name> [--strategy <s>] [--gantt]
///                        # utilization / overlap breakdown (+ timeline)
///   hetsched_cli tune    --app <name> --strategy <s> [--sync]
///                        # task-size auto-tuning (paper Section V)
///   hetsched_cli sweep   [--apps a,b] [--strategies s1,s2]
///                        [--platforms p1,p2] [--sync-mode both|on|off]
///                        [--small] [--serial] [--jobs N] [--batch K]
///                        [--no-cache] [--cache-dir <dir>] [--json <file>]
///                        [--csv]
///                        # batch scenario sweep with result caching
///                        # (--batch groups K scenarios per worker job)
///   hetsched_cli faults  [--plan <name>] [--seed <n>] [--app a|--apps a,b]
///                        [--strategies s1,s2] [--platform <p>] [--sync]
///                        [--small] [--tasks <m>] [--serial] [--jobs N]
///                        [--no-cache] [--cache-dir <dir>] [--json <file>]
///                        [--csv]   # degradation study under a FaultPlan
///   hetsched_cli metrics --app <name> [--strategy <s>] [--plan <name>|none]
///                        [--seed <n>] [--format prom|json] [--out <file>]
///                        [--sync] [--small] [--tasks <m>] [--platform <p>]
///                        # metrics registry of one (optionally faulted) run
///   hetsched_cli explain --app <name> [--json] [--sync] [--tasks <m>]
///                        [--platform <p>] [--small]
///                        # matchmaker decision + predicted-time inputs
///   hetsched_cli bench   [--paper-size] [--serial] [--jobs N] [--seeds S]
///                        [--quick] [--cache-dir <dir>] [--out <file>]
///                        # sweep hot-path benchmark (sim_core / cold /
///                        # warm / shared twins), writes BENCH_sweep.json
///                        # by default; --quick is the smallest smoke run
///   hetsched_cli fuzz    [--seed N] [--iters K] [--corpus <file>]
///                        [--repro <file>] [--out <file>] [--no-shrink]
///                        [--plant <mutation>] [--oracles] [--serve]
///                        [--explore random|fair|dfs] [--schedules K]
///                        # property-fuzz the invariant oracles; exit 4 on
///                        # a counterexample (repro JSON written to --out).
///                        # --explore fans each seed out into K explored
///                        # schedules checked by the schedule oracles;
///                        # --serve replays each case's query through a
///                        # loopback daemon (cache-transparency-serve)
///   hetsched_cli serve   [--port P] [--host H] [--workers N]
///                        [--max-queue N] [--shards N] [--cache-dir <dir>]
///                        [--announce-port] [--metrics-out <file>]
///                        [--trace-capacity N] [--log-format text|json]
///                        [--log-level debug|info|warn|error|off]
///                        # matchmaker daemon: newline-delimited JSON
///                        # frames over TCP + GET /metrics on the same
///                        # port; SIGINT/SIGTERM drain gracefully. Every
///                        # request is traced end to end; trace-dump
///                        # frames retrieve the span trees
///   hetsched_cli query   --port P | --port-stdin [--op match|explain|
///                        analyze] [--app <name>] [--strategy <s>]
///                        [--platform <p>] [--sync] [--small] [--tasks <m>]
///                        [--gantt] [--json] [--then-shutdown] [--trace]
///                        # one query against a running daemon; prints the
///                        # byte-identical offline answer. exit 0 ok,
///                        # 1 error, 5 overload/draining, 6 unreachable.
///                        # --trace fetches the request's span tree via a
///                        # trace-dump frame and prints it to stderr
///
/// The usage string main() prints is generated from the same verb table
/// that dispatches commands, so it cannot drift from what actually runs.
#include <algorithm>
#include <cmath>
#include <csignal>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analyzer/catalog.hpp"
#include "check/engine.hpp"
#include "analyzer/matchmaker.hpp"
#include "apps/registry.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "faults/fault_plan.hpp"
#include "common/logging.hpp"
#include "hw/platform.hpp"
#include "obs/log.hpp"
#include "obs/observability.hpp"
#include "serve/client.hpp"
#include "serve/serve_bench.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "strategies/autotune.hpp"
#include "strategies/strategy_runner.hpp"
#include "sweep/bench.hpp"
#include "sweep/sweep.hpp"

namespace {

using namespace hetsched;

struct Args {
  std::string command;
  std::map<std::string, std::string> options;
  bool flag(const std::string& name) const { return options.count(name); }
  std::string get(const std::string& name,
                  const std::string& fallback = "") const {
    auto it = options.find(name);
    return it == options.end() ? fallback : it->second;
  }
};

Args parse(int argc, char** argv) {
  Args args;
  if (argc > 1) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) continue;
    token = token.substr(2);
    // Both spellings work: --explore dfs and --explore=dfs.
    const std::size_t eq = token.find('=');
    if (eq != std::string::npos) {
      args.options[token.substr(0, eq)] = token.substr(eq + 1);
      continue;
    }
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      args.options[token] = argv[++i];
    } else {
      args.options[token] = "";
    }
  }
  return args;
}

const std::map<std::string, apps::PaperApp>& app_names() {
  static const std::map<std::string, apps::PaperApp> names = {
      {"matrixmul", apps::PaperApp::kMatrixMul},
      {"blackscholes", apps::PaperApp::kBlackScholes},
      {"nbody", apps::PaperApp::kNbody},
      {"hotspot", apps::PaperApp::kHotSpot},
      {"stream-seq", apps::PaperApp::kStreamSeq},
      {"stream-loop", apps::PaperApp::kStreamLoop},
  };
  return names;
}

hw::PlatformSpec platform_by_name(const std::string& name) {
  return hw::platform_by_name(name);
}

analyzer::StrategyKind strategy_by_name(const std::string& name) {
  return analyzer::strategy_from_name(name);
}

std::unique_ptr<apps::Application> make_app(const Args& args,
                                            const hw::PlatformSpec& platform,
                                            bool record_trace = false,
                                            bool record_obs = false) {
  // One app-construction policy for the whole binary: the offline verbs
  // and the serve daemon instantiate applications identically.
  return serve::make_named_app(args.get("app"), platform, args.flag("small"),
                               record_trace, record_obs);
}

/// The query equivalent of this invocation's arguments. match / explain /
/// analyze print serve::answer() of exactly this request, which is what
/// makes `query` byte-identical to the offline verbs by construction.
serve::QueryRequest request_from_args(const Args& args,
                                      const std::string& op) {
  serve::QueryRequest request;
  request.op = op;
  request.app = args.get("app");
  request.platform = args.get("platform");
  request.strategy = args.get("strategy");
  request.sync = args.flag("sync");
  request.small = args.flag("small");
  if (args.flag("tasks")) request.tasks = std::stoi(args.get("tasks"));
  request.gantt = args.flag("gantt");
  request.json = args.flag("json");
  return request;
}

strategies::StrategyOptions options_from(const Args& args) {
  strategies::StrategyOptions options;
  options.sync_between_kernels = args.flag("sync");
  const std::string tasks = args.get("tasks");
  if (!tasks.empty()) options.task_count = std::stoi(tasks);
  return options;
}

void print_result(const strategies::StrategyResult& result) {
  std::cout << analyzer::strategy_name(result.kind) << ": "
            << format_fixed(result.time_ms(), 2) << " ms, accelerator share "
            << format_percent(result.gpu_fraction_overall) << ", transfers "
            << format_bytes(static_cast<double>(
                   result.report.transfers.total_bytes()))
            << " (" << format_time(result.report.transfers.total_time())
            << "), overhead " << format_time(result.report.overhead_time)
            << "\n";
}

int cmd_list() {
  std::cout << "applications:\n";
  for (const auto& [name, kind] : app_names()) {
    const auto config = apps::paper_config(kind);
    std::cout << "  " << name << "  (" << config.items << " items, "
              << config.iterations << " iteration(s))\n";
  }
  std::cout << "  spectral-dag  (16777216 items, 10 iterations; MK-DAG "
               "extension)\n";
  std::cout << "  tree-reduction  (134217728 inputs; shrinking MK-Seq "
               "extension)\n";
  std::cout << "  triangular-mv  (16384 rows; imbalanced SK-One "
               "extension)\n";
  std::cout << "  unstable-loop  (8388608 items, 8 sweeps; drifting-loop "
               "extension)\n";
  std::cout << "platforms:\n  reference, small-gpu, dual-gpu, cpu-gpu-phi, "
               "cpu-only\n";
  std::cout << "strategies:\n  sp-single, sp-unified, sp-varied, dp-perf, "
               "dp-dep, only-cpu, only-gpu, sp-dag (extension)\n";
  return 0;
}

int cmd_catalog(const Args& args) {
  // The 86-application kernel-structure study, classified live.
  Table table({"suite", "application", "class", "selected strategy"});
  for (const analyzer::CatalogEntry& entry :
       analyzer::application_catalog()) {
    analyzer::AppDescriptor descriptor;
    descriptor.name = entry.name;
    descriptor.structure = entry.structure;
    descriptor.sync = entry.sync;
    const auto match = analyzer::Matchmaker{}.match(descriptor);
    table.add_row({entry.suite, entry.name,
                   analyzer::app_class_name(match.app_class),
                   analyzer::strategy_name(match.best)});
  }
  table.print(std::cout, args.flag("csv"));
  std::cout << "\nclass distribution:";
  for (const auto& [cls, count] : analyzer::catalog_class_distribution())
    std::cout << "  " << analyzer::app_class_name(cls) << "=" << count;
  std::cout << "\n";
  return 0;
}

int cmd_match(const Args& args) {
  std::cout << serve::answer(request_from_args(args, "match"));
  return 0;
}

int cmd_run(const Args& args) {
  const hw::PlatformSpec platform = platform_by_name(args.get("platform"));
  auto app = make_app(args, platform);
  strategies::StrategyRunner runner(*app, options_from(args));
  strategies::StrategyResult result;
  if (args.flag("strategy")) {
    result = runner.run(strategy_by_name(args.get("strategy")));
  } else {
    const auto matched = runner.run_matched();
    if (!args.flag("json")) {
      std::cout << "analyzer selected "
                << analyzer::strategy_name(matched.match.best) << " ("
                << analyzer::app_class_name(matched.match.app_class)
                << ")\n";
    }
    result = matched.result;
  }
  if (args.flag("json")) {
    std::cout << rt::report_to_json(result.report, app->executor().kernels())
              << "\n";
  } else {
    print_result(result);
  }
  if (args.flag("small")) {
    app->verify();
    if (!args.flag("json")) std::cout << "functional verification: ok\n";
  }
  return 0;
}

int cmd_tune(const Args& args) {
  if (!args.flag("strategy"))
    throw InvalidArgument("tune needs --strategy <s>");
  const hw::PlatformSpec platform = platform_by_name(args.get("platform"));
  auto app = make_app(args, platform);
  const auto result = strategies::tune_task_count(
      *app, strategy_by_name(args.get("strategy")),
      strategies::default_task_count_candidates(platform.cpu.lanes),
      options_from(args));
  Table table({"m (chunks)", "time (ms)"});
  for (const auto& trial : result.trials) {
    table.add_row({std::to_string(trial.task_count),
                   format_fixed(trial.time_ms, 2)});
  }
  table.print(std::cout, args.flag("csv"));
  std::cout << "best: m = " << result.best_task_count << " ("
            << format_fixed(result.best_time_ms, 2) << " ms)\n";
  return 0;
}

int cmd_compare(const Args& args) {
  const hw::PlatformSpec platform = platform_by_name(args.get("platform"));
  auto app = make_app(args, platform);
  strategies::StrategyRunner runner(*app, options_from(args));
  const auto results = runner.run_ranked_and_baselines();
  Table table({"strategy", "time (ms)", "accelerator share"});
  for (const auto& [kind, result] : results) {
    table.add_row({analyzer::strategy_name(kind),
                   format_fixed(result.time_ms(), 2),
                   format_percent(result.gpu_fraction_overall)});
  }
  table.print(std::cout, args.flag("csv"));
  return 0;
}

int cmd_trace(const Args& args) {
  const std::string out = args.get("out");
  if (out.empty()) throw InvalidArgument("trace needs --out <file.json>");
  const hw::PlatformSpec platform = platform_by_name(args.get("platform"));
  auto app =
      make_app(args, platform, /*record_trace=*/true, /*record_obs=*/true);
  strategies::StrategyRunner runner(*app, options_from(args));
  const auto result =
      args.flag("strategy")
          ? runner.run(strategy_by_name(args.get("strategy")))
          : runner.run_matched().result;
  std::ofstream file(out);
  HS_REQUIRE(file.good(), "cannot open '" << out << "' for writing");
  // Counter tracks (queue depth, EMA estimates, in-flight transfers) ride
  // along as Perfetto "C" events when observability was recorded.
  if (result.report.obs) {
    file << obs::chrome_trace_with_counters(result.report.trace,
                                            result.report.obs->metrics);
  } else {
    file << result.report.trace.to_chrome_json();
  }
  std::cout << "wrote " << result.report.trace.events().size()
            << " trace events to " << out
            << " (load in chrome://tracing or ui.perfetto.dev)\n";
  return 0;
}

int cmd_analyze(const Args& args) {
  std::cout << serve::answer(request_from_args(args, "analyze"));
  return 0;
}

std::vector<std::string> split_list(const std::string& text) {
  std::vector<std::string> parts;
  std::string current;
  for (char ch : text) {
    if (ch == ',') {
      if (!current.empty()) parts.push_back(current);
      current.clear();
    } else {
      current += ch;
    }
  }
  if (!current.empty()) parts.push_back(current);
  return parts;
}

int cmd_sweep(const Args& args) {
  // Axis selection: defaults cover the paper's full evaluation matrix.
  std::vector<apps::PaperApp> sweep_apps;
  if (args.flag("apps")) {
    for (const std::string& name : split_list(args.get("apps")))
      sweep_apps.push_back(apps::paper_app_from_name(name));
  } else {
    sweep_apps = apps::all_paper_apps();
  }
  std::vector<analyzer::StrategyKind> sweep_strategies;
  if (args.flag("strategies")) {
    for (const std::string& name : split_list(args.get("strategies")))
      sweep_strategies.push_back(analyzer::strategy_from_name(name));
  } else {
    sweep_strategies = analyzer::paper_strategies();
  }
  const std::vector<std::string> sweep_platforms =
      args.flag("platforms") ? split_list(args.get("platforms"))
                             : std::vector<std::string>{"reference"};
  const std::string sync_mode = args.get("sync-mode", "both");
  std::vector<bool> sync_variants;
  if (sync_mode == "both") sync_variants = {false, true};
  else if (sync_mode == "on") sync_variants = {true};
  else if (sync_mode == "off") sync_variants = {false};
  else throw InvalidArgument("--sync-mode must be both, on, or off");

  std::vector<sweep::Scenario> scenarios = sweep::enumerate_matrix(
      sweep_apps, sweep_strategies, sweep_platforms, sync_variants,
      args.flag("small"));
  if (args.flag("tasks")) {
    const int task_count = std::stoi(args.get("tasks"));
    for (sweep::Scenario& scenario : scenarios)
      scenario.task_count = task_count;
  }

  sweep::SweepOptions options;
  options.parallel = !args.flag("serial");
  if (args.flag("jobs"))
    options.jobs = static_cast<unsigned>(std::stoul(args.get("jobs")));
  if (args.flag("batch"))
    options.batch = static_cast<std::size_t>(std::stoul(args.get("batch")));
  options.use_cache = !args.flag("no-cache");
  options.cache_dir = args.get("cache-dir", ".hs-sweep-cache");

  const sweep::SweepEngine engine(options);
  const sweep::SweepRun run = engine.run(scenarios);

  if (args.flag("json") && args.get("json").empty()) {
    std::cout << sweep::sweep_to_json(run) << "\n";
    return run.summary.failed == 0 ? 0 : 1;
  }

  Table table({"scenario", "status", "time (ms)", "accelerator share",
               "source", "wall (ms)"});
  for (const sweep::ScenarioOutcome& outcome : run.outcomes) {
    table.add_row(
        {outcome.scenario.label(),
         sweep::scenario_status_name(outcome.status),
         outcome.ok() ? format_fixed(outcome.time_ms(), 2) : "-",
         outcome.ok() ? format_percent(outcome.gpu_fraction_overall()) : "-",
         outcome.cache_hit ? "cache" : "computed",
         format_fixed(outcome.wall_ms, 2)});
  }
  table.print(std::cout, args.flag("csv"));

  std::cout << "\nranking per scenario group (best first):\n";
  for (const sweep::GroupRanking& ranking :
       sweep::compute_rankings(run.outcomes)) {
    std::vector<std::string> names;
    for (const auto& [kind, time] : ranking.order) {
      names.push_back(std::string(analyzer::strategy_name(kind)) + " (" +
                      format_fixed(time, 1) + ")");
    }
    std::cout << "  " << ranking.group << ": " << join(names, " > ")
              << "  [winner: " << analyzer::strategy_name(ranking.winner)
              << "]\n";
  }

  const sweep::SweepSummary& summary = run.summary;
  std::cout << "\nsweep: " << summary.scenarios << " scenario(s) in "
            << format_fixed(summary.wall_ms, 1) << " ms — " << summary.ok
            << " ok, " << summary.inapplicable << " inapplicable, "
            << summary.failed << " failed; " << summary.cache_hits
            << " cache hit(s), " << summary.cache_misses << " miss(es), "
            << summary.cache_evictions << " evicted, " << summary.computed
            << " computed (" << (options.parallel ? "parallel" : "serial")
            << ")\n";
  if (options.use_cache)
    std::cout << "cache: " << options.cache_dir << "\n";

  if (args.flag("json")) {
    std::ofstream file(args.get("json"));
    HS_REQUIRE(file.good(),
               "cannot open '" << args.get("json") << "' for writing");
    file << sweep::sweep_to_json(run) << "\n";
    std::cout << "wrote JSON to " << args.get("json") << "\n";
  }
  return run.summary.failed == 0 ? 0 : 1;
}

int cmd_faults(const Args& args) {
  // Degradation study: run an app x strategy matrix under ONE named
  // FaultPlan and report each strategy's slowdown against its own
  // fault-free baseline. This is where the resilience contrast shows up:
  // DP strategies migrate / re-partition around the perturbation while SP
  // strategies honestly eat it (or DNF on a device failure).
  const std::string plan_name = args.get("plan", "gpu-slowdown");
  const std::vector<std::string> known_plans = faults::named_fault_plans();
  if (std::find(known_plans.begin(), known_plans.end(), plan_name) ==
      known_plans.end()) {
    throw InvalidArgument("unknown fault plan '" + plan_name + "' (" +
                          join(known_plans, ", ") + ")");
  }
  const std::uint64_t seed =
      args.flag("seed") ? std::stoull(args.get("seed")) : 0;

  // --apps takes a list; --app (the single-app spelling every other verb
  // uses) works too.
  std::vector<apps::PaperApp> fault_apps;
  const std::string app_list =
      args.flag("apps") ? args.get("apps") : args.get("app");
  if (!app_list.empty()) {
    for (const std::string& name : split_list(app_list))
      fault_apps.push_back(apps::paper_app_from_name(name));
  } else {
    fault_apps = apps::all_paper_apps();
  }
  std::vector<analyzer::StrategyKind> fault_strategies;
  if (args.flag("strategies")) {
    for (const std::string& name : split_list(args.get("strategies")))
      fault_strategies.push_back(analyzer::strategy_from_name(name));
  } else {
    fault_strategies = analyzer::paper_strategies();
  }

  std::vector<sweep::Scenario> scenarios = sweep::enumerate_matrix(
      fault_apps, fault_strategies, {args.get("platform", "reference")},
      {args.flag("sync")}, args.flag("small"));
  for (sweep::Scenario& scenario : scenarios) {
    scenario.fault_plan = plan_name;
    scenario.fault_seed = seed;
    if (args.flag("tasks")) scenario.task_count = std::stoi(args.get("tasks"));
  }

  sweep::SweepOptions options;
  options.parallel = !args.flag("serial");
  if (args.flag("jobs"))
    options.jobs = static_cast<unsigned>(std::stoul(args.get("jobs")));
  options.use_cache = !args.flag("no-cache");
  options.cache_dir = args.get("cache-dir", ".hs-sweep-cache");

  const sweep::SweepEngine engine(options);
  const sweep::SweepRun run = engine.run(scenarios);

  if (args.flag("json") && args.get("json").empty()) {
    std::cout << sweep::sweep_to_json(run) << "\n";
    return run.summary.failed == 0 ? 0 : 1;
  }

  std::cout << "fault plan: " << plan_name;
  if (seed != 0) std::cout << " (seed " << seed << ")";
  std::cout << " — degradation = faulted time / fault-free time; DNF = run "
               "did not complete\n\n";

  Table table({"scenario", "status", "baseline (ms)", "faulted (ms)",
               "degradation", "retries", "migrated", "repart.", "abandoned"});
  for (const sweep::ScenarioOutcome& outcome : run.outcomes) {
    const sweep::ScenarioMetrics& metrics = outcome.metrics;
    std::string degradation = "-";
    if (outcome.ok()) {
      degradation = metrics.run_completed
                        ? format_fixed(metrics.degradation_ratio, 2) + "x"
                        : "DNF";
    }
    table.add_row(
        {outcome.scenario.label(),
         sweep::scenario_status_name(outcome.status),
         outcome.ok() ? format_fixed(metrics.baseline_time_ms, 2) : "-",
         outcome.ok() ? format_fixed(metrics.time_ms, 2) : "-", degradation,
         outcome.ok() ? std::to_string(metrics.fault_retries) : "-",
         outcome.ok() ? std::to_string(metrics.migrated_tasks) : "-",
         outcome.ok() ? std::to_string(metrics.repartitioned_tasks) : "-",
         outcome.ok() ? std::to_string(metrics.abandoned_tasks) : "-"});
  }
  table.print(std::cout, args.flag("csv"));

  const sweep::SweepSummary& summary = run.summary;
  std::cout << "\nfaults: " << summary.scenarios << " scenario(s) in "
            << format_fixed(summary.wall_ms, 1) << " ms — " << summary.ok
            << " ok, " << summary.inapplicable << " inapplicable, "
            << summary.failed << " failed; " << summary.cache_hits
            << " cache hit(s), " << summary.cache_misses << " miss(es), "
            << summary.cache_evictions << " evicted, " << summary.computed
            << " computed\n";

  if (args.flag("json")) {
    std::ofstream file(args.get("json"));
    HS_REQUIRE(file.good(),
               "cannot open '" << args.get("json") << "' for writing");
    file << sweep::sweep_to_json(run) << "\n";
    std::cout << "wrote JSON to " << args.get("json") << "\n";
  }
  return run.summary.failed == 0 ? 0 : 1;
}

int cmd_metrics(const Args& args) {
  const std::string format = args.get("format", "prom");
  if (format != "prom" && format != "json")
    throw InvalidArgument("--format must be prom or json, got '" + format +
                          "'");
  const hw::PlatformSpec platform = platform_by_name(args.get("platform"));
  const analyzer::StrategyKind kind =
      strategy_by_name(args.get("strategy", "dp-perf"));
  strategies::StrategyOptions options = options_from(args);

  const std::string plan_name = args.get("plan", "none");
  if (plan_name != "none") {
    const std::vector<std::string> known_plans = faults::named_fault_plans();
    if (std::find(known_plans.begin(), known_plans.end(), plan_name) ==
        known_plans.end()) {
      throw InvalidArgument("unknown fault plan '" + plan_name + "' (" +
                            join(known_plans, ", ") + ", none)");
    }
    // A healthy twin fixes the horizon the plan's relative offsets resolve
    // against — same convention as the faults verb and the sweep engine.
    auto baseline_app = make_app(args, platform);
    strategies::StrategyRunner baseline(*baseline_app, options);
    const SimTime horizon =
        std::max<SimTime>(1, baseline.run(kind).report.makespan);
    const std::uint64_t seed =
        args.flag("seed") ? std::stoull(args.get("seed")) : 0;
    options.fault_plan = faults::make_named_plan(plan_name, horizon, seed,
                                                 platform.device_count());
  }

  auto app =
      make_app(args, platform, /*record_trace=*/false, /*record_obs=*/true);
  strategies::StrategyRunner runner(*app, options);
  const strategies::StrategyResult result = runner.run(kind);
  HS_REQUIRE(result.report.obs != nullptr,
             "run produced no observability data");
  const obs::RunObservability& observed = *result.report.obs;

  const std::vector<std::string> problems = observed.metrics.validate();
  if (!problems.empty()) {
    std::cerr << "metrics registry failed validation:\n";
    for (const std::string& problem : problems)
      std::cerr << "  " << problem << "\n";
    return 3;
  }

  const std::string output = format == "prom"
                                 ? observed.metrics.to_prometheus()
                                 : observed.to_json().dump() + "\n";
  const std::string out = args.get("out");
  if (!out.empty()) {
    std::ofstream file(out);
    HS_REQUIRE(file.good(), "cannot open '" << out << "' for writing");
    file << output;
    std::cout << "wrote " << format << " metrics to " << out << "\n";
  } else {
    std::cout << output;
  }
  return 0;
}

int cmd_bench(const Args& args) {
  sweep::BenchOptions options;
  // The benchmark defaults to the small functional configs so the `bench`
  // ctest label stays a smoke run; --paper-size measures the real sizes.
  options.small = !args.flag("paper-size");
  options.parallel = !args.flag("serial");
  if (args.flag("jobs"))
    options.jobs = static_cast<unsigned>(std::stoul(args.get("jobs")));
  if (args.flag("seeds")) options.fault_seeds = std::stoi(args.get("seeds"));
  options.cache_dir = args.get("cache-dir", ".hs-bench-cache");
  if (args.flag("quick")) {
    // Smallest run that still produces the full JSON document — a contract
    // smoke for CI (ctest label simcore), not a measurement.
    options.small = true;
    options.fault_seeds = 2;
    options.sim_core_reps = 2;
  }

  const sweep::BenchResult result = sweep::run_bench(options);

  const auto print_phase = [](const sweep::BenchPhase& phase) {
    std::cout << "  " << phase.name << ": " << phase.summary.scenarios
              << " scenario(s) in " << format_fixed(phase.wall_ms, 1)
              << " ms — " << phase.summary.computed << " computed, "
              << phase.summary.cache_hits << " cache hit(s), "
              << phase.summary.twin_computes << " twin(s) computed, "
              << phase.summary.twin_memo_hits << " twin memo hit(s); "
              << phase.sim_events << " sim events (";
    // Rate is unset when the phase ran faster than the clock tick.
    if (phase.events_per_second)
      std::cout << format_fixed(*phase.events_per_second / 1e6, 2) << " M/s";
    else
      std::cout << "n/a";
    std::cout << ")\n";
  };
  std::cout << "sweep bench ("
            << (options.small ? "small configs" : "paper sizes") << ", "
            << (options.parallel ? "parallel" : "serial") << "):\n";
  print_phase(result.sim_core);
  print_phase(result.cold);
  print_phase(result.warm);
  print_phase(result.twins);
  print_phase(result.sim_core_quad);

  if (args.flag("quick")) {
    // Smoke guard: the event core must still produce work and a sane rate
    // on the 4-device quad platform, not just the reference CPU+GPU pair.
    for (const sweep::BenchPhase* phase :
         {&result.sim_core, &result.sim_core_quad}) {
      HS_REQUIRE(phase->sim_events > 0,
                 phase->name << " simulated no events");
      HS_REQUIRE(!phase->events_per_second ||
                     (std::isfinite(*phase->events_per_second) &&
                      *phase->events_per_second > 0.0),
                 phase->name << " produced a non-finite event rate");
    }
  }

  // Fourth phase: loopback serve-daemon throughput (requests/s), folded
  // into the same BENCH document. --no-serve skips it (e.g. a sandbox
  // without loopback networking).
  std::vector<json::Value> extra_phases;
  if (!args.flag("no-serve")) {
    serve::ServeBenchOptions serve_options;
    if (args.flag("clients"))
      serve_options.clients =
          static_cast<unsigned>(std::stoul(args.get("clients")));
    if (args.flag("requests"))
      serve_options.requests_per_client = std::stoi(args.get("requests"));
    const serve::ServeBenchResult served =
        serve::run_serve_bench(serve_options);
    std::cout << "  serve_loopback: " << served.requests << " request(s) ("
              << serve_options.clients << " clients) in "
              << format_fixed(served.wall_ms, 1) << " ms — "
              << served.cache_hits << " cache hit(s), " << served.errors
              << " error(s); "
              << (served.requests_per_second
                      ? format_fixed(*served.requests_per_second, 0)
                      : std::string("n/a"))
              << " req/s\n";
    extra_phases.push_back(serve::serve_bench_to_json(served));
  }

  const std::string out = args.get("out", "BENCH_sweep.json");
  std::ofstream file(out);
  HS_REQUIRE(file.good(), "cannot open '" << out << "' for writing");
  file << sweep::bench_to_json(result, extra_phases) << "\n";
  std::cout << "wrote " << out << "\n";
  return 0;
}

int cmd_fuzz(const Args& args) {
  if (args.flag("oracles")) {
    for (const std::string& name : check::oracle_names())
      std::cout << name << "\n";
    return 0;
  }

  // Repro mode: replay a previously written counterexample file.
  if (args.flag("repro")) {
    std::ifstream file(args.get("repro"));
    HS_REQUIRE(file.good(),
               "cannot open repro '" << args.get("repro") << "'");
    std::ostringstream text;
    text << file.rdbuf();
    const json::Value document = json::Value::parse(text.str());
    // Accept both a bare case document and a full counterexample file.
    const check::FuzzCase c =
        document.find("case") != nullptr
            ? check::FuzzCase::from_json(document.at("case"))
            : check::FuzzCase::from_json(document);
    // Explored counterexamples embed the replay spec of their failing
    // schedule; replaying without it would check the canonical schedule.
    rt::ExploreSpec explore;
    if (const json::Value* spec = document.find("explore"))
      explore = rt::ExploreSpec::from_json(*spec);
    std::cout << "replaying " << c.describe() << "\n";
    if (explore.active())
      std::cout << "schedule replay: #" << explore.schedule << " with "
                << explore.decisions.size() << " recorded decision(s)\n";
    const std::vector<check::Violation> violations =
        check::replay_case(c, explore);
    if (violations.empty()) {
      std::cout << "repro passes all oracles (fixed or stale)\n";
      return 0;
    }
    for (const check::Violation& violation : violations)
      std::cout << "VIOLATION " << violation.oracle << ": "
                << violation.detail << "\n";
    return 4;
  }

  check::FuzzOptions options;
  if (args.flag("seed")) options.base_seed = std::stoull(args.get("seed"));
  options.iters = args.flag("iters") ? std::stoi(args.get("iters")) : 1;
  options.shrink = !args.flag("no-shrink");
  options.plant = args.get("plant");
  if (args.flag("explore"))
    options.explore = rt::explore_mode_from_name(args.get("explore"));
  if (args.flag("schedules"))
    options.schedules = std::stoi(args.get("schedules"));
  options.serve = args.flag("serve");
  if (args.flag("corpus")) {
    std::ifstream file(args.get("corpus"));
    HS_REQUIRE(file.good(),
               "cannot open corpus '" << args.get("corpus") << "'");
    std::ostringstream text;
    text << file.rdbuf();
    options.seeds = check::parse_corpus(text.str());
    HS_REQUIRE(!options.seeds.empty(),
               "corpus '" << args.get("corpus") << "' contains no seeds");
  }

  const check::FuzzResult result = check::run_fuzz(options);
  std::cout << result.render();
  if (result.clean()) return 0;

  const check::Counterexample& cx = result.counterexamples.front();
  const std::string out = args.get(
      "out", "fuzz-repro-" + std::to_string(cx.original.seed) + ".json");
  std::ofstream file(out);
  HS_REQUIRE(file.good(), "cannot open '" << out << "' for writing");
  file << cx.to_json().dump() << "\n";
  std::cout << "repro written to " << out << "\n";
  return 4;
}

int cmd_explain(const Args& args) {
  std::cout << serve::answer(request_from_args(args, "explain"));
  return 0;
}

// ---------------------------------------------------------------------------
// The serve daemon and its client verb.
// ---------------------------------------------------------------------------

volatile std::sig_atomic_t g_signal_received = 0;

void handle_signal(int) { g_signal_received = 1; }

log::Level log_level_from_name(const std::string& name) {
  if (name == "debug") return log::Level::kDebug;
  if (name == "info") return log::Level::kInfo;
  if (name == "warn") return log::Level::kWarn;
  if (name == "error") return log::Level::kError;
  if (name == "off") return log::Level::kOff;
  throw InvalidArgument("unknown log level '" + name +
                        "' (debug, info, warn, error, off)");
}

int cmd_serve(const Args& args) {
  serve::ServeOptions options;
  if (args.flag("port")) options.port = std::stoi(args.get("port"));
  options.host = args.get("host", "127.0.0.1");
  if (args.flag("workers"))
    options.workers = static_cast<unsigned>(std::stoul(args.get("workers")));
  if (args.flag("max-queue"))
    options.max_queue = std::stoul(args.get("max-queue"));
  if (args.flag("shards")) options.shards = std::stoul(args.get("shards"));
  options.cache_dir = args.get("cache-dir");
  if (args.flag("trace-capacity"))
    options.trace_capacity = std::stoul(args.get("trace-capacity"));

  // Structured daemon logging: text lines by default, JSON lines for log
  // shippers; every request line carries its trace_id either way.
  const std::string log_format = args.get("log-format", "text");
  if (log_format == "json") {
    obs::set_log_format(obs::LogFormat::kJson);
  } else if (log_format != "text") {
    throw InvalidArgument("unknown --log-format '" + log_format +
                          "' (text, json)");
  }
  if (args.flag("log-level"))
    log::set_level(log_level_from_name(args.get("log-level")));

  // A network daemon must survive a peer (or its own stdout pipe)
  // vanishing mid-write; sockets use MSG_NOSIGNAL, stdout needs this.
  std::signal(SIGPIPE, SIG_IGN);
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  serve::Server server(options);
  server.start();
  if (args.flag("announce-port")) {
    // Machine-readable handshake for scripts: first stdout line names the
    // bound (possibly kernel-chosen) port.
    std::cout << "PORT " << server.port() << "\n" << std::flush;
  }

  // Tick between signal flag and in-band shutdown requests; a signal
  // handler cannot touch the server directly.
  while (!server.wait_for_shutdown_request(/*timeout_ms=*/50)) {
    if (g_signal_received) {
      server.request_shutdown();
      break;
    }
  }
  server.wait();

  const std::string metrics_out = args.get("metrics-out");
  if (!metrics_out.empty()) {
    std::ofstream file(metrics_out);
    HS_REQUIRE(file.good(),
               "cannot open '" << metrics_out << "' for writing");
    file << server.final_snapshot();
    std::cerr << "serve: final metrics snapshot written to " << metrics_out
              << "\n";
  } else {
    // The final snapshot goes to stderr so a script consuming stdout (the
    // PORT handshake) never has to parse around it.
    std::cerr << server.final_snapshot();
  }
  return 0;
}

int cmd_query(const Args& args) {
  const std::string host = args.get("host", "127.0.0.1");
  int port = 0;
  if (args.flag("port-stdin")) {
    // Counterpart of serve --announce-port: read "PORT <n>" from stdin,
    // which lets a script pipe the daemon's stdout straight into the
    // client with no temp file or sleep.
    std::string tag;
    if (!(std::cin >> tag >> port) || tag != "PORT" || port <= 0)
      throw InvalidArgument("--port-stdin expected 'PORT <n>' on stdin");
  } else if (args.flag("port")) {
    port = std::stoi(args.get("port"));
  } else {
    throw InvalidArgument("query needs --port <p> or --port-stdin");
  }

  const serve::QueryRequest request =
      request_from_args(args, args.get("op", "match"));
  try {
    serve::QueryClient client(host, port);
    const serve::QueryResponse response = client.ask(request);
    switch (response.status) {
      case serve::ResponseStatus::kOk:
        std::cout << response.output;
        if (args.flag("trace")) {
          // Fetch this request's span tree over the same connection. It
          // goes to stderr so stdout stays byte-identical to the untraced
          // invocation (the protocol's offline-equivalence contract).
          serve::QueryRequest dump;
          dump.op = "trace-dump";
          dump.trace = response.trace_id;
          const serve::QueryResponse tree = client.ask(dump);
          if (tree.status == serve::ResponseStatus::kOk) {
            std::cerr << tree.output;
          } else {
            std::cerr << "trace-dump failed: " << tree.error << "\n";
          }
        }
        break;
      case serve::ResponseStatus::kError:
        std::cerr << "error: " << response.error << "\n";
        return 1;
      case serve::ResponseStatus::kOverload:
        std::cerr << "overloaded: " << response.error << " (retry after "
                  << response.retry_after_ms << " ms)\n";
        return 5;
      case serve::ResponseStatus::kShuttingDown:
        std::cerr << "daemon is shutting down\n";
        return 5;
    }
    if (args.flag("then-shutdown")) {
      serve::QueryRequest shutdown;
      shutdown.op = "shutdown";
      client.ask(shutdown);
    }
    return 0;
  } catch (const Error& error) {
    // Transport-level failure (daemon unreachable / connection dropped):
    // distinct exit code so scripts can tell it from a refused query.
    std::cerr << "error: " << error.what() << "\n";
    return 6;
  }
}

// ---------------------------------------------------------------------------
// Verb table: single source of truth for dispatch AND the usage string, so
// the usage line cannot drift from what main() actually accepts.
// ---------------------------------------------------------------------------

struct Verb {
  const char* name;
  int (*run)(const Args&);
};

const std::vector<Verb>& verb_table() {
  static const std::vector<Verb> kVerbs = {
      {"list", [](const Args&) { return cmd_list(); }},
      {"catalog", cmd_catalog},
      {"match", cmd_match},
      {"run", cmd_run},
      {"compare", cmd_compare},
      {"trace", cmd_trace},
      {"analyze", cmd_analyze},
      {"tune", cmd_tune},
      {"sweep", cmd_sweep},
      {"faults", cmd_faults},
      {"metrics", cmd_metrics},
      {"explain", cmd_explain},
      {"bench", cmd_bench},
      {"fuzz", cmd_fuzz},
      {"serve", cmd_serve},
      {"query", cmd_query},
  };
  return kVerbs;
}

std::string usage_string() {
  std::vector<std::string> names;
  for (const Verb& verb : verb_table()) names.push_back(verb.name);
  return "usage: hetsched_cli <" + join(names, "|") +
         "> [--app <name>] [--strategy <s>] [--platform <p>] [--sync] "
         "[--tasks <m>] [--small] [--csv] [--out <file>]\n";
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);
  try {
    for (const Verb& verb : verb_table())
      if (args.command == verb.name) return verb.run(args);
    std::cerr << usage_string();
    return args.command.empty() ? 0 : 2;
  } catch (const hetsched::Error& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
