# Loopback end-to-end smoke for the serve daemon, runnable under ctest:
#
#   cmake -DCLI=<hetsched_cli> -DWORK_DIR=<dir> -P serve_smoke.cmake
#
# Boots `serve --port 0 --announce-port` and pipes its stdout into
# `query --port-stdin` (execute_process chains COMMANDs as a pipeline), so
# the client learns the kernel-chosen port with no temp file or sleep. The
# client's --then-shutdown frame drains the daemon, which must exit 0.
# The served bytes are compared against the offline verb's stdout — the
# protocol's byte-identical contract, checked end to end across processes.

if(NOT CLI)
  message(FATAL_ERROR "pass -DCLI=<path to hetsched_cli>")
endif()
if(NOT WORK_DIR)
  message(FATAL_ERROR "pass -DWORK_DIR=<scratch dir>")
endif()
file(MAKE_DIRECTORY ${WORK_DIR})

# One scenario per served op; every entry must round-trip byte-identically.
set(CASE_match match --app matrixmul --small --sync)
set(CASE_explain explain --app nbody --small --json)
set(CASE_analyze analyze --app stream-seq --small --strategy dp-perf)

foreach(case match explain analyze)
  set(argv ${CASE_${case}})
  list(GET argv 0 op)
  list(SUBLIST argv 1 -1 options)

  execute_process(
    COMMAND ${CLI} ${op} ${options}
    OUTPUT_VARIABLE offline
    RESULT_VARIABLE offline_result)
  if(NOT offline_result EQUAL 0)
    message(FATAL_ERROR "offline '${op}' failed (${offline_result})")
  endif()

  execute_process(
    COMMAND ${CLI} serve --port 0 --announce-port
            --cache-dir ${WORK_DIR}/serve_cache
            --metrics-out ${WORK_DIR}/final_metrics_${case}.prom
    COMMAND ${CLI} query --port-stdin --op ${op} ${options} --then-shutdown
    OUTPUT_VARIABLE served
    RESULTS_VARIABLE results)
  list(GET results 0 daemon_result)
  list(GET results 1 client_result)
  if(NOT daemon_result EQUAL 0)
    message(FATAL_ERROR
            "daemon did not drain to exit 0 for '${op}' "
            "(exit ${daemon_result})")
  endif()
  if(NOT client_result EQUAL 0)
    message(FATAL_ERROR "query '${op}' failed (exit ${client_result})")
  endif()
  if(NOT served STREQUAL offline)
    string(LENGTH "${served}" served_len)
    string(LENGTH "${offline}" offline_len)
    message(FATAL_ERROR
            "served '${op}' answer differs from the offline bytes "
            "(served ${served_len} bytes, offline ${offline_len})")
  endif()

  # The drained daemon's final snapshot must exist and carry the request
  # counter for the op we sent.
  set(snapshot ${WORK_DIR}/final_metrics_${case}.prom)
  if(NOT EXISTS ${snapshot})
    message(FATAL_ERROR "daemon wrote no final metrics snapshot")
  endif()
  file(READ ${snapshot} metrics)
  if(NOT metrics MATCHES "hs_serve_requests_total")
    message(FATAL_ERROR
            "final snapshot lacks hs_serve_requests_total:\n${metrics}")
  endif()
  message(STATUS "serve e2e '${op}': byte-identical, daemon exited 0")
endforeach()

# Warm restart: the flushed on-disk cache must answer the repeat from the
# store (the response still byte-identical).
execute_process(
  COMMAND ${CLI} serve --port 0 --announce-port
          --cache-dir ${WORK_DIR}/serve_cache
  COMMAND ${CLI} query --port-stdin --op match --app matrixmul --small
          --sync --then-shutdown
  OUTPUT_VARIABLE warm
  RESULTS_VARIABLE warm_results)
list(GET warm_results 0 warm_daemon)
list(GET warm_results 1 warm_client)
if(NOT warm_daemon EQUAL 0 OR NOT warm_client EQUAL 0)
  message(FATAL_ERROR
          "warm-restart run failed (daemon ${warm_daemon}, "
          "client ${warm_client})")
endif()
execute_process(
  COMMAND ${CLI} match --app matrixmul --small --sync
  OUTPUT_VARIABLE offline_match)
if(NOT warm STREQUAL offline_match)
  message(FATAL_ERROR "warm-restart answer differs from the offline bytes")
endif()
message(STATUS "serve e2e warm restart: byte-identical")
