# Runs CMD (a ;-list) and succeeds only when its exit code equals EXPECTED.
# ctest's WILL_FAIL accepts ANY nonzero exit, which cannot distinguish the
# fuzz CLI's counterexample contract (exit 4) from an ordinary error (1).
#
#   cmake -DCMD="binary;arg1;arg2" -DEXPECTED=4 -P expect_exit.cmake
if(NOT DEFINED CMD OR NOT DEFINED EXPECTED)
  message(FATAL_ERROR "expect_exit.cmake needs -DCMD=... and -DEXPECTED=...")
endif()
execute_process(COMMAND ${CMD} RESULT_VARIABLE actual
                OUTPUT_VARIABLE output ERROR_VARIABLE output)
if(NOT actual EQUAL EXPECTED)
  message(FATAL_ERROR
          "expected exit ${EXPECTED}, got '${actual}'. Output:\n${output}")
endif()
