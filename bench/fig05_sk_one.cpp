/// Figure 5: execution time (ms) of the partitioning strategies for the
/// SK-One applications — MatrixMul (6144x6144) and BlackScholes
/// (80,530,632 options) — against Only-GPU and Only-CPU.
///
/// Paper shape: MatrixMul: OG >> OC is reversed (GPU much faster);
/// SP-Single best and close to Only-GPU; DP-Perf slightly worse (assigns
/// everything to the GPU); DP-Dep much worse (one instance to the GPU, the
/// rest to the CPU). BlackScholes: transfer-dominated; SP-Single best with
/// ~59% on the GPU; DP-Perf overshoots the GPU share; DP-Dep worst.
#include "bench/bench_util.hpp"

using namespace hetsched;
using analyzer::StrategyKind;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);

  const std::vector<StrategyKind> columns = {
      StrategyKind::kOnlyGpu, StrategyKind::kOnlyCpu,
      StrategyKind::kSPSingle, StrategyKind::kDPPerf, StrategyKind::kDPDep};

  Table table({"application", "Only-GPU (ms)", "Only-CPU (ms)",
               "SP-Single (ms)", "DP-Perf (ms)", "DP-Dep (ms)", "best"});
  for (apps::PaperApp app :
       {apps::PaperApp::kMatrixMul, apps::PaperApp::kBlackScholes}) {
    auto results = bench::run_paper_app(app);
    std::vector<std::string> row{apps::paper_app_name(app)};
    StrategyKind best = StrategyKind::kOnlyGpu;
    double best_ms = 1e300;
    for (StrategyKind kind : columns) {
      const double time = results.at(kind).time_ms();
      row.push_back(bench::ms(time));
      if (time < best_ms) {
        best_ms = time;
        best = kind;
      }
    }
    row.push_back(analyzer::strategy_name(best));
    table.add_row(std::move(row));
  }

  bench::print_header("Figure 5: SK-One execution time");
  table.print(std::cout, args.csv);
  std::cout << "\npaper reference (shape): SP-Single is best for both apps; "
               "DP-Perf second (all-GPU on MatrixMul, GPU-overshoot on "
               "BlackScholes); DP-Dep worst, near Only-CPU.\n";
  return 0;
}
