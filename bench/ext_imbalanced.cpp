/// Extension: imbalanced workloads (Glinda's ICS'14 companion, paper ref
/// [9]).
///
/// TriangularMV's per-row cost grows linearly across the item space. A
/// uniform split at the optimal item FRACTION hands the GPU's head slab far
/// less WORK than intended; the weighted solver balances work instead. We
/// compare the two static solutions against the dynamic strategies (whose
/// per-chunk placement adapts, at a price) and the baselines.
#include "bench/bench_util.hpp"

#include "apps/triangular.hpp"
#include "glinda/partition_model.hpp"
#include "glinda/profile.hpp"

using namespace hetsched;
using analyzer::StrategyKind;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);

  apps::Application::Config config;
  config.items = 16'384;  // ~537 MB packed triangular matrix
  config.iterations = 1;
  config.functional = false;
  apps::TriangularMvApp app(hw::make_reference_platform(), config);
  strategies::StrategyRunner runner(app);

  Table table({"strategy", "time (ms)", "GPU item share", "GPU WORK share"});
  const auto work_share = [&](double item_fraction) {
    const auto weight = app.prefix_weight();
    const auto head = static_cast<std::int64_t>(
        item_fraction * static_cast<double>(app.items()));
    return weight(head) / weight(app.items());
  };

  // Uniform split: force the closed-form solver on the same profile.
  {
    glinda::Profiler profiler;
    glinda::KernelEstimate estimate;
    estimate.cpu = profiler.profile_device(app.executor(),
                                           app.single_kernel_factory(0),
                                           hw::kCpuDevice, app.items());
    estimate.gpu = profiler.profile_device(
        app.executor(), app.single_kernel_factory(0), 1, app.items());
    estimate.link_bytes_per_second =
        profiler
            .profile_link(app.executor(), app.single_kernel_factory(0), 1,
                          app.items())
            .bytes_per_second;
    estimate.transfer_on_critical_path = true;
    const auto uniform = glinda::PartitionModel{}.solve(estimate, app.items());
    const rt::Program program = app.build_program(
        [&](rt::Program& p, std::size_t, rt::KernelId k) {
          if (uniform.gpu_items > 0) p.submit(k, 0, uniform.gpu_items, 1);
          const std::int64_t rest = app.items() - uniform.gpu_items;
          for (int i = 0; i < 12; ++i)
            p.submit(k, uniform.gpu_items + rest * i / 12,
                     uniform.gpu_items + rest * (i + 1) / 12,
                     hw::kCpuDevice);
        },
        false);
    const auto report = app.executor().execute_pinned(program);
    const double fraction = uniform.gpu_fraction(app.items());
    table.add_row({"SP-Single (uniform solver)",
                   bench::ms(to_millis(report.makespan)),
                   bench::pct(fraction), bench::pct(work_share(fraction))});
  }

  // Weighted split: what run(kSPSingle) does for apps with prefix weights.
  {
    const auto result = runner.run(StrategyKind::kSPSingle);
    const double fraction = result.gpu_fraction_overall;
    table.add_row({"SP-Single (weighted solver)",
                   bench::ms(result.time_ms()), bench::pct(fraction),
                   bench::pct(work_share(fraction))});
  }

  for (StrategyKind kind :
       {StrategyKind::kDPPerf, StrategyKind::kDPDep, StrategyKind::kOnlyCpu,
        StrategyKind::kOnlyGpu}) {
    const auto result = runner.run(kind);
    const double fraction = result.gpu_fraction_overall;
    table.add_row({analyzer::strategy_name(kind), bench::ms(result.time_ms()),
                   bench::pct(fraction), bench::pct(work_share(fraction))});
  }

  bench::print_header("Extension: imbalanced workload (TriangularMV)");
  table.print(std::cout, args.csv);
  std::cout << "\nexpected: the uniform solver's item split carries the "
               "wrong WORK split (the head rows are short), so it loses to "
               "the weighted solver, which equalizes work — ref [9]'s "
               "point. Note: the dynamic DP-Dep chunk shares are also item "
               "shares, hence its hidden imbalance here.\n";
  return 0;
}
