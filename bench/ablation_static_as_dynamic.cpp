/// Ablation: making dynamic partitioning "behave like" static partitioning
/// (paper Section V, the pragmatic recipe).
///
/// For an application already written with dynamic task instances, the
/// paper recommends: (1) determine the static ratio with the partitioning
/// model, (2) convert it to a task-assignment ratio (l instances on the
/// GPU, k = m - l on the CPU), (3) assign. We compare the resulting
/// "static-as-dynamic" execution against true SP-Single (one GPU task) and
/// plain DP-Perf.
#include "bench/bench_util.hpp"

#include <cmath>

#include "glinda/partition_model.hpp"

using namespace hetsched;
using analyzer::StrategyKind;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);

  Table table({"application", "SP-Single (ms)", "static-as-dynamic (ms)",
               "DP-Perf (ms)", "GPU instances l / m"});

  for (apps::PaperApp kind :
       {apps::PaperApp::kMatrixMul, apps::PaperApp::kBlackScholes}) {
    const hw::PlatformSpec platform = hw::make_reference_platform();
    auto app = apps::make_paper_app(kind, platform, apps::paper_config(kind));
    strategies::StrategyRunner runner(*app);

    const auto sp = runner.run(StrategyKind::kSPSingle);
    const auto dp = runner.run(StrategyKind::kDPPerf);

    // The recipe: convert the static ratio beta into l of m instances.
    // m is chosen so the CPU's (1 - beta) share spreads over all of its
    // threads: k = lanes CPU instances, l = m - k on the GPU.
    const double beta = sp.decisions.at(0).beta;
    const int lanes = platform.cpu.lanes;
    const int m = std::min(
        512, std::max(lanes + 1,
                      static_cast<int>(std::ceil(lanes / (1.0 - beta)))));
    const int l = m - lanes;
    const std::int64_t n = app->items();
    const rt::Program program = app->build_program(
        [&](rt::Program& p, std::size_t, rt::KernelId k) {
          for (int c = 0; c < m; ++c) {
            const hw::DeviceId device = c < l ? 1 : hw::kCpuDevice;
            p.submit(k, n * c / m, n * (c + 1) / m, device);
          }
        },
        false);
    const rt::ExecutionReport report =
        app->executor().execute_pinned(program);

    table.add_row({apps::paper_app_name(kind), bench::ms(sp.time_ms()),
                   bench::ms(to_millis(report.makespan)),
                   bench::ms(dp.time_ms()),
                   std::to_string(l) + " / " + std::to_string(m)});
  }

  bench::print_header("Ablation: the static-as-dynamic recipe (Section V)");
  table.print(std::cout, args.csv);
  std::cout << "\nexpected: assigning l of m task instances per the static "
               "ratio lands close to true SP-Single (\"close-to-optimal "
               "partitioning with minimal manual effort\") and beats plain "
               "DP-Perf where DP-Perf misplaces work.\n";
  return 0;
}
