/// Figure 10: partitioning ratio of the strategies for STREAM-Seq. For
/// SP-Varied the ratio is reported per kernel (copy/scale/add/triad), as in
/// the paper.
///
/// Paper shape: SP-Unified keeps ~44% of the elements on the GPU; the
/// per-kernel SP-Varied splits are skewed further toward the CPU (every
/// kernel pays its own transfers); DP-Dep leaves most instances on the CPU,
/// which happens to match DP-Perf's partitioning.
#include "bench/bench_util.hpp"

using namespace hetsched;
using analyzer::StrategyKind;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);

  auto wo_sync = bench::run_paper_app(apps::PaperApp::kStreamSeq, false);
  auto w_sync = bench::run_paper_app(apps::PaperApp::kStreamSeq, true);

  Table table({"strategy", "kernel", "CPU share", "GPU share"});
  for (StrategyKind kind :
       {StrategyKind::kSPUnified, StrategyKind::kDPPerf,
        StrategyKind::kDPDep}) {
    const double gpu = wo_sync.at(kind).gpu_fraction_overall();
    table.add_row({analyzer::strategy_name(kind), "all",
                   bench::pct(1.0 - gpu), bench::pct(gpu)});
  }
  // SP-Varied: per-kernel ratios (only defined in the synced scenario).
  static const char* kKernelNames[] = {"copy", "scale", "add", "triad"};
  const auto& varied = w_sync.at(StrategyKind::kSPVaried);
  for (std::size_t k = 0; k < varied.gpu_fraction_per_kernel().size(); ++k) {
    const double gpu = varied.gpu_fraction_per_kernel()[k];
    table.add_row({"SP-Varied", kKernelNames[k], bench::pct(1.0 - gpu),
                   bench::pct(gpu)});
  }

  bench::print_header("Figure 10: MK-Seq (STREAM-Seq) partitioning ratio");
  table.print(std::cout, args.csv);
  std::cout << "\npaper reference: SP-Unified ~56/44 CPU/GPU; SP-Varied "
               "per-kernel splits skewed toward the CPU; DP-Dep mostly CPU, "
               "coinciding with DP-Perf.\n";
  return 0;
}
