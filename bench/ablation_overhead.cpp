/// Ablation: runtime scheduling overhead.
///
/// The paper's Discussion attributes dynamic partitioning's deficit to
/// "scheduling overhead at runtime". This sweep scales the per-task runtime
/// costs (creation, dispatch, taskwait) and the scheduling-decision cost
/// from one tenth to one hundred times the defaults, showing the
/// static-vs-dynamic gap widening with overhead while static partitioning
/// is barely touched.
#include "bench/bench_util.hpp"

#include "runtime/executor.hpp"

using namespace hetsched;
using analyzer::StrategyKind;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);

  Table table({"overhead scale", "SP-Single (ms)", "DP-Perf (ms)",
               "DP-Dep (ms)", "dynamic gap"});

  for (double scale : {0.1, 1.0, 10.0, 100.0}) {
    const hw::PlatformSpec platform = hw::make_reference_platform();
    apps::Application::Config config =
        apps::paper_config(apps::PaperApp::kNbody);
    config.costs.task_creation =
        static_cast<SimTime>(1.0 * kMicrosecond * scale);
    config.costs.dispatch_overhead =
        static_cast<SimTime>(2.0 * kMicrosecond * scale);
    config.costs.taskwait_overhead =
        static_cast<SimTime>(5.0 * kMicrosecond * scale);
    auto app = apps::make_paper_app(apps::PaperApp::kNbody, platform, config);
    strategies::StrategyRunner runner(*app);

    const double sp = runner.run(StrategyKind::kSPSingle).time_ms();
    const double perf = runner.run(StrategyKind::kDPPerf).time_ms();
    const double dep = runner.run(StrategyKind::kDPDep).time_ms();
    table.add_row({format_fixed(scale, 1) + "x", bench::ms(sp),
                   bench::ms(perf), bench::ms(dep),
                   format_fixed(perf / sp, 2) + "x"});
  }

  bench::print_header(
      "Ablation: runtime overhead scaling (Nbody, 1,048,576 bodies)");
  table.print(std::cout, args.csv);
  std::cout << "\nexpected: the best dynamic strategy falls further behind "
               "SP-Single as per-task overheads grow (it takes one "
               "scheduling decision per instance per iteration; the static "
               "plan takes none).\n";
  return 0;
}
