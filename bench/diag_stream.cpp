#include "bench/bench_util.hpp"
using namespace hetsched;
using analyzer::StrategyKind;
int main(int argc, char** argv) {
  bool sync = argc > 1 && std::string(argv[1]) == "w";
  auto app_kind = apps::PaperApp::kStreamSeq;
  if (argc > 2 && std::string(argv[2]) == "loop") app_kind = apps::PaperApp::kStreamLoop;
  auto results =
      bench::run_paper_app_on(app_kind, sync, hw::make_reference_platform());
  for (const auto& [kind, r] : results) {
    std::cout << analyzer::strategy_name(kind) << ": " << r.time_ms() << " ms"
              << "  gpu_share=" << r.gpu_fraction_overall
              << "  h2d=" << r.report.transfers.h2d_count << "/" << r.report.transfers.h2d_bytes/1e6 << "MB"
              << "  d2h=" << r.report.transfers.d2h_count << "/" << r.report.transfers.d2h_bytes/1e6 << "MB"
              << "  overhead=" << to_millis(r.report.overhead_time) << "ms"
              << "  cpu_busy=" << to_millis(r.report.devices[0].compute_time)
              << "  gpu_busy=" << to_millis(r.report.devices[1].compute_time) << "\n";
  }
  return 0;
}
