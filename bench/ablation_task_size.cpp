/// Ablation: dynamic-partitioning task size (paper Section V).
///
/// "The task size (the granularity of partitioning) impacts performance as
/// well. ... the task size variation leads to performance variation. Thus,
/// auto-tuning is recommended" — here we sweep m (the chunk count; task
/// size = n/m) for both dynamic strategies on BlackScholes and STREAM-Seq
/// and compare against the static winner, which stays ahead throughout.
#include "bench/bench_util.hpp"

using namespace hetsched;
using analyzer::StrategyKind;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);

  Table table({"application", "m (chunks)", "task size", "DP-Perf (ms)",
               "DP-Dep (ms)", "static best (ms)"});

  for (apps::PaperApp kind :
       {apps::PaperApp::kBlackScholes, apps::PaperApp::kStreamSeq}) {
    const StrategyKind static_best = kind == apps::PaperApp::kBlackScholes
                                         ? StrategyKind::kSPSingle
                                         : StrategyKind::kSPUnified;
    for (int m : {4, 8, 12, 24, 48, 96}) {
      const hw::PlatformSpec platform = hw::make_reference_platform();
      auto app =
          apps::make_paper_app(kind, platform, apps::paper_config(kind));
      strategies::StrategyOptions options;
      options.task_count = m;  // the DYNAMIC task size being ablated
      strategies::StrategyRunner runner(*app, options);
      const double perf = runner.run(StrategyKind::kDPPerf).time_ms();
      const double dep = runner.run(StrategyKind::kDPDep).time_ms();
      // The static reference keeps its own m (one CPU instance per thread).
      strategies::StrategyRunner static_runner(*app);
      const double sp = static_runner.run(static_best).time_ms();
      table.add_row({apps::paper_app_name(kind), std::to_string(m),
                     std::to_string(app->items() / m), bench::ms(perf),
                     bench::ms(dep), bench::ms(sp)});
    }
  }

  bench::print_header("Ablation: dynamic task size sweep");
  table.print(std::cout, args.csv);
  std::cout << "\nexpected: dynamic times vary with m (auto-tuning would "
               "pick the valley); the static strategy's time is m-robust "
               "and stays ahead, as the paper's Discussion claims.\n";
  return 0;
}
