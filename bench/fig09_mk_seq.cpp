/// Figure 9: execution time (ms) of the strategies for the MK-Seq
/// application STREAM-Seq (62,914,560 elements, copy/scale/add/triad run
/// once), in the scenarios without ("w/o") and with ("w") inter-kernel
/// synchronization.
///
/// Paper shape: w/o sync — SP-Unified best (one H2D before the first
/// kernel, one D2H after the last; ~44%/56% GPU/CPU); DP-Perf ~= DP-Dep
/// second; SP-Varied worst (it adds syncs and transfers the application
/// does not need). w sync — SP-Varied best; the dynamic strategies lose
/// ~35% versus their no-sync runs (the sync serializes the kernel flow);
/// SP-Unified worst (its no-sync split overloads the GPU once every kernel
/// pays transfers).
#include "bench/bench_util.hpp"

using namespace hetsched;
using analyzer::StrategyKind;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);

  Table table({"scenario", "Only-GPU (ms)", "Only-CPU (ms)",
               "SP-Unified (ms)", "DP-Perf (ms)", "DP-Dep (ms)",
               "SP-Varied (ms)", "best"});
  for (bool sync : {false, true}) {
    auto results = bench::run_paper_app(apps::PaperApp::kStreamSeq, sync);
    std::vector<std::string> row{sync ? "STREAM-Seq-w" : "STREAM-Seq-w/o"};
    StrategyKind best = StrategyKind::kOnlyGpu;
    double best_ms = 1e300;
    for (StrategyKind kind :
         {StrategyKind::kOnlyGpu, StrategyKind::kOnlyCpu,
          StrategyKind::kSPUnified, StrategyKind::kDPPerf,
          StrategyKind::kDPDep, StrategyKind::kSPVaried}) {
      const double time = results.at(kind).time_ms();
      row.push_back(bench::ms(time));
      if (time < best_ms) {
        best_ms = time;
        best = kind;
      }
    }
    row.push_back(analyzer::strategy_name(best));
    table.add_row(std::move(row));
  }

  bench::print_header("Figure 9: MK-Seq (STREAM-Seq) execution time");
  table.print(std::cout, args.csv);
  std::cout << "\npaper reference (shape): w/o sync SP-Unified best, "
               "SP-Varied worst; w sync SP-Varied best, SP-Unified worst; "
               "dynamic strategies in between and hurt by the sync.\n";
  return 0;
}
