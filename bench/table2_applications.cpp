/// Table II: the evaluation applications, their origin, and the class the
/// analyzer assigns them — plus the catalog-wide classification study the
/// paper's class coverage claim rests on (86 applications, five suites).
#include "bench/bench_util.hpp"

#include "analyzer/catalog.hpp"
#include "analyzer/matchmaker.hpp"

using namespace hetsched;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);

  Table table({"application", "class (analyzer)", "origin",
               "selected strategy"});
  const hw::PlatformSpec platform = hw::make_reference_platform();
  const analyzer::Matchmaker matchmaker;
  static const std::map<apps::PaperApp, const char*> kOrigins = {
      {apps::PaperApp::kMatrixMul, "Nvidia OpenCL SDK"},
      {apps::PaperApp::kBlackScholes, "Nvidia OpenCL SDK"},
      {apps::PaperApp::kNbody, "Mont-Blanc benchmark suite"},
      {apps::PaperApp::kHotSpot, "Rodinia benchmark suite"},
      {apps::PaperApp::kStreamSeq, "The STREAM benchmark"},
      {apps::PaperApp::kStreamLoop, "The STREAM benchmark"},
  };
  for (apps::PaperApp app : apps::all_paper_apps()) {
    // Classification needs only the descriptor; use the small config.
    auto application =
        apps::make_paper_app(app, platform, apps::test_config(app));
    const auto match = matchmaker.match(application->descriptor());
    table.add_row({apps::paper_app_name(app),
                   analyzer::app_class_name(match.app_class),
                   kOrigins.at(app), analyzer::strategy_name(match.best)});
  }

  bench::print_header("Table II: applications for evaluation");
  table.print(std::cout, args.csv);

  // Coverage study (tech report [18]): all 86 catalog applications classify
  // into the five classes.
  const auto distribution = analyzer::catalog_class_distribution();
  std::size_t total = 0;
  Table coverage({"class", "applications"});
  for (const auto& [cls, count] : distribution) {
    coverage.add_row({analyzer::app_class_name(cls), std::to_string(count)});
    total += count;
  }
  coverage.add_row({"total", std::to_string(total)});
  std::cout << "\n";
  bench::print_header("Kernel-structure study: class coverage (86 apps)");
  coverage.print(std::cout, args.csv);
  std::cout << "\npaper reference: the five classes cover all 86 studied "
               "applications.\n";
  return total == 86 && distribution.size() == 5 ? 0 : 1;
}
