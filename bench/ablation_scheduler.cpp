/// Ablation: dynamic scheduler policies.
///
/// Three performance-blind-to-performance-aware steps on the same chunked
/// programs: strict breadth-first with chain locality (the paper's DP-Dep),
/// the same plus work stealing (an idle lane takes foreign-chain work and
/// pays the transfer), and the performance-aware EFT scheduler (DP-Perf).
/// Stealing repairs compute imbalance (MatrixMul) but cannot repair wrong
/// *first* placements and adds transfers on bandwidth-bound chains
/// (STREAM) — which is exactly why the paper's Proposition 1 reaches for
/// performance awareness instead.
#include "bench/bench_util.hpp"

#include "runtime/schedulers/work_stealing.hpp"

using namespace hetsched;
using analyzer::StrategyKind;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);

  Table table({"application", "DP-Dep (ms)", "+ stealing (ms)",
               "DP-Perf (ms)", "steals"});

  for (apps::PaperApp kind :
       {apps::PaperApp::kMatrixMul, apps::PaperApp::kHotSpot,
        apps::PaperApp::kStreamSeq, apps::PaperApp::kStreamLoop}) {
    const hw::PlatformSpec platform = hw::make_reference_platform();
    auto app = apps::make_paper_app(kind, platform, apps::paper_config(kind));
    strategies::StrategyRunner runner(*app);

    const double dep = runner.run(StrategyKind::kDPDep).time_ms();
    const double perf = runner.run(StrategyKind::kDPPerf).time_ms();

    // Work stealing: same chunked program, different pull policy.
    const std::int64_t n = app->items();
    const rt::Program program = app->build_program(
        [&](rt::Program& p, std::size_t, rt::KernelId k) {
          p.submit_chunked(k, 0, n, 12);
        },
        false);
    rt::WorkStealingScheduler stealing;
    const auto report = app->executor().execute(program, stealing);

    table.add_row({apps::paper_app_name(kind), bench::ms(dep),
                   bench::ms(to_millis(report.makespan)), bench::ms(perf),
                   std::to_string(stealing.steal_count())});
  }

  bench::print_header("Ablation: dynamic scheduler policy ladder");
  table.print(std::cout, args.csv);
  std::cout << "\nexpected: stealing narrows DP-Dep's worst cases but "
               "DP-Perf remains the best dynamic policy overall "
               "(Proposition 1).\n";
  return 0;
}
