/// Extension: is the Table I ranking platform-independent?
///
/// The paper derives the per-class ranking from structural arguments
/// (Propositions 1-3), not from platform constants — so it should survive
/// hardware changes as long as the class does. We re-run the ranking
/// validation on platforms the paper never saw: a low-end GPU (where the
/// CPU wins far more often) and a fat 32 GB/s interconnect (where
/// transfers stop mattering). Rows are reported per platform; a "static
/// collapses to a baseline" outcome (e.g. SP-Single deciding Only-CPU on
/// the weak GPU) still counts as the strategy doing its job.
#include "bench/bench_util.hpp"

#include "analyzer/ranking.hpp"

using namespace hetsched;
using analyzer::StrategyKind;

namespace {

struct Case {
  apps::PaperApp app;
  bool sync;
  const char* label;
};

const std::vector<Case>& cases() {
  static const std::vector<Case> kCases = {
      {apps::PaperApp::kMatrixMul, false, "MatrixMul"},
      {apps::PaperApp::kBlackScholes, false, "BlackScholes"},
      {apps::PaperApp::kNbody, false, "Nbody"},
      {apps::PaperApp::kHotSpot, false, "HotSpot"},
      {apps::PaperApp::kStreamSeq, false, "STREAM-Seq-w/o"},
      {apps::PaperApp::kStreamSeq, true, "STREAM-Seq-w"},
  };
  return kCases;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  constexpr double kTieTolerance = 0.12;

  const std::vector<std::pair<std::string, hw::PlatformSpec>> platforms = {
      {"low-end GPU", hw::make_small_gpu_platform()},
      {"32 GB/s link", hw::make_reference_platform_with_link(32.0)},
  };

  Table table({"platform", "application", "empirical times (ms)",
               "ranking holds"});
  int held = 0, total = 0;
  for (const auto& [platform_label, platform] : platforms) {
    for (const Case& c : cases()) {
      auto application =
          apps::make_paper_app(c.app, platform, apps::paper_config(c.app));
      const analyzer::AppClass cls =
          analyzer::classify(application->descriptor().structure);
      const bool sync =
          application->descriptor().inter_kernel_sync() || c.sync;
      const auto expectation = analyzer::ranking_expectation(cls, sync);

      auto results = bench::run_paper_app_on(c.app, c.sync, platform);
      std::vector<std::string> cells;
      bool holds = true;
      for (std::size_t i = 0; i < expectation.order.size(); ++i) {
        cells.push_back(bench::ms(
            results.at(expectation.order[i]).time_ms()));
        if (i + 1 < expectation.order.size()) {
          const double a = results.at(expectation.order[i]).time_ms();
          const double b =
              results.at(expectation.order[i + 1]).time_ms();
          holds &= expectation.strict[i] ? a <= b * (1.0 + kTieTolerance)
                                         : a <= b * (1.0 + kTieTolerance);
        }
      }
      ++total;
      held += holds ? 1 : 0;
      table.add_row({platform_label, c.label, join(cells, " / "),
                     holds ? "yes" : "no"});
    }
  }

  bench::print_header("Extension: ranking portability across platforms");
  table.print(std::cout, args.csv);
  std::cout << "\n" << held << "/" << total
            << " rows hold on unseen platforms (strict relations relaxed "
               "to the same 12% tolerance: a weak GPU can legitimately tie "
               "the static strategy with the dynamic ones when the split "
               "collapses to one device).\n";
  // Portability is exploratory, but a majority of rows should transfer.
  return held * 2 >= total ? 0 : 1;
}
