/// Figure 12: speedup of the best partitioning strategy versus Only-GPU and
/// Only-CPU per application, and the averages.
///
/// Paper reference: speedups range from ~1x to 22.2x (MatrixMul vs
/// Only-CPU); the averages over the evaluated applications are 3.0x vs
/// Only-GPU and 5.3x vs Only-CPU.
#include "bench/bench_util.hpp"

#include "common/stats.hpp"

using namespace hetsched;
using analyzer::StrategyKind;

namespace {

struct Case {
  apps::PaperApp app;
  bool sync;
  const char* label;
};

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);

  const std::vector<Case> cases = {
      {apps::PaperApp::kMatrixMul, false, "MatrixMul"},
      {apps::PaperApp::kBlackScholes, false, "BlackScholes"},
      {apps::PaperApp::kNbody, false, "Nbody"},
      {apps::PaperApp::kHotSpot, false, "HotSpot"},
      {apps::PaperApp::kStreamSeq, false, "STREAM-Seq-w/o"},
      {apps::PaperApp::kStreamSeq, true, "STREAM-Seq-w"},
      {apps::PaperApp::kStreamLoop, false, "STREAM-Loop-w/o"},
      {apps::PaperApp::kStreamLoop, true, "STREAM-Loop-w"},
  };

  Table table({"application", "best strategy", "best (ms)", "vs Only-GPU",
               "vs Only-CPU"});
  std::vector<double> vs_gpu, vs_cpu;
  for (const Case& c : cases) {
    auto results = bench::run_paper_app(c.app, c.sync);
    StrategyKind best = StrategyKind::kOnlyGpu;
    double best_ms = 1e300;
    for (const auto& [kind, result] : results) {
      if (kind == StrategyKind::kOnlyGpu || kind == StrategyKind::kOnlyCpu)
        continue;
      if (result.time_ms() < best_ms) {
        best_ms = result.time_ms();
        best = kind;
      }
    }
    const double og = results.at(StrategyKind::kOnlyGpu).time_ms();
    const double oc = results.at(StrategyKind::kOnlyCpu).time_ms();
    vs_gpu.push_back(og / best_ms);
    vs_cpu.push_back(oc / best_ms);
    table.add_row({c.label, analyzer::strategy_name(best),
                   bench::ms(best_ms),
                   format_fixed(og / best_ms, 2) + "x",
                   format_fixed(oc / best_ms, 2) + "x"});
  }
  table.add_row({"Average", "-", "-",
                 format_fixed(arithmetic_mean(vs_gpu), 2) + "x",
                 format_fixed(arithmetic_mean(vs_cpu), 2) + "x"});

  bench::print_header("Figure 12: best strategy speedup vs Only-GPU/Only-CPU");
  table.print(std::cout, args.csv);
  std::cout << "\npaper reference: per-app speedups from ~1x to 22.2x; "
               "averages 3.0x (vs Only-GPU) and 5.3x (vs Only-CPU).\n";
  return 0;
}
