/// Ablation: host<->device link bandwidth.
///
/// The compute-to-transfer gap G is one of Glinda's two key metrics; this
/// sweep shows how the partitioning decision and the CPU/GPU crossover move
/// as the interconnect changes from a starved 1.5 GB/s (unpinned-memory
/// PCIe) to a 48 GB/s NVLink-class fabric.
#include "bench/bench_util.hpp"

using namespace hetsched;
using analyzer::StrategyKind;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);

  Table table({"application", "link (GB/s)", "GPU share (SP)",
               "partitioned (ms)", "Only-CPU (ms)", "Only-GPU (ms)",
               "winner"});

  for (apps::PaperApp kind :
       {apps::PaperApp::kBlackScholes, apps::PaperApp::kHotSpot,
        apps::PaperApp::kStreamSeq}) {
    const StrategyKind sp = kind == apps::PaperApp::kStreamSeq
                                ? StrategyKind::kSPUnified
                                : StrategyKind::kSPSingle;
    for (double gbs : {1.5, 3.0, 6.0, 12.0, 24.0, 48.0}) {
      const hw::PlatformSpec platform =
          hw::make_reference_platform_with_link(gbs);
      auto app =
          apps::make_paper_app(kind, platform, apps::paper_config(kind));
      strategies::StrategyRunner runner(*app);
      const auto split = runner.run(sp);
      const auto cpu = runner.run(StrategyKind::kOnlyCpu);
      const auto gpu = runner.run(StrategyKind::kOnlyGpu);
      const char* winner = "partitioned";
      if (cpu.time_ms() <= split.time_ms() && cpu.time_ms() <= gpu.time_ms())
        winner = "Only-CPU";
      else if (gpu.time_ms() < split.time_ms())
        winner = "Only-GPU";
      table.add_row({apps::paper_app_name(kind), bench::ms(gbs),
                     bench::pct(split.gpu_fraction_overall),
                     bench::ms(split.time_ms()), bench::ms(cpu.time_ms()),
                     bench::ms(gpu.time_ms()), winner});
    }
  }

  bench::print_header("Ablation: link bandwidth sweep");
  table.print(std::cout, args.csv);
  std::cout << "\nexpected: transfer-bound workloads shift toward the GPU "
               "as the link speeds up; HotSpot's Only-GPU execution "
               "approaches (and the crossover vs Only-CPU flips) at high "
               "bandwidth.\n";
  return 0;
}
