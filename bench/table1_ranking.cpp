/// Table I validation: for each evaluated application (and sync scenario),
/// run every suitable strategy and check that the *empirical* performance
/// order matches the paper's theoretical ranking (Propositions 1-3).
///
/// A ">=" relation (e.g. DP-Perf >= DP-Dep) is accepted when the two times
/// are within a small tolerance, matching the paper's observation that the
/// two dynamic strategies can coincide (STREAM).
#include "bench/bench_util.hpp"

#include "analyzer/ranking.hpp"

using namespace hetsched;
using analyzer::StrategyKind;

namespace {

struct Case {
  apps::PaperApp app;
  bool sync;
  const char* label;
};

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);

  const std::vector<Case> cases = {
      {apps::PaperApp::kMatrixMul, false, "MatrixMul"},
      {apps::PaperApp::kBlackScholes, false, "BlackScholes"},
      {apps::PaperApp::kNbody, false, "Nbody"},
      {apps::PaperApp::kHotSpot, false, "HotSpot"},
      {apps::PaperApp::kStreamSeq, false, "STREAM-Seq-w/o"},
      {apps::PaperApp::kStreamSeq, true, "STREAM-Seq-w"},
      {apps::PaperApp::kStreamLoop, false, "STREAM-Loop-w/o"},
      {apps::PaperApp::kStreamLoop, true, "STREAM-Loop-w"},
  };

  // Tolerance for ">=": a pair ranked "outperforms or equals" may be this
  // much slower and still count as a tie. The paper itself reports the two
  // dynamic strategies as showing "no visible performance difference" on
  // STREAM; 12% is the discrimination we grant those tie relations.
  constexpr double kTieTolerance = 0.12;

  Table table({"application", "class", "theoretical ranking",
               "empirical times (ms)", "ranking holds"});
  bool all_hold = true;
  for (const Case& c : cases) {
    const hw::PlatformSpec platform = hw::make_reference_platform();
    auto application =
        apps::make_paper_app(c.app, platform, apps::paper_config(c.app));
    const analyzer::AppClass cls =
        analyzer::classify(application->descriptor().structure);
    const bool sync =
        application->descriptor().inter_kernel_sync() || c.sync;
    const analyzer::RankingExpectation expectation =
        analyzer::ranking_expectation(cls, sync);

    auto results = bench::run_paper_app(c.app, c.sync);

    std::vector<std::string> ranking_names, time_cells;
    bool holds = true;
    for (std::size_t i = 0; i < expectation.order.size(); ++i) {
      const StrategyKind kind = expectation.order[i];
      ranking_names.push_back(analyzer::strategy_name(kind));
      time_cells.push_back(bench::ms(results.at(kind).time_ms()));
      if (i + 1 < expectation.order.size()) {
        const double a = results.at(kind).time_ms();
        const double b = results.at(expectation.order[i + 1]).time_ms();
        if (expectation.strict[i]) {
          holds &= a < b;
        } else {
          holds &= a <= b * (1.0 + kTieTolerance);
        }
      }
    }
    all_hold &= holds;
    table.add_row({c.label, analyzer::app_class_name(cls),
                   join(ranking_names, " > "), join(time_cells, " / "),
                   holds ? "yes" : "NO"});
  }

  bench::print_header("Table I: theoretical vs empirical strategy ranking");
  table.print(std::cout, args.csv);
  std::cout << (all_hold
                    ? "\nall rankings hold — the empirical order matches "
                      "Table I, as the paper reports.\n"
                    : "\nRANKING VIOLATION — empirical order deviates from "
                      "Table I.\n");
  return all_hold ? 0 : 1;
}
