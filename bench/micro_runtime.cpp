/// Micro-benchmarks (google-benchmark) for the runtime primitives: how fast
/// the simulator itself is. These are the only wall-clock measurements in
/// bench/ — everything else reports virtual time.
#include <benchmark/benchmark.h>

#include "common/interval_set.hpp"
#include "common/range_map.hpp"
#include "common/rng.hpp"
#include "hw/platform.hpp"
#include "mem/coherence.hpp"
#include "runtime/executor.hpp"
#include "runtime/schedulers/breadth_first.hpp"
#include "runtime/task_graph.hpp"
#include "runtime/thread_pool.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"
#include "tests/runtime/test_kernels.hpp"

namespace hetsched {
namespace {

void BM_EngineScheduleAndRun(benchmark::State& state) {
  const auto events = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < events; ++i) {
      engine.schedule_at(static_cast<SimTime>(i % 97), [&sum, i] {
        sum += i;
      });
    }
    engine.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events));
}
BENCHMARK(BM_EngineScheduleAndRun)->Arg(1000)->Arg(100000);

void BM_ResourceReserve(benchmark::State& state) {
  sim::Resource resource("lane");
  resource.set_record_history(false);
  SimTime now = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(resource.reserve(now, 10));
    now += 5;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ResourceReserve);

void BM_IntervalSetInsertErase(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    IntervalSet set;
    for (int i = 0; i < 200; ++i) {
      const std::int64_t a = rng.uniform_int(0, 1 << 20);
      const std::int64_t b = a + rng.uniform_int(1, 4096);
      if (i % 3 == 2) {
        set.erase({a, b});
      } else {
        set.insert({a, b});
      }
    }
    benchmark::DoNotOptimize(set.measure());
  }
}
BENCHMARK(BM_IntervalSetInsertErase);

void BM_RangeMapAssignQuery(benchmark::State& state) {
  Rng rng(2);
  for (auto _ : state) {
    RangeMap<int> map;
    std::int64_t checksum = 0;
    for (int i = 0; i < 200; ++i) {
      const std::int64_t a = rng.uniform_int(0, 1 << 20);
      const std::int64_t b = a + rng.uniform_int(1, 4096);
      map.assign({a, b}, i);
      checksum += static_cast<std::int64_t>(map.query({a, b}).size());
    }
    benchmark::DoNotOptimize(checksum);
  }
}
BENCHMARK(BM_RangeMapAssignQuery);

void BM_CoherenceAcquireWriteFlush(benchmark::State& state) {
  for (auto _ : state) {
    mem::CoherenceDirectory directory(2);
    const mem::BufferId buf = directory.register_buffer("b", 1 << 24);
    for (std::int64_t chunk = 0; chunk < 64; ++chunk) {
      const Interval range{chunk << 18, (chunk + 1) << 18};
      for (const auto& op : directory.plan_acquire({buf, range}, 1))
        directory.apply(op);
      directory.note_write({buf, range}, 1);
    }
    const auto flush = directory.plan_flush_to_host();
    benchmark::DoNotOptimize(flush.size());
  }
}
BENCHMARK(BM_CoherenceAcquireWriteFlush);

void BM_TaskGraphBuild(benchmark::State& state) {
  const auto chunks = static_cast<int>(state.range(0));
  std::vector<rt::KernelDef> kernels;
  kernels.push_back(rt::testing::make_map_kernel("k0", 0, 1));
  kernels.push_back(rt::testing::make_map_kernel("k1", 1, 2));
  rt::Program program;
  program.submit_chunked(0, 0, 4096L * chunks, chunks);
  program.submit_chunked(1, 0, 4096L * chunks, chunks);
  program.taskwait();
  for (auto _ : state) {
    rt::TaskGraph graph(kernels, program);
    benchmark::DoNotOptimize(graph.edge_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          (2 * chunks + 1));
}
BENCHMARK(BM_TaskGraphBuild)->Arg(12)->Arg(96)->Arg(768);

void BM_ExecutorFullRun(benchmark::State& state) {
  const auto chunks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    rt::Executor exec(hw::make_reference_platform());
    const auto in = exec.register_buffer("in", 4096L * chunks * 4);
    const auto out = exec.register_buffer("out", 4096L * chunks * 4);
    exec.register_kernel(rt::testing::make_map_kernel("map", in, out));
    rt::Program program;
    program.submit_chunked(0, 0, 4096L * chunks, chunks);
    program.taskwait();
    rt::BreadthFirstScheduler scheduler;
    const rt::ExecutionReport report = exec.execute(program, scheduler);
    benchmark::DoNotOptimize(report.makespan);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          chunks);
}
BENCHMARK(BM_ExecutorFullRun)->Arg(12)->Arg(96);

void BM_ThreadPoolDispatch(benchmark::State& state) {
  rt::ThreadPool pool;
  for (auto _ : state) {
    std::atomic<int> counter{0};
    for (int i = 0; i < 256; ++i) {
      pool.enqueue([&counter] {
        counter.fetch_add(1, std::memory_order_relaxed);
      });
    }
    pool.wait_idle();
    benchmark::DoNotOptimize(counter.load());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          256);
}
BENCHMARK(BM_ThreadPoolDispatch);

}  // namespace
}  // namespace hetsched

BENCHMARK_MAIN();
