/// Figure 8: partitioning ratio of the strategies for the SK-Loop
/// applications.
///
/// Paper shape: Nbody: SP-Single assigns most work to the GPU; DP-Perf
/// detects a similar partitioning. HotSpot: SP-Single assigns the large
/// partition to the CPU (the GPU loses on per-iteration transfers); DP-Dep
/// cannot distinguish the devices.
#include "bench/bench_util.hpp"

using namespace hetsched;
using analyzer::StrategyKind;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);

  Table table({"application", "strategy", "CPU share", "GPU share"});
  for (apps::PaperApp app :
       {apps::PaperApp::kNbody, apps::PaperApp::kHotSpot}) {
    auto results = bench::run_paper_app(app);
    for (StrategyKind kind : {StrategyKind::kSPSingle, StrategyKind::kDPPerf,
                              StrategyKind::kDPDep}) {
      const double gpu = results.at(kind).gpu_fraction_overall();
      table.add_row({apps::paper_app_name(app), analyzer::strategy_name(kind),
                     bench::pct(1.0 - gpu), bench::pct(gpu)});
    }
  }

  bench::print_header("Figure 8: SK-Loop partitioning ratio");
  table.print(std::cout, args.csv);
  std::cout << "\npaper reference: Nbody mostly GPU under SP-Single and "
               "DP-Perf; HotSpot mostly CPU under SP-Single; DP-Dep ~92/8 "
               "for both.\n";
  return 0;
}
