/// Extension: the SK-Loop stability assumption (paper Section III-C).
///
/// SP-Single reuses one iteration's split for every iteration under the
/// assumption of stable kernel performance; the paper's remedy when that
/// fails is to regard each iteration as a different kernel (SK-Loop ->
/// MK-Seq), where SP-Varied applies. UnstableLoopApp's GPU efficiency
/// decays every sweep; we compare:
///   - "fixed split": the first sweep's Glinda split applied to all sweeps
///     (what SP-Single would do under the broken assumption),
///   - SP-Varied: per-sweep splits (the paper's conversion),
///   - SP-Unified and the dynamic strategies for context.
#include "bench/bench_util.hpp"

#include "apps/unstable_loop.hpp"
#include "glinda/partition_model.hpp"
#include "glinda/profile.hpp"

using namespace hetsched;
using analyzer::StrategyKind;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);

  apps::Application::Config config;
  config.items = 8'388'608;  // 8M grid points
  config.iterations = 8;     // 8 sweeps, GPU efficiency decaying 0.5 -> 0.008
  config.functional = false;
  apps::UnstableLoopApp app(hw::make_reference_platform(), config);

  strategies::StrategyOptions options;
  options.sync_between_kernels = true;  // host convergence check per sweep
  strategies::StrategyRunner runner(app, options);

  Table table({"strategy", "time (ms)", "accelerator share"});

  // The broken-assumption baseline: profile sweep 0, apply its split to
  // every sweep.
  {
    glinda::Profiler profiler;
    glinda::KernelEstimate estimate;
    estimate.cpu = profiler.profile_device(
        app.executor(), app.single_kernel_factory(0), hw::kCpuDevice,
        app.items());
    estimate.gpu = profiler.profile_device(
        app.executor(), app.single_kernel_factory(0), 1, app.items());
    const auto link = profiler.profile_link(
        app.executor(), app.single_kernel_factory(0), 1, app.items());
    estimate.link_bytes_per_second = link.bytes_per_second;
    estimate.transfer_on_critical_path = true;
    const auto decision =
        glinda::PartitionModel{}.solve(estimate, app.items());

    const rt::Program program = app.build_program(
        [&](rt::Program& p, std::size_t, rt::KernelId k) {
          if (decision.gpu_items > 0) p.submit(k, 0, decision.gpu_items, 1);
          const std::int64_t cpu_items = app.items() - decision.gpu_items;
          for (int i = 0; i < 12; ++i) {
            p.submit(k, decision.gpu_items + cpu_items * i / 12,
                     decision.gpu_items + cpu_items * (i + 1) / 12,
                     hw::kCpuDevice);
          }
        },
        /*sync_between_kernels=*/true);
    const auto report = app.executor().execute_pinned(program);
    table.add_row({"fixed split (SK-Loop assumption)",
                   bench::ms(to_millis(report.makespan)),
                   bench::pct(decision.gpu_fraction(app.items()))});
  }

  std::vector<double> varied_shares;
  for (StrategyKind kind :
       {StrategyKind::kSPVaried, StrategyKind::kSPUnified,
        StrategyKind::kDPPerf, StrategyKind::kDPDep, StrategyKind::kOnlyCpu,
        StrategyKind::kOnlyGpu}) {
    const auto result = runner.run(kind);
    table.add_row({analyzer::strategy_name(kind),
                   bench::ms(result.time_ms()),
                   bench::pct(result.gpu_fraction_overall)});
    if (kind == StrategyKind::kSPVaried)
      varied_shares = result.gpu_fraction_per_kernel;
  }

  bench::print_header(
      "Extension: unstable SK-Loop converted to MK-Seq (Section III-C)");
  table.print(std::cout, args.csv);

  std::cout << "\nSP-Varied per-sweep GPU shares (the drift the fixed split "
               "misses):";
  for (double share : varied_shares)
    std::cout << " " << format_percent(share, 0);
  std::cout << "\nexpected: the per-sweep splits track the decaying GPU and "
               "beat the fixed split; the paper's conversion rule is the "
               "right call for unstable loops.\n";
  return 0;
}
