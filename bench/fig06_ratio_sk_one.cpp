/// Figure 6: partitioning ratio (CPU% / GPU%) of the strategies for the
/// SK-One applications.
///
/// Paper shape: MatrixMul SP-Single ~10%/90% CPU/GPU; DP-Perf all-GPU;
/// DP-Dep ~92%/8% (one of twelve instances on the GPU). BlackScholes
/// SP-Single 41%/59%; DP-Perf overshoots the GPU; DP-Dep ~92%/8%.
#include "bench/bench_util.hpp"

using namespace hetsched;
using analyzer::StrategyKind;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);

  Table table({"application", "strategy", "CPU share", "GPU share"});
  for (apps::PaperApp app :
       {apps::PaperApp::kMatrixMul, apps::PaperApp::kBlackScholes}) {
    auto results = bench::run_paper_app(app);
    for (StrategyKind kind : {StrategyKind::kSPSingle, StrategyKind::kDPPerf,
                              StrategyKind::kDPDep}) {
      const double gpu = results.at(kind).gpu_fraction_overall();
      table.add_row({apps::paper_app_name(app), analyzer::strategy_name(kind),
                     bench::pct(1.0 - gpu), bench::pct(gpu)});
    }
  }

  bench::print_header("Figure 6: SK-One partitioning ratio");
  table.print(std::cout, args.csv);
  std::cout << "\npaper reference: MatrixMul SP-Single ~10/90 CPU/GPU, "
               "DP-Perf ~0/100, DP-Dep ~92/8; BlackScholes SP-Single 41/59, "
               "DP-Perf above 59% GPU, DP-Dep ~92/8.\n";
  return 0;
}
