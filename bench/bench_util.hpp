#pragma once

#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "analyzer/strategy.hpp"
#include "apps/registry.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "hw/platform.hpp"
#include "strategies/strategy_runner.hpp"
#include "sweep/sweep.hpp"

/// Shared helpers for the paper-reproduction bench binaries.
///
/// Every bench prints (a) the regenerated table/figure data and (b) the
/// paper's reference numbers where the paper states them, so EXPERIMENTS.md
/// can be cross-checked directly from bench output. `--csv` switches the
/// output to CSV.
namespace hetsched::bench {

struct BenchArgs {
  bool csv = false;
};

inline BenchArgs parse_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--csv") args.csv = true;
  }
  return args;
}

/// Runs the app's full paper strategy set on a named platform at the
/// paper's problem size, through the scenario-sweep engine (cache off, so
/// benches always measure a fresh simulation). Inapplicable strategies are
/// simply absent from the map.
inline std::map<analyzer::StrategyKind, sweep::ScenarioOutcome>
run_paper_app(apps::PaperApp app, bool sync_between_kernels = false,
              const std::string& platform = "reference") {
  const std::vector<sweep::Scenario> scenarios = sweep::enumerate_matrix(
      {app}, analyzer::paper_strategies(), {platform},
      {sync_between_kernels}, /*small=*/false);
  sweep::SweepOptions options;
  options.use_cache = false;
  const sweep::SweepRun run = sweep::SweepEngine(options).run(scenarios);
  std::map<analyzer::StrategyKind, sweep::ScenarioOutcome> results;
  for (const sweep::ScenarioOutcome& outcome : run.outcomes) {
    if (outcome.status == sweep::ScenarioStatus::kFailed) {
      throw InternalError("sweep scenario failed: " +
                                   outcome.scenario.label() + ": " +
                                   outcome.error);
    }
    if (outcome.ok()) results.emplace(outcome.scenario.strategy, outcome);
  }
  return results;
}

/// Direct-path variant for benches that need an ad-hoc PlatformSpec (no
/// registered name) or the full ExecutionReport structure.
inline std::map<analyzer::StrategyKind, strategies::StrategyResult>
run_paper_app_on(apps::PaperApp app, bool sync_between_kernels,
                 const hw::PlatformSpec& platform) {
  auto application =
      apps::make_paper_app(app, platform, apps::paper_config(app));
  strategies::StrategyOptions options;
  options.sync_between_kernels = sync_between_kernels;
  strategies::StrategyRunner runner(*application, options);
  return runner.run_ranked_and_baselines();
}

inline std::string ms(double value) { return format_fixed(value, 1); }
inline std::string pct(double fraction) {
  return format_percent(fraction, 1);
}

inline void print_header(const std::string& title) {
  std::cout << "== " << title << " ==\n";
}

}  // namespace hetsched::bench
