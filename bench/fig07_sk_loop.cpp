/// Figure 7: execution time (ms) of the strategies for the SK-Loop
/// applications — Nbody (1,048,576 bodies) and HotSpot (8192x8192 grid) —
/// both iterating one kernel with a global synchronization per iteration.
///
/// Paper shape: Nbody: GPU much faster; SP-Single best; DP-Perf worse than
/// even Only-GPU (dynamic overhead: per-chunk scheduling, kernel
/// invocations, transfers). HotSpot: the CPU side wins (per-iteration
/// transfers); SP-Single best with a large CPU partition; DP-Dep worst.
#include "bench/bench_util.hpp"

using namespace hetsched;
using analyzer::StrategyKind;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);

  Table table({"application", "Only-GPU (ms)", "Only-CPU (ms)",
               "SP-Single (ms)", "DP-Perf (ms)", "DP-Dep (ms)", "best"});
  for (apps::PaperApp app :
       {apps::PaperApp::kNbody, apps::PaperApp::kHotSpot}) {
    auto results = bench::run_paper_app(app);
    std::vector<std::string> row{apps::paper_app_name(app)};
    StrategyKind best = StrategyKind::kOnlyGpu;
    double best_ms = 1e300;
    for (StrategyKind kind :
         {StrategyKind::kOnlyGpu, StrategyKind::kOnlyCpu,
          StrategyKind::kSPSingle, StrategyKind::kDPPerf,
          StrategyKind::kDPDep}) {
      const double time = results.at(kind).time_ms();
      row.push_back(bench::ms(time));
      if (time < best_ms) {
        best_ms = time;
        best = kind;
      }
    }
    row.push_back(analyzer::strategy_name(best));
    table.add_row(std::move(row));
  }

  bench::print_header("Figure 7: SK-Loop execution time");
  table.print(std::cout, args.csv);
  std::cout << "\npaper reference (shape): SP-Single best for both; Nbody "
               "DP-Perf worse than Only-GPU; HotSpot favours the CPU and "
               "DP-Dep is worst.\n";
  return 0;
}
