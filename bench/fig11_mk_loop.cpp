/// Figure 11: execution time (ms) of the strategies for the MK-Loop
/// application STREAM-Loop (the four kernels iterated), w/ and w/o
/// inter-kernel synchronization.
///
/// Paper shape: unlike STREAM-Seq, Only-GPU now beats Only-CPU (the
/// iterations amortize the transfers). SP-Unified best w/o sync (the
/// unified partitioning is determined from one iteration, without
/// profiling transfers); SP-Varied best w sync (per-kernel ratios equal to
/// STREAM-Seq's); the dynamic strategies take second place, and their
/// asynchronous-execution advantage grows with the iteration count.
#include "bench/bench_util.hpp"

using namespace hetsched;
using analyzer::StrategyKind;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);

  Table table({"scenario", "Only-GPU (ms)", "Only-CPU (ms)",
               "SP-Unified (ms)", "DP-Perf (ms)", "DP-Dep (ms)",
               "SP-Varied (ms)", "best"});
  for (bool sync : {false, true}) {
    auto results = bench::run_paper_app(apps::PaperApp::kStreamLoop, sync);
    std::vector<std::string> row{sync ? "STREAM-Loop-w" : "STREAM-Loop-w/o"};
    StrategyKind best = StrategyKind::kOnlyGpu;
    double best_ms = 1e300;
    for (StrategyKind kind :
         {StrategyKind::kOnlyGpu, StrategyKind::kOnlyCpu,
          StrategyKind::kSPUnified, StrategyKind::kDPPerf,
          StrategyKind::kDPDep, StrategyKind::kSPVaried}) {
      const double time = results.at(kind).time_ms();
      row.push_back(bench::ms(time));
      if (time < best_ms) {
        best_ms = time;
        best = kind;
      }
    }
    row.push_back(analyzer::strategy_name(best));
    table.add_row(std::move(row));
  }

  bench::print_header("Figure 11: MK-Loop (STREAM-Loop) execution time");
  table.print(std::cout, args.csv);
  std::cout << "\npaper reference (shape): Only-GPU now beats Only-CPU; "
               "SP-Unified best w/o sync, SP-Varied best w sync, dynamic "
               "second in both.\n";
  return 0;
}
