/// Extension: multi-accelerator platforms (the paper's future work).
///
/// Glinda's model covers "one or more accelerators, identical or
/// non-identical"; the paper's future work extends the analyzer to other
/// accelerator types. We run SP-Single for the SK-One/SK-Loop applications
/// on three platforms — the paper's CPU+GPU reference, CPU + two K20m
/// GPUs, and CPU + K20m + Xeon Phi 5110P — printing the multi-way split
/// and the resulting time.
#include "bench/bench_util.hpp"

using namespace hetsched;
using analyzer::StrategyKind;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);

  const std::vector<std::pair<std::string, hw::PlatformSpec>> platforms = {
      {"CPU + K20m", hw::make_reference_platform()},
      {"CPU + 2x K20m", hw::make_dual_gpu_platform()},
      {"CPU + K20m + Phi", hw::make_cpu_gpu_phi_platform()},
  };

  Table table({"application", "platform", "split (CPU/acc1/acc2)",
               "SP-Single (ms)"});

  for (apps::PaperApp kind :
       {apps::PaperApp::kMatrixMul, apps::PaperApp::kBlackScholes,
        apps::PaperApp::kNbody}) {
    for (const auto& [label, platform] : platforms) {
      auto app =
          apps::make_paper_app(kind, platform, apps::paper_config(kind));
      strategies::StrategyRunner runner(*app);
      const auto result = runner.run(StrategyKind::kSPSingle);

      std::string split;
      if (result.multi_decision) {
        const auto& d = *result.multi_decision;
        for (std::size_t i = 0; i < d.device_count(); ++i) {
          if (i != 0) split += " / ";
          split += format_percent(d.share(i, app->items()), 0);
        }
      } else {
        split = format_percent(1.0 - result.gpu_fraction_overall, 0) +
                " / " + format_percent(result.gpu_fraction_overall, 0);
      }
      table.add_row({apps::paper_app_name(kind), label, split,
                     bench::ms(result.time_ms())});
    }
  }

  bench::print_header("Extension: multi-accelerator SP-Single");
  table.print(std::cout, args.csv);
  std::cout << "\nexpected: a second K20m roughly halves the GPU-bound "
               "times (compute-bound apps) until the shared link "
               "saturates; the Phi takes a meaningful but smaller slice "
               "than the K20m.\n";
  return 0;
}
