/// Table III: the hardware components of the evaluation platform, as the
/// simulator models them.
#include "bench/bench_util.hpp"

using namespace hetsched;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  const hw::PlatformSpec platform = hw::make_reference_platform();
  const hw::DeviceSpec& cpu = platform.cpu;
  const hw::DeviceSpec& gpu = platform.accelerators.at(0);

  Table table({"property", "CPU", "GPU"});
  table.add_row({"Processor", cpu.name, gpu.name});
  table.add_row({"Frequency (GHz)", format_fixed(cpu.frequency_ghz, 3),
                 format_fixed(gpu.frequency_ghz, 3)});
  table.add_row({"#Cores", std::to_string(cpu.cores) + " (" +
                               std::to_string(cpu.lanes) + " as HT enabled)",
                 "2496 (" + std::to_string(gpu.cores) + " SMXs)"});
  table.add_row({"Peak GFLOPS (SP/DP)",
                 format_fixed(cpu.peak_sp_gflops, 1) + "/" +
                     format_fixed(cpu.peak_dp_gflops, 1),
                 format_fixed(gpu.peak_sp_gflops, 1) + "/" +
                     format_fixed(gpu.peak_dp_gflops, 1)});
  table.add_row({"Memory capacity (GB)", format_fixed(cpu.mem_capacity_gb, 0),
                 format_fixed(gpu.mem_capacity_gb, 0)});
  table.add_row({"Peak Memory Bandwidth (GB/s)",
                 format_fixed(cpu.mem_bandwidth_gbs, 1),
                 format_fixed(gpu.mem_bandwidth_gbs, 1)});
  table.add_row({"Host link", platform.link.name,
                 format_fixed(platform.link.bandwidth_gbs, 1) + " GB/s, " +
                     format_time(platform.link.latency) + " latency"});

  bench::print_header("Table III: the hardware components of the platform");
  table.print(std::cout, args.csv);
  return 0;
}
