/// Ablation: Glinda profiling fraction.
///
/// Glinda's prediction rests on a "low-cost profiling" run over a small
/// fraction of the workload. This sweep varies that fraction and reports
/// the predicted split and the resulting measured time for SP-Single —
/// showing the prediction is already stable at ~1% samples (why the
/// profiling is cheap).
#include "bench/bench_util.hpp"

using namespace hetsched;
using analyzer::StrategyKind;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);

  Table table({"application", "profile fraction", "GPU share",
               "SP-Single (ms)"});

  for (apps::PaperApp kind :
       {apps::PaperApp::kBlackScholes, apps::PaperApp::kHotSpot}) {
    for (double fraction : {0.001, 0.005, 0.01, 0.05, 0.20}) {
      const hw::PlatformSpec platform = hw::make_reference_platform();
      auto app =
          apps::make_paper_app(kind, platform, apps::paper_config(kind));
      strategies::StrategyOptions options;
      options.profile.small_fraction = fraction;
      options.profile.large_fraction = 2.0 * fraction;
      strategies::StrategyRunner runner(*app, options);
      const auto result = runner.run(StrategyKind::kSPSingle);
      table.add_row({apps::paper_app_name(kind),
                     format_percent(fraction, 1),
                     bench::pct(result.gpu_fraction_overall),
                     bench::ms(result.time_ms())});
    }
  }

  bench::print_header("Ablation: profiling sample-size sweep");
  table.print(std::cout, args.csv);
  std::cout << "\nexpected: the predicted split and resulting time are "
               "stable across two orders of magnitude of sample size — the "
               "fixed-cost terms are the only piece that needs the "
               "two-point fit.\n";
  return 0;
}
