/// Extension: empirical validation of Table I's Class V (MK-DAG) row.
///
/// The paper excludes MK-DAG applications from its evaluation (footnote 3)
/// and recommends the dynamic strategies, ranking DP-Perf >= DP-Dep. We run
/// the SpectralDAG application (a diamond of four kernels iterated over
/// time, see src/apps/spectral_dag.hpp) at scale and check the row, with
/// SP-Unified included as the "possible but not recommended" static option
/// the paper mentions (it needs no extra synchronization here, but a single
/// split point cannot fit all four kernels at once).
#include "bench/bench_util.hpp"

#include "apps/spectral_dag.hpp"

using namespace hetsched;
using analyzer::StrategyKind;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);

  apps::Application::Config config;
  config.items = 16'777'216;  // 16M spectral samples (~64 MB per array)
  config.iterations = 10;
  config.functional = false;
  apps::SpectralDagApp app(hw::make_reference_platform(), config);
  strategies::StrategyRunner runner(app);

  Table table({"strategy", "time (ms)", "accelerator share"});
  std::map<StrategyKind, double> times;
  for (StrategyKind kind :
       {StrategyKind::kOnlyGpu, StrategyKind::kOnlyCpu,
        StrategyKind::kDPPerf, StrategyKind::kDPDep,
        StrategyKind::kSPUnified, StrategyKind::kSPDag}) {
    const auto result = runner.run(kind);
    times[kind] = result.time_ms();
    table.add_row({analyzer::strategy_name(kind),
                   bench::ms(result.time_ms()),
                   bench::pct(result.gpu_fraction_overall)});
  }

  bench::print_header("Extension: MK-DAG (SpectralDAG, Table I row 5)");
  table.print(std::cout, args.csv);

  const bool row_holds =
      times[StrategyKind::kDPPerf] <= times[StrategyKind::kDPDep] * 1.12;
  std::cout << "\nTable I row 5 (DP-Perf >= DP-Dep): "
            << (row_holds ? "holds" : "VIOLATED") << "\n";
  std::cout << "paper reference: Class V is served by the dynamic "
               "strategies; static partitioning 'may or may not bring in "
               "performance improvement'.\n";
  return row_holds ? 0 : 1;
}
