#include "hw/cost_model.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace hetsched::hw {

void KernelTraits::validate() const {
  HS_REQUIRE(!name.empty(), "KernelTraits needs a name");
  HS_REQUIRE(flops_per_item >= 0.0, name << ": flops_per_item");
  HS_REQUIRE(device_bytes_per_item >= 0.0, name << ": device_bytes_per_item");
  HS_REQUIRE(flops_per_item > 0.0 || device_bytes_per_item > 0.0,
             name << ": kernel must do some work per item");
  for (double eff :
       {cpu_compute_efficiency, gpu_compute_efficiency, cpu_memory_efficiency,
        gpu_memory_efficiency}) {
    HS_REQUIRE(eff > 0.0 && eff <= 1.0,
               name << ": efficiency " << eff << " outside (0, 1]");
  }
}

SimTime RooflineCostModel::lane_compute_time_weighted(
    const KernelTraits& traits, const DeviceSpec& device,
    double work_units) const {
  HS_REQUIRE(work_units >= 0, "negative work " << work_units);
  if (work_units == 0.0) return 0;
  const double n = work_units;

  double flop_time = 0.0;
  if (traits.flops_per_item > 0.0) {
    const double rate = traits.compute_efficiency(device.cls) *
                        device.lane_peak_flops(traits.precision);
    flop_time = n * traits.flops_per_item / rate;
  }

  double memory_time = 0.0;
  if (traits.device_bytes_per_item > 0.0) {
    const double rate =
        traits.memory_efficiency(device.cls) * device.lane_bandwidth_bytes();
    memory_time = n * traits.device_bytes_per_item / rate;
  }

  return from_seconds(std::max(flop_time, memory_time));
}

double RooflineCostModel::lane_item_rate(const KernelTraits& traits,
                                         const DeviceSpec& device) const {
  // One item's lane time, inverted. Computed analytically (not via
  // lane_compute_time) to avoid integer-nanosecond quantization for very
  // cheap kernels.
  double flop_time = 0.0;
  if (traits.flops_per_item > 0.0) {
    flop_time = traits.flops_per_item /
                (traits.compute_efficiency(device.cls) *
                 device.lane_peak_flops(traits.precision));
  }
  double memory_time = 0.0;
  if (traits.device_bytes_per_item > 0.0) {
    memory_time = traits.device_bytes_per_item /
                  (traits.memory_efficiency(device.cls) *
                   device.lane_bandwidth_bytes());
  }
  const double per_item = std::max(flop_time, memory_time);
  HS_ASSERT_MSG(per_item > 0.0, "kernel " << traits.name << " has zero cost");
  return 1.0 / per_item;
}

SimTime RooflineCostModel::transfer_time(const LinkSpec& link,
                                         double bytes) const {
  HS_REQUIRE(bytes >= 0.0, "negative transfer size " << bytes);
  if (bytes == 0.0) return 0;
  return link.latency + from_seconds(bytes / link_rate(link));
}

}  // namespace hetsched::hw
