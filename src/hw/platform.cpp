#include "hw/platform.hpp"

#include <cmath>

#include "common/rng.hpp"

namespace hetsched::hw {

const char* device_class_name(DeviceClass cls) {
  switch (cls) {
    case DeviceClass::kCpu: return "cpu";
    case DeviceClass::kGpu: return "gpu";
    case DeviceClass::kAccelerator: return "accelerator";
  }
  return "unknown";
}

void DeviceSpec::validate() const {
  HS_REQUIRE(!name.empty(), "DeviceSpec needs a name");
  HS_REQUIRE(cores >= 1, name << ": cores=" << cores);
  HS_REQUIRE(lanes >= 1, name << ": lanes=" << lanes);
  HS_REQUIRE(frequency_ghz > 0.0, name << ": frequency=" << frequency_ghz);
  HS_REQUIRE(peak_sp_gflops > 0.0, name << ": peak_sp=" << peak_sp_gflops);
  HS_REQUIRE(peak_dp_gflops > 0.0, name << ": peak_dp=" << peak_dp_gflops);
  HS_REQUIRE(mem_bandwidth_gbs > 0.0,
             name << ": mem_bandwidth=" << mem_bandwidth_gbs);
  HS_REQUIRE(mem_capacity_gb > 0.0,
             name << ": mem_capacity=" << mem_capacity_gb);
  HS_REQUIRE(partition_granularity >= 1,
             name << ": partition_granularity=" << partition_granularity);
  HS_REQUIRE(launch_overhead >= 0,
             name << ": launch_overhead=" << launch_overhead);
}

void LinkSpec::validate() const {
  HS_REQUIRE(bandwidth_gbs > 0.0, name << ": bandwidth=" << bandwidth_gbs);
  HS_REQUIRE(latency >= 0, name << ": latency=" << latency);
}

std::vector<DeviceSpec> PlatformSpec::all_devices() const {
  std::vector<DeviceSpec> devices;
  devices.reserve(1 + accelerators.size());
  devices.push_back(cpu);
  devices.insert(devices.end(), accelerators.begin(), accelerators.end());
  return devices;
}

void PlatformSpec::validate() const {
  HS_REQUIRE(!name.empty(), "PlatformSpec needs a name");
  HS_REQUIRE(cpu.cls == DeviceClass::kCpu,
             name << ": device 0 must be the host CPU");
  cpu.validate();
  for (const auto& acc : accelerators) {
    HS_REQUIRE(acc.cls != DeviceClass::kCpu,
               name << ": accelerator '" << acc.name
                    << "' must not be a CPU");
    acc.validate();
  }
  link.validate();
}

namespace {

DeviceSpec make_xeon_e5_2620() {
  DeviceSpec cpu;
  cpu.name = "Intel Xeon E5-2620";
  cpu.cls = DeviceClass::kCpu;
  cpu.cores = 6;
  cpu.lanes = 12;  // Hyper-Threading enabled, as in the paper.
  cpu.frequency_ghz = 2.0;
  cpu.peak_sp_gflops = 384.0;
  cpu.peak_dp_gflops = 192.0;
  cpu.mem_bandwidth_gbs = 42.6;
  cpu.mem_capacity_gb = 64.0;
  cpu.partition_granularity = 1;
  cpu.launch_overhead = 2 * kMicrosecond;  // task-instance spawn cost
  return cpu;
}

DeviceSpec make_tesla_k20m() {
  DeviceSpec gpu;
  gpu.name = "Nvidia Tesla K20m";
  gpu.cls = DeviceClass::kGpu;
  gpu.cores = 13;  // SMX count
  gpu.lanes = 1;   // one in-order command queue
  gpu.frequency_ghz = 0.705;
  gpu.peak_sp_gflops = 3519.3;
  gpu.peak_dp_gflops = 1173.1;
  gpu.mem_bandwidth_gbs = 208.0;
  gpu.mem_capacity_gb = 5.0;
  gpu.partition_granularity = 32;  // warp size (paper footnote 5)
  gpu.launch_overhead = 15 * kMicrosecond;  // OpenCL kernel invocation
  return gpu;
}

}  // namespace

PlatformSpec make_reference_platform() {
  PlatformSpec platform;
  platform.name = "xeon-e5-2620 + tesla-k20m";
  platform.cpu = make_xeon_e5_2620();
  platform.accelerators.push_back(make_tesla_k20m());
  platform.link = LinkSpec{"pcie-gen2-x16", 6.0, 10 * kMicrosecond};
  platform.validate();
  return platform;
}

PlatformSpec make_reference_platform_with_link(double bandwidth_gbs) {
  PlatformSpec platform = make_reference_platform();
  platform.link.bandwidth_gbs = bandwidth_gbs;
  platform.name += " @ " + std::to_string(bandwidth_gbs) + " GB/s link";
  platform.validate();
  return platform;
}

PlatformSpec make_small_gpu_platform() {
  PlatformSpec platform;
  platform.name = "xeon-e5-2620 + small-gpu";
  platform.cpu = make_xeon_e5_2620();
  DeviceSpec gpu;
  gpu.name = "small-gpu";
  gpu.cls = DeviceClass::kGpu;
  gpu.cores = 2;
  gpu.lanes = 1;
  gpu.frequency_ghz = 0.9;
  gpu.peak_sp_gflops = 384.0;
  gpu.peak_dp_gflops = 16.0;
  gpu.mem_bandwidth_gbs = 28.5;
  gpu.mem_capacity_gb = 2.0;
  gpu.partition_granularity = 32;
  gpu.launch_overhead = 15 * kMicrosecond;
  platform.accelerators.push_back(gpu);
  platform.link = LinkSpec{"pcie-gen2-x8", 3.0, 10 * kMicrosecond};
  platform.validate();
  return platform;
}

PlatformSpec make_dual_gpu_platform() {
  PlatformSpec platform;
  platform.name = "xeon-e5-2620 + 2x tesla-k20m";
  platform.cpu = make_xeon_e5_2620();
  DeviceSpec gpu = make_tesla_k20m();
  platform.accelerators.push_back(gpu);
  gpu.name = "Nvidia Tesla K20m #2";
  platform.accelerators.push_back(gpu);
  platform.link = LinkSpec{"pcie-gen2-x16", 6.0, 10 * kMicrosecond};
  platform.validate();
  return platform;
}

PlatformSpec make_cpu_gpu_phi_platform() {
  PlatformSpec platform;
  platform.name = "xeon-e5-2620 + tesla-k20m + xeon-phi-5110p";
  platform.cpu = make_xeon_e5_2620();
  platform.accelerators.push_back(make_tesla_k20m());
  DeviceSpec phi;
  phi.name = "Intel Xeon Phi 5110P";
  phi.cls = DeviceClass::kAccelerator;
  phi.cores = 60;
  phi.lanes = 1;  // offload model: one in-order command stream
  phi.frequency_ghz = 1.053;
  phi.peak_sp_gflops = 2022.0;
  phi.peak_dp_gflops = 1011.0;
  phi.mem_bandwidth_gbs = 320.0;
  phi.mem_capacity_gb = 8.0;
  phi.partition_granularity = 16;  // SIMD width
  phi.launch_overhead = 25 * kMicrosecond;
  platform.accelerators.push_back(phi);
  platform.link = LinkSpec{"pcie-gen2-x16", 6.0, 10 * kMicrosecond};
  platform.validate();
  return platform;
}

PlatformSpec make_big_little_platform() {
  PlatformSpec platform;
  platform.name = "big.LITTLE (4 big + 4 little)";
  DeviceSpec big;
  big.name = "big cluster (4x OoO)";
  big.cls = DeviceClass::kCpu;
  big.cores = 4;
  big.lanes = 4;
  big.frequency_ghz = 1.9;
  big.peak_sp_gflops = 60.8;  // 4 cores x 1.9 GHz x 8 SP FLOPs/cycle
  big.peak_dp_gflops = 30.4;
  big.mem_bandwidth_gbs = 14.9;
  big.mem_capacity_gb = 4.0;
  big.partition_granularity = 1;
  big.launch_overhead = 2 * kMicrosecond;
  platform.cpu = big;

  // The LITTLE cluster is modeled as an accelerator-class device: the
  // runtime offloads slabs to it like to any other accelerator, but the
  // coherent fabric makes its "transfers" nearly free — the asymmetric-CPU
  // limit of the partitioning problem.
  DeviceSpec little;
  little.name = "LITTLE cluster (4x in-order)";
  little.cls = DeviceClass::kAccelerator;
  little.cores = 4;
  little.lanes = 1;  // offload model: one command stream into the cluster
  little.frequency_ghz = 1.3;
  little.peak_sp_gflops = 20.8;  // 4 cores x 1.3 GHz x 4 SP FLOPs/cycle
  little.peak_dp_gflops = 10.4;
  little.mem_bandwidth_gbs = 14.9;  // shared DRAM with the big cluster
  little.mem_capacity_gb = 4.0;
  little.partition_granularity = 1;
  little.launch_overhead = 1 * kMicrosecond;
  platform.accelerators.push_back(little);
  // Cache-coherent interconnect: DRAM-class bandwidth, sub-microsecond
  // latency — transfers exist but almost never bind.
  platform.link = LinkSpec{"coherent-fabric", 12.0, kMicrosecond / 2};
  platform.validate();
  return platform;
}

PlatformSpec make_quad_platform() {
  PlatformSpec platform = make_dual_gpu_platform();
  platform.name = "xeon-e5-2620 + 2x tesla-k20m + xeon-phi-5110p";
  platform.accelerators.push_back(
      make_cpu_gpu_phi_platform().accelerators[1]);
  platform.validate();
  return platform;
}

PlatformSpec make_synthetic_platform(std::uint64_t seed) {
  Rng rng(seed);
  PlatformSpec platform;
  platform.name = "synth-" + std::to_string(seed);
  platform.cpu = make_xeon_e5_2620();

  const auto log_uniform = [&rng](double lo, double hi) {
    return lo * std::pow(hi / lo, rng.uniform());
  };
  const std::int64_t accelerator_count = rng.uniform_int(1, 3);
  for (std::int64_t a = 0; a < accelerator_count; ++a) {
    DeviceSpec acc;
    acc.name = "synth-acc-" + std::to_string(a);
    acc.cls = rng.uniform() < 0.7 ? DeviceClass::kGpu
                                  : DeviceClass::kAccelerator;
    acc.cores = static_cast<int>(rng.uniform_int(2, 64));
    acc.lanes = 1;
    acc.frequency_ghz = rng.uniform(0.5, 2.5);
    // Asymmetric throughput draws: two accelerators on the same platform
    // can differ by more than an order of magnitude.
    acc.peak_sp_gflops = log_uniform(100.0, 4000.0);
    acc.peak_dp_gflops = acc.peak_sp_gflops / rng.uniform(2.0, 4.0);
    acc.mem_bandwidth_gbs = log_uniform(20.0, 320.0);
    acc.mem_capacity_gb = rng.uniform(1.0, 16.0);
    static constexpr int kGranularities[4] = {1, 16, 32, 64};
    acc.partition_granularity = kGranularities[rng.uniform_int(0, 3)];
    acc.launch_overhead =
        static_cast<SimTime>(rng.uniform_int(5, 50)) * kMicrosecond;
    platform.accelerators.push_back(std::move(acc));
  }
  platform.link = LinkSpec{"synth-link", log_uniform(1.0, 16.0),
                           static_cast<SimTime>(rng.uniform_int(5, 20)) *
                               kMicrosecond};
  platform.validate();
  return platform;
}

PlatformSpec make_cpu_only_platform() {
  PlatformSpec platform;
  platform.name = "xeon-e5-2620 only";
  platform.cpu = make_xeon_e5_2620();
  platform.link = LinkSpec{};
  platform.validate();
  return platform;
}

PlatformSpec platform_by_name(const std::string& name) {
  if (name.empty() || name == "reference") return make_reference_platform();
  if (name == "small-gpu") return make_small_gpu_platform();
  if (name == "dual-gpu") return make_dual_gpu_platform();
  if (name == "cpu-gpu-phi") return make_cpu_gpu_phi_platform();
  if (name == "cpu-only") return make_cpu_only_platform();
  if (name == "big-little") return make_big_little_platform();
  if (name == "quad") return make_quad_platform();
  if (name.rfind("synth-", 0) == 0) {
    const std::string digits = name.substr(6);
    HS_REQUIRE(!digits.empty() &&
                   digits.find_first_not_of("0123456789") == std::string::npos,
               "synthetic platform '" << name
                                      << "': expected synth-<decimal seed>");
    return make_synthetic_platform(std::stoull(digits));
  }
  throw InvalidArgument("unknown platform '" + name +
                        "' (reference, small-gpu, dual-gpu, cpu-gpu-phi, "
                        "cpu-only, big-little, quad, synth-<seed>)");
}

const std::vector<std::string>& platform_names() {
  static const std::vector<std::string> kNames = {
      "reference", "small-gpu", "dual-gpu",  "cpu-gpu-phi",
      "cpu-only",  "big-little", "quad"};
  return kNames;
}

}  // namespace hetsched::hw
