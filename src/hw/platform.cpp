#include "hw/platform.hpp"

namespace hetsched::hw {

const char* device_class_name(DeviceClass cls) {
  switch (cls) {
    case DeviceClass::kCpu: return "cpu";
    case DeviceClass::kGpu: return "gpu";
    case DeviceClass::kAccelerator: return "accelerator";
  }
  return "unknown";
}

void DeviceSpec::validate() const {
  HS_REQUIRE(!name.empty(), "DeviceSpec needs a name");
  HS_REQUIRE(cores >= 1, name << ": cores=" << cores);
  HS_REQUIRE(lanes >= 1, name << ": lanes=" << lanes);
  HS_REQUIRE(frequency_ghz > 0.0, name << ": frequency=" << frequency_ghz);
  HS_REQUIRE(peak_sp_gflops > 0.0, name << ": peak_sp=" << peak_sp_gflops);
  HS_REQUIRE(peak_dp_gflops > 0.0, name << ": peak_dp=" << peak_dp_gflops);
  HS_REQUIRE(mem_bandwidth_gbs > 0.0,
             name << ": mem_bandwidth=" << mem_bandwidth_gbs);
  HS_REQUIRE(mem_capacity_gb > 0.0,
             name << ": mem_capacity=" << mem_capacity_gb);
  HS_REQUIRE(partition_granularity >= 1,
             name << ": partition_granularity=" << partition_granularity);
  HS_REQUIRE(launch_overhead >= 0,
             name << ": launch_overhead=" << launch_overhead);
}

void LinkSpec::validate() const {
  HS_REQUIRE(bandwidth_gbs > 0.0, name << ": bandwidth=" << bandwidth_gbs);
  HS_REQUIRE(latency >= 0, name << ": latency=" << latency);
}

std::vector<DeviceSpec> PlatformSpec::all_devices() const {
  std::vector<DeviceSpec> devices;
  devices.reserve(1 + accelerators.size());
  devices.push_back(cpu);
  devices.insert(devices.end(), accelerators.begin(), accelerators.end());
  return devices;
}

void PlatformSpec::validate() const {
  HS_REQUIRE(!name.empty(), "PlatformSpec needs a name");
  HS_REQUIRE(cpu.cls == DeviceClass::kCpu,
             name << ": device 0 must be the host CPU");
  cpu.validate();
  for (const auto& acc : accelerators) {
    HS_REQUIRE(acc.cls != DeviceClass::kCpu,
               name << ": accelerator '" << acc.name
                    << "' must not be a CPU");
    acc.validate();
  }
  link.validate();
}

namespace {

DeviceSpec make_xeon_e5_2620() {
  DeviceSpec cpu;
  cpu.name = "Intel Xeon E5-2620";
  cpu.cls = DeviceClass::kCpu;
  cpu.cores = 6;
  cpu.lanes = 12;  // Hyper-Threading enabled, as in the paper.
  cpu.frequency_ghz = 2.0;
  cpu.peak_sp_gflops = 384.0;
  cpu.peak_dp_gflops = 192.0;
  cpu.mem_bandwidth_gbs = 42.6;
  cpu.mem_capacity_gb = 64.0;
  cpu.partition_granularity = 1;
  cpu.launch_overhead = 2 * kMicrosecond;  // task-instance spawn cost
  return cpu;
}

DeviceSpec make_tesla_k20m() {
  DeviceSpec gpu;
  gpu.name = "Nvidia Tesla K20m";
  gpu.cls = DeviceClass::kGpu;
  gpu.cores = 13;  // SMX count
  gpu.lanes = 1;   // one in-order command queue
  gpu.frequency_ghz = 0.705;
  gpu.peak_sp_gflops = 3519.3;
  gpu.peak_dp_gflops = 1173.1;
  gpu.mem_bandwidth_gbs = 208.0;
  gpu.mem_capacity_gb = 5.0;
  gpu.partition_granularity = 32;  // warp size (paper footnote 5)
  gpu.launch_overhead = 15 * kMicrosecond;  // OpenCL kernel invocation
  return gpu;
}

}  // namespace

PlatformSpec make_reference_platform() {
  PlatformSpec platform;
  platform.name = "xeon-e5-2620 + tesla-k20m";
  platform.cpu = make_xeon_e5_2620();
  platform.accelerators.push_back(make_tesla_k20m());
  platform.link = LinkSpec{"pcie-gen2-x16", 6.0, 10 * kMicrosecond};
  platform.validate();
  return platform;
}

PlatformSpec make_reference_platform_with_link(double bandwidth_gbs) {
  PlatformSpec platform = make_reference_platform();
  platform.link.bandwidth_gbs = bandwidth_gbs;
  platform.name += " @ " + std::to_string(bandwidth_gbs) + " GB/s link";
  platform.validate();
  return platform;
}

PlatformSpec make_small_gpu_platform() {
  PlatformSpec platform;
  platform.name = "xeon-e5-2620 + small-gpu";
  platform.cpu = make_xeon_e5_2620();
  DeviceSpec gpu;
  gpu.name = "small-gpu";
  gpu.cls = DeviceClass::kGpu;
  gpu.cores = 2;
  gpu.lanes = 1;
  gpu.frequency_ghz = 0.9;
  gpu.peak_sp_gflops = 384.0;
  gpu.peak_dp_gflops = 16.0;
  gpu.mem_bandwidth_gbs = 28.5;
  gpu.mem_capacity_gb = 2.0;
  gpu.partition_granularity = 32;
  gpu.launch_overhead = 15 * kMicrosecond;
  platform.accelerators.push_back(gpu);
  platform.link = LinkSpec{"pcie-gen2-x8", 3.0, 10 * kMicrosecond};
  platform.validate();
  return platform;
}

PlatformSpec make_dual_gpu_platform() {
  PlatformSpec platform;
  platform.name = "xeon-e5-2620 + 2x tesla-k20m";
  platform.cpu = make_xeon_e5_2620();
  DeviceSpec gpu = make_tesla_k20m();
  platform.accelerators.push_back(gpu);
  gpu.name = "Nvidia Tesla K20m #2";
  platform.accelerators.push_back(gpu);
  platform.link = LinkSpec{"pcie-gen2-x16", 6.0, 10 * kMicrosecond};
  platform.validate();
  return platform;
}

PlatformSpec make_cpu_gpu_phi_platform() {
  PlatformSpec platform;
  platform.name = "xeon-e5-2620 + tesla-k20m + xeon-phi-5110p";
  platform.cpu = make_xeon_e5_2620();
  platform.accelerators.push_back(make_tesla_k20m());
  DeviceSpec phi;
  phi.name = "Intel Xeon Phi 5110P";
  phi.cls = DeviceClass::kAccelerator;
  phi.cores = 60;
  phi.lanes = 1;  // offload model: one in-order command stream
  phi.frequency_ghz = 1.053;
  phi.peak_sp_gflops = 2022.0;
  phi.peak_dp_gflops = 1011.0;
  phi.mem_bandwidth_gbs = 320.0;
  phi.mem_capacity_gb = 8.0;
  phi.partition_granularity = 16;  // SIMD width
  phi.launch_overhead = 25 * kMicrosecond;
  platform.accelerators.push_back(phi);
  platform.link = LinkSpec{"pcie-gen2-x16", 6.0, 10 * kMicrosecond};
  platform.validate();
  return platform;
}

PlatformSpec make_cpu_only_platform() {
  PlatformSpec platform;
  platform.name = "xeon-e5-2620 only";
  platform.cpu = make_xeon_e5_2620();
  platform.link = LinkSpec{};
  platform.validate();
  return platform;
}

PlatformSpec platform_by_name(const std::string& name) {
  if (name.empty() || name == "reference") return make_reference_platform();
  if (name == "small-gpu") return make_small_gpu_platform();
  if (name == "dual-gpu") return make_dual_gpu_platform();
  if (name == "cpu-gpu-phi") return make_cpu_gpu_phi_platform();
  if (name == "cpu-only") return make_cpu_only_platform();
  throw InvalidArgument("unknown platform '" + name +
                        "' (reference, small-gpu, dual-gpu, cpu-gpu-phi, "
                        "cpu-only)");
}

const std::vector<std::string>& platform_names() {
  static const std::vector<std::string> kNames = {
      "reference", "small-gpu", "dual-gpu", "cpu-gpu-phi", "cpu-only"};
  return kNames;
}

}  // namespace hetsched::hw
