#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/time.hpp"

/// Hardware platform descriptions.
///
/// A platform is a host CPU plus zero or more accelerators connected by a
/// host<->device interconnect. The shipped reference platform reproduces the
/// paper's Table III (Intel Xeon E5-2620 + Nvidia Tesla K20m); alternative
/// platforms support the what-if benches (PCIe sweeps, weaker GPUs).
namespace hetsched::hw {

enum class DeviceClass {
  kCpu,  ///< Host multi-core CPU; one execution lane per hardware thread.
  kGpu,  ///< Discrete GPU; one in-order command queue (one lane).
  /// Other offload accelerators behind the link (Xeon Phi class). They use
  /// the kernel's accelerator-side efficiencies, like GPUs.
  kAccelerator,
};

/// True for any device reached over the host link (not the host CPU).
constexpr bool is_offload_device(DeviceClass cls) {
  return cls != DeviceClass::kCpu;
}

const char* device_class_name(DeviceClass cls);

enum class Precision { kSingle, kDouble };

struct DeviceSpec {
  std::string name;
  DeviceClass cls = DeviceClass::kCpu;

  /// Physical compute units: CPU cores or GPU SMX count (informational).
  int cores = 1;
  /// Concurrent execution lanes. CPU: schedulable hardware threads (12 for a
  /// 6C/12T part). GPU: 1 — the runtime dispatches one task instance at a
  /// time per device queue, like one OpenCL in-order queue.
  int lanes = 1;

  double frequency_ghz = 1.0;
  double peak_sp_gflops = 0.0;
  double peak_dp_gflops = 0.0;
  double mem_bandwidth_gbs = 0.0;
  double mem_capacity_gb = 0.0;

  /// Partition-size granularity (items). GPU partitions are rounded up to a
  /// multiple of the warp size, per the paper's footnote 5; CPU uses 1.
  int partition_granularity = 1;

  /// Per-kernel-invocation fixed cost (driver/launch for GPUs, loop spawn
  /// for CPU task instances).
  SimTime launch_overhead = 0;

  double peak_gflops(Precision p) const {
    return p == Precision::kSingle ? peak_sp_gflops : peak_dp_gflops;
  }

  /// Peak FLOP/s available to ONE lane of this device.
  double lane_peak_flops(Precision p) const {
    return peak_gflops(p) * 1e9 / static_cast<double>(lanes);
  }

  /// Memory bandwidth (bytes/s) available to ONE lane when all lanes are
  /// busy. Lanes share the memory system, so per-lane bandwidth is the
  /// total divided by the lane count.
  double lane_bandwidth_bytes() const {
    return mem_bandwidth_gbs * 1e9 / static_cast<double>(lanes);
  }

  void validate() const;
};

/// Host <-> accelerator interconnect (PCIe in the reference platform).
struct LinkSpec {
  std::string name = "pcie";
  /// Effective end-to-end bandwidth, GB/s (pinned-memory PCIe gen2 x16 on
  /// the paper's testbed sustains ~6 GB/s).
  double bandwidth_gbs = 6.0;
  /// Per-transfer fixed latency (driver + DMA setup).
  SimTime latency = 10 * kMicrosecond;

  void validate() const;
};

struct PlatformSpec {
  std::string name;
  DeviceSpec cpu;
  std::vector<DeviceSpec> accelerators;
  LinkSpec link;

  /// All devices, CPU first. Device index 0 is always the host CPU.
  std::vector<DeviceSpec> all_devices() const;
  std::size_t device_count() const { return 1 + accelerators.size(); }

  void validate() const;
};

/// Index of a device within a platform: 0 = CPU, 1.. = accelerators.
using DeviceId = std::size_t;
inline constexpr DeviceId kCpuDevice = 0;

/// The paper's Table III platform: Xeon E5-2620 (6C/12T, 2.0 GHz, 384/192
/// SP/DP GFLOPS, 42.6 GB/s) + Tesla K20m (13 SMX, 0.705 GHz, 3519.3/1173.1
/// GFLOPS, 208 GB/s, 5 GB), PCIe at 6 GB/s effective.
PlatformSpec make_reference_platform();

/// Reference platform with a different host<->device bandwidth (GB/s); used
/// by the PCIe ablation bench.
PlatformSpec make_reference_platform_with_link(double bandwidth_gbs);

/// A platform with a low-end GPU (roughly GT 640 class): exercises decisions
/// where the CPU should win more often.
PlatformSpec make_small_gpu_platform();

/// A CPU-only platform (no accelerators): degenerate configuration used in
/// tests of the hardware-configuration decision.
PlatformSpec make_cpu_only_platform();

/// Reference CPU with TWO K20m GPUs sharing the PCIe link — exercises the
/// multi-accelerator partitioning the paper names as Glinda's general case.
PlatformSpec make_dual_gpu_platform();

/// Reference CPU + K20m + a Xeon Phi 5110P-class coprocessor: the
/// non-identical multi-accelerator configuration (and the "other types of
/// accelerators" of the paper's future work).
PlatformSpec make_cpu_gpu_phi_platform();

/// big.LITTLE-style asymmetric CPU: a big out-of-order cluster as the host
/// plus a LITTLE in-order cluster modeled as an accelerator-class device
/// behind a coherent on-chip fabric (high bandwidth, negligible latency).
/// Exercises partitioning when the "accelerator" is barely faster than one
/// host lane and transfers are nearly free.
PlatformSpec make_big_little_platform();

/// Four-device paper-successor configuration: reference CPU + 2x Tesla K20m
/// + Xeon Phi 5110P, all sharing one PCIe link. The widest shipped preset;
/// the bench's sim_core_quad phase runs on it.
PlatformSpec make_quad_platform();

/// Deterministic synthetic multi-accelerator platform drawn from `seed`
/// (pure function of the seed): 1-3 accelerators with asymmetric
/// throughput, bandwidth, granularity, and launch-overhead draws around the
/// reference CPU. Named "synth-<seed>", so it round-trips through
/// platform_by_name and the sweep scenario key (which embeds the full spec).
PlatformSpec make_synthetic_platform(std::uint64_t seed);

/// Looks a shipped platform variant up by name: "reference" (or ""),
/// "small-gpu", "dual-gpu", "cpu-gpu-phi", "cpu-only", "big-little",
/// "quad", or a parametric "synth-<decimal seed>" (see
/// make_synthetic_platform). Throws InvalidArgument on an unknown name.
PlatformSpec platform_by_name(const std::string& name);

/// The preset names accepted by `platform_by_name`, in presentation order
/// (the parametric synth-<seed> family is not enumerated here).
const std::vector<std::string>& platform_names();

}  // namespace hetsched::hw
