#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/error.hpp"
#include "common/time.hpp"
#include "hw/platform.hpp"

/// Roofline-style kernel cost model.
///
/// Each application kernel declares its per-item work (flops, device-memory
/// bytes) plus a per-device-class *efficiency*: the fraction of the device's
/// peak that this kernel's code actually sustains. The efficiencies play the
/// role of the measured throughputs the paper obtains by profiling — they
/// encode facts like "naive CPU matmul reaches a few percent of peak" or
/// "STREAM sustains ~85% of DRAM bandwidth". Higher layers (Glinda, DP-Perf)
/// never read these numbers: they observe virtual execution times, exactly
/// as the paper's profiling observes wall-clock times.
namespace hetsched::hw {

struct KernelTraits {
  std::string name;
  Precision precision = Precision::kSingle;

  /// Floating-point operations per work item.
  double flops_per_item = 1.0;
  /// Device-memory traffic per work item (bytes read + written), for the
  /// bandwidth side of the roofline.
  double device_bytes_per_item = 0.0;

  /// IMBALANCED workloads (Glinda's ICS'14 extension, paper ref [9]):
  /// when set, `work_weight(begin, end)` returns the number of uniform-
  /// item EQUIVALENTS in the range — e.g. a triangular solve where row i
  /// costs (i+1) units returns the partial sum. Unset means uniform
  /// (end - begin). flops_per_item / device_bytes_per_item are then read
  /// as "per work unit".
  std::function<double(std::int64_t begin, std::int64_t end)> work_weight;

  /// Work units in [begin, end): the weight function or the uniform count.
  double weight_of(std::int64_t begin, std::int64_t end) const {
    return work_weight ? work_weight(begin, end)
                       : static_cast<double>(end - begin);
  }

  /// Fraction of peak compute throughput this kernel sustains, per class.
  double cpu_compute_efficiency = 0.5;
  double gpu_compute_efficiency = 0.5;
  /// Fraction of peak memory bandwidth this kernel sustains, per class.
  double cpu_memory_efficiency = 0.8;
  double gpu_memory_efficiency = 0.8;

  double compute_efficiency(DeviceClass cls) const {
    return cls == DeviceClass::kCpu ? cpu_compute_efficiency
                                    : gpu_compute_efficiency;
  }
  double memory_efficiency(DeviceClass cls) const {
    return cls == DeviceClass::kCpu ? cpu_memory_efficiency
                                    : gpu_memory_efficiency;
  }

  void validate() const;
};

class RooflineCostModel {
 public:
  /// Time for ONE lane of `device` to process `items` uniform work items of
  /// kernel `traits`, excluding launch overhead and host<->device transfers.
  ///
  /// roofline: time = max(flop_time, memory_time)
  ///   flop_time   = items * flops_per_item / (ceff * lane_peak_flops)
  ///   memory_time = items * bytes_per_item / (meff * lane_bandwidth)
  SimTime lane_compute_time(const KernelTraits& traits,
                            const DeviceSpec& device,
                            std::int64_t items) const {
    HS_REQUIRE(items >= 0, "negative item count " << items);
    return lane_compute_time_weighted(traits, device,
                                      static_cast<double>(items));
  }

  /// Weighted form: time for `work_units` uniform-item equivalents.
  SimTime lane_compute_time_weighted(const KernelTraits& traits,
                                     const DeviceSpec& device,
                                     double work_units) const;

  /// Compute time of the instance covering [begin, end) — the kernel's
  /// work-weight function decides how much work that range holds — plus
  /// the device's per-invocation launch overhead.
  SimTime instance_time(const KernelTraits& traits, const DeviceSpec& device,
                        std::int64_t begin, std::int64_t end) const {
    return device.launch_overhead +
           lane_compute_time_weighted(traits, device,
                                      traits.weight_of(begin, end));
  }

  /// Uniform-range convenience: instance over `items` items at [0, items).
  SimTime instance_time(const KernelTraits& traits, const DeviceSpec& device,
                        std::int64_t items) const {
    return instance_time(traits, device, 0, items);
  }

  /// Steady-state item throughput (items/s) of one lane.
  double lane_item_rate(const KernelTraits& traits,
                        const DeviceSpec& device) const;

  /// Whole-device item throughput: lanes * lane_item_rate. This is the
  /// quantity the paper calls a device's "hardware capability" for a kernel.
  double device_item_rate(const KernelTraits& traits,
                          const DeviceSpec& device) const {
    return lane_item_rate(traits, device) * static_cast<double>(device.lanes);
  }

  /// Host<->device transfer time for `bytes` over `link` (latency + size/BW).
  SimTime transfer_time(const LinkSpec& link, double bytes) const;

  /// Transfer throughput in bytes/s ignoring latency (for analytic models).
  double link_rate(const LinkSpec& link) const {
    return link.bandwidth_gbs * 1e9;
  }
};

}  // namespace hetsched::hw
