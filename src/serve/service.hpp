#pragma once

#include <memory>
#include <string>
#include <vector>

#include "apps/app.hpp"
#include "hw/platform.hpp"
#include "obs/span.hpp"
#include "serve/protocol.hpp"

/// Request handlers of the matchmaker service.
///
/// `answer` is the single source of truth for what a query returns: the
/// CLI's offline match/explain/analyze verbs print answer()'s bytes, and
/// the daemon serves answer()'s bytes — which is what makes the protocol's
/// "byte-identical to the offline invocation" contract hold by
/// construction instead of by parallel maintenance.
namespace hetsched::serve {

/// Instantiates the application named `name` (a paper app id or one of the
/// extension apps) on `platform`, with the small functional configuration
/// when `small`. Throws InvalidArgument on an unknown name. This is the
/// app-construction policy every CLI verb uses.
std::unique_ptr<apps::Application> make_named_app(
    const std::string& name, const hw::PlatformSpec& platform, bool small,
    bool record_trace = false, bool record_obs = false);

/// Every name make_named_app accepts, in presentation order.
const std::vector<std::string>& served_app_names();

/// The query operations `answer` implements ("shutdown" is handled by the
/// Server, not here).
const std::vector<std::string>& served_ops();

/// Per-answer observability side channel. Recording is passive: an answer
/// computed with a non-null AnswerTrace is byte-identical to one computed
/// without (the obs::SpanLog rides on the simulation without touching its
/// outcome), which keeps the cache-transparency contract intact.
struct AnswerTrace {
  /// Chunk-lifecycle spans of the simulation that computed the answer
  /// (populated for `analyze`; match/explain run no simulation).
  obs::SpanLog chunk_spans;
};

/// Computes the offline answer for `request`: exactly the bytes the
/// equivalent `hetsched_cli match|explain|analyze` invocation writes to
/// stdout. Deterministic — equal requests produce byte-identical answers,
/// which is the soundness premise of the daemon's scenario cache. Throws
/// hetsched::Error on an invalid request (unknown op/app/strategy).
/// With a non-null `trace`, the run's chunk spans are captured into it
/// (the answer bytes are unaffected).
std::string answer(const QueryRequest& request, AnswerTrace* trace);
std::string answer(const QueryRequest& request);

}  // namespace hetsched::serve
