#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/json.hpp"

/// The `bench serve` phase: throughput of an in-process loopback daemon.
///
/// Spins up a Server on an ephemeral port, hammers it with concurrent
/// QueryClient threads issuing a rotating mix of match/explain/analyze
/// queries, and reports requests per second. The working set is small by
/// design so the steady state measures the serving path (framing, shard
/// cache, admission) rather than simulation time — which is the daemon's
/// actual production profile once its cache is warm.
namespace hetsched::serve {

struct ServeBenchOptions {
  /// Concurrent client connections.
  unsigned clients = 8;
  /// Queries issued per client (each a fresh frame on a kept-open
  /// connection).
  int requests_per_client = 50;
  /// Daemon worker threads.
  unsigned workers = 4;
  /// Small functional app configurations (keep true: the bench measures
  /// serving, not simulation).
  bool small = true;
};

struct ServeBenchResult {
  ServeBenchOptions options;
  std::int64_t requests = 0;       ///< ok responses received
  std::int64_t errors = 0;         ///< non-ok responses received
  std::int64_t cache_hits = 0;     ///< responses flagged cache_hit
  double wall_ms = 0.0;
  /// Unset when wall_ms rounds to zero (rate unknown — serialized as null,
  /// never inf/NaN).
  std::optional<double> requests_per_second;
  /// Request-latency percentiles interpolated from the daemon's own
  /// serve_request_latency_ms histogram (Server::latency_histogram), so the
  /// bench and a /metrics scrape agree by construction.
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
};

/// Runs the loopback hammer and returns its measurements. Throws
/// hetsched::Error when the daemon cannot start.
ServeBenchResult run_serve_bench(const ServeBenchOptions& options = {});

/// One "phases" entry in the bench document, shaped like the sweep phases
/// (name + workload counters + wall_ms + throughput).
json::Value serve_bench_to_json(const ServeBenchResult& result);

}  // namespace hetsched::serve
