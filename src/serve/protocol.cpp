#include "serve/protocol.hpp"

#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <unistd.h>

#include "common/error.hpp"

namespace hetsched::serve {

json::Value QueryRequest::to_json() const {
  json::Value value;
  value.set("version", json::Value(kProtocolVersion));
  value.set("op", json::Value(op));
  value.set("app", json::Value(app));
  value.set("platform", json::Value(platform));
  value.set("strategy", json::Value(strategy));
  value.set("sync", json::Value(sync));
  value.set("small", json::Value(small));
  value.set("tasks", json::Value(tasks));
  value.set("gantt", json::Value(gantt));
  value.set("json", json::Value(json));
  value.set("trace", json::Value(trace));
  return value;
}

QueryRequest QueryRequest::from_json(const json::Value& value) {
  const std::string version = value.at("version").as_string();
  HS_REQUIRE(version == kProtocolVersion,
             "protocol version mismatch: peer speaks '"
                 << version << "', this build speaks '" << kProtocolVersion
                 << "'");
  QueryRequest request;
  request.op = value.at("op").as_string();
  if (const json::Value* app = value.find("app"))
    request.app = app->as_string();
  if (const json::Value* platform = value.find("platform"))
    request.platform = platform->as_string();
  if (const json::Value* strategy = value.find("strategy"))
    request.strategy = strategy->as_string();
  if (const json::Value* sync = value.find("sync"))
    request.sync = sync->as_bool();
  if (const json::Value* small = value.find("small"))
    request.small = small->as_bool();
  if (const json::Value* tasks = value.find("tasks"))
    request.tasks = static_cast<int>(tasks->as_int64());
  if (const json::Value* gantt = value.find("gantt"))
    request.gantt = gantt->as_bool();
  if (const json::Value* json_flag = value.find("json"))
    request.json = json_flag->as_bool();
  if (const json::Value* trace = value.find("trace"))
    request.trace = trace->as_string();
  return request;
}

std::string QueryRequest::cache_key() const {
  std::string key;
  key.reserve(128);
  key += "serve-version=";
  key += kProtocolVersion;
  key += "\nop=" + op;
  key += "\napp=" + app;
  key += "\nplatform=" + platform;
  key += "\nstrategy=" + strategy;
  key += "\nsync=" + std::string(sync ? "1" : "0");
  key += "\nsmall=" + std::string(small ? "1" : "0");
  key += "\ntasks=" + std::to_string(tasks);
  key += "\ngantt=" + std::string(gantt ? "1" : "0");
  key += "\njson=" + std::string(json ? "1" : "0");
  key += "\n";
  return key;
}

const char* response_status_name(ResponseStatus status) {
  switch (status) {
    case ResponseStatus::kOk: return "ok";
    case ResponseStatus::kError: return "error";
    case ResponseStatus::kOverload: return "overload";
    case ResponseStatus::kShuttingDown: return "shutting-down";
  }
  return "?";
}

ResponseStatus response_status_from_name(const std::string& name) {
  if (name == "ok") return ResponseStatus::kOk;
  if (name == "error") return ResponseStatus::kError;
  if (name == "overload") return ResponseStatus::kOverload;
  if (name == "shutting-down") return ResponseStatus::kShuttingDown;
  throw InvalidArgument("unknown response status '" + name + "'");
}

json::Value QueryResponse::to_json() const {
  json::Value value;
  value.set("version", json::Value(kProtocolVersion));
  value.set("status", json::Value(response_status_name(status)));
  value.set("output", json::Value(output));
  value.set("error", json::Value(error));
  value.set("retry_after_ms", json::Value(retry_after_ms));
  value.set("cache_hit", json::Value(cache_hit));
  value.set("trace_id", json::Value(trace_id));
  return value;
}

QueryResponse QueryResponse::from_json(const json::Value& value) {
  const std::string version = value.at("version").as_string();
  HS_REQUIRE(version == kProtocolVersion,
             "protocol version mismatch: peer speaks '"
                 << version << "', this build speaks '" << kProtocolVersion
                 << "'");
  QueryResponse response;
  response.status = response_status_from_name(value.at("status").as_string());
  response.output = value.at("output").as_string();
  response.error = value.at("error").as_string();
  response.retry_after_ms = value.at("retry_after_ms").as_number();
  response.cache_hit = value.at("cache_hit").as_bool();
  if (const json::Value* trace_id = value.find("trace_id"))
    response.trace_id = trace_id->as_string();
  return response;
}

bool write_all(int fd, std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EINTR || errno == EAGAIN ||
                  errno == EWOULDBLOCK))
      continue;
    return false;
  }
  return true;
}

bool write_frame(int fd, const json::Value& value) {
  return write_all(fd, value.dump() + "\n");
}

FrameReader::Result FrameReader::read(std::string& frame,
                                      const std::atomic<bool>* give_up) {
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      frame = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      // HTTP request lines end \r\n; JSON frames never contain a bare \r.
      if (!frame.empty() && frame.back() == '\r') frame.pop_back();
      return Result::kFrame;
    }
    if (buffer_.size() > kMaxFrameBytes) return Result::kOverflow;

    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buffer_.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) return Result::kClosed;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // SO_RCVTIMEO expired: an idle peer, which is fine — unless the
      // daemon is draining, in which case the wait ends here.
      if (give_up != nullptr && give_up->load(std::memory_order_relaxed))
        return Result::kGaveUp;
      continue;
    }
    return Result::kClosed;
  }
}

}  // namespace hetsched::serve
