#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/json.hpp"

/// Wire protocol of the matchmaker daemon (`hetsched_cli serve`).
///
/// Frames are newline-delimited JSON documents over a TCP stream: one
/// request per line, one response per line, UTF-8, no embedded newlines
/// (json::Value::dump never emits raw control characters). The same
/// common/json layer that keeps the sweep cache byte-stable encodes both
/// directions, so a response's `output` member carries the offline CLI's
/// answer byte for byte.
///
/// The daemon also speaks just enough HTTP on the same port for a
/// Prometheus scrape: a connection whose first line starts with "GET " is
/// answered as an HTTP/1.1 exchange (see Server::handle_http) instead of a
/// frame stream.
namespace hetsched::serve {

/// Bump when the request schema, the cache-key closure, or response
/// semantics change: a daemon and client disagreeing on the version fail
/// loudly instead of mis-answering.
/// hs-serve-2: responses carry `trace_id`, requests may carry `trace`,
/// and the administrative `trace-dump` op returns a request span tree.
/// hs-serve-3: match/explain answers carry the platform's device count and
/// per-device suitability (N-device platforms) — same schema, new answer
/// bytes, so warm caches written by older daemons must miss.
inline constexpr const char* kProtocolVersion = "hs-serve-3";

/// Hard per-frame byte bound; a peer exceeding it is disconnected rather
/// than buffered without limit.
inline constexpr std::size_t kMaxFrameBytes = 1 << 20;

/// One matchmaking query. `op` selects which offline verb the answer must
/// be byte-identical to:
///   match      classify + strategy selection (hetsched_cli match)
///   explain    decision + predicted-time inputs (hetsched_cli explain)
///   analyze    utilization/overlap breakdown of a run (hetsched_cli analyze)
///   shutdown   administrative: ack, then begin graceful daemon shutdown
///   trace-dump administrative: return the request span tree named by
///              `trace` (empty = the most recent), as JSON in `output`
struct QueryRequest {
  std::string op = "match";
  std::string app;
  /// Platform variant ("" = reference, the CLI default).
  std::string platform;
  /// Strategy for analyze ("" = let the matchmaker pick).
  std::string strategy;
  bool sync = false;
  bool small = false;
  /// Chunk count m (0 = strategy default), the CLI's --tasks.
  int tasks = 0;
  /// analyze --gantt: append the timeline rendering.
  bool gantt = false;
  /// explain --json: machine-readable document instead of the rendering.
  bool json = false;
  /// trace-dump only: the trace_id to dump ("" = most recent). Ignored —
  /// and excluded from the cache key — for every other op.
  std::string trace;

  json::Value to_json() const;
  /// Throws InvalidArgument on malformed input or a version mismatch.
  static QueryRequest from_json(const json::Value& value);

  /// Canonical cache-key text: closes over every answer-affecting field
  /// plus kProtocolVersion, so two requests with equal keys are guaranteed
  /// the same response bytes.
  std::string cache_key() const;
};

enum class ResponseStatus {
  kOk,
  kError,
  /// Admission control rejected the connection; retry_after_ms hints when
  /// to try again.
  kOverload,
  /// The daemon is draining; no new requests are admitted.
  kShuttingDown,
};

const char* response_status_name(ResponseStatus status);
ResponseStatus response_status_from_name(const std::string& name);

struct QueryResponse {
  ResponseStatus status = ResponseStatus::kOk;
  /// The offline CLI's stdout for the equivalent invocation, byte for byte
  /// (set when status == kOk).
  std::string output;
  /// Human-readable failure description (status == kError).
  std::string error;
  /// Backoff hint for kOverload responses, milliseconds.
  double retry_after_ms = 0.0;
  /// True when the answer came from the daemon's scenario cache (in-memory
  /// shard or the on-disk store) instead of a fresh computation.
  bool cache_hit = false;
  /// The request's trace id (16 hex chars): the handle for `trace-dump`
  /// and the id exemplars in /metrics point at. Empty for responses the
  /// daemon answered before minting one (overload, shutting-down).
  std::string trace_id;

  json::Value to_json() const;
  static QueryResponse from_json(const json::Value& value);
};

/// Writes all of `bytes` to `fd`, retrying short writes and EINTR. Returns
/// false on a hard error (peer gone).
bool write_all(int fd, std::string_view bytes);

/// Serializes `value` and writes it as one newline-terminated frame.
bool write_frame(int fd, const json::Value& value);

/// Buffered line reader over a socket. The socket is expected to carry a
/// receive timeout (SO_RCVTIMEO): a timed-out read re-arms unless the
/// optional `give_up` flag is set, which is how the daemon drains blocked
/// keep-alive connections during shutdown.
class FrameReader {
 public:
  enum class Result {
    kFrame,     ///< `frame` holds one line, newline stripped
    kClosed,    ///< peer closed (or hard error)
    kGaveUp,    ///< read timed out while `give_up` was set
    kOverflow,  ///< peer exceeded kMaxFrameBytes without a newline
  };

  explicit FrameReader(int fd) : fd_(fd) {}

  Result read(std::string& frame,
              const std::atomic<bool>* give_up = nullptr);

 private:
  int fd_;
  std::string buffer_;
};

}  // namespace hetsched::serve
