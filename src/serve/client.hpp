#pragma once

#include <string>

#include "serve/protocol.hpp"

/// Client side of the matchmaker daemon protocol, used by the
/// `hetsched_cli query` verb, the loopback tests, and `bench serve`.
namespace hetsched::serve {

/// One TCP connection to a serve daemon. Frames are sent/received with the
/// same protocol.hpp encoders the daemon uses.
class QueryClient {
 public:
  /// Connects to host:port. Retries briefly (for the daemon-still-binding
  /// startup race), then throws hetsched::Error when the daemon is
  /// unreachable.
  QueryClient(const std::string& host, int port, int connect_retries = 50);
  ~QueryClient();

  QueryClient(const QueryClient&) = delete;
  QueryClient& operator=(const QueryClient&) = delete;

  /// One round-trip: writes `request` as a frame, reads one response frame.
  /// Throws hetsched::Error when the connection drops mid-exchange.
  QueryResponse ask(const QueryRequest& request);

  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  FrameReader reader_;
};

/// Convenience: connect, ask once, disconnect.
QueryResponse query_once(const std::string& host, int port,
                         const QueryRequest& request);

/// Minimal HTTP GET against the daemon's scrape endpoint.
struct HttpResult {
  int status_code = 0;
  std::string body;
};
HttpResult http_get(const std::string& host, int port,
                    const std::string& path);

}  // namespace hetsched::serve
