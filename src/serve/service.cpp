#include "serve/service.hpp"

#include <map>
#include <sstream>

#include "analyzer/matchmaker.hpp"
#include "apps/registry.hpp"
#include "apps/spectral_dag.hpp"
#include "apps/tree_reduction.hpp"
#include "apps/triangular.hpp"
#include "apps/unstable_loop.hpp"
#include "common/error.hpp"
#include "obs/observability.hpp"
#include "sim/gantt.hpp"
#include "sim/trace_stats.hpp"
#include "strategies/explain.hpp"
#include "strategies/strategy_runner.hpp"

namespace hetsched::serve {

namespace {

const std::map<std::string, apps::PaperApp>& paper_app_ids() {
  static const std::map<std::string, apps::PaperApp> names = {
      {"matrixmul", apps::PaperApp::kMatrixMul},
      {"blackscholes", apps::PaperApp::kBlackScholes},
      {"nbody", apps::PaperApp::kNbody},
      {"hotspot", apps::PaperApp::kHotSpot},
      {"stream-seq", apps::PaperApp::kStreamSeq},
      {"stream-loop", apps::PaperApp::kStreamLoop},
  };
  return names;
}

strategies::StrategyOptions options_from(const QueryRequest& request) {
  strategies::StrategyOptions options;
  options.sync_between_kernels = request.sync;
  if (request.tasks > 0) options.task_count = request.tasks;
  return options;
}

std::string answer_match(const QueryRequest& request,
                         const hw::PlatformSpec& platform) {
  auto app = make_named_app(request.app, platform, request.small);
  analyzer::AppDescriptor descriptor = app->descriptor();
  if (request.sync && descriptor.sync == analyzer::SyncReason::kNone)
    descriptor.sync = analyzer::SyncReason::kHostPostProcessing;
  return analyzer::Matchmaker{}.explain(descriptor);
}

std::string answer_explain(const QueryRequest& request,
                           const hw::PlatformSpec& platform) {
  auto app = make_named_app(request.app, platform, request.small);
  const strategies::DecisionExplanation explanation =
      strategies::explain_decision(*app, options_from(request));
  if (request.json) return explanation.to_json() + "\n";
  return explanation.render();
}

std::string answer_analyze(const QueryRequest& request,
                           const hw::PlatformSpec& platform,
                           AnswerTrace* trace) {
  // Observability recording is enabled only when a trace sink was supplied;
  // either way the run outcome — and therefore the answer bytes — is the
  // same (recording is passive).
  auto app = make_named_app(request.app, platform, request.small,
                            /*record_trace=*/true,
                            /*record_obs=*/trace != nullptr);
  strategies::StrategyRunner runner(*app, options_from(request));
  const strategies::StrategyResult result =
      request.strategy.empty()
          ? runner.run_matched().result
          : runner.run(analyzer::strategy_from_name(request.strategy));
  if (trace != nullptr && result.report.obs != nullptr)
    trace->chunk_spans = result.report.obs->spans;
  std::ostringstream os;
  os << "strategy: " << analyzer::strategy_name(result.kind) << "\n";
  os << sim::format_trace_stats(sim::analyze_trace(result.report.trace));
  if (request.gantt) os << "\n" << sim::render_gantt(result.report.trace);
  return os.str();
}

}  // namespace

std::unique_ptr<apps::Application> make_named_app(
    const std::string& name, const hw::PlatformSpec& platform, bool small,
    bool record_trace, bool record_obs) {
  apps::Application::Config extension;
  extension.functional = small;
  extension.record_trace = record_trace;
  extension.record_observability = record_obs;
  if (name == "spectral-dag") {
    extension.items = small ? 4096 : 16'777'216;
    extension.iterations = small ? 3 : 10;
    return std::make_unique<apps::SpectralDagApp>(platform, extension);
  }
  if (name == "tree-reduction") {
    extension.items = small ? 100'000 : 134'217'728;
    extension.iterations = 1;
    return std::make_unique<apps::TreeReductionApp>(platform, extension);
  }
  if (name == "triangular-mv") {
    extension.items = small ? 512 : 16'384;
    extension.iterations = 1;
    return std::make_unique<apps::TriangularMvApp>(platform, extension);
  }
  if (name == "unstable-loop") {
    extension.items = small ? 4096 : 8'388'608;
    extension.iterations = small ? 4 : 8;
    return std::make_unique<apps::UnstableLoopApp>(platform, extension);
  }
  auto it = paper_app_ids().find(name);
  if (it == paper_app_ids().end())
    throw InvalidArgument(
        "unknown app '" + name +
        "' (matrixmul, blackscholes, nbody, hotspot, stream-seq, "
        "stream-loop, spectral-dag, tree-reduction, triangular-mv, "
        "unstable-loop)");
  apps::Application::Config config =
      small ? apps::test_config(it->second) : apps::paper_config(it->second);
  config.record_trace = record_trace;
  config.record_observability = record_obs;
  return apps::make_paper_app(it->second, platform, config);
}

const std::vector<std::string>& served_app_names() {
  static const std::vector<std::string> kNames = [] {
    std::vector<std::string> names;
    for (const auto& [name, app] : paper_app_ids()) names.push_back(name);
    names.insert(names.end(), {"spectral-dag", "tree-reduction",
                               "triangular-mv", "unstable-loop"});
    return names;
  }();
  return kNames;
}

const std::vector<std::string>& served_ops() {
  static const std::vector<std::string> kOps = {"match", "explain",
                                                "analyze"};
  return kOps;
}

std::string answer(const QueryRequest& request, AnswerTrace* trace) {
  const hw::PlatformSpec platform = hw::platform_by_name(request.platform);
  if (request.op == "match") return answer_match(request, platform);
  if (request.op == "explain") return answer_explain(request, platform);
  if (request.op == "analyze")
    return answer_analyze(request, platform, trace);
  throw InvalidArgument("unknown op '" + request.op +
                        "' (match, explain, analyze, shutdown, trace-dump)");
}

std::string answer(const QueryRequest& request) {
  return answer(request, nullptr);
}

}  // namespace hetsched::serve
