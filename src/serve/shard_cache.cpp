#include "serve/shard_cache.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <utility>

#include "common/error.hpp"
#include "sweep/cache.hpp"
#include "sweep/scenario.hpp"

namespace hetsched::serve {

ShardedScenarioCache::ShardedScenarioCache(std::size_t shards,
                                           const sweep::ResultCache* disk)
    : disk_(disk) {
  shards_.reserve(std::max<std::size_t>(1, shards));
  for (std::size_t i = 0; i < std::max<std::size_t>(1, shards); ++i)
    shards_.push_back(std::make_unique<Shard>());
}

std::size_t ShardedScenarioCache::shard_index(const std::string& key) const {
  return static_cast<std::size_t>(sweep::fnv1a64(key)) % shards_.size();
}

ShardedScenarioCache::Lookup ShardedScenarioCache::get_or_compute(
    const std::string& key, const ComputeFn& compute,
    std::string_view caller_trace) {
  HS_REQUIRE(compute != nullptr, "get_or_compute without a compute function");
  Shard& shard = *shards_[shard_index(key)];

  std::shared_future<ValuePtr> flight;
  std::string leader_trace;
  std::promise<ValuePtr> promise;
  bool owner = false;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
      flight = it->second.future;
      leader_trace = it->second.owner_trace;
    } else {
      flight = promise.get_future().share();
      shard.entries.emplace(key,
                            Flight{flight, std::string(caller_trace)});
      owner = true;
    }
  }

  if (!owner) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    Lookup lookup;
    // A flight that is not ready yet means this lookup joins a live
    // computation (and will block on the leader); a ready one is a plain
    // in-memory hit. Sampled before the blocking get so the distinction
    // lands in the request tree.
    lookup.joined_flight = flight.wait_for(std::chrono::seconds(0)) !=
                           std::future_status::ready;
    lookup.leader_trace_id = std::move(leader_trace);
    lookup.value = flight.get();  // rethrows the owner's exception, if any
    lookup.hit = true;
    return lookup;
  }

  misses_.fetch_add(1, std::memory_order_relaxed);
  Lookup lookup;
  try {
    std::optional<std::string> stored;
    if (disk_ != nullptr) stored = disk_->load(key);
    if (stored) {
      disk_hits_.fetch_add(1, std::memory_order_relaxed);
      lookup.value = std::make_shared<const std::string>(*std::move(stored));
      lookup.disk_hit = true;
    } else {
      computes_.fetch_add(1, std::memory_order_relaxed);
      lookup.value = std::make_shared<const std::string>(compute());
    }
  } catch (...) {
    // Propagate to every waiter of this flight, then forget the entry so
    // the next request retries instead of serving a cached failure.
    promise.set_exception(std::current_exception());
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      shard.entries.erase(key);
    }
    throw;
  }
  promise.set_value(lookup.value);
  if (disk_ != nullptr && !lookup.disk_hit) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.dirty.emplace_back(key, lookup.value);
  }
  return lookup;
}

std::size_t ShardedScenarioCache::flush() {
  if (disk_ == nullptr) return 0;
  std::size_t written = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::vector<std::pair<std::string, ValuePtr>> dirty;
    {
      std::lock_guard<std::mutex> lock(shard->mutex);
      dirty.swap(shard->dirty);
    }
    for (const auto& [key, value] : dirty) {
      if (disk_->store(key, *value)) {
        flushed_.fetch_add(1, std::memory_order_relaxed);
        ++written;
      } else {
        dropped_flushes_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  return written;
}

std::size_t ShardedScenarioCache::entries() const {
  std::size_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->entries.size();
  }
  return total;
}

ShardCacheCounters ShardedScenarioCache::counters() const {
  return {hits_.load(std::memory_order_relaxed),
          misses_.load(std::memory_order_relaxed),
          disk_hits_.load(std::memory_order_relaxed),
          computes_.load(std::memory_order_relaxed),
          flushed_.load(std::memory_order_relaxed),
          dropped_flushes_.load(std::memory_order_relaxed)};
}

}  // namespace hetsched::serve
