#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>

/// Admission control for the serve daemon: a bounded queue of accepted
/// connections between the acceptor thread and the worker pool.
///
/// The bound is the backpressure mechanism — when the queue is full the
/// acceptor does NOT block and does NOT buffer; it answers the connection
/// with an overload response carrying a retry_after hint and closes it
/// (Server::acceptor_loop). Maximum in-flight work is the worker count, so
/// total admitted-but-unserved requests are bounded by capacity + workers
/// at all times.
namespace hetsched::serve {

class AdmissionQueue {
 public:
  explicit AdmissionQueue(std::size_t capacity);

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  /// Admits `fd` unless the queue is at capacity or closed. Never blocks.
  /// A false return increments rejected() (overload) — the caller owns the
  /// fd either way.
  bool try_push(int fd);

  /// Blocks until an fd is available. Returns nullopt only when the queue
  /// is closed AND empty — connections admitted before close are still
  /// drained, which is what makes shutdown graceful rather than lossy.
  std::optional<int> pop();

  /// Closes admission: try_push refuses, poppers drain and then exit.
  void close();

  bool closed() const { return closed_.load(std::memory_order_acquire); }
  std::size_t capacity() const { return capacity_; }
  std::size_t depth() const;
  /// High-water mark of depth() since construction.
  std::size_t max_depth_seen() const;
  std::int64_t admitted() const {
    return admitted_.load(std::memory_order_relaxed);
  }
  std::int64_t rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable available_;
  std::deque<int> queue_;
  std::size_t max_depth_ = 0;
  std::atomic<bool> closed_{false};
  std::atomic<std::int64_t> admitted_{0};
  std::atomic<std::int64_t> rejected_{0};
};

}  // namespace hetsched::serve
