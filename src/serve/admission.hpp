#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <string>

/// Admission control for the serve daemon: a bounded queue of accepted
/// connections between the acceptor thread and the worker pool.
///
/// The bound is the backpressure mechanism — when the queue is full the
/// acceptor does NOT block and does NOT buffer; it answers the connection
/// with an overload response carrying a retry_after hint and closes it
/// (Server::acceptor_loop). Maximum in-flight work is the worker count, so
/// total admitted-but-unserved requests are bounded by capacity + workers
/// at all times.
///
/// Each admitted connection carries its trace context across the
/// acceptor→worker hand-off: the trace id minted at accept (the id of the
/// connection's first request frame) and the accept timestamp, from which
/// the worker derives the explicit queue-wait observation
/// (`serve_queue_wait_ms`) at pickup.
namespace hetsched::serve {

/// One accepted connection in flight between acceptor and worker.
struct AdmittedConnection {
  int fd = -1;
  /// Trace id minted at accept; becomes the first frame's request trace.
  std::string trace_id;
  /// Accept instant; queue wait = pickup - accepted_at.
  std::chrono::steady_clock::time_point accepted_at{};
};

class AdmissionQueue {
 public:
  explicit AdmissionQueue(std::size_t capacity);

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  /// Admits the connection unless the queue is at capacity or closed.
  /// Never blocks. A false return increments rejected() (overload) — the
  /// caller owns the fd either way.
  bool try_push(AdmittedConnection connection);

  /// Blocks until a connection is available. Returns nullopt only when the
  /// queue is closed AND empty — connections admitted before close are
  /// still drained, which is what makes shutdown graceful rather than
  /// lossy.
  std::optional<AdmittedConnection> pop();

  /// Closes admission: try_push refuses, poppers drain and then exit.
  void close();

  bool closed() const { return closed_.load(std::memory_order_acquire); }
  std::size_t capacity() const { return capacity_; }
  std::size_t depth() const;
  /// High-water mark of depth() since construction.
  std::size_t max_depth_seen() const;
  std::int64_t admitted() const {
    return admitted_.load(std::memory_order_relaxed);
  }
  std::int64_t rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable available_;
  std::deque<AdmittedConnection> queue_;
  std::size_t max_depth_ = 0;
  std::atomic<bool> closed_{false};
  std::atomic<std::int64_t> admitted_{0};
  std::atomic<std::int64_t> rejected_{0};
};

}  // namespace hetsched::serve
