#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <map>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "obs/log.hpp"
#include "obs/metric_names.hpp"
#include "obs/phase_profiler.hpp"
#include "obs/validate.hpp"
#include "serve/service.hpp"

namespace hetsched::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// Bounded decision audit: old entries rotate out, the log never grows
/// without limit in a long-running daemon.
constexpr std::size_t kMaxAuditEntries = 4096;

void set_socket_timeouts(int fd, int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  // Writes get a generous bound so a stalled reader cannot wedge a worker.
  timeval send_tv{};
  send_tv.tv_sec = 10;
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &send_tv, sizeof(send_tv));
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

double elapsed_ms(Clock::time_point since) {
  return std::chrono::duration<double, std::milli>(Clock::now() - since)
      .count();
}

}  // namespace

Server::Server(ServeOptions options)
    : options_(std::move(options)), traces_(options_.trace_capacity) {
  HS_REQUIRE(options_.workers > 0, "serve needs at least one worker");
  if (!options_.cache_dir.empty())
    disk_ = std::make_unique<sweep::ResultCache>(options_.cache_dir);
  cache_ = std::make_unique<ShardedScenarioCache>(options_.shards,
                                                  disk_.get());
  queue_ = std::make_unique<AdmissionQueue>(options_.max_queue);
  metrics_.enable();
  metrics_.histogram_bounds(obs::kMetricServeRequestLatencyMs,
                            obs::Histogram::default_bounds());
  metrics_.histogram_bounds(obs::kMetricServeQueueWaitMs,
                            obs::Histogram::default_bounds());
}

Server::~Server() {
  request_shutdown();
  wait();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void Server::start() {
  HS_REQUIRE(!started_, "server already started");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  HS_REQUIRE(listen_fd_ >= 0,
             "socket() failed: " << std::strerror(errno));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  HS_REQUIRE(::inet_pton(AF_INET, options_.host.c_str(),
                         &address.sin_addr) == 1,
             "invalid bind address '" << options_.host << "'");
  HS_REQUIRE(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&address),
                    sizeof(address)) == 0,
             "cannot bind " << options_.host << ":" << options_.port << ": "
                            << std::strerror(errno));
  HS_REQUIRE(::listen(listen_fd_, 128) == 0,
             "listen() failed: " << std::strerror(errno));

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  HS_REQUIRE(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                           &bound_len) == 0,
             "getsockname() failed: " << std::strerror(errno));
  port_ = ntohs(bound.sin_port);

  {
    std::lock_guard<std::mutex> lock(lifecycle_mutex_);
    started_ = true;
  }
  workers_.reserve(options_.workers);
  for (unsigned i = 0; i < options_.workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
  acceptor_ = std::thread([this] { acceptor_loop(); });
  obs::Log(log::Level::kInfo, "serve.listening")
      .field("host", options_.host)
      .field("port", port_)
      .field("workers", static_cast<std::int64_t>(options_.workers))
      .field("max_queue", options_.max_queue)
      .field("cache_shards", cache_->shard_count())
      .field("store", disk_ ? options_.cache_dir : std::string())
      .emit();
}

void Server::request_shutdown() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  // Wake the acceptor out of accept(2); the fd itself is closed after the
  // join so the port stays reserved until the drain finishes.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  queue_->close();
  lifecycle_cv_.notify_all();
}

bool Server::wait_for_shutdown_request(int timeout_ms) {
  std::unique_lock<std::mutex> lock(lifecycle_mutex_);
  lifecycle_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms), [this] {
    return stopping_.load(std::memory_order_acquire);
  });
  return stopping_.load(std::memory_order_acquire);
}

void Server::wait() {
  {
    std::unique_lock<std::mutex> lock(lifecycle_mutex_);
    lifecycle_cv_.wait(lock, [this] {
      return stopping_.load(std::memory_order_acquire);
    });
    if (!started_ || stopped_) return;
    // First caller past this point performs the teardown; later callers
    // block on `stopped_` below.
    if (finalizing_in_progress_) {
      lifecycle_cv_.wait(lock, [this] { return stopped_; });
      return;
    }
    finalizing_in_progress_ = true;
  }

  if (acceptor_.joinable()) acceptor_.join();
  for (std::thread& worker : workers_) worker.join();

  const std::size_t flushed = cache_->flush();
  {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    if (flushed > 0)
      metrics_.counter_add(obs::kMetricServeCacheFlushed,
                           static_cast<std::int64_t>(flushed));
  }
  final_snapshot_ = metrics_prometheus();
  obs::Log(log::Level::kInfo, "serve.drained")
      .field("cache_entries", cache_->entries())
      .field("flushed", flushed)
      .field("traces_published", traces_.published())
      .emit();

  {
    std::lock_guard<std::mutex> lock(lifecycle_mutex_);
    stopped_ = true;
  }
  lifecycle_cv_.notify_all();
}

void Server::acceptor_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // EINVAL/EBADF after shutdown(listen_fd_): the drain has begun.
      return;
    }
    set_socket_timeouts(fd, options_.idle_timeout_ms);

    if (stopping_.load(std::memory_order_acquire)) {
      QueryResponse response;
      response.status = ResponseStatus::kShuttingDown;
      response.error = "daemon is shutting down";
      write_frame(fd, response.to_json());
      record_response(nullptr, ResponseStatus::kShuttingDown, false, 0.0);
      ::close(fd);
      continue;
    }
    AdmittedConnection connection;
    connection.fd = fd;
    connection.trace_id = obs::mint_trace_id();
    connection.accepted_at = Clock::now();
    if (!queue_->try_push(std::move(connection))) {
      // Admission control: bounded queue, never unbounded buffering. The
      // client gets an explicit overload answer plus a backoff hint fed by
      // the queue waits workers actually observed.
      QueryResponse response;
      response.status = ResponseStatus::kOverload;
      response.error = "request queue full";
      response.retry_after_ms = overload_retry_hint_ms();
      write_frame(fd, response.to_json());
      record_response(nullptr, ResponseStatus::kOverload, false, 0.0);
      ::close(fd);
      continue;
    }
    set_queue_depth_gauge();
  }
}

void Server::worker_loop() {
  for (;;) {
    std::optional<AdmittedConnection> connection = queue_->pop();
    if (!connection) return;  // admission closed and drained
    double queue_wait_ms = 0.0;
    {
      // The admission phase covers only the bookkeeping after pickup. The
      // blocking pop above is idle/queue time, not admission work — billing
      // it here once made `admission` dominate the phase profile of an idle
      // daemon. The request's real queue wait is still recorded in full,
      // via the queue-wait histogram and EMA inside note_queue_wait.
      const obs::ScopedPhase phase(obs::kPhaseAdmission);
      set_queue_depth_gauge();
      // Worker pickup is where the admission wait becomes observable: the
      // span between accept and this instant is pure queueing.
      queue_wait_ms = elapsed_ms(connection->accepted_at);
      note_queue_wait(queue_wait_ms, connection->trace_id);
    }
    serve_connection(*connection, queue_wait_ms);
  }
}

void Server::serve_connection(const AdmittedConnection& connection,
                              double queue_wait_ms) {
  const int fd = connection.fd;
  FrameReader reader(fd);
  bool first = true;
  for (;;) {
    std::string frame;
    // During shutdown the read gives up at the next idle timeout, which is
    // what drains workers blocked on keep-alive connections: every frame
    // already in flight is answered, then the connection closes.
    const FrameReader::Result result = reader.read(frame, &stopping_);
    if (result == FrameReader::Result::kOverflow) {
      QueryResponse response;
      response.status = ResponseStatus::kError;
      response.error = "frame exceeds " + std::to_string(kMaxFrameBytes) +
                       " bytes";
      write_frame(fd, response.to_json());
      record_response(nullptr, ResponseStatus::kError, false, 0.0);
      break;
    }
    if (result != FrameReader::Result::kFrame) break;
    if (frame.empty()) continue;  // stray blank line between frames
    if (frame.rfind("GET ", 0) == 0) {
      handle_http(fd, frame, reader);
      break;
    }
    FrameTraceInfo info;
    info.first = first;
    if (first) {
      // The connection's first frame inherits the accept-time context: its
      // tree starts at accept and contains the real queue wait.
      info.trace_id = connection.trace_id;
      info.pre_ms = elapsed_ms(connection.accepted_at);
      info.queue_wait_ms = queue_wait_ms;
      first = false;
    } else {
      // Keep-alive frames start fresh at frame read; their queue span is
      // zero-length (the connection was already being served).
      info.trace_id = obs::mint_trace_id();
    }
    if (!handle_query_frame(fd, frame, info)) break;
  }
  ::close(fd);
}

bool Server::handle_query_frame(int fd, const std::string& frame,
                                const FrameTraceInfo& info) {
  const Clock::time_point start = Clock::now();
  obs::RequestTraceBuilder builder(info.trace_id,
                                   info.first ? "" : "keep-alive",
                                   info.pre_ms);
  builder.add_span(obs::kStageQueue, 0.0, info.queue_wait_ms, 0,
                   info.first ? "" : "keep-alive");
  const std::uint64_t handle_span = builder.open(obs::kStageHandle);

  QueryRequest request;
  const std::uint64_t parse_span =
      builder.open(obs::kStageParse, handle_span);
  try {
    request = QueryRequest::from_json(json::Value::parse(frame));
  } catch (const Error& error) {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    metrics_.counter_add(obs::kMetricServeBadFrames);
    QueryResponse response;
    response.status = ResponseStatus::kError;
    response.error = error.what();
    response.trace_id = builder.trace_id();
    write_frame(fd, response.to_json());
    responses_error_.fetch_add(1, std::memory_order_relaxed);
    return false;  // a peer speaking garbage gets disconnected
  }
  builder.close(parse_span);
  builder.set_request(request.op, request.app);

  {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    metrics_.counter_add(
        obs::metric_key(obs::kMetricServeRequests, {{"op", request.op}}));
  }

  if (request.op == "shutdown") {
    // Flip the shutdown state BEFORE acking, so a client that has read the
    // ack frame can rely on the drain having already begun.
    request_shutdown();
    QueryResponse response;
    response.output = "shutting down\n";
    response.trace_id = builder.trace_id();
    const bool sent = write_frame(fd, response.to_json());
    record_response(&request, ResponseStatus::kOk, false, elapsed_ms(start),
                    builder.trace_id());
    audit(request, ResponseStatus::kOk, false, builder.trace_id());
    return sent && false;
  }

  if (request.op == "trace-dump") {
    // Administrative, never cached, and not published as a tree itself
    // (dumping traces should not displace the traces being dumped).
    QueryResponse response = respond_trace_dump(request);
    const bool sent = write_frame(fd, response.to_json());
    record_response(nullptr, response.status, false, 0.0);
    audit(request, response.status, false, builder.trace_id());
    return sent;
  }

  builder.close(handle_span);
  const QueryResponse response = respond(request, builder);
  const double latency_ms = elapsed_ms(start);
  record_response(&request, response.status, response.cache_hit, latency_ms,
                  builder.trace_id());
  audit(request, response.status, response.cache_hit, builder.trace_id());

  const std::uint64_t write_span = builder.open(obs::kStageWrite);
  bool sent;
  {
    obs::ScopedPhase phase(obs::kPhaseSerialize);
    sent = write_frame(fd, response.to_json());
  }
  builder.close(write_span);
  builder.set_outcome(response_status_name(response.status),
                      response.cache_hit);
  publish_trace(builder.finish());
  return sent;
}

QueryResponse Server::respond(const QueryRequest& request,
                              obs::RequestTraceBuilder& builder) {
  QueryResponse response;
  response.trace_id = builder.trace_id();
  const std::string key = request.cache_key();
  const std::uint64_t cache_span = builder.open(
      obs::kStageCache, 0, "shard=" + std::to_string(cache_->shard_index(key)));
  const double lookup_start_ms = builder.now_ms();
  try {
    obs::ScopedPhase cache_phase(obs::kPhaseCache);
    const ShardedScenarioCache::Lookup lookup = cache_->get_or_compute(
        key,
        [&request, &builder, cache_span] {
          // Owner path: this thread computes the answer; the compute span
          // (and the run's chunk spans) belong to this request's tree.
          obs::ScopedPhase compute_phase(obs::kPhaseCompute);
          const std::uint64_t compute_span =
              builder.open(obs::kStageCompute, cache_span);
          AnswerTrace answer_trace;
          std::string output = answer(request, &answer_trace);
          builder.close(compute_span);
          builder.set_chunk_spans(std::move(answer_trace.chunk_spans));
          return output;
        },
        builder.trace_id());
    response.output = *lookup.value;
    response.cache_hit = lookup.hit || lookup.disk_hit;
    // Hit-like outcomes get a span covering the whole lookup: for a
    // flight join that is the real wall-time wait on the leader's compute.
    if (lookup.joined_flight) {
      builder.add_span(obs::kStageFlightJoin, lookup_start_ms,
                       builder.now_ms(), cache_span,
                       "leader=" + (lookup.leader_trace_id.empty()
                                        ? std::string("unknown")
                                        : lookup.leader_trace_id));
    } else if (lookup.disk_hit) {
      builder.add_span(obs::kStageDiskLoad, lookup_start_ms,
                       builder.now_ms(), cache_span);
    } else if (lookup.hit) {
      builder.add_span(obs::kStageCacheHit, lookup_start_ms,
                       builder.now_ms(), cache_span);
    }
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    metrics_.counter_add(response.cache_hit ? obs::kMetricServeCacheHits
                                            : obs::kMetricServeCacheMisses);
    if (lookup.disk_hit) metrics_.counter_add(obs::kMetricServeCacheDiskHits);
  } catch (const Error& error) {
    response.status = ResponseStatus::kError;
    response.error = error.what();
  }
  builder.close(cache_span);
  return response;
}

QueryResponse Server::respond_trace_dump(const QueryRequest& request) {
  QueryResponse response;
  const std::optional<obs::RequestTree> tree =
      request.trace.empty() ? traces_.latest() : traces_.find(request.trace);
  if (!tree) {
    response.status = ResponseStatus::kError;
    response.error = request.trace.empty()
                         ? "no request traces recorded yet"
                         : "trace '" + request.trace + "' not retained";
    return response;
  }
  response.output = tree->to_json().dump() + "\n";
  response.trace_id = tree->trace_id;
  return response;
}

void Server::record_response(const QueryRequest* request,
                             ResponseStatus status, bool cache_hit,
                             double latency_ms, std::string_view trace_id) {
  (void)cache_hit;
  switch (status) {
    case ResponseStatus::kOk:
      responses_ok_.fetch_add(1, std::memory_order_relaxed);
      break;
    case ResponseStatus::kError:
      responses_error_.fetch_add(1, std::memory_order_relaxed);
      break;
    case ResponseStatus::kOverload:
      responses_overload_.fetch_add(1, std::memory_order_relaxed);
      break;
    case ResponseStatus::kShuttingDown:
      responses_shutting_down_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  metrics_.counter_add(obs::metric_key(
      obs::kMetricServeResponses,
      {{"status", response_status_name(status)}}));
  if (request != nullptr)
    // The trace id rides along as the bucket's exemplar, linking the
    // /metrics latency distribution to a concrete dumpable request tree.
    metrics_.observe(obs::kMetricServeRequestLatencyMs, latency_ms, 1.0,
                     trace_id);
}

void Server::audit(const QueryRequest& request, ResponseStatus status,
                   bool cache_hit, const std::string& trace_id) {
  obs::Log(log::Level::kInfo, "serve.request")
      .field("trace_id", trace_id)
      .field("op", request.op)
      .field("app", request.app)
      .field("status", response_status_name(status))
      .field("source", cache_hit ? "cache" : "computed")
      .emit();
  std::lock_guard<std::mutex> lock(audit_mutex_);
  ServeAuditEntry entry;
  entry.sequence = ++audit_sequence_;
  entry.trace_id = trace_id;
  entry.op = request.op;
  entry.app = request.app;
  entry.status = response_status_name(status);
  entry.cache_hit = cache_hit;
  if (audit_log_.size() >= kMaxAuditEntries)
    audit_log_.erase(audit_log_.begin());
  audit_log_.push_back(std::move(entry));
}

void Server::publish_trace(obs::RequestTree tree) {
  const std::vector<std::string> problems = obs::validate_request_tree(tree);
  {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    metrics_.counter_add(obs::kMetricServeTracesPublished);
    if (!problems.empty())
      metrics_.counter_add(obs::kMetricServeTraceInvalid);
  }
  if (!problems.empty()) {
    obs::Log(log::Level::kWarn, "serve.trace_invalid")
        .field("trace_id", tree.trace_id)
        .field("problems", problems.size())
        .field("first", problems.front())
        .emit();
  }
  // Invalid trees are retained too: a tree that fails its own validator is
  // exactly the one worth dumping.
  traces_.publish(std::move(tree));
}

double Server::overload_retry_hint_ms() {
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  // Scale the observed per-slot wait to the backlog a newcomer would sit
  // behind; the configured hint is the floor so an idle daemon's answer is
  // stable (tests pin it) and clients never get told "retry immediately"
  // while the queue is provably full.
  const double backlog =
      static_cast<double>(queue_->depth() + 1);
  return std::max(options_.retry_after_ms, ema_queue_wait_ms_ * backlog);
}

void Server::note_queue_wait(double wait_ms, const std::string& trace_id) {
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  metrics_.observe(obs::kMetricServeQueueWaitMs, wait_ms, 1.0, trace_id);
  constexpr double kAlpha = 0.2;
  ema_queue_wait_ms_ = ema_queue_wait_ms_ == 0.0
                           ? wait_ms
                           : (1.0 - kAlpha) * ema_queue_wait_ms_ +
                                 kAlpha * wait_ms;
}

obs::Histogram Server::latency_histogram() const {
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  const obs::Histogram* hist =
      metrics_.find_histogram(obs::kMetricServeRequestLatencyMs);
  return hist != nullptr ? *hist : obs::Histogram();
}

void Server::handle_http(int fd, const std::string& request_line,
                         FrameReader& reader) {
  // Drain the header block; a scrape's headers are small and uninteresting.
  std::string header;
  while (reader.read(header, &stopping_) == FrameReader::Result::kFrame &&
         !header.empty()) {
  }
  std::istringstream line(request_line);
  std::string method, path;
  line >> method >> path;
  {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    metrics_.counter_add(
        obs::metric_key(obs::kMetricServeHttpRequests, {{"path", path}}));
  }
  std::string status = "200 OK";
  std::string body;
  if (path == "/metrics") {
    body = metrics_prometheus();
  } else if (path == "/healthz") {
    body = shutdown_requested() ? "draining\n" : "ok\n";
  } else {
    status = "404 Not Found";
    body = "not found (try /metrics or /healthz)\n";
  }
  std::ostringstream response;
  response << "HTTP/1.1 " << status << "\r\n"
           << "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
           << "Content-Length: " << body.size() << "\r\n"
           << "Connection: close\r\n\r\n"
           << body;
  write_all(fd, response.str());
}

void Server::set_queue_depth_gauge() {
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  metrics_.gauge_set(obs::kMetricServeQueueDepth,
                     static_cast<double>(queue_->depth()));
}

std::string Server::metrics_prometheus() const {
  const ShardCacheCounters cache_counters = cache_->counters();
  const std::size_t entries = cache_->entries();
  const std::map<std::string, obs::PhaseStats> phases =
      obs::phase_profiler().snapshot();
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  // Mirror component-owned state into gauges at scrape time; the request
  // counters above are maintained inline on the serving path.
  auto& metrics = const_cast<obs::MetricsRegistry&>(metrics_);
  metrics.gauge_set(obs::kMetricServeCacheEntries,
                    static_cast<double>(entries));
  metrics.gauge_set(obs::kMetricServeCacheShards,
                    static_cast<double>(cache_->shard_count()));
  metrics.gauge_set(obs::kMetricServeCacheShardHits,
                    static_cast<double>(cache_counters.hits));
  metrics.gauge_set(obs::kMetricServeCacheShardMisses,
                    static_cast<double>(cache_counters.misses));
  metrics.gauge_set(obs::kMetricServeQueueDepth,
                    static_cast<double>(queue_->depth()));
  metrics.gauge_set(obs::kMetricServeQueueCapacity,
                    static_cast<double>(queue_->capacity()));
  metrics.gauge_set(obs::kMetricServeQueueMaxDepth,
                    static_cast<double>(queue_->max_depth_seen()));
  metrics.gauge_set(obs::kMetricServeQueueRejected,
                    static_cast<double>(queue_->rejected()));
  metrics.gauge_set(obs::kMetricServeWorkers,
                    static_cast<double>(options_.workers));
  // Phase-profiler snapshot: wall-time attribution per stage, as labeled
  // gauge families so one scrape carries the whole self-profile.
  for (const auto& [stage, stats] : phases) {
    metrics.gauge_set(
        obs::metric_key(obs::kMetricPhaseTotalMs, {{"stage", stage}}),
        stats.total_ms);
    metrics.gauge_set(
        obs::metric_key(obs::kMetricPhaseSelfMs, {{"stage", stage}}),
        stats.self_ms);
    metrics.gauge_set(
        obs::metric_key(obs::kMetricPhaseMaxMs, {{"stage", stage}}),
        stats.max_ms);
    metrics.gauge_set(
        obs::metric_key(obs::kMetricPhaseCalls, {{"stage", stage}}),
        static_cast<double>(stats.calls));
  }
  return metrics_.to_prometheus();
}

std::vector<ServeAuditEntry> Server::audit_log() const {
  std::lock_guard<std::mutex> lock(audit_mutex_);
  return audit_log_;
}

std::int64_t Server::responses_sent(ResponseStatus status) const {
  switch (status) {
    case ResponseStatus::kOk:
      return responses_ok_.load(std::memory_order_relaxed);
    case ResponseStatus::kError:
      return responses_error_.load(std::memory_order_relaxed);
    case ResponseStatus::kOverload:
      return responses_overload_.load(std::memory_order_relaxed);
    case ResponseStatus::kShuttingDown:
      return responses_shutting_down_.load(std::memory_order_relaxed);
  }
  return 0;
}

}  // namespace hetsched::serve
