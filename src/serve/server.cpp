#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "serve/service.hpp"

namespace hetsched::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// Bounded decision audit: old entries rotate out, the log never grows
/// without limit in a long-running daemon.
constexpr std::size_t kMaxAuditEntries = 4096;

void set_socket_timeouts(int fd, int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  // Writes get a generous bound so a stalled reader cannot wedge a worker.
  timeval send_tv{};
  send_tv.tv_sec = 10;
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &send_tv, sizeof(send_tv));
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

double elapsed_ms(Clock::time_point since) {
  return std::chrono::duration<double, std::milli>(Clock::now() - since)
      .count();
}

}  // namespace

Server::Server(ServeOptions options) : options_(std::move(options)) {
  HS_REQUIRE(options_.workers > 0, "serve needs at least one worker");
  if (!options_.cache_dir.empty())
    disk_ = std::make_unique<sweep::ResultCache>(options_.cache_dir);
  cache_ = std::make_unique<ShardedScenarioCache>(options_.shards,
                                                  disk_.get());
  queue_ = std::make_unique<AdmissionQueue>(options_.max_queue);
  metrics_.enable();
  metrics_.histogram_bounds("serve_request_latency_ms",
                            obs::Histogram::default_bounds());
}

Server::~Server() {
  request_shutdown();
  wait();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void Server::start() {
  HS_REQUIRE(!started_, "server already started");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  HS_REQUIRE(listen_fd_ >= 0,
             "socket() failed: " << std::strerror(errno));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  HS_REQUIRE(::inet_pton(AF_INET, options_.host.c_str(),
                         &address.sin_addr) == 1,
             "invalid bind address '" << options_.host << "'");
  HS_REQUIRE(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&address),
                    sizeof(address)) == 0,
             "cannot bind " << options_.host << ":" << options_.port << ": "
                            << std::strerror(errno));
  HS_REQUIRE(::listen(listen_fd_, 128) == 0,
             "listen() failed: " << std::strerror(errno));

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  HS_REQUIRE(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                           &bound_len) == 0,
             "getsockname() failed: " << std::strerror(errno));
  port_ = ntohs(bound.sin_port);

  {
    std::lock_guard<std::mutex> lock(lifecycle_mutex_);
    started_ = true;
  }
  workers_.reserve(options_.workers);
  for (unsigned i = 0; i < options_.workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
  acceptor_ = std::thread([this] { acceptor_loop(); });
  HS_INFO << "serve: listening on " << options_.host << ":" << port_ << " ("
          << options_.workers << " workers, queue " << options_.max_queue
          << ", " << cache_->shard_count() << " cache shards"
          << (disk_ ? ", store " + options_.cache_dir : std::string())
          << ")";
}

void Server::request_shutdown() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  // Wake the acceptor out of accept(2); the fd itself is closed after the
  // join so the port stays reserved until the drain finishes.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  queue_->close();
  lifecycle_cv_.notify_all();
}

bool Server::wait_for_shutdown_request(int timeout_ms) {
  std::unique_lock<std::mutex> lock(lifecycle_mutex_);
  lifecycle_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms), [this] {
    return stopping_.load(std::memory_order_acquire);
  });
  return stopping_.load(std::memory_order_acquire);
}

void Server::wait() {
  {
    std::unique_lock<std::mutex> lock(lifecycle_mutex_);
    lifecycle_cv_.wait(lock, [this] {
      return stopping_.load(std::memory_order_acquire);
    });
    if (!started_ || stopped_) return;
    // First caller past this point performs the teardown; later callers
    // block on `stopped_` below.
    if (finalizing_in_progress_) {
      lifecycle_cv_.wait(lock, [this] { return stopped_; });
      return;
    }
    finalizing_in_progress_ = true;
  }

  if (acceptor_.joinable()) acceptor_.join();
  for (std::thread& worker : workers_) worker.join();

  const std::size_t flushed = cache_->flush();
  {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    if (flushed > 0)
      metrics_.counter_add("serve_cache_flushed_total",
                           static_cast<std::int64_t>(flushed));
  }
  final_snapshot_ = metrics_prometheus();
  HS_INFO << "serve: drained; " << cache_->entries()
          << " cached scenario(s), " << flushed << " flushed to store";

  {
    std::lock_guard<std::mutex> lock(lifecycle_mutex_);
    stopped_ = true;
  }
  lifecycle_cv_.notify_all();
}

void Server::acceptor_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // EINVAL/EBADF after shutdown(listen_fd_): the drain has begun.
      return;
    }
    set_socket_timeouts(fd, options_.idle_timeout_ms);

    if (stopping_.load(std::memory_order_acquire)) {
      QueryResponse response;
      response.status = ResponseStatus::kShuttingDown;
      response.error = "daemon is shutting down";
      write_frame(fd, response.to_json());
      record_response(nullptr, ResponseStatus::kShuttingDown, false, 0.0);
      ::close(fd);
      continue;
    }
    if (!queue_->try_push(fd)) {
      // Admission control: bounded queue, never unbounded buffering. The
      // client gets an explicit overload answer plus a backoff hint.
      QueryResponse response;
      response.status = ResponseStatus::kOverload;
      response.error = "request queue full";
      response.retry_after_ms = options_.retry_after_ms;
      write_frame(fd, response.to_json());
      record_response(nullptr, ResponseStatus::kOverload, false, 0.0);
      ::close(fd);
      continue;
    }
    set_queue_depth_gauge();
  }
}

void Server::worker_loop() {
  for (;;) {
    const std::optional<int> fd = queue_->pop();
    if (!fd) return;  // admission closed and drained
    set_queue_depth_gauge();
    serve_connection(*fd);
  }
}

void Server::serve_connection(int fd) {
  FrameReader reader(fd);
  for (;;) {
    std::string frame;
    // During shutdown the read gives up at the next idle timeout, which is
    // what drains workers blocked on keep-alive connections: every frame
    // already in flight is answered, then the connection closes.
    const FrameReader::Result result = reader.read(frame, &stopping_);
    if (result == FrameReader::Result::kOverflow) {
      QueryResponse response;
      response.status = ResponseStatus::kError;
      response.error = "frame exceeds " + std::to_string(kMaxFrameBytes) +
                       " bytes";
      write_frame(fd, response.to_json());
      record_response(nullptr, ResponseStatus::kError, false, 0.0);
      break;
    }
    if (result != FrameReader::Result::kFrame) break;
    if (frame.empty()) continue;  // stray blank line between frames
    if (frame.rfind("GET ", 0) == 0) {
      handle_http(fd, frame, reader);
      break;
    }
    if (!handle_query_frame(fd, frame)) break;
  }
  ::close(fd);
}

bool Server::handle_query_frame(int fd, const std::string& frame) {
  const Clock::time_point start = Clock::now();
  QueryRequest request;
  try {
    request = QueryRequest::from_json(json::Value::parse(frame));
  } catch (const Error& error) {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    metrics_.counter_add("serve_bad_frames_total");
    QueryResponse response;
    response.status = ResponseStatus::kError;
    response.error = error.what();
    write_frame(fd, response.to_json());
    responses_error_.fetch_add(1, std::memory_order_relaxed);
    return false;  // a peer speaking garbage gets disconnected
  }

  {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    metrics_.counter_add(
        obs::metric_key("serve_requests_total", {{"op", request.op}}));
  }

  if (request.op == "shutdown") {
    // Flip the shutdown state BEFORE acking, so a client that has read the
    // ack frame can rely on the drain having already begun.
    request_shutdown();
    QueryResponse response;
    response.output = "shutting down\n";
    const bool sent = write_frame(fd, response.to_json());
    record_response(&request, ResponseStatus::kOk, false,
                    elapsed_ms(start));
    audit(request, ResponseStatus::kOk, false);
    return sent && false;
  }

  const QueryResponse response = respond(request);
  const double latency_ms = elapsed_ms(start);
  record_response(&request, response.status, response.cache_hit,
                  latency_ms);
  audit(request, response.status, response.cache_hit);
  return write_frame(fd, response.to_json());
}

QueryResponse Server::respond(const QueryRequest& request) {
  QueryResponse response;
  try {
    const ShardedScenarioCache::Lookup lookup =
        cache_->get_or_compute(request.cache_key(),
                               [&request] { return answer(request); });
    response.output = *lookup.value;
    response.cache_hit = lookup.hit || lookup.disk_hit;
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    metrics_.counter_add(response.cache_hit ? "serve_cache_hits_total"
                                            : "serve_cache_misses_total");
    if (lookup.disk_hit) metrics_.counter_add("serve_cache_disk_hits_total");
  } catch (const Error& error) {
    response.status = ResponseStatus::kError;
    response.error = error.what();
  }
  return response;
}

void Server::record_response(const QueryRequest* request,
                             ResponseStatus status, bool cache_hit,
                             double latency_ms) {
  (void)cache_hit;
  switch (status) {
    case ResponseStatus::kOk:
      responses_ok_.fetch_add(1, std::memory_order_relaxed);
      break;
    case ResponseStatus::kError:
      responses_error_.fetch_add(1, std::memory_order_relaxed);
      break;
    case ResponseStatus::kOverload:
      responses_overload_.fetch_add(1, std::memory_order_relaxed);
      break;
    case ResponseStatus::kShuttingDown:
      responses_shutting_down_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  metrics_.counter_add(obs::metric_key(
      "serve_responses_total", {{"status", response_status_name(status)}}));
  if (request != nullptr)
    metrics_.observe("serve_request_latency_ms", latency_ms);
}

void Server::audit(const QueryRequest& request, ResponseStatus status,
                   bool cache_hit) {
  HS_INFO << "serve: op=" << request.op << " app=" << request.app
          << " status=" << response_status_name(status)
          << " source=" << (cache_hit ? "cache" : "computed");
  std::lock_guard<std::mutex> lock(audit_mutex_);
  ServeAuditEntry entry;
  entry.sequence = ++audit_sequence_;
  entry.op = request.op;
  entry.app = request.app;
  entry.status = response_status_name(status);
  entry.cache_hit = cache_hit;
  if (audit_log_.size() >= kMaxAuditEntries)
    audit_log_.erase(audit_log_.begin());
  audit_log_.push_back(std::move(entry));
}

void Server::handle_http(int fd, const std::string& request_line,
                         FrameReader& reader) {
  // Drain the header block; a scrape's headers are small and uninteresting.
  std::string header;
  while (reader.read(header, &stopping_) == FrameReader::Result::kFrame &&
         !header.empty()) {
  }
  std::istringstream line(request_line);
  std::string method, path;
  line >> method >> path;
  {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    metrics_.counter_add(
        obs::metric_key("serve_http_requests_total", {{"path", path}}));
  }
  std::string status = "200 OK";
  std::string body;
  if (path == "/metrics") {
    body = metrics_prometheus();
  } else if (path == "/healthz") {
    body = shutdown_requested() ? "draining\n" : "ok\n";
  } else {
    status = "404 Not Found";
    body = "not found (try /metrics or /healthz)\n";
  }
  std::ostringstream response;
  response << "HTTP/1.1 " << status << "\r\n"
           << "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
           << "Content-Length: " << body.size() << "\r\n"
           << "Connection: close\r\n\r\n"
           << body;
  write_all(fd, response.str());
}

void Server::set_queue_depth_gauge() {
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  metrics_.gauge_set("serve_queue_depth",
                     static_cast<double>(queue_->depth()));
}

std::string Server::metrics_prometheus() const {
  const ShardCacheCounters cache_counters = cache_->counters();
  const std::size_t entries = cache_->entries();
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  // Mirror component-owned state into gauges at scrape time; the request
  // counters above are maintained inline on the serving path.
  auto& metrics = const_cast<obs::MetricsRegistry&>(metrics_);
  metrics.gauge_set("serve_cache_entries", static_cast<double>(entries));
  metrics.gauge_set("serve_cache_shards",
                    static_cast<double>(cache_->shard_count()));
  metrics.gauge_set("serve_cache_shard_hits",
                    static_cast<double>(cache_counters.hits));
  metrics.gauge_set("serve_cache_shard_misses",
                    static_cast<double>(cache_counters.misses));
  metrics.gauge_set("serve_queue_depth",
                    static_cast<double>(queue_->depth()));
  metrics.gauge_set("serve_queue_capacity",
                    static_cast<double>(queue_->capacity()));
  metrics.gauge_set("serve_queue_max_depth",
                    static_cast<double>(queue_->max_depth_seen()));
  metrics.gauge_set("serve_queue_rejected",
                    static_cast<double>(queue_->rejected()));
  metrics.gauge_set("serve_workers",
                    static_cast<double>(options_.workers));
  return metrics_.to_prometheus();
}

std::vector<ServeAuditEntry> Server::audit_log() const {
  std::lock_guard<std::mutex> lock(audit_mutex_);
  return audit_log_;
}

std::int64_t Server::responses_sent(ResponseStatus status) const {
  switch (status) {
    case ResponseStatus::kOk:
      return responses_ok_.load(std::memory_order_relaxed);
    case ResponseStatus::kError:
      return responses_error_.load(std::memory_order_relaxed);
    case ResponseStatus::kOverload:
      return responses_overload_.load(std::memory_order_relaxed);
    case ResponseStatus::kShuttingDown:
      return responses_shutting_down_.load(std::memory_order_relaxed);
  }
  return 0;
}

}  // namespace hetsched::serve
