#include "serve/serve_bench.hpp"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"

namespace hetsched::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// A small rotating query mix over the served apps and ops, all on the
/// functional problem sizes.
QueryRequest bench_request(unsigned client, int index, bool small) {
  const std::vector<std::string>& apps = served_app_names();
  const std::vector<std::string>& ops = served_ops();
  const std::size_t pick = static_cast<std::size_t>(client) * 37 +
                           static_cast<std::size_t>(index);
  QueryRequest request;
  request.op = ops[pick % ops.size()];
  request.app = apps[pick % apps.size()];
  request.small = small;
  request.sync = (pick % 5) == 0;
  return request;
}

}  // namespace

ServeBenchResult run_serve_bench(const ServeBenchOptions& options) {
  ServeBenchResult result;
  result.options = options;

  ServeOptions serve_options;
  serve_options.workers = options.workers;
  serve_options.max_queue = options.clients * 4 + 16;
  Server server(serve_options);
  server.start();

  std::atomic<std::int64_t> ok{0};
  std::atomic<std::int64_t> errors{0};
  std::atomic<std::int64_t> cache_hits{0};

  const Clock::time_point start = Clock::now();
  std::vector<std::thread> clients;
  clients.reserve(options.clients);
  for (unsigned c = 0; c < options.clients; ++c) {
    clients.emplace_back([&, c] {
      try {
        QueryClient client("127.0.0.1", server.port());
        for (int i = 0; i < options.requests_per_client; ++i) {
          const QueryResponse response =
              client.ask(bench_request(c, i, options.small));
          if (response.status == ResponseStatus::kOk) {
            ok.fetch_add(1, std::memory_order_relaxed);
            if (response.cache_hit)
              cache_hits.fetch_add(1, std::memory_order_relaxed);
          } else {
            errors.fetch_add(1, std::memory_order_relaxed);
          }
        }
      } catch (const Error&) {
        errors.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& client : clients) client.join();
  result.wall_ms = std::chrono::duration<double, std::milli>(Clock::now() -
                                                             start)
                       .count();

  // Percentiles come from the daemon's own latency histogram — the same
  // series /metrics exposes — not from client-side stopwatches.
  const obs::Histogram latency = server.latency_histogram();
  result.latency_p50_ms = obs::histogram_quantile(latency, 0.50);
  result.latency_p95_ms = obs::histogram_quantile(latency, 0.95);
  result.latency_p99_ms = obs::histogram_quantile(latency, 0.99);

  server.request_shutdown();
  server.wait();

  result.requests = ok.load();
  result.errors = errors.load();
  result.cache_hits = cache_hits.load();
  // Unset (serialized null) on a 0ms wall clock: the rate is unknown, and
  // dividing would feed inf/NaN into the byte-stable JSON writer.
  if (result.wall_ms > 0.0) {
    result.requests_per_second =
        static_cast<double>(result.requests) / (result.wall_ms / 1000.0);
  }
  return result;
}

json::Value serve_bench_to_json(const ServeBenchResult& result) {
  json::Value value;
  value.set("name", json::Value("serve_loopback"));
  value.set("clients", json::Value(static_cast<std::int64_t>(
                           result.options.clients)));
  value.set("requests_per_client",
            json::Value(static_cast<std::int64_t>(
                result.options.requests_per_client)));
  value.set("workers", json::Value(static_cast<std::int64_t>(
                           result.options.workers)));
  value.set("requests", json::Value(result.requests));
  value.set("errors", json::Value(result.errors));
  value.set("cache_hits", json::Value(result.cache_hits));
  value.set("wall_ms", json::Value(result.wall_ms));
  value.set("requests_per_second",
            result.requests_per_second
                ? json::Value(*result.requests_per_second)
                : json::Value());
  value.set("latency_p50_ms", json::Value(result.latency_p50_ms));
  value.set("latency_p95_ms", json::Value(result.latency_p95_ms));
  value.set("latency_p99_ms", json::Value(result.latency_p99_ms));
  return value;
}

}  // namespace hetsched::serve
