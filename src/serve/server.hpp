#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/request_trace.hpp"
#include "serve/admission.hpp"
#include "serve/protocol.hpp"
#include "serve/shard_cache.hpp"
#include "sweep/cache.hpp"

/// The matchmaker daemon (`hetsched_cli serve`).
///
/// One acceptor thread listens on a loopback TCP port and admits
/// connections into a bounded AdmissionQueue; a worker pool drains the
/// queue and serves each connection's newline-delimited JSON frames
/// (protocol.hpp). Answers resolve through a ShardedScenarioCache —
/// single-flight per key, fronting an optional on-disk sweep::ResultCache
/// — so concurrent identical queries collapse into one computation and a
/// restarted daemon starts warm.
///
/// A connection whose first line is an HTTP GET is served as a Prometheus
/// scrape instead: GET /metrics returns the registry's text exposition.
///
/// Shutdown (SIGINT/SIGTERM via Server::request_shutdown, or a "shutdown"
/// op frame) is graceful: admission closes, queued connections drain,
/// in-flight requests finish, the cache flushes to the sweep store, and a
/// final metrics snapshot becomes available via final_snapshot().
namespace hetsched::serve {

struct ServeOptions {
  /// Bind address. The daemon is a loopback service by design; binding a
  /// routable address is the operator's explicit choice.
  std::string host = "127.0.0.1";
  /// TCP port; 0 asks the kernel for an ephemeral port (see Server::port).
  int port = 0;
  /// Worker threads == maximum in-flight requests.
  unsigned workers = 4;
  /// Bounded pending-connection queue (admission control).
  std::size_t max_queue = 64;
  /// Shard count of the in-memory scenario cache.
  std::size_t shards = 8;
  /// On-disk sweep cache directory fronted by the shard cache; empty
  /// disables persistence.
  std::string cache_dir;
  /// Floor of the backoff hint carried by overload responses; the live
  /// hint additionally folds in observed queue-wait times (see
  /// Server::overload_retry_hint_ms).
  double retry_after_ms = 50.0;
  /// Receive-timeout granularity on accepted sockets: how quickly a worker
  /// blocked on an idle keep-alive connection notices a shutdown.
  int idle_timeout_ms = 200;
  /// How many finished request trees the trace store retains for
  /// `trace-dump` (ring; oldest evicted first).
  std::size_t trace_capacity = 256;
};

/// One audit entry per served query decision.
struct ServeAuditEntry {
  std::int64_t sequence = 0;
  std::string trace_id;  ///< correlates the entry with its request tree
  std::string op;
  std::string app;
  std::string status;  ///< response_status_name of what was sent
  bool cache_hit = false;
};

class Server {
 public:
  explicit Server(ServeOptions options);
  /// Joins everything; equivalent to shutdown() + wait() if still running.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the acceptor + worker threads. Throws
  /// hetsched::Error when the socket cannot be bound.
  void start();

  /// The bound port (the kernel's choice when options.port == 0). Valid
  /// after start().
  int port() const { return port_; }
  const ServeOptions& options() const { return options_; }

  /// Begins graceful shutdown (idempotent, safe from any thread): stop
  /// admitting, drain, flush, snapshot. Returns immediately; use wait().
  void request_shutdown();
  /// True once request_shutdown was called (by signal, API, or a shutdown
  /// frame).
  bool shutdown_requested() const {
    return stopping_.load(std::memory_order_acquire);
  }
  /// Blocks until the daemon has fully drained and stopped.
  void wait();
  /// Blocks until shutdown is requested or `timeout_ms` elapses; returns
  /// shutdown_requested(). The serve verb's signal loop ticks on this.
  bool wait_for_shutdown_request(int timeout_ms);

  /// Current Prometheus text exposition (what GET /metrics serves).
  std::string metrics_prometheus() const;
  /// The final exposition captured after drain (valid after wait()).
  const std::string& final_snapshot() const { return final_snapshot_; }

  const ShardedScenarioCache& cache() const { return *cache_; }
  const AdmissionQueue& queue() const { return *queue_; }
  /// Finished request span trees (bounded ring; what trace-dump serves).
  const obs::RequestTraceStore& traces() const { return traces_; }
  /// Decision audit log (bounded; newest entries win).
  std::vector<ServeAuditEntry> audit_log() const;

  /// Copy of the request-latency histogram (exemplars included); the
  /// serve_loopback bench derives its p50/p95/p99 from this, so the bench
  /// and the daemon's /metrics agree by construction.
  obs::Histogram latency_histogram() const;

  /// Total query frames answered, by response status (for tests).
  std::int64_t responses_sent(ResponseStatus status) const;

 private:
  /// Trace context of one frame being handled (built per frame by
  /// serve_connection; the first frame inherits the connection's accept
  /// context, later keep-alive frames start fresh at frame read).
  struct FrameTraceInfo {
    std::string trace_id;
    /// ms between connection accept and frame-handling start (first frame
    /// only); shifts the tree's epoch back so [0] is the accept instant.
    double pre_ms = 0.0;
    /// Admission queue wait (first frame only).
    double queue_wait_ms = 0.0;
    bool first = false;
  };

  void acceptor_loop();
  void worker_loop();
  void serve_connection(const AdmittedConnection& connection,
                        double queue_wait_ms);
  /// Returns false when the connection should close after this frame.
  bool handle_query_frame(int fd, const std::string& frame,
                          const FrameTraceInfo& info);
  void handle_http(int fd, const std::string& request_line,
                   FrameReader& reader);
  QueryResponse respond(const QueryRequest& request,
                        obs::RequestTraceBuilder& builder);
  QueryResponse respond_trace_dump(const QueryRequest& request);
  void record_response(const QueryRequest* request, ResponseStatus status,
                       bool cache_hit, double latency_ms,
                       std::string_view trace_id = {});
  void audit(const QueryRequest& request, ResponseStatus status,
             bool cache_hit, const std::string& trace_id);
  void set_queue_depth_gauge();
  /// Validates and publishes a finished tree; invalid trees are still
  /// retained (debuggability) but counted in serve_trace_invalid_total.
  void publish_trace(obs::RequestTree tree);
  /// Live overload backoff hint: the configured floor, raised by the
  /// observed queue-wait EMA scaled to the current backlog.
  double overload_retry_hint_ms();
  void note_queue_wait(double wait_ms, const std::string& trace_id);

  ServeOptions options_;
  int listen_fd_ = -1;
  int port_ = 0;

  std::unique_ptr<sweep::ResultCache> disk_;
  std::unique_ptr<ShardedScenarioCache> cache_;
  std::unique_ptr<AdmissionQueue> queue_;

  std::thread acceptor_;
  std::vector<std::thread> workers_;

  std::atomic<bool> stopping_{false};
  std::mutex lifecycle_mutex_;
  std::condition_variable lifecycle_cv_;
  bool started_ = false;
  bool stopped_ = false;
  /// Set by the wait() caller that performs the join/flush/snapshot, so
  /// concurrent wait()s block instead of double-joining.
  bool finalizing_in_progress_ = false;

  /// MetricsRegistry is not thread-safe; every touch goes through
  /// metrics_mutex_. Snapshots serialize under the same lock.
  mutable std::mutex metrics_mutex_;
  obs::MetricsRegistry metrics_;
  /// EMA of observed queue waits (ms), guarded by metrics_mutex_; input to
  /// the overload retry_after_ms heuristic.
  double ema_queue_wait_ms_ = 0.0;

  obs::RequestTraceStore traces_;
  std::atomic<std::int64_t> responses_ok_{0};
  std::atomic<std::int64_t> responses_error_{0};
  std::atomic<std::int64_t> responses_overload_{0};
  std::atomic<std::int64_t> responses_shutting_down_{0};

  mutable std::mutex audit_mutex_;
  std::vector<ServeAuditEntry> audit_log_;
  std::int64_t audit_sequence_ = 0;

  std::string final_snapshot_;
};

}  // namespace hetsched::serve
