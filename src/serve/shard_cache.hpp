#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace hetsched::sweep {
class ResultCache;
}  // namespace hetsched::sweep

/// Sharded in-memory scenario cache for the serve daemon.
///
/// N mutex-guarded shards keyed by the FNV-1a digest of the canonical
/// request key (sweep::fnv1a64 — the same content address the sweep cache
/// uses), so concurrent requests for distinct keys proceed on distinct
/// locks. Each shard is single-flight: the first caller of a key becomes
/// its owner and computes the value while concurrent identical requests
/// block on a shared_future instead of racing their own computation —
/// exactly the sweep::ScenarioMemo discipline, lifted to a long-running
/// process.
///
/// The cache fronts an optional on-disk sweep::ResultCache: an owner first
/// consults the store (a hit there is a disk_hit, no computation), and
/// entries computed in memory are flushed back on Server shutdown so the
/// next daemon generation starts warm.
namespace hetsched::serve {

struct ShardCacheCounters {
  /// Lookups served by an existing in-memory entry (including waiting on a
  /// computation already in flight).
  std::int64_t hits = 0;
  /// Lookups that had to create the entry (owner path). hits + misses ==
  /// total lookups, always.
  std::int64_t misses = 0;
  /// Owner lookups satisfied by the on-disk store.
  std::int64_t disk_hits = 0;
  /// Owner lookups that ran the compute function.
  std::int64_t computes = 0;
  /// Entries written to the on-disk store by flush().
  std::int64_t flushed = 0;
  /// flush() attempts the store rejected (best effort, reuse lost only).
  std::int64_t dropped_flushes = 0;
};

class ShardedScenarioCache {
 public:
  using ValuePtr = std::shared_ptr<const std::string>;
  using ComputeFn = std::function<std::string()>;

  struct Lookup {
    ValuePtr value;
    /// True when this lookup did not own the computation (served from the
    /// map, a completed entry, or a computation already in flight).
    bool hit = false;
    /// True when the owning lookup loaded the value from the disk store.
    bool disk_hit = false;
    /// True when this lookup blocked on a computation still in flight
    /// (single-flight join) rather than reading a completed entry.
    bool joined_flight = false;
    /// Trace id of the request that owns/owned the computation (empty for
    /// owner lookups and entries whose owner recorded none). A joiner's
    /// request tree parents its wait under this leader.
    std::string leader_trace_id;
  };

  /// `disk` may be null (pure in-memory cache); when set it must outlive
  /// this object. `shards` is clamped to at least 1.
  explicit ShardedScenarioCache(std::size_t shards = 8,
                                const sweep::ResultCache* disk = nullptr);

  ShardedScenarioCache(const ShardedScenarioCache&) = delete;
  ShardedScenarioCache& operator=(const ShardedScenarioCache&) = delete;

  /// Returns the cached value for `key`, invoking `compute` exactly once
  /// per key across all threads (single-flight). A compute that throws is
  /// propagated to every waiter of that flight and the entry is removed,
  /// so a later request retries instead of caching the failure.
  /// `caller_trace` (optional) is recorded as the flight's leader so
  /// joiners can parent their wait to the owning request's trace.
  Lookup get_or_compute(const std::string& key, const ComputeFn& compute,
                        std::string_view caller_trace = {});

  /// Writes every entry computed in memory since the last flush to the
  /// disk store (no-op without one). Returns the number written.
  std::size_t flush();

  std::size_t shard_count() const { return shards_.size(); }
  /// Shard index `key` maps to (exposed for tests).
  std::size_t shard_index(const std::string& key) const;
  /// Total resident entries across shards.
  std::size_t entries() const;
  ShardCacheCounters counters() const;

 private:
  struct Flight {
    std::shared_future<ValuePtr> future;
    /// Trace id of the request that created (owns) this entry.
    std::string owner_trace;
  };

  struct Shard {
    std::mutex mutex;
    std::unordered_map<std::string, Flight> entries;
    /// Keys whose value was computed here (not disk-loaded) and not yet
    /// flushed, paired with the computed value so flush() needs no future.
    std::vector<std::pair<std::string, ValuePtr>> dirty;
  };

  std::vector<std::unique_ptr<Shard>> shards_;
  const sweep::ResultCache* disk_;
  std::atomic<std::int64_t> hits_{0};
  std::atomic<std::int64_t> misses_{0};
  std::atomic<std::int64_t> disk_hits_{0};
  std::atomic<std::int64_t> computes_{0};
  std::atomic<std::int64_t> flushed_{0};
  std::atomic<std::int64_t> dropped_flushes_{0};
};

}  // namespace hetsched::serve
