#include "serve/admission.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace hetsched::serve {

AdmissionQueue::AdmissionQueue(std::size_t capacity) : capacity_(capacity) {
  HS_REQUIRE(capacity_ > 0, "admission queue needs capacity >= 1");
}

bool AdmissionQueue::try_push(AdmittedConnection connection) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!closed_.load(std::memory_order_relaxed) &&
        queue_.size() < capacity_) {
      queue_.push_back(std::move(connection));
      max_depth_ = std::max(max_depth_, queue_.size());
      admitted_.fetch_add(1, std::memory_order_relaxed);
      available_.notify_one();
      return true;
    }
  }
  rejected_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

std::optional<AdmittedConnection> AdmissionQueue::pop() {
  std::unique_lock<std::mutex> lock(mutex_);
  available_.wait(lock, [this] {
    return !queue_.empty() || closed_.load(std::memory_order_relaxed);
  });
  if (queue_.empty()) return std::nullopt;  // closed and drained
  AdmittedConnection connection = std::move(queue_.front());
  queue_.pop_front();
  return connection;
}

void AdmissionQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_.store(true, std::memory_order_release);
  }
  available_.notify_all();
}

std::size_t AdmissionQueue::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

std::size_t AdmissionQueue::max_depth_seen() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return max_depth_;
}

}  // namespace hetsched::serve
