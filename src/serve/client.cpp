#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "common/error.hpp"

namespace hetsched::serve {

namespace {

int connect_once(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&address),
                sizeof(address)) != 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

int connect_with_retries(const std::string& host, int port, int retries) {
  for (int attempt = 0;; ++attempt) {
    const int fd = connect_once(host, port);
    if (fd >= 0) return fd;
    if (attempt >= retries) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  throw Error("cannot connect to " + host + ":" + std::to_string(port) +
              ": " + std::strerror(errno));
}

}  // namespace

QueryClient::QueryClient(const std::string& host, int port,
                         int connect_retries)
    : fd_(connect_with_retries(host, port, connect_retries)),
      reader_(fd_) {}

QueryClient::~QueryClient() {
  if (fd_ >= 0) ::close(fd_);
}

QueryResponse QueryClient::ask(const QueryRequest& request) {
  HS_REQUIRE(write_frame(fd_, request.to_json()),
             "daemon connection dropped while sending");
  std::string frame;
  const FrameReader::Result result = reader_.read(frame);
  HS_REQUIRE(result == FrameReader::Result::kFrame,
             "daemon closed the connection without answering");
  return QueryResponse::from_json(json::Value::parse(frame));
}

QueryResponse query_once(const std::string& host, int port,
                         const QueryRequest& request) {
  QueryClient client(host, port);
  return client.ask(request);
}

HttpResult http_get(const std::string& host, int port,
                    const std::string& path) {
  const int fd = connect_with_retries(host, port, /*retries=*/10);
  const std::string request = "GET " + path +
                              " HTTP/1.1\r\nHost: " + host +
                              "\r\nConnection: close\r\n\r\n";
  HS_REQUIRE(write_all(fd, request), "daemon connection dropped mid-scrape");
  std::string raw;
  char chunk[4096];
  for (;;) {
    const ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
    if (got > 0) {
      raw.append(chunk, static_cast<std::size_t>(got));
      continue;
    }
    if (got < 0 && (errno == EINTR || errno == EAGAIN ||
                    errno == EWOULDBLOCK))
      continue;
    break;
  }
  ::close(fd);
  HttpResult result;
  // "HTTP/1.1 200 OK\r\n..." — the status code is the second token.
  const std::size_t space = raw.find(' ');
  if (space != std::string::npos)
    result.status_code = std::atoi(raw.c_str() + space + 1);
  const std::size_t body_at = raw.find("\r\n\r\n");
  if (body_at != std::string::npos) result.body = raw.substr(body_at + 4);
  return result;
}

}  // namespace hetsched::serve
