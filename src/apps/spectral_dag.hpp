#pragma once

#include <vector>

#include "apps/app.hpp"

/// SpectralDAG — an MK-DAG (Class V) application, beyond the paper's
/// evaluation set.
///
/// The paper excludes Class V from its experiments ("the execution flow is
/// too dynamic") and recommends the dynamic strategies, referring to [20]
/// for their comparison; refining the class is named as future work. This
/// application closes that gap with a synthetic ocean-surface-style
/// spectral step whose kernels form a diamond:
///
///        spectrum ──> row_pass ──┐
///            │                   ├──> combine
///            └────> col_pass ────┘
///
/// row_pass and col_pass are independent given spectrum's output, so the
/// runtime can execute their chunks concurrently across devices — exactly
/// the inter-kernel parallelism dynamic partitioning exploits and a static
/// split cannot see. Table I's Class V row (DP-Perf >= DP-Dep) is validated
/// empirically on it by bench/ext_mk_dag.
namespace hetsched::apps {

class SpectralDagApp final : public Application {
 public:
  /// `config.items` is the spectral sample count; `config.iterations` the
  /// number of simulated time steps.
  SpectralDagApp(const hw::PlatformSpec& platform, Config config);

  void verify() const override;
  void reset_data() override;

 private:
  void step_reference(std::vector<float>& spec, std::vector<float>& rows,
                      std::vector<float>& cols,
                      std::vector<float>& height, int iteration) const;

  mem::BufferId params_ = 0, spec_ = 0, rows_ = 0, cols_ = 0, height_ = 0;
  mutable std::vector<float> host_params_, host_spec_, host_rows_,
      host_cols_, host_height_;
  mutable int functional_iteration_ = 0;
};

}  // namespace hetsched::apps
