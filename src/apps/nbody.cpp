#include "apps/nbody.hpp"

#include <cmath>

#include "common/rng.hpp"

namespace hetsched::apps {

namespace {

constexpr float kDt = 1e-3f;
constexpr float kSoftening = 1e-2f;
constexpr std::int64_t kStateBytes = 32;  // 8 floats per body
constexpr std::int64_t kStateFloats = 8;

analyzer::AppDescriptor make_descriptor() {
  analyzer::AppDescriptor descriptor;
  descriptor.name = "Nbody";
  descriptor.structure =
      analyzer::KernelGraph::single("force_step", /*looped=*/true);
  // States from all processors are reassembled for the next iteration.
  descriptor.sync = analyzer::SyncReason::kRepartitioning;
  return descriptor;
}

/// One sequential force+integrate step for bodies [begin, end): reads the
/// full `state`, writes `state_new` for its slice.
void step_bodies(std::int64_t n, std::int64_t begin, std::int64_t end,
                 const float* state, float* state_new) {
  for (std::int64_t i = begin; i < end; ++i) {
    const float* si = state + kStateFloats * i;
    float ax = 0.0f, ay = 0.0f, az = 0.0f;
    for (std::int64_t j = 0; j < n; ++j) {
      const float* sj = state + kStateFloats * j;
      const float dx = sj[0] - si[0];
      const float dy = sj[1] - si[1];
      const float dz = sj[2] - si[2];
      const float dist_sq = dx * dx + dy * dy + dz * dz + kSoftening;
      const float inv = 1.0f / std::sqrt(dist_sq);
      const float f = sj[3] * inv * inv * inv;  // m / r^3
      ax += f * dx;
      ay += f * dy;
      az += f * dz;
    }
    float* out = state_new + kStateFloats * i;
    const float vx = si[4] + ax * kDt;
    const float vy = si[5] + ay * kDt;
    const float vz = si[6] + az * kDt;
    out[0] = si[0] + vx * kDt;
    out[1] = si[1] + vy * kDt;
    out[2] = si[2] + vz * kDt;
    out[3] = si[3];  // mass carried along
    out[4] = vx;
    out[5] = vy;
    out[6] = vz;
    out[7] = 0.0f;
  }
}

}  // namespace

NbodyApp::NbodyApp(const hw::PlatformSpec& platform, Config config)
    : Application(platform, config, make_descriptor(),
                  /*sync_each_iteration=*/true) {
  const std::int64_t array_bytes = config_.items * kStateBytes;
  state_ = executor_->register_buffer("state", array_bytes);
  state_new_ = executor_->register_buffer("state_new", array_bytes);

  if (config_.functional) reset_data();

  hw::KernelTraits traits;
  traits.name = "force_step";
  // Per body per step: interactions against a neighbor-limited working set
  // (~1000 bodies x ~20 flops), the granularity the Mont-Blanc kernel uses.
  traits.flops_per_item = 20000.0;
  traits.device_bytes_per_item = 64.0;
  // Both sides vectorize the inner loop well; the GPU especially (rsqrt).
  traits.cpu_compute_efficiency = 0.25;
  traits.gpu_compute_efficiency = 0.45;
  traits.cpu_memory_efficiency = 0.80;
  traits.gpu_memory_efficiency = 0.85;

  rt::KernelDef def;
  def.name = "force_step";
  def.traits = traits;
  const mem::BufferId state = state_, state_new = state_new_;
  const std::int64_t total_bytes = array_bytes;
  def.accesses = [state, state_new, total_bytes](std::int64_t begin,
                                                 std::int64_t end) {
    return std::vector<mem::RegionAccess>{
        // Every body reads every particle state: a broadcast input.
        {{state, {0, total_bytes}}, mem::AccessMode::kRead},
        {{state_new, {begin * kStateBytes, end * kStateBytes}},
         mem::AccessMode::kWrite},
    };
  };
  if (config_.functional) {
    def.body = [this](std::int64_t begin, std::int64_t end) {
      step_bodies(config_.items, begin, end, host_state_.data(),
                  host_state_new_.data());
    };
  }
  set_kernels({executor_->register_kernel(std::move(def))});
}

void NbodyApp::append_host_update(rt::Program& program, int iteration) const {
  (void)iteration;
  const std::int64_t total_bytes = config_.items * kStateBytes;
  std::function<void()> body;
  if (config_.functional) {
    body = [this] { host_state_ = host_state_new_; };
  }
  // The host combines the per-device outputs and republishes them as the
  // next step's input — invalidating device copies of `state`.
  program.host_op(
      {
          {{state_new_, {0, total_bytes}}, mem::AccessMode::kRead},
          {{state_, {0, total_bytes}}, mem::AccessMode::kWrite},
      },
      std::move(body));
}

void NbodyApp::reset_data() {
  if (!config_.functional) return;
  Rng rng(1048576);
  const auto n = static_cast<std::size_t>(config_.items);
  host_state_.assign(kStateFloats * n, 0.0f);
  host_state_new_.assign(kStateFloats * n, 0.0f);
  for (std::size_t i = 0; i < n; ++i) {
    float* s = host_state_.data() + kStateFloats * i;
    s[0] = static_cast<float>(rng.uniform(-1.0, 1.0));
    s[1] = static_cast<float>(rng.uniform(-1.0, 1.0));
    s[2] = static_cast<float>(rng.uniform(-1.0, 1.0));
    s[3] = static_cast<float>(rng.uniform(0.1, 1.0));
  }
  initial_state_ = host_state_;
}

std::vector<float> NbodyApp::reference_state() const {
  std::vector<float> state = initial_state_;
  std::vector<float> state_new(state.size(), 0.0f);
  for (int step = 0; step < config_.iterations; ++step) {
    step_bodies(config_.items, 0, config_.items, state.data(),
                state_new.data());
    state = state_new;
  }
  return state;
}

void NbodyApp::verify() const {
  if (!config_.functional) return;
  // After the final taskwait the last step's result lives in state_new (the
  // host update only runs between iterations).
  const std::vector<float> expected = reference_state();
  for (std::size_t i = 0; i < expected.size(); ++i) {
    check_close(host_state_new_[i], expected[i], 1e-3,
                "state[" + std::to_string(i) + "]");
  }
}

}  // namespace hetsched::apps
