#include "apps/matrixmul.hpp"

#include "common/rng.hpp"

namespace hetsched::apps {

namespace {

analyzer::AppDescriptor make_descriptor() {
  analyzer::AppDescriptor descriptor;
  descriptor.name = "MatrixMul";
  descriptor.structure = analyzer::KernelGraph::single("matmul");
  descriptor.sync = analyzer::SyncReason::kNone;
  return descriptor;
}

}  // namespace

MatrixMulApp::MatrixMulApp(const hw::PlatformSpec& platform, Config config)
    : Application(platform, config, make_descriptor(),
                  /*sync_each_iteration=*/false),
      n_(config.items) {
  HS_REQUIRE(config.iterations == 1, "MatrixMul is a one-shot application");
  const std::int64_t row_bytes = n_ * 4;
  const std::int64_t matrix_bytes = n_ * row_bytes;
  a_ = executor_->register_buffer("A", matrix_bytes);
  b_ = executor_->register_buffer("B", matrix_bytes);
  c_ = executor_->register_buffer("C", matrix_bytes);

  if (config_.functional) reset_data();

  hw::KernelTraits traits;
  traits.name = "matmul";
  // One work item = one output row: 2*N flops per element, N elements.
  traits.flops_per_item = 2.0 * static_cast<double>(n_) *
                          static_cast<double>(n_);
  // Streamed device traffic per row (A row in, C row out, tiled B reuse).
  traits.device_bytes_per_item = 3.0 * static_cast<double>(row_bytes);
  // Profiled efficiencies: OmpSs CPU task code is a scalar triple loop (a
  // few percent of peak); the SDK OpenCL kernel sustains ~22% of K20 peak.
  traits.cpu_compute_efficiency = 0.094;
  traits.gpu_compute_efficiency = 0.227;
  traits.cpu_memory_efficiency = 0.80;
  traits.gpu_memory_efficiency = 0.85;

  rt::KernelDef def;
  def.name = "matmul";
  def.traits = traits;
  const std::int64_t n = n_;
  const mem::BufferId a = a_, b = b_, c = c_;
  def.accesses = [n, a, b, c, row_bytes, matrix_bytes](std::int64_t begin,
                                                       std::int64_t end) {
    (void)n;
    return std::vector<mem::RegionAccess>{
        {{a, {begin * row_bytes, end * row_bytes}}, mem::AccessMode::kRead},
        {{b, {0, matrix_bytes}}, mem::AccessMode::kRead},
        {{c, {begin * row_bytes, end * row_bytes}}, mem::AccessMode::kWrite},
    };
  };
  if (config_.functional) {
    def.body = [this](std::int64_t begin, std::int64_t end) {
      for (std::int64_t i = begin; i < end; ++i) {
        for (std::int64_t j = 0; j < n_; ++j) {
          float acc = 0.0f;
          for (std::int64_t k = 0; k < n_; ++k)
            acc += host_a_[i * n_ + k] * host_b_[k * n_ + j];
          host_c_[i * n_ + j] = acc;
        }
      }
    };
  }
  set_kernels({executor_->register_kernel(std::move(def))});
}

void MatrixMulApp::reset_data() {
  if (!config_.functional) return;
  Rng rng(6144);
  host_a_.assign(static_cast<std::size_t>(n_ * n_), 0.0f);
  host_b_.assign(static_cast<std::size_t>(n_ * n_), 0.0f);
  host_c_.assign(static_cast<std::size_t>(n_ * n_), 0.0f);
  for (auto& x : host_a_) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  for (auto& x : host_b_) x = static_cast<float>(rng.uniform(-1.0, 1.0));
}

void MatrixMulApp::verify() const {
  if (!config_.functional) return;
  for (std::int64_t i = 0; i < n_; ++i) {
    for (std::int64_t j = 0; j < n_; ++j) {
      double expected = 0.0;
      for (std::int64_t k = 0; k < n_; ++k)
        expected += static_cast<double>(host_a_[i * n_ + k]) *
                    static_cast<double>(host_b_[k * n_ + j]);
      check_close(host_c_[i * n_ + j], expected, 1e-3,
                  "C[" + std::to_string(i) + "," + std::to_string(j) + "]");
    }
  }
}

}  // namespace hetsched::apps
