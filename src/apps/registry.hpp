#pragma once

#include <memory>
#include <string>
#include <vector>

#include "apps/app.hpp"

/// Factory for the paper's six evaluation applications (Table II) with
/// their published problem sizes, plus small functional configurations for
/// testing.
namespace hetsched::apps {

enum class PaperApp {
  kMatrixMul,     ///< SK-One, 6144 x 6144 (0.4 GB)
  kBlackScholes,  ///< SK-One, 80,530,632 options (1.5 GB)
  kNbody,         ///< SK-Loop, 1,048,576 bodies (64 MB)
  kHotSpot,       ///< SK-Loop, 8192 x 8192 grid (0.75 GB)
  kStreamSeq,     ///< MK-Seq, 62,914,560 elements (0.7 GB)
  kStreamLoop,    ///< MK-Loop, same size, iterated
};

const char* paper_app_name(PaperApp app);
const std::vector<PaperApp>& all_paper_apps();

/// The paper's problem size for `app` (timing-only: functional = false).
Application::Config paper_config(PaperApp app);

/// A small, functional configuration suitable for correctness tests.
Application::Config test_config(PaperApp app);

/// Instantiates `app` on `platform` with the given configuration.
std::unique_ptr<Application> make_paper_app(PaperApp app,
                                            const hw::PlatformSpec& platform,
                                            Application::Config config);

/// Convenience: paper configuration on the reference platform semantics.
std::unique_ptr<Application> make_paper_app(PaperApp app,
                                            const hw::PlatformSpec& platform);

}  // namespace hetsched::apps
