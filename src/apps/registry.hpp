#pragma once

#include <memory>
#include <string>
#include <vector>

#include "apps/app.hpp"

/// Factory for the paper's six evaluation applications (Table II) with
/// their published problem sizes, plus small functional configurations for
/// testing.
namespace hetsched::apps {

enum class PaperApp {
  kMatrixMul,     ///< SK-One, 6144 x 6144 (0.4 GB)
  kBlackScholes,  ///< SK-One, 80,530,632 options (1.5 GB)
  kNbody,         ///< SK-Loop, 1,048,576 bodies (64 MB)
  kHotSpot,       ///< SK-Loop, 8192 x 8192 grid (0.75 GB)
  kStreamSeq,     ///< MK-Seq, 62,914,560 elements (0.7 GB)
  kStreamLoop,    ///< MK-Loop, same size, iterated
};

const char* paper_app_name(PaperApp app);
const std::vector<PaperApp>& all_paper_apps();

/// Stable lower-case identifier used by the CLI and the sweep cache key
/// ("matrixmul", "stream-seq", ...).
const char* paper_app_id(PaperApp app);

/// Inverse of `paper_app_id` (also accepts the display name). Throws
/// InvalidArgument on an unknown name.
PaperApp paper_app_from_name(const std::string& name);

/// The paper's problem size for `app` (timing-only: functional = false).
Application::Config paper_config(PaperApp app);

/// A small, functional configuration suitable for correctness tests.
Application::Config test_config(PaperApp app);

/// Instantiates `app` on `platform` with the given configuration.
std::unique_ptr<Application> make_paper_app(PaperApp app,
                                            const hw::PlatformSpec& platform,
                                            Application::Config config);

/// Convenience: paper configuration on the reference platform semantics.
std::unique_ptr<Application> make_paper_app(PaperApp app,
                                            const hw::PlatformSpec& platform);

}  // namespace hetsched::apps
