#pragma once

#include <vector>

#include "apps/app.hpp"

/// TreeReduction — a multi-pass reduction with SHRINKING kernels.
///
/// Classic device-wide sum: pass k folds blocks of kBranching partials into
/// one, so pass k operates on n / kBranching^(k+1) items — every kernel in
/// the MK-Seq sequence has its own item count (Application::items_of).
/// Deep passes are tiny, which exercises Glinda's hardware-configuration
/// decision per kernel: SP-Varied assigns early, wide passes to both
/// devices and collapses the late, narrow ones to Only-CPU (their GPU share
/// would fall below the efficiency threshold) — the decision logic of the
/// paper's "making the decision in practice" step, per kernel.
namespace hetsched::apps {

class TreeReductionApp final : public Application {
 public:
  static constexpr std::int64_t kBranching = 64;

  /// `config.items` is the input element count (the first pass's SOURCE
  /// size; the partitionable item space of pass k is the OUTPUT count).
  TreeReductionApp(const hw::PlatformSpec& platform, Config config);

  std::int64_t items_of(std::size_t kernel_index) const override {
    return pass_outputs_.at(kernel_index);
  }

  void verify() const override;
  void reset_data() override;

  /// Number of reduction passes for `items` inputs.
  static int pass_count(std::int64_t items);

 private:
  std::vector<std::int64_t> pass_outputs_;  ///< output items of each pass
  std::vector<mem::BufferId> levels_;       ///< level 0 = input
  mutable std::vector<std::vector<float>> host_levels_;
  std::vector<float> initial_input_;
};

}  // namespace hetsched::apps
