#include "apps/tree_reduction.hpp"

#include "common/rng.hpp"

namespace hetsched::apps {

namespace {

analyzer::AppDescriptor make_descriptor(int passes) {
  analyzer::AppDescriptor descriptor;
  descriptor.name = "TreeReduction";
  std::vector<std::string> names;
  for (int k = 0; k < passes; ++k)
    names.push_back("reduce_pass_" + std::to_string(k));
  descriptor.structure = analyzer::KernelGraph::sequence(std::move(names));
  // Partial sums produced on different processors are reassembled for the
  // next pass (paper Section III-C, SP-Varied case (2)).
  descriptor.sync = analyzer::SyncReason::kRepartitioning;
  return descriptor;
}

}  // namespace

int TreeReductionApp::pass_count(std::int64_t items) {
  int passes = 0;
  while (items > 1) {
    items = (items + kBranching - 1) / kBranching;
    ++passes;
  }
  return std::max(passes, 1);
}

TreeReductionApp::TreeReductionApp(const hw::PlatformSpec& platform,
                                   Config config)
    : Application(platform, config,
                  make_descriptor(pass_count(config.items)),
                  /*sync_each_iteration=*/false) {
  HS_REQUIRE(config.iterations == 1, "TreeReduction is one-shot");
  const int passes = pass_count(config_.items);

  // Level sizes: level 0 is the input; level k+1 = ceil(level_k / B).
  std::vector<std::int64_t> level_sizes{config_.items};
  for (int k = 0; k < passes; ++k) {
    level_sizes.push_back((level_sizes.back() + kBranching - 1) / kBranching);
    pass_outputs_.push_back(level_sizes.back());
  }
  for (std::size_t level = 0; level < level_sizes.size(); ++level) {
    levels_.push_back(executor_->register_buffer(
        "level" + std::to_string(level),
        std::max<std::int64_t>(1, level_sizes[level]) * 4));
  }

  if (config_.functional) reset_data();

  std::vector<rt::KernelId> kernels;
  for (int k = 0; k < passes; ++k) {
    hw::KernelTraits traits;
    traits.name = "reduce_pass_" + std::to_string(k);
    // One output item folds kBranching inputs: ~B flops, B*4 bytes read.
    traits.flops_per_item = static_cast<double>(kBranching);
    traits.device_bytes_per_item = static_cast<double>(kBranching) * 4.0 + 4.0;
    traits.cpu_compute_efficiency = 0.30;
    traits.gpu_compute_efficiency = 0.40;
    traits.cpu_memory_efficiency = 0.70;
    traits.gpu_memory_efficiency = 0.85;

    rt::KernelDef def;
    def.name = traits.name;
    def.traits = traits;
    const mem::BufferId src = levels_[static_cast<std::size_t>(k)];
    const mem::BufferId dst = levels_[static_cast<std::size_t>(k) + 1];
    const std::int64_t src_size = level_sizes[static_cast<std::size_t>(k)];
    def.accesses = [src, dst, src_size](std::int64_t begin,
                                        std::int64_t end) {
      const std::int64_t src_begin = begin * kBranching;
      const std::int64_t src_end = std::min(src_size, end * kBranching);
      return std::vector<mem::RegionAccess>{
          {{src, {src_begin * 4, src_end * 4}}, mem::AccessMode::kRead},
          {{dst, {begin * 4, end * 4}}, mem::AccessMode::kWrite},
      };
    };
    if (config_.functional) {
      const std::size_t level = static_cast<std::size_t>(k);
      def.body = [this, level, src_size](std::int64_t begin,
                                         std::int64_t end) {
        for (std::int64_t i = begin; i < end; ++i) {
          float sum = 0.0f;
          const std::int64_t lo = i * kBranching;
          const std::int64_t hi = std::min(src_size, lo + kBranching);
          for (std::int64_t j = lo; j < hi; ++j)
            sum += host_levels_[level][static_cast<std::size_t>(j)];
          host_levels_[level + 1][static_cast<std::size_t>(i)] = sum;
        }
      };
    }
    kernels.push_back(executor_->register_kernel(std::move(def)));
  }
  set_kernels(std::move(kernels));
}

void TreeReductionApp::reset_data() {
  if (!config_.functional) return;
  Rng rng(4242);
  host_levels_.clear();
  std::int64_t size = config_.items;
  host_levels_.emplace_back(static_cast<std::size_t>(size));
  for (auto& x : host_levels_[0])
    x = static_cast<float>(rng.uniform(0.0, 1.0));
  initial_input_ = host_levels_[0];
  for (std::int64_t out : pass_outputs_)
    host_levels_.emplace_back(static_cast<std::size_t>(std::max<std::int64_t>(
                                  1, out)),
                              0.0f);
}

void TreeReductionApp::verify() const {
  if (!config_.functional) return;
  double expected = 0.0;
  for (float x : initial_input_) expected += x;
  // The final level holds the grand total; float tree summation of uniform
  // positives is accurate to ~1e-5 relative at these sizes.
  check_close(host_levels_.back()[0], expected, 1e-4, "grand total");
}

}  // namespace hetsched::apps
