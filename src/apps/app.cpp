#include "apps/app.hpp"

#include <cmath>

#include "common/error.hpp"

namespace hetsched::apps {

Application::Application(const hw::PlatformSpec& platform, Config config,
                         analyzer::AppDescriptor descriptor,
                         bool sync_each_iteration)
    : config_(config),
      descriptor_(std::move(descriptor)),
      sync_each_iteration_(sync_each_iteration) {
  HS_REQUIRE(config_.items > 0,
             descriptor_.name << ": items=" << config_.items);
  HS_REQUIRE(config_.iterations >= 1,
             descriptor_.name << ": iterations=" << config_.iterations);
  rt::RuntimeOptions options;
  options.functional_execution = config_.functional;
  options.record_trace = config_.record_trace;
  options.record_observability = config_.record_observability;
  executor_ =
      std::make_unique<rt::Executor>(platform, config_.costs, options);
}

rt::Program Application::build_program(const KernelSubmitFn& submit,
                                       bool sync_between_kernels) const {
  HS_REQUIRE(submit != nullptr, "build_program needs a submit function");
  HS_ASSERT_MSG(!kernels_.empty(),
                descriptor_.name << " registered no kernels");
  rt::Program program;
  for (int iteration = 0; iteration < config_.iterations; ++iteration) {
    for (std::size_t k = 0; k < kernels_.size(); ++k) {
      submit(program, k, kernels_[k]);
      if (sync_between_kernels && k + 1 < kernels_.size()) program.taskwait();
    }
    if (sync_each_iteration_) {
      program.taskwait();
      if (iteration + 1 < config_.iterations)
        append_host_update(program, iteration);
    }
  }
  if (!sync_each_iteration_) program.taskwait();
  return program;
}

glinda::SampleProgramFactory Application::single_kernel_factory(
    std::size_t kernel_index) const {
  HS_REQUIRE(kernel_index < kernels_.size(),
             "kernel index " << kernel_index << " out of range");
  const rt::KernelId kernel = kernels_[kernel_index];
  const int cpu_lanes = executor_->platform().cpu.lanes;
  // Slices are expressed in THIS KERNEL's items; profile it with sample
  // sizes derived from items_of(kernel_index).
  // Time-stepped applications are profiled over two iterations (with the
  // per-iteration synchronization and host update in between) so the sample
  // observes the *steady-state* transfer pattern: inputs the host rewrites
  // every step are re-uploaded, device-resident state is not.
  const int profile_iterations =
      (sync_each_iteration_ && config_.iterations > 1) ? 2 : 1;
  return [this, kernel, cpu_lanes, profile_iterations](
             hw::DeviceId device, std::int64_t begin, std::int64_t end) {
    rt::Program program;
    for (int iteration = 0; iteration < profile_iterations; ++iteration) {
      if (device == hw::kCpuDevice) {
        // One chunk per lane keeps the device balanced during the sample.
        const std::int64_t n = end - begin;
        for (int lane = 0; lane < cpu_lanes; ++lane) {
          const std::int64_t lo = begin + n * lane / cpu_lanes;
          const std::int64_t hi = begin + n * (lane + 1) / cpu_lanes;
          program.submit(kernel, lo, hi, hw::kCpuDevice);
        }
      } else {
        program.submit(kernel, begin, end, device);
      }
      program.taskwait();
      if (iteration + 1 < profile_iterations)
        append_host_update(program, iteration);
    }
    return program;
  };
}

glinda::SampleProgramFactory Application::fused_factory() const {
  const std::vector<rt::KernelId> sequence = kernels_;
  const int cpu_lanes = executor_->platform().cpu.lanes;
  std::vector<std::int64_t> kernel_items(sequence.size());
  for (std::size_t k = 0; k < sequence.size(); ++k)
    kernel_items[k] = items_of(k);
  const std::int64_t global_items = items();
  return [sequence, cpu_lanes, kernel_items, global_items](
             hw::DeviceId device, std::int64_t begin, std::int64_t end) {
    rt::Program program;
    for (std::size_t k = 0; k < sequence.size(); ++k) {
      const std::int64_t lo0 = begin * kernel_items[k] / global_items;
      const std::int64_t hi0 =
          std::max(lo0 + 1, end * kernel_items[k] / global_items);
      if (device == hw::kCpuDevice) {
        const std::int64_t n = hi0 - lo0;
        for (int lane = 0; lane < cpu_lanes; ++lane) {
          const std::int64_t lo = lo0 + n * lane / cpu_lanes;
          const std::int64_t hi = lo0 + n * (lane + 1) / cpu_lanes;
          program.submit(sequence[k], lo, hi, hw::kCpuDevice);
        }
      } else {
        program.submit(sequence[k], lo0, hi0, device);
      }
    }
    program.taskwait();
    return program;
  };
}

void check_close(double actual, double expected, double rel_tol,
                 const std::string& what) {
  const double scale = std::max({std::abs(actual), std::abs(expected), 1.0});
  if (std::abs(actual - expected) > rel_tol * scale) {
    throw InternalError("verification failed for " + what + ": got " +
                        std::to_string(actual) + ", expected " +
                        std::to_string(expected));
  }
}

}  // namespace hetsched::apps
