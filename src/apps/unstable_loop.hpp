#pragma once

#include <vector>

#include "apps/app.hpp"

/// UnstableLoop — a time-stepped kernel whose device affinity DRIFTS.
///
/// SP-Single's use on SK-Loop applications rests on the paper's assumption
/// that "the kernel has stable performance in the loop, and therefore the
/// partitioning remains the same. If this assumption is not true, we can
/// regard each iteration of the kernel as a different kernel, thus turning
/// a SK-Loop application into a MK-Seq application" (Section III-C).
///
/// This application realizes the unstable case: an iterative relaxation
/// whose control flow grows more divergent every sweep (think adaptive
/// refinement concentrating work in irregular regions), so the GPU's
/// efficiency decays iteration over iteration while the CPU's is flat.
/// Modelled faithfully to the paper's suggested conversion: one kernel
/// *per iteration*, classifying as MK-Seq, with per-iteration host
/// synchronization. bench/ext_unstable_loop shows the single fixed split
/// (the SK-Loop assumption) losing to SP-Varied's per-iteration splits.
namespace hetsched::apps {

class UnstableLoopApp final : public Application {
 public:
  /// `config.items` is the grid size; `config.iterations` the sweep count
  /// (each sweep becomes its own kernel).
  UnstableLoopApp(const hw::PlatformSpec& platform, Config config);

  void verify() const override;
  void reset_data() override;

  /// GPU compute efficiency of sweep `t` (decays with t).
  static double gpu_efficiency_at(int sweep, int total_sweeps);

 private:
  mem::BufferId state_ = 0, scratch_ = 0;
  mutable std::vector<float> host_state_, host_scratch_;
  std::vector<float> initial_state_;
};

}  // namespace hetsched::apps
