#include "apps/triangular.hpp"

#include "common/rng.hpp"

namespace hetsched::apps {

namespace {

analyzer::AppDescriptor make_descriptor() {
  analyzer::AppDescriptor descriptor;
  descriptor.name = "TriangularMV";
  descriptor.structure = analyzer::KernelGraph::single("trmv");
  descriptor.sync = analyzer::SyncReason::kNone;
  return descriptor;
}

/// Packed offset of row i (elements, not bytes).
std::int64_t row_offset(std::int64_t i) { return i * (i + 1) / 2; }

}  // namespace

TriangularMvApp::TriangularMvApp(const hw::PlatformSpec& platform,
                                 Config config)
    : Application(platform, config, make_descriptor(),
                  /*sync_each_iteration=*/false),
      n_(config.items) {
  HS_REQUIRE(config.iterations == 1, "TriangularMV is one-shot");
  const std::int64_t nnz = row_offset(n_);
  matrix_ = executor_->register_buffer("L", nnz * 4);
  x_ = executor_->register_buffer("x", n_ * 4);
  y_ = executor_->register_buffer("y", n_ * 4);

  if (config_.functional) reset_data();

  hw::KernelTraits traits;
  traits.name = "trmv";
  // Work unit = one nonzero: a multiply-add over one packed element.
  traits.flops_per_item = 2.0;
  traits.device_bytes_per_item = 4.0;
  traits.cpu_compute_efficiency = 0.10;
  traits.gpu_compute_efficiency = 0.30;
  traits.cpu_memory_efficiency = 0.60;
  traits.gpu_memory_efficiency = 0.85;
  traits.work_weight = [](std::int64_t begin, std::int64_t end) {
    return static_cast<double>(row_offset(end) - row_offset(begin));
  };

  rt::KernelDef def;
  def.name = "trmv";
  def.traits = traits;
  const mem::BufferId matrix = matrix_, x = x_, y = y_;
  def.accesses = [matrix, x, y](std::int64_t begin, std::int64_t end) {
    return std::vector<mem::RegionAccess>{
        {{matrix, {row_offset(begin) * 4, row_offset(end) * 4}},
         mem::AccessMode::kRead},
        {{x, {0, end * 4}}, mem::AccessMode::kRead},
        {{y, {begin * 4, end * 4}}, mem::AccessMode::kWrite},
    };
  };
  if (config_.functional) {
    def.body = [this](std::int64_t begin, std::int64_t end) {
      for (std::int64_t i = begin; i < end; ++i) {
        double acc = 0.0;
        const std::int64_t base = row_offset(i);
        for (std::int64_t j = 0; j <= i; ++j)
          acc += static_cast<double>(host_matrix_[base + j]) * host_x_[j];
        host_y_[i] = static_cast<float>(acc);
      }
    };
  }
  set_kernels({executor_->register_kernel(std::move(def))});
}

void TriangularMvApp::reset_data() {
  if (!config_.functional) return;
  Rng rng(17);
  host_matrix_.resize(static_cast<std::size_t>(row_offset(n_)));
  host_x_.resize(static_cast<std::size_t>(n_));
  host_y_.assign(static_cast<std::size_t>(n_), 0.0f);
  for (auto& v : host_matrix_) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  for (auto& v : host_x_) v = static_cast<float>(rng.uniform(-1.0, 1.0));
}

void TriangularMvApp::verify() const {
  if (!config_.functional) return;
  for (std::int64_t i = 0; i < n_; ++i) {
    double expected = 0.0;
    const std::int64_t base = row_offset(i);
    for (std::int64_t j = 0; j <= i; ++j)
      expected += static_cast<double>(host_matrix_[base + j]) * host_x_[j];
    check_close(host_y_[i], expected, 1e-3, "y[" + std::to_string(i) + "]");
  }
}

}  // namespace hetsched::apps
