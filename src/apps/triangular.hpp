#pragma once

#include <vector>

#include "apps/app.hpp"

/// TriangularMV — an IMBALANCED single-kernel application (paper ref [9],
/// Glinda's ICS'14 "imbalanced workloads" extension).
///
/// y = L * x for a dense lower-triangular L (packed rows): row i touches
/// (i + 1) matrix elements, so the per-item cost grows linearly across the
/// item space. A uniform split at item fraction beta hands the GPU's
/// contiguous head far LESS work than beta (the head rows are short);
/// balancing requires the weighted solver working on the prefix-weight
/// function W(i) = i(i+1)/2. The app publishes that function through
/// Application::prefix_weight(), and its kernel carries the matching
/// work_weight so the simulator charges each instance its true cost.
/// bench/ext_imbalanced quantifies uniform-vs-weighted.
namespace hetsched::apps {

class TriangularMvApp final : public Application {
 public:
  /// `config.items` is the matrix dimension (row count).
  TriangularMvApp(const hw::PlatformSpec& platform, Config config);

  std::function<double(std::int64_t)> prefix_weight() const override {
    return [](std::int64_t i) {
      return 0.5 * static_cast<double>(i) * static_cast<double>(i + 1);
    };
  }

  void verify() const override;
  void reset_data() override;

 private:
  std::int64_t n_;
  mem::BufferId matrix_ = 0, x_ = 0, y_ = 0;
  std::vector<float> host_matrix_, host_x_, host_y_;
};

}  // namespace hetsched::apps
