#include "apps/hotspot.hpp"

#include <algorithm>

#include "common/rng.hpp"

namespace hetsched::apps {

namespace {

constexpr float kAlpha = 0.1f;       // diffusion coefficient
constexpr float kPowerScale = 0.05f; // heating contribution

analyzer::AppDescriptor make_descriptor() {
  analyzer::AppDescriptor descriptor;
  descriptor.name = "HotSpot";
  descriptor.structure =
      analyzer::KernelGraph::single("stencil_step", /*looped=*/true);
  descriptor.sync = analyzer::SyncReason::kRepartitioning;
  return descriptor;
}

}  // namespace

HotSpotApp::HotSpotApp(const hw::PlatformSpec& platform, Config config)
    : Application(platform, config, make_descriptor(),
                  /*sync_each_iteration=*/true),
      rows_(config.items),
      cols_(config.items) {
  const std::int64_t row_bytes = cols_ * 4;
  const std::int64_t grid_bytes = rows_ * row_bytes;
  temp_in_ = executor_->register_buffer("temp_in", grid_bytes);
  temp_out_ = executor_->register_buffer("temp_out", grid_bytes);
  power_ = executor_->register_buffer("power", grid_bytes);

  if (config_.functional) reset_data();

  hw::KernelTraits traits;
  traits.name = "stencil_step";
  // Per row: ~15 flops per cell; traffic: 3 temperature rows + power row in,
  // one row out. Strongly memory-bound on both devices.
  traits.flops_per_item = 15.0 * static_cast<double>(cols_);
  traits.device_bytes_per_item = 5.0 * static_cast<double>(row_bytes);
  traits.cpu_compute_efficiency = 0.30;
  traits.gpu_compute_efficiency = 0.30;
  traits.cpu_memory_efficiency = 0.80;
  traits.gpu_memory_efficiency = 0.85;

  rt::KernelDef def;
  def.name = "stencil_step";
  def.traits = traits;
  const mem::BufferId temp_in = temp_in_, temp_out = temp_out_,
                      power = power_;
  const std::int64_t rows = rows_;
  def.accesses = [temp_in, temp_out, power, rows, row_bytes](
                     std::int64_t begin, std::int64_t end) {
    // One-row halo on each side, clamped at the grid edges.
    const std::int64_t halo_begin = std::max<std::int64_t>(0, begin - 1);
    const std::int64_t halo_end = std::min<std::int64_t>(rows, end + 1);
    return std::vector<mem::RegionAccess>{
        {{temp_in, {halo_begin * row_bytes, halo_end * row_bytes}},
         mem::AccessMode::kRead},
        {{power, {begin * row_bytes, end * row_bytes}},
         mem::AccessMode::kRead},
        {{temp_out, {begin * row_bytes, end * row_bytes}},
         mem::AccessMode::kWrite},
    };
  };
  if (config_.functional) {
    def.body = [this](std::int64_t begin, std::int64_t end) {
      stencil_rows(begin, end, host_temp_in_, host_temp_out_);
    };
  }
  set_kernels({executor_->register_kernel(std::move(def))});
}

void HotSpotApp::stencil_rows(std::int64_t begin, std::int64_t end,
                              const std::vector<float>& in,
                              std::vector<float>& out) const {
  auto at = [&](std::int64_t r, std::int64_t c) -> float {
    r = std::clamp<std::int64_t>(r, 0, rows_ - 1);
    c = std::clamp<std::int64_t>(c, 0, cols_ - 1);
    return in[static_cast<std::size_t>(r * cols_ + c)];
  };
  for (std::int64_t r = begin; r < end; ++r) {
    for (std::int64_t c = 0; c < cols_; ++c) {
      const float center = at(r, c);
      const float laplacian = at(r - 1, c) + at(r + 1, c) + at(r, c - 1) +
                              at(r, c + 1) - 4.0f * center;
      out[static_cast<std::size_t>(r * cols_ + c)] =
          center + kAlpha * laplacian +
          kPowerScale * host_power_[static_cast<std::size_t>(r * cols_ + c)];
    }
  }
}

void HotSpotApp::append_host_update(rt::Program& program,
                                    int iteration) const {
  (void)iteration;
  const std::int64_t grid_bytes = rows_ * cols_ * 4;
  std::function<void()> body;
  if (config_.functional) {
    body = [this] { host_temp_in_ = host_temp_out_; };
  }
  program.host_op(
      {
          {{temp_out_, {0, grid_bytes}}, mem::AccessMode::kRead},
          {{temp_in_, {0, grid_bytes}}, mem::AccessMode::kWrite},
      },
      std::move(body));
}

void HotSpotApp::reset_data() {
  if (!config_.functional) return;
  Rng rng(8192);
  const auto cells = static_cast<std::size_t>(rows_ * cols_);
  host_temp_in_.resize(cells);
  host_temp_out_.assign(cells, 0.0f);
  host_power_.resize(cells);
  for (std::size_t i = 0; i < cells; ++i) {
    host_temp_in_[i] = static_cast<float>(rng.uniform(40.0, 80.0));
    host_power_[i] = static_cast<float>(rng.uniform(0.0, 1.0));
  }
  initial_temp_ = host_temp_in_;
}

std::vector<float> HotSpotApp::reference_grid() const {
  std::vector<float> in = initial_temp_;
  std::vector<float> out(in.size(), 0.0f);
  for (int step = 0; step < config_.iterations; ++step) {
    stencil_rows(0, rows_, in, out);
    in = out;
  }
  return out;
}

void HotSpotApp::verify() const {
  if (!config_.functional) return;
  const std::vector<float> expected = reference_grid();
  for (std::size_t i = 0; i < expected.size(); ++i) {
    check_close(host_temp_out_[i], expected[i], 1e-3,
                "temp[" + std::to_string(i) + "]");
  }
}

}  // namespace hetsched::apps
