#include "apps/registry.hpp"

#include "apps/blackscholes.hpp"
#include "apps/hotspot.hpp"
#include "apps/matrixmul.hpp"
#include "apps/nbody.hpp"
#include "apps/stream.hpp"
#include "common/error.hpp"

namespace hetsched::apps {

const char* paper_app_name(PaperApp app) {
  switch (app) {
    case PaperApp::kMatrixMul: return "MatrixMul";
    case PaperApp::kBlackScholes: return "BlackScholes";
    case PaperApp::kNbody: return "Nbody";
    case PaperApp::kHotSpot: return "HotSpot";
    case PaperApp::kStreamSeq: return "STREAM-Seq";
    case PaperApp::kStreamLoop: return "STREAM-Loop";
  }
  return "unknown";
}

const char* paper_app_id(PaperApp app) {
  switch (app) {
    case PaperApp::kMatrixMul: return "matrixmul";
    case PaperApp::kBlackScholes: return "blackscholes";
    case PaperApp::kNbody: return "nbody";
    case PaperApp::kHotSpot: return "hotspot";
    case PaperApp::kStreamSeq: return "stream-seq";
    case PaperApp::kStreamLoop: return "stream-loop";
  }
  return "unknown";
}

PaperApp paper_app_from_name(const std::string& name) {
  for (PaperApp app : all_paper_apps()) {
    if (name == paper_app_id(app) || name == paper_app_name(app)) return app;
  }
  throw InvalidArgument("unknown app '" + name +
                        "' (matrixmul, blackscholes, nbody, hotspot, "
                        "stream-seq, stream-loop)");
}

const std::vector<PaperApp>& all_paper_apps() {
  static const std::vector<PaperApp> apps = {
      PaperApp::kMatrixMul, PaperApp::kBlackScholes, PaperApp::kNbody,
      PaperApp::kHotSpot,   PaperApp::kStreamSeq,    PaperApp::kStreamLoop,
  };
  return apps;
}

Application::Config paper_config(PaperApp app) {
  Application::Config config;
  config.functional = false;
  switch (app) {
    case PaperApp::kMatrixMul:
      config.items = 6144;  // 6144 x 6144 matrices
      config.iterations = 1;
      break;
    case PaperApp::kBlackScholes:
      config.items = 80'530'632;
      config.iterations = 1;
      break;
    case PaperApp::kNbody:
      config.items = 1'048'576;
      config.iterations = 8;
      break;
    case PaperApp::kHotSpot:
      config.items = 8192;  // 8192 x 8192 grid
      config.iterations = 5;
      break;
    case PaperApp::kStreamSeq:
      config.items = 62'914'560;
      config.iterations = 1;
      break;
    case PaperApp::kStreamLoop:
      config.items = 62'914'560;
      config.iterations = 10;
      break;
  }
  return config;
}

Application::Config test_config(PaperApp app) {
  Application::Config config;
  config.functional = true;
  switch (app) {
    case PaperApp::kMatrixMul:
      config.items = 96;
      config.iterations = 1;
      break;
    case PaperApp::kBlackScholes:
      config.items = 4096;
      config.iterations = 1;
      break;
    case PaperApp::kNbody:
      config.items = 192;
      config.iterations = 3;
      break;
    case PaperApp::kHotSpot:
      config.items = 64;
      config.iterations = 3;
      break;
    case PaperApp::kStreamSeq:
      config.items = 4096;
      config.iterations = 1;
      break;
    case PaperApp::kStreamLoop:
      config.items = 4096;
      config.iterations = 3;
      break;
  }
  return config;
}

std::unique_ptr<Application> make_paper_app(PaperApp app,
                                            const hw::PlatformSpec& platform,
                                            Application::Config config) {
  switch (app) {
    case PaperApp::kMatrixMul:
      return std::make_unique<MatrixMulApp>(platform, config);
    case PaperApp::kBlackScholes:
      return std::make_unique<BlackScholesApp>(platform, config);
    case PaperApp::kNbody:
      return std::make_unique<NbodyApp>(platform, config);
    case PaperApp::kHotSpot:
      return std::make_unique<HotSpotApp>(platform, config);
    case PaperApp::kStreamSeq:
    case PaperApp::kStreamLoop:
      return std::make_unique<StreamApp>(platform, config);
  }
  throw InvalidArgument("unknown paper application");
}

std::unique_ptr<Application> make_paper_app(
    PaperApp app, const hw::PlatformSpec& platform) {
  return make_paper_app(app, platform, paper_config(app));
}

}  // namespace hetsched::apps
