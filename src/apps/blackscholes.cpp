#include "apps/blackscholes.hpp"

#include <cmath>

#include "common/rng.hpp"

namespace hetsched::apps {

namespace {

constexpr double kRiskFree = 0.02;
constexpr double kVolatility = 0.30;

/// Cumulative normal distribution via the complementary error function.
double cnd(double d) { return 0.5 * std::erfc(-d / std::sqrt(2.0)); }

std::pair<double, double> black_scholes(double s, double x, double t) {
  const double sqrt_t = std::sqrt(t);
  const double d1 =
      (std::log(s / x) + (kRiskFree + 0.5 * kVolatility * kVolatility) * t) /
      (kVolatility * sqrt_t);
  const double d2 = d1 - kVolatility * sqrt_t;
  const double expiry = x * std::exp(-kRiskFree * t);
  const double call = s * cnd(d1) - expiry * cnd(d2);
  const double put = expiry * cnd(-d2) - s * cnd(-d1);
  return {call, put};
}

analyzer::AppDescriptor make_descriptor() {
  analyzer::AppDescriptor descriptor;
  descriptor.name = "BlackScholes";
  descriptor.structure = analyzer::KernelGraph::single("black_scholes");
  descriptor.sync = analyzer::SyncReason::kNone;
  return descriptor;
}

}  // namespace

BlackScholesApp::BlackScholesApp(const hw::PlatformSpec& platform,
                                 Config config)
    : Application(platform, config, make_descriptor(),
                  /*sync_each_iteration=*/false) {
  HS_REQUIRE(config.iterations == 1,
             "BlackScholes is a one-shot application");
  const std::int64_t array_bytes = config_.items * 4;
  price_ = executor_->register_buffer("price", array_bytes);
  strike_ = executor_->register_buffer("strike", array_bytes);
  years_ = executor_->register_buffer("years", array_bytes);
  call_ = executor_->register_buffer("call", array_bytes);
  put_ = executor_->register_buffer("put", array_bytes);

  if (config_.functional) reset_data();

  hw::KernelTraits traits;
  traits.name = "black_scholes";
  // ~80 flops per option counting the transcendental expansions.
  traits.flops_per_item = 80.0;
  traits.device_bytes_per_item = 12.0;
  // Scalar CPU code with exp/log/sqrt sustains a few percent of peak; the
  // SDK OpenCL kernel roughly a quarter.
  traits.cpu_compute_efficiency = 0.042;
  traits.gpu_compute_efficiency = 0.25;
  traits.cpu_memory_efficiency = 0.80;
  traits.gpu_memory_efficiency = 0.90;

  rt::KernelDef def;
  def.name = "black_scholes";
  def.traits = traits;
  const mem::BufferId price = price_, strike = strike_, years = years_,
                      call = call_, put = put_;
  def.accesses = [price, strike, years, call, put](std::int64_t begin,
                                                   std::int64_t end) {
    const Interval range{begin * 4, end * 4};
    return std::vector<mem::RegionAccess>{
        {{price, range}, mem::AccessMode::kRead},
        {{strike, range}, mem::AccessMode::kRead},
        {{years, range}, mem::AccessMode::kRead},
        {{call, range}, mem::AccessMode::kWrite},
        {{put, range}, mem::AccessMode::kWrite},
    };
  };
  if (config_.functional) {
    def.body = [this](std::int64_t begin, std::int64_t end) {
      for (std::int64_t i = begin; i < end; ++i) {
        const auto [c, p] = black_scholes(host_price_[i], host_strike_[i],
                                          host_years_[i]);
        host_call_[i] = static_cast<float>(c);
        host_put_[i] = static_cast<float>(p);
      }
    };
  }
  set_kernels({executor_->register_kernel(std::move(def))});
}

void BlackScholesApp::reset_data() {
  if (!config_.functional) return;
  Rng rng(80530632);
  const auto n = static_cast<std::size_t>(config_.items);
  host_price_.resize(n);
  host_strike_.resize(n);
  host_years_.resize(n);
  host_call_.assign(n, 0.0f);
  host_put_.assign(n, 0.0f);
  for (std::size_t i = 0; i < n; ++i) {
    host_price_[i] = static_cast<float>(rng.uniform(5.0, 30.0));
    host_strike_[i] = static_cast<float>(rng.uniform(1.0, 100.0));
    host_years_[i] = static_cast<float>(rng.uniform(0.25, 10.0));
  }
}

std::pair<double, double> BlackScholesApp::reference_price(
    std::int64_t i) const {
  return black_scholes(host_price_[i], host_strike_[i], host_years_[i]);
}

void BlackScholesApp::verify() const {
  if (!config_.functional) return;
  for (std::int64_t i = 0; i < config_.items; ++i) {
    const auto [call, put] = reference_price(i);
    check_close(host_call_[i], call, 1e-4, "call[" + std::to_string(i) + "]");
    check_close(host_put_[i], put, 1e-4, "put[" + std::to_string(i) + "]");
  }
}

}  // namespace hetsched::apps
