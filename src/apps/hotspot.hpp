#pragma once

#include <vector>

#include "apps/app.hpp"

/// HotSpot (paper Table II, SK-Loop; origin: Rodinia benchmark suite).
///
/// Thermal simulation on a 2D grid: each iteration applies a 5-point
/// stencil combining the previous temperature and the per-cell power
/// density; the outputs from all processors are combined at the host and
/// become the next iteration's input (per-iteration synchronization). Work
/// item = one grid row; task instances read a one-row halo. Memory-bound on
/// both devices, with per-iteration transfers that make the CPU the faster
/// side — the paper's example of Glinda assigning the larger partition to
/// the CPU. The paper evaluates an 8192 x 8192 grid (0.75 GB over three
/// arrays).
namespace hetsched::apps {

class HotSpotApp final : public Application {
 public:
  /// `config.items` is the number of grid rows (the grid is square).
  HotSpotApp(const hw::PlatformSpec& platform, Config config);

  void verify() const override;
  void reset_data() override;

 private:
  void append_host_update(rt::Program& program, int iteration) const override;

  void stencil_rows(std::int64_t begin, std::int64_t end,
                    const std::vector<float>& in,
                    std::vector<float>& out) const;
  std::vector<float> reference_grid() const;

  std::int64_t rows_;
  std::int64_t cols_;
  mem::BufferId temp_in_ = 0, temp_out_ = 0, power_ = 0;
  mutable std::vector<float> host_temp_in_, host_temp_out_;
  std::vector<float> host_power_, initial_temp_;
};

}  // namespace hetsched::apps
