#include "apps/stream.hpp"

#include "common/rng.hpp"

namespace hetsched::apps {

namespace {

analyzer::AppDescriptor make_descriptor(int iterations) {
  analyzer::AppDescriptor descriptor;
  descriptor.name = iterations > 1 ? "STREAM-Loop" : "STREAM-Seq";
  descriptor.structure = analyzer::KernelGraph::sequence(
      {"copy", "scale", "add", "triad"}, /*main_loop=*/iterations > 1);
  // STREAM needs no synchronization between kernels; the paper adds it
  // manually as a separate scenario (Section IV-B3).
  descriptor.sync = analyzer::SyncReason::kNone;
  return descriptor;
}

}  // namespace

StreamApp::StreamApp(const hw::PlatformSpec& platform, Config config)
    : Application(platform, config, make_descriptor(config.iterations),
                  /*sync_each_iteration=*/false) {
  const std::int64_t array_bytes = config_.items * 4;
  a_ = executor_->register_buffer("a", array_bytes);
  b_ = executor_->register_buffer("b", array_bytes);
  c_ = executor_->register_buffer("c", array_bytes);

  if (config_.functional) reset_data();

  auto copy_body = [this](std::int64_t begin, std::int64_t end) {
    for (std::int64_t i = begin; i < end; ++i) host_c_[i] = host_a_[i];
  };
  auto scale_body = [this](std::int64_t begin, std::int64_t end) {
    for (std::int64_t i = begin; i < end; ++i)
      host_b_[i] = kScalar * host_c_[i];
  };
  auto add_body = [this](std::int64_t begin, std::int64_t end) {
    for (std::int64_t i = begin; i < end; ++i)
      host_c_[i] = host_a_[i] + host_b_[i];
  };
  auto triad_body = [this](std::int64_t begin, std::int64_t end) {
    for (std::int64_t i = begin; i < end; ++i)
      host_a_[i] = host_b_[i] + kScalar * host_c_[i];
  };

  using mem::AccessMode;
  std::vector<rt::KernelId> kernels;
  kernels.push_back(register_stream_kernel(
      "copy", 0.0, 8.0, {{a_, AccessMode::kRead}, {c_, AccessMode::kWrite}},
      config_.functional ? rt::KernelBody(copy_body) : nullptr));
  kernels.push_back(register_stream_kernel(
      "scale", 1.0, 8.0, {{c_, AccessMode::kRead}, {b_, AccessMode::kWrite}},
      config_.functional ? rt::KernelBody(scale_body) : nullptr));
  kernels.push_back(register_stream_kernel(
      "add", 1.0, 12.0,
      {{a_, AccessMode::kRead},
       {b_, AccessMode::kRead},
       {c_, AccessMode::kWrite}},
      config_.functional ? rt::KernelBody(add_body) : nullptr));
  kernels.push_back(register_stream_kernel(
      "triad", 2.0, 12.0,
      {{b_, AccessMode::kRead},
       {c_, AccessMode::kRead},
       {a_, AccessMode::kWrite}},
      config_.functional ? rt::KernelBody(triad_body) : nullptr));
  set_kernels(std::move(kernels));
}

rt::KernelId StreamApp::register_stream_kernel(
    const std::string& name, double flops, double bytes,
    std::vector<std::pair<mem::BufferId, mem::AccessMode>> buffers,
    rt::KernelBody body) {
  hw::KernelTraits traits;
  traits.name = name;
  traits.flops_per_item = flops;
  traits.device_bytes_per_item = bytes;
  // Pure bandwidth kernels: STREAM sustains ~60% of the paper CPU's
  // datasheet bandwidth with 12 HT threads and ~85% of GDDR5 on the K20.
  traits.cpu_compute_efficiency = 0.50;
  traits.gpu_compute_efficiency = 0.50;
  traits.cpu_memory_efficiency = 0.60;
  traits.gpu_memory_efficiency = 0.85;

  rt::KernelDef def;
  def.name = name;
  def.traits = traits;
  def.body = std::move(body);
  def.accesses = [buffers](std::int64_t begin, std::int64_t end) {
    std::vector<mem::RegionAccess> accesses;
    accesses.reserve(buffers.size());
    for (const auto& [buffer, mode] : buffers)
      accesses.push_back({{buffer, {begin * 4, end * 4}}, mode});
    return accesses;
  };
  return executor_->register_kernel(std::move(def));
}

void StreamApp::reset_data() {
  if (!config_.functional) return;
  Rng rng(62914560);
  const auto n = static_cast<std::size_t>(config_.items);
  host_a_.resize(n);
  host_b_.assign(n, 0.0f);
  host_c_.assign(n, 0.0f);
  for (auto& x : host_a_) x = static_cast<float>(rng.uniform(1.0, 2.0));
  initial_a_ = host_a_;
}

void StreamApp::verify() const {
  if (!config_.functional) return;
  // Sequential reference of the same kernel sequence and iteration count.
  std::vector<float> a = initial_a_;
  std::vector<float> b(a.size(), 0.0f);
  std::vector<float> c(a.size(), 0.0f);
  for (int iteration = 0; iteration < config_.iterations; ++iteration) {
    for (std::size_t i = 0; i < a.size(); ++i) c[i] = a[i];
    for (std::size_t i = 0; i < a.size(); ++i) b[i] = kScalar * c[i];
    for (std::size_t i = 0; i < a.size(); ++i) c[i] = a[i] + b[i];
    for (std::size_t i = 0; i < a.size(); ++i) a[i] = b[i] + kScalar * c[i];
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    check_close(host_a_[i], a[i], 1e-3, "a[" + std::to_string(i) + "]");
    check_close(host_b_[i], b[i], 1e-3, "b[" + std::to_string(i) + "]");
    check_close(host_c_[i], c[i], 1e-3, "c[" + std::to_string(i) + "]");
  }
}

}  // namespace hetsched::apps
