#pragma once

#include <vector>

#include "apps/app.hpp"

/// STREAM (paper Table II, MK-Seq / MK-Loop; origin: McCalpin's STREAM).
///
/// Four bandwidth kernels over 1D arrays a, b, c:
///   copy:  c = a          scale: b = s * c
///   add:   c = a + b      triad: a = b + s * c
/// STREAM-Seq runs the sequence once (MK-Seq); STREAM-Loop iterates it
/// (MK-Loop). The kernels chain through the arrays, so without taskwaits the
/// runtime pipelines chunks across kernels and iterations; the paper also
/// evaluates a variant with inter-kernel synchronization added manually.
/// The paper uses 62,914,560 elements (0.7 GB over the three arrays).
namespace hetsched::apps {

class StreamApp final : public Application {
 public:
  /// `config.items` is the element count; `config.iterations` = 1 gives
  /// STREAM-Seq, > 1 gives STREAM-Loop.
  StreamApp(const hw::PlatformSpec& platform, Config config);

  void verify() const override;
  void reset_data() override;

  static constexpr float kScalar = 3.0f;

 private:
  rt::KernelId register_stream_kernel(
      const std::string& name, double flops, double bytes,
      std::vector<std::pair<mem::BufferId, mem::AccessMode>> buffers,
      rt::KernelBody body);

  mem::BufferId a_ = 0, b_ = 0, c_ = 0;
  std::vector<float> host_a_, host_b_, host_c_;
  std::vector<float> initial_a_;
};

}  // namespace hetsched::apps
