#include "apps/spectral_dag.hpp"

#include <cmath>

#include "common/rng.hpp"

namespace hetsched::apps {

namespace {

analyzer::AppDescriptor make_descriptor(int iterations) {
  analyzer::AppDescriptor descriptor;
  descriptor.name = "SpectralDAG";
  descriptor.structure.kernels = {
      {"spectrum", false}, {"row_pass", false}, {"col_pass", false},
      {"combine", false}};
  descriptor.structure.flow = {{0, 1}, {0, 2}, {1, 3}, {2, 3}};  // diamond
  descriptor.structure.main_loop = iterations > 1;
  descriptor.sync = analyzer::SyncReason::kNone;
  return descriptor;
}

float spectrum_update(float spec, float param) {
  return spec * 0.9f + param;
}
float row_transform(float spec) { return spec * 1.5f + 1.0f; }
float col_transform(float spec) { return spec * 0.5f - 1.0f; }
float combine(float row, float col) { return row + col; }

}  // namespace

SpectralDagApp::SpectralDagApp(const hw::PlatformSpec& platform,
                               Config config)
    : Application(platform, config, make_descriptor(config.iterations),
                  /*sync_each_iteration=*/false) {
  const std::int64_t array_bytes = config_.items * 4;
  params_ = executor_->register_buffer("params", array_bytes);
  spec_ = executor_->register_buffer("spec", array_bytes);
  rows_ = executor_->register_buffer("rows", array_bytes);
  cols_ = executor_->register_buffer("cols", array_bytes);
  height_ = executor_->register_buffer("height", array_bytes);

  if (config_.functional) reset_data();

  struct Spec {
    const char* name;
    double flops;
    double bytes;
    double cpu_eff;
    double gpu_eff;
  };
  const Spec specs[] = {
      {"spectrum", 50.0, 12.0, 0.10, 0.30},
      {"row_pass", 400.0, 8.0, 0.10, 0.40},  // compute-heavy: GPU-friendly
      {"col_pass", 400.0, 8.0, 0.10, 0.40},
      {"combine", 5.0, 12.0, 0.30, 0.30},  // bandwidth-bound
  };

  std::vector<rt::KernelId> kernels;
  for (int k = 0; k < 4; ++k) {
    hw::KernelTraits traits;
    traits.name = specs[k].name;
    traits.flops_per_item = specs[k].flops;
    traits.device_bytes_per_item = specs[k].bytes;
    traits.cpu_compute_efficiency = specs[k].cpu_eff;
    traits.gpu_compute_efficiency = specs[k].gpu_eff;
    traits.cpu_memory_efficiency = 0.6;
    traits.gpu_memory_efficiency = 0.85;

    rt::KernelDef def;
    def.name = specs[k].name;
    def.traits = traits;
    const mem::BufferId params = params_, spec = spec_, rows = rows_,
                        cols = cols_, height = height_;
    switch (k) {
      case 0:
        def.accesses = [params, spec](std::int64_t begin, std::int64_t end) {
          const Interval range{begin * 4, end * 4};
          return std::vector<mem::RegionAccess>{
              {{params, range}, mem::AccessMode::kRead},
              {{spec, range}, mem::AccessMode::kReadWrite},
          };
        };
        if (config_.functional) {
          def.body = [this](std::int64_t begin, std::int64_t end) {
            for (std::int64_t i = begin; i < end; ++i)
              host_spec_[i] = spectrum_update(host_spec_[i], host_params_[i]);
          };
        }
        break;
      case 1:
        def.accesses = [spec, rows](std::int64_t begin, std::int64_t end) {
          const Interval range{begin * 4, end * 4};
          return std::vector<mem::RegionAccess>{
              {{spec, range}, mem::AccessMode::kRead},
              {{rows, range}, mem::AccessMode::kWrite},
          };
        };
        if (config_.functional) {
          def.body = [this](std::int64_t begin, std::int64_t end) {
            for (std::int64_t i = begin; i < end; ++i)
              host_rows_[i] = row_transform(host_spec_[i]);
          };
        }
        break;
      case 2:
        def.accesses = [spec, cols](std::int64_t begin, std::int64_t end) {
          const Interval range{begin * 4, end * 4};
          return std::vector<mem::RegionAccess>{
              {{spec, range}, mem::AccessMode::kRead},
              {{cols, range}, mem::AccessMode::kWrite},
          };
        };
        if (config_.functional) {
          def.body = [this](std::int64_t begin, std::int64_t end) {
            for (std::int64_t i = begin; i < end; ++i)
              host_cols_[i] = col_transform(host_spec_[i]);
          };
        }
        break;
      case 3:
        def.accesses = [rows, cols, height](std::int64_t begin,
                                            std::int64_t end) {
          const Interval range{begin * 4, end * 4};
          return std::vector<mem::RegionAccess>{
              {{rows, range}, mem::AccessMode::kRead},
              {{cols, range}, mem::AccessMode::kRead},
              {{height, range}, mem::AccessMode::kWrite},
          };
        };
        if (config_.functional) {
          def.body = [this](std::int64_t begin, std::int64_t end) {
            for (std::int64_t i = begin; i < end; ++i)
              host_height_[i] = combine(host_rows_[i], host_cols_[i]);
          };
        }
        break;
    }
    kernels.push_back(executor_->register_kernel(std::move(def)));
  }
  set_kernels(std::move(kernels));
}

void SpectralDagApp::reset_data() {
  if (!config_.functional) return;
  Rng rng(20150901);
  const auto n = static_cast<std::size_t>(config_.items);
  host_params_.resize(n);
  host_spec_.assign(n, 0.0f);
  host_rows_.assign(n, 0.0f);
  host_cols_.assign(n, 0.0f);
  host_height_.assign(n, 0.0f);
  for (auto& p : host_params_) p = static_cast<float>(rng.uniform(-1.0, 1.0));
  functional_iteration_ = 0;
}

void SpectralDagApp::step_reference(std::vector<float>& spec,
                                    std::vector<float>& rows,
                                    std::vector<float>& cols,
                                    std::vector<float>& height,
                                    int iteration) const {
  (void)iteration;
  for (std::size_t i = 0; i < spec.size(); ++i)
    spec[i] = spectrum_update(spec[i], host_params_[i]);
  for (std::size_t i = 0; i < spec.size(); ++i)
    rows[i] = row_transform(spec[i]);
  for (std::size_t i = 0; i < spec.size(); ++i)
    cols[i] = col_transform(spec[i]);
  for (std::size_t i = 0; i < spec.size(); ++i)
    height[i] = combine(rows[i], cols[i]);
}

void SpectralDagApp::verify() const {
  if (!config_.functional) return;
  std::vector<float> spec(host_params_.size(), 0.0f);
  std::vector<float> rows(spec.size(), 0.0f), cols(spec.size(), 0.0f),
      height(spec.size(), 0.0f);
  for (int t = 0; t < config_.iterations; ++t)
    step_reference(spec, rows, cols, height, t);
  for (std::size_t i = 0; i < spec.size(); ++i) {
    check_close(host_height_[i], height[i], 1e-4,
                "height[" + std::to_string(i) + "]");
    check_close(host_spec_[i], spec[i], 1e-4,
                "spec[" + std::to_string(i) + "]");
  }
}

}  // namespace hetsched::apps
