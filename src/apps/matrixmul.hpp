#pragma once

#include <vector>

#include "apps/app.hpp"

/// MatrixMul (paper Table II, SK-One; origin: NVIDIA OpenCL SDK).
///
/// Dense single-precision matrix-matrix multiplication A x B = C with
/// row-wise partitioning: work item = one row of C; each task instance
/// receives a block of consecutive rows of A plus the full B (a fixed
/// broadcast transfer the partitioning model must discover via its two-point
/// profiling fit). The paper evaluates N = 6144 (0.4 GB).
namespace hetsched::apps {

class MatrixMulApp final : public Application {
 public:
  /// `config.items` is N, the matrix dimension (= number of rows of C).
  MatrixMulApp(const hw::PlatformSpec& platform, Config config);

  void verify() const override;
  void reset_data() override;

 private:
  std::int64_t n_;
  mem::BufferId a_ = 0, b_ = 0, c_ = 0;
  std::vector<float> host_a_, host_b_, host_c_;
};

}  // namespace hetsched::apps
