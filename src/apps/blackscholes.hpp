#pragma once

#include <vector>

#include "apps/app.hpp"

/// BlackScholes (paper Table II, SK-One; origin: NVIDIA OpenCL SDK).
///
/// European option pricing over a 1D array of options: five arrays (spot
/// price, strike, time to expiry in; call and put prices out) of 4 bytes
/// each — 20 bytes per option, which is why the paper measures the GPU data
/// transfer at ~37x the GPU kernel time and Glinda assigns 41%/59% to
/// CPU/GPU. The paper evaluates 80,530,632 options (1.5 GB).
namespace hetsched::apps {

class BlackScholesApp final : public Application {
 public:
  /// `config.items` is the number of options.
  BlackScholesApp(const hw::PlatformSpec& platform, Config config);

  void verify() const override;
  void reset_data() override;

  /// The closed-form reference price for option i (call, put).
  std::pair<double, double> reference_price(std::int64_t i) const;

 private:
  mem::BufferId price_ = 0, strike_ = 0, years_ = 0, call_ = 0, put_ = 0;
  std::vector<float> host_price_, host_strike_, host_years_;
  std::vector<float> host_call_, host_put_;
};

}  // namespace hetsched::apps
