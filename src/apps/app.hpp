#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "analyzer/app_model.hpp"
#include "glinda/profile.hpp"
#include "hw/platform.hpp"
#include "runtime/executor.hpp"

/// Application framework: the glue between a concrete data-parallel
/// application (kernels, buffers, iteration structure) and the partitioning
/// strategies that shape its execution.
///
/// Each application owns an Executor with its buffers and kernels
/// registered, publishes its kernel-structure descriptor for the analyzer,
/// and knows how to build its Program for any placement pattern the
/// strategies ask for. Concrete apps (MatrixMul, BlackScholes, Nbody,
/// HotSpot, STREAM) subclass this.
namespace hetsched::apps {

class Application {
 public:
  struct Config {
    /// Partitionable problem size (rows, options, bodies, elements...).
    std::int64_t items = 0;
    /// Main-loop iterations (1 for one-shot applications).
    int iterations = 1;
    /// Allocate host data and run kernel bodies (small problems/tests);
    /// when false, execution is timing-only.
    bool functional = false;
    /// Runtime overhead knobs for the app's executor (ablation studies).
    rt::RuntimeCosts costs;
    /// Record a full execution timeline into every report (chrome trace).
    bool record_trace = false;
    /// Record metrics, chunk-lifecycle spans, and the placement audit log
    /// into every report (rt::ExecutionReport::obs).
    bool record_observability = false;
  };

  virtual ~Application() = default;
  Application(const Application&) = delete;
  Application& operator=(const Application&) = delete;

  const std::string& name() const { return descriptor_.name; }
  const analyzer::AppDescriptor& descriptor() const { return descriptor_; }
  rt::Executor& executor() const { return *executor_; }
  std::int64_t items() const { return config_.items; }

  /// Item count of kernel `kernel_index` in the sequence. Most applications
  /// run every kernel over the same item space (the default); multi-pass
  /// algorithms (tree reduction, scan) override this with shrinking counts.
  virtual std::int64_t items_of(std::size_t kernel_index) const {
    (void)kernel_index;
    return config_.items;
  }

  /// IMBALANCED applications (per-item cost varies) override this with the
  /// prefix-weight function `W(i)` = total work of items [0, i); the static
  /// partitioner then balances WORK instead of item counts (Glinda's
  /// ICS'14 extension, paper ref [9]). nullptr means uniform.
  virtual std::function<double(std::int64_t)> prefix_weight() const {
    return nullptr;
  }
  int iterations() const { return config_.iterations; }
  bool functional() const { return config_.functional; }

  /// Kernel ids in execution-sequence order.
  const std::vector<rt::KernelId>& kernels() const { return kernels_; }

  /// Whether each main-loop iteration ends with a global synchronization
  /// (outputs combined at the host and fed to the next iteration) —
  /// intrinsic to the application, e.g. Nbody and HotSpot time steps.
  bool sync_each_iteration() const { return sync_each_iteration_; }

  /// Submits the instances of one kernel for one iteration. Strategies
  /// provide this to express their placement (pinned split, chunked
  /// dynamic, single-device).
  using KernelSubmitFn = std::function<void(
      rt::Program& program, std::size_t kernel_index, rt::KernelId kernel)>;

  /// Builds the application's full program: `iterations` repetitions of the
  /// kernel sequence, submitted via `submit`, with optional taskwaits
  /// between kernels (the paper's "w sync" scenario) and the application's
  /// intrinsic per-iteration synchronization + host update. Always ends
  /// with a final taskwait so results land in host memory.
  rt::Program build_program(const KernelSubmitFn& submit,
                            bool sync_between_kernels) const;

  /// Glinda profiling factory for one kernel in isolation: a balanced
  /// pinned program over the slice (CPU: one chunk per lane; GPU: one
  /// chunk), ending in a taskwait. Used by SP-Single and SP-Varied.
  glinda::SampleProgramFactory single_kernel_factory(
      std::size_t kernel_index) const;

  /// Glinda profiling factory for the whole kernel sequence fused (no
  /// intermediate synchronization). Used by SP-Unified.
  glinda::SampleProgramFactory fused_factory() const;

  /// Functional validation: recomputes a sequential reference and checks the
  /// runtime-produced results. Throws on mismatch; no-op when the app runs
  /// timing-only. Call after executing a program.
  virtual void verify() const {}

  /// Resets functional host data to initial values (call between executions
  /// when validating; timing-only apps may skip it).
  virtual void reset_data() {}

 protected:
  Application(const hw::PlatformSpec& platform, Config config,
              analyzer::AppDescriptor descriptor, bool sync_each_iteration);

  /// Concrete apps call this after registering kernels.
  void set_kernels(std::vector<rt::KernelId> kernels) {
    kernels_ = std::move(kernels);
  }

  /// Appends the application's host-side end-of-iteration update (e.g.
  /// copying the output grid into the input grid). Runs after the
  /// iteration's taskwait. Default: nothing.
  virtual void append_host_update(rt::Program& program, int iteration) const {
    (void)program;
    (void)iteration;
  }

  Config config_;
  analyzer::AppDescriptor descriptor_;
  bool sync_each_iteration_;
  std::unique_ptr<rt::Executor> executor_;
  std::vector<rt::KernelId> kernels_;
};

/// Relative tolerance check used by the apps' verify() implementations.
void check_close(double actual, double expected, double rel_tol,
                 const std::string& what);

}  // namespace hetsched::apps
