#pragma once

#include <vector>

#include "apps/app.hpp"

/// Nbody (paper Table II, SK-Loop; origin: Mont-Blanc benchmark suite).
///
/// Time-stepped body simulation: each iteration computes forces and
/// integrates; every body reads ALL particle states (a broadcast input), so
/// after each iteration the updated states must be combined at the host and
/// redistributed — the paper's per-iteration global synchronization. Work
/// item = one body; particle state is 32 bytes (position, mass, velocity).
/// The paper evaluates 1,048,576 bodies (64 MB of particle state).
namespace hetsched::apps {

class NbodyApp final : public Application {
 public:
  /// `config.items` is the body count; `config.iterations` the time steps.
  NbodyApp(const hw::PlatformSpec& platform, Config config);

  void verify() const override;
  void reset_data() override;

 private:
  void append_host_update(rt::Program& program, int iteration) const override;

  // Functional reference: runs the same number of steps sequentially.
  std::vector<float> reference_state() const;

  mem::BufferId state_ = 0, state_new_ = 0;
  // 8 floats per body: x, y, z, mass, vx, vy, vz, pad.
  mutable std::vector<float> host_state_, host_state_new_;
  std::vector<float> initial_state_;
};

}  // namespace hetsched::apps
