#include "apps/unstable_loop.hpp"

#include <cmath>

#include "common/rng.hpp"

namespace hetsched::apps {

namespace {

constexpr double kBaseGpuEfficiency = 0.5;
constexpr double kDecayPerSweep = 0.55;

analyzer::AppDescriptor make_descriptor(int sweeps) {
  analyzer::AppDescriptor descriptor;
  descriptor.name = "UnstableLoop";
  std::vector<std::string> names;
  names.reserve(static_cast<std::size_t>(sweeps));
  for (int t = 0; t < sweeps; ++t)
    names.push_back("sweep_" + std::to_string(t));
  // The paper's conversion: each iteration regarded as a different kernel,
  // SK-Loop -> MK-Seq. The host inspects convergence after every sweep.
  descriptor.structure = analyzer::KernelGraph::sequence(std::move(names));
  descriptor.sync = analyzer::SyncReason::kHostPostProcessing;
  return descriptor;
}

float relax(float x) { return 0.5f * x + 0.25f * x * x * 0.01f + 0.1f; }

}  // namespace

double UnstableLoopApp::gpu_efficiency_at(int sweep, int total_sweeps) {
  (void)total_sweeps;
  return kBaseGpuEfficiency * std::pow(kDecayPerSweep, sweep);
}

UnstableLoopApp::UnstableLoopApp(const hw::PlatformSpec& platform,
                                 Config config)
    : Application(platform,
                  Config{config.items, 1, config.functional, config.costs,
                         config.record_trace},
                  make_descriptor(config.iterations),
                  /*sync_each_iteration=*/false) {
  HS_REQUIRE(config.iterations >= 2,
             "UnstableLoop needs at least 2 sweeps to drift");
  const int sweeps = config.iterations;
  const std::int64_t array_bytes = config_.items * 4;
  state_ = executor_->register_buffer("state", array_bytes);
  scratch_ = executor_->register_buffer("scratch", array_bytes);

  if (config_.functional) reset_data();

  std::vector<rt::KernelId> kernels;
  for (int t = 0; t < sweeps; ++t) {
    hw::KernelTraits traits;
    traits.name = "sweep_" + std::to_string(t);
    traits.flops_per_item = 2000.0;
    traits.device_bytes_per_item = 8.0;
    traits.cpu_compute_efficiency = 0.12;  // flat: scalar code, cache-bound
    // Control flow grows more divergent every sweep: the GPU decays.
    traits.gpu_compute_efficiency = gpu_efficiency_at(t, sweeps);
    traits.cpu_memory_efficiency = 0.8;
    traits.gpu_memory_efficiency = 0.85;

    rt::KernelDef def;
    def.name = traits.name;
    def.traits = traits;
    // Ping-pong: even sweeps read state/write scratch, odd the reverse.
    const mem::BufferId src = (t % 2 == 0) ? state_ : scratch_;
    const mem::BufferId dst = (t % 2 == 0) ? scratch_ : state_;
    def.accesses = [src, dst](std::int64_t begin, std::int64_t end) {
      return std::vector<mem::RegionAccess>{
          {{src, {begin * 4, end * 4}}, mem::AccessMode::kRead},
          {{dst, {begin * 4, end * 4}}, mem::AccessMode::kWrite},
      };
    };
    if (config_.functional) {
      const bool even = t % 2 == 0;
      def.body = [this, even](std::int64_t begin, std::int64_t end) {
        const std::vector<float>& from = even ? host_state_ : host_scratch_;
        std::vector<float>& to = even ? host_scratch_ : host_state_;
        for (std::int64_t i = begin; i < end; ++i) to[i] = relax(from[i]);
      };
    }
    kernels.push_back(executor_->register_kernel(std::move(def)));
  }
  set_kernels(std::move(kernels));
}

void UnstableLoopApp::reset_data() {
  if (!config_.functional) return;
  Rng rng(55);
  const auto n = static_cast<std::size_t>(config_.items);
  host_state_.resize(n);
  host_scratch_.assign(n, 0.0f);
  for (auto& x : host_state_) x = static_cast<float>(rng.uniform(0.0, 10.0));
  initial_state_ = host_state_;
}

void UnstableLoopApp::verify() const {
  if (!config_.functional) return;
  const int sweeps = static_cast<int>(kernels().size());
  std::vector<float> state = initial_state_;
  std::vector<float> scratch(state.size(), 0.0f);
  for (int t = 0; t < sweeps; ++t) {
    const std::vector<float>& from = (t % 2 == 0) ? state : scratch;
    std::vector<float>& to = (t % 2 == 0) ? scratch : state;
    for (std::size_t i = 0; i < state.size(); ++i) to[i] = relax(from[i]);
  }
  const std::vector<float>& final_host =
      (sweeps % 2 == 1) ? host_scratch_ : host_state_;
  const std::vector<float>& final_ref = (sweeps % 2 == 1) ? scratch : state;
  for (std::size_t i = 0; i < final_ref.size(); ++i) {
    check_close(final_host[i], final_ref[i], 1e-4,
                "state[" + std::to_string(i) + "]");
  }
}

}  // namespace hetsched::apps
