#pragma once

#include <cstdint>
#include <string>

/// Per-run fault/resilience accounting, embedded in rt::ExecutionReport.
namespace hetsched::faults {

struct FaultReport {
  /// Whether a FaultPlan was armed for this run at all. When false every
  /// other field is at its default and the run was an ordinary one.
  bool active = false;
  std::string plan_name;
  /// Plan events whose start time fell inside the run.
  std::int64_t injected_faults = 0;
  /// Chunks re-announced after their device failed (each re-announcement
  /// counts once, including the ones that later succeeded).
  std::int64_t retries = 0;
  /// Chunks that ultimately ran on a different device than the one they
  /// were queued on when it failed.
  std::int64_t migrated_tasks = 0;
  /// Chunks given up on after exhausting RetryPolicy::max_retries, plus
  /// chunks pinned to a failed device (which have nowhere to go).
  std::int64_t abandoned_tasks = 0;
  /// Chunks pulled back from a diverged device's queue and re-placed.
  std::int64_t repartitioned_tasks = 0;
  /// Completions whose observed time exceeded the model prediction by more
  /// than RetryPolicy::divergence_threshold.
  std::int64_t divergence_events = 0;
  std::int64_t failed_devices = 0;
  /// Tasks that never completed (only possible when chunks were abandoned).
  std::int64_t unfinished_tasks = 0;
  /// False when abandoned chunks left part of the program unexecuted; the
  /// report's makespan then covers only the work that did finish.
  bool run_completed = true;
};

}  // namespace hetsched::faults
