#include "faults/fault_plan.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace hetsched::faults {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kSlowdown: return "slowdown";
    case FaultKind::kStall: return "stall";
    case FaultKind::kLinkDegrade: return "link-degrade";
    case FaultKind::kDeviceFailure: return "device-failure";
  }
  return "unknown";
}

FaultKind fault_kind_from_name(const std::string& name) {
  if (name == "slowdown") return FaultKind::kSlowdown;
  if (name == "stall") return FaultKind::kStall;
  if (name == "link-degrade") return FaultKind::kLinkDegrade;
  if (name == "device-failure") return FaultKind::kDeviceFailure;
  throw InvalidArgument("unknown fault kind '" + name + "'");
}

void FaultPlan::validate(std::size_t device_count) const {
  HS_REQUIRE(retry.max_retries >= 0,
             "retry.max_retries=" << retry.max_retries);
  HS_REQUIRE(retry.backoff_base >= 0,
             "retry.backoff_base=" << retry.backoff_base);
  HS_REQUIRE(retry.backoff_multiplier >= 1.0,
             "retry.backoff_multiplier=" << retry.backoff_multiplier);
  HS_REQUIRE(retry.divergence_threshold > 1.0,
             "retry.divergence_threshold=" << retry.divergence_threshold);
  for (const FaultEvent& event : events) {
    HS_REQUIRE(event.start >= 0, "fault event starts at " << event.start);
    switch (event.kind) {
      case FaultKind::kSlowdown:
        HS_REQUIRE(event.device < device_count,
                   "slowdown targets unknown device " << event.device);
        HS_REQUIRE(event.duration > 0,
                   "slowdown duration " << event.duration);
        HS_REQUIRE(event.magnitude >= 1.0,
                   "slowdown magnitude " << event.magnitude
                                         << " (must be >= 1)");
        break;
      case FaultKind::kStall:
        HS_REQUIRE(event.device < device_count,
                   "stall targets unknown device " << event.device);
        HS_REQUIRE(event.duration > 0, "stall duration " << event.duration);
        break;
      case FaultKind::kLinkDegrade:
        HS_REQUIRE(event.duration > 0,
                   "link-degrade duration " << event.duration);
        HS_REQUIRE(event.magnitude >= 1.0,
                   "link-degrade magnitude " << event.magnitude
                                             << " (must be >= 1)");
        break;
      case FaultKind::kDeviceFailure:
        HS_REQUIRE(event.device < device_count,
                   "failure targets unknown device " << event.device);
        HS_REQUIRE(event.device != hw::kCpuDevice,
                   "device 0 (the host CPU) orchestrates the run and "
                   "cannot fail");
        break;
    }
  }
}

json::Value FaultPlan::to_json() const {
  json::Value events_json{json::Value::Array{}};
  for (const FaultEvent& event : events) {
    json::Value entry;
    entry.set("kind", json::Value(fault_kind_name(event.kind)));
    entry.set("device",
              json::Value(static_cast<std::int64_t>(event.device)));
    entry.set("start_ns", json::Value(event.start));
    entry.set("duration_ns", json::Value(event.duration));
    entry.set("magnitude", json::Value(event.magnitude));
    events_json.push_back(std::move(entry));
  }
  json::Value retry_json;
  retry_json.set("max_retries",
                 json::Value(static_cast<std::int64_t>(retry.max_retries)));
  retry_json.set("backoff_base_ns", json::Value(retry.backoff_base));
  retry_json.set("backoff_multiplier",
                 json::Value(retry.backoff_multiplier));
  retry_json.set("divergence_threshold",
                 json::Value(retry.divergence_threshold));

  json::Value value;
  value.set("name", json::Value(name));
  value.set("events", std::move(events_json));
  value.set("retry", std::move(retry_json));
  return value;
}

FaultPlan FaultPlan::from_json(const json::Value& value) {
  FaultPlan plan;
  plan.name = value.at("name").as_string();
  for (const json::Value& entry : value.at("events").as_array()) {
    FaultEvent event;
    event.kind = fault_kind_from_name(entry.at("kind").as_string());
    event.device =
        static_cast<hw::DeviceId>(entry.at("device").as_int64());
    event.start = entry.at("start_ns").as_int64();
    event.duration = entry.at("duration_ns").as_int64();
    event.magnitude = entry.at("magnitude").as_number();
    plan.events.push_back(event);
  }
  const json::Value& retry = value.at("retry");
  plan.retry.max_retries =
      static_cast<int>(retry.at("max_retries").as_int64());
  plan.retry.backoff_base = retry.at("backoff_base_ns").as_int64();
  plan.retry.backoff_multiplier =
      retry.at("backoff_multiplier").as_number();
  plan.retry.divergence_threshold =
      retry.at("divergence_threshold").as_number();
  return plan;
}

std::string FaultPlan::canonical_key() const { return to_json().dump(); }

namespace {

SimTime at_fraction(SimTime horizon, double fraction) {
  return std::max<SimTime>(
      1, static_cast<SimTime>(static_cast<double>(horizon) * fraction));
}

}  // namespace

FaultPlan generate_fault_plan(std::uint64_t seed, std::size_t device_count,
                              SimTime horizon, GeneratorOptions options) {
  HS_REQUIRE(horizon > 0, "generate_fault_plan horizon " << horizon);
  HS_REQUIRE(options.events >= 0,
             "generate_fault_plan events " << options.events);
  Rng rng(seed);
  FaultPlan plan;
  plan.name = "generated";
  plan.events.reserve(static_cast<std::size_t>(options.events));
  const bool has_accelerator = device_count > 1;
  for (int i = 0; i < options.events; ++i) {
    FaultEvent event;
    // Draw the kind first so the stream of rng calls is fixed per event.
    const std::int64_t top = options.allow_failures && has_accelerator
                                 ? 3
                                 : (has_accelerator ? 2 : 0);
    const std::int64_t pick = rng.uniform_int(0, std::max<std::int64_t>(
                                                     top, 0));
    if (!has_accelerator || pick == 2) {
      event.kind = FaultKind::kLinkDegrade;
    } else if (pick == 3) {
      event.kind = FaultKind::kDeviceFailure;
    } else {
      event.kind = pick == 0 ? FaultKind::kSlowdown : FaultKind::kStall;
    }
    event.device =
        has_accelerator
            ? static_cast<hw::DeviceId>(rng.uniform_int(
                  1, static_cast<std::int64_t>(device_count) - 1))
            : hw::kCpuDevice;
    event.start =
        at_fraction(horizon, rng.uniform(0.0, options.start_fraction));
    event.duration =
        at_fraction(horizon, rng.uniform(options.min_duration_fraction,
                                         options.max_duration_fraction));
    event.magnitude =
        rng.uniform(options.min_magnitude, options.max_magnitude);
    plan.events.push_back(event);
  }
  return plan;
}

std::vector<std::string> named_fault_plans() {
  return {"gpu-slowdown", "gpu-stall", "link-degrade", "gpu-failure",
          "storm", "storm-all"};
}

FaultPlan make_named_plan(const std::string& name, SimTime horizon,
                          std::uint64_t seed, std::size_t device_count) {
  HS_REQUIRE(horizon > 0, "make_named_plan horizon " << horizon);
  FaultPlan plan;
  plan.name = name;
  if (name == "gpu-slowdown") {
    plan.events.push_back({FaultKind::kSlowdown, 1,
                           at_fraction(horizon, 0.2),
                           at_fraction(horizon, 0.6), 4.0});
    return plan;
  }
  if (name == "gpu-stall") {
    plan.events.push_back({FaultKind::kStall, 1, at_fraction(horizon, 0.3),
                           at_fraction(horizon, 0.2), 1.0});
    return plan;
  }
  if (name == "link-degrade") {
    plan.events.push_back({FaultKind::kLinkDegrade, 1,
                           at_fraction(horizon, 0.1),
                           at_fraction(horizon, 0.8), 4.0});
    return plan;
  }
  if (name == "gpu-failure") {
    plan.events.push_back(
        {FaultKind::kDeviceFailure, 1, at_fraction(horizon, 0.35), 0, 1.0});
    return plan;
  }
  if (name == "storm") {
    // Frozen at device_count=2: "storm" predates multi-device platforms,
    // and its scenario cache keys must never change. Use "storm-all" for
    // a storm that spreads over every accelerator.
    plan = generate_fault_plan(seed, /*device_count=*/2, horizon);
    plan.name = name;
    return plan;
  }
  if (name == "storm-all") {
    HS_REQUIRE(device_count >= 2,
               "storm-all needs an accelerator; device_count="
                   << device_count);
    GeneratorOptions options;
    options.allow_failures = true;
    plan = generate_fault_plan(seed, device_count, horizon, options);
    plan.name = name;
    return plan;
  }
  throw InvalidArgument("unknown fault plan '" + name +
                        "' (gpu-slowdown, gpu-stall, link-degrade, "
                        "gpu-failure, storm, storm-all)");
}

}  // namespace hetsched::faults
