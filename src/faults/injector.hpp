#pragma once

#include <optional>
#include <vector>

#include "faults/fault_plan.hpp"

/// Compiled form of a FaultPlan, queried by the executor on the hot path.
///
/// Construction folds the plan's (possibly overlapping) perturbation events
/// into per-channel piecewise-constant *rate profiles*: one profile per
/// device for compute throughput and one for the host<->device link. A rate
/// of 1.0 is nominal speed, overlapping slowdowns multiply (rate =
/// 1 / product of magnitudes), and a stall forces the rate to zero for its
/// window. Stretching a nominal duration through a profile is pure integer/
/// IEEE-double arithmetic over the plan — no hidden state — so identical
/// plans always stretch identically.
namespace hetsched::faults {

class FaultInjector {
 public:
  FaultInjector(FaultPlan plan, std::size_t device_count);

  const FaultPlan& plan() const { return plan_; }
  const RetryPolicy& retry() const { return plan_.retry; }

  /// Virtual time a compute burst occupies when it starts at `start` on
  /// `device` and would take `nominal` on a healthy device. Always
  /// >= nominal (rates never exceed 1).
  SimTime stretch_compute(hw::DeviceId device, SimTime start,
                          SimTime nominal) const;

  /// Same, for a transfer on the host<->device link.
  SimTime stretch_link(SimTime start, SimTime nominal) const;

  /// When `device` permanently fails, if ever (earliest failure event).
  std::optional<SimTime> failure_time(hw::DeviceId device) const;

  /// When the runtime *observes* the failure: the physical failure time
  /// plus a detection latency (clamped to >= 0). The latency is a benign
  /// timing freedom — real runtimes notice a dead queue anywhere between
  /// the next poll and the next dispatch — which schedule exploration
  /// (runtime/explore.hpp) turns into a decision site.
  std::optional<SimTime> observed_failure_time(hw::DeviceId device,
                                               SimTime detection_latency) const;

  /// Plan events whose start time falls inside [0, horizon) — the faults
  /// that were actually injected into a run of that length.
  std::vector<FaultEvent> events_started_by(SimTime horizon) const;

 private:
  /// One maximal segment of constant degraded rate; segments per channel
  /// are disjoint and sorted. Gaps between segments run at rate 1.0.
  struct Window {
    SimTime start = 0;
    SimTime end = 0;
    double rate = 1.0;
  };

  static std::vector<Window> build_profile(
      const std::vector<const FaultEvent*>& events);
  static SimTime stretch(const std::vector<Window>& windows, SimTime start,
                         SimTime nominal);

  FaultPlan plan_;
  std::vector<std::vector<Window>> compute_windows_;
  std::vector<Window> link_windows_;
  std::vector<std::optional<SimTime>> failure_;
};

}  // namespace hetsched::faults
