#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/time.hpp"
#include "hw/platform.hpp"

/// Declarative fault/perturbation plans.
///
/// A FaultPlan is the complete description of everything that goes wrong in
/// one simulated run: device slowdowns, transient stalls, link bandwidth
/// degradation, and permanent device failures, each anchored at an absolute
/// virtual time. Plans are plain data — parseable from JSON, serializable
/// byte-stably, and generatable from an `hs::Rng` seed — so a faulted run
/// is exactly as reproducible as a fault-free one: the same (plan, program,
/// platform) triple always yields the same ExecutionReport bytes.
namespace hetsched::faults {

enum class FaultKind {
  /// The device computes `magnitude`x slower for the window's duration.
  kSlowdown,
  /// The device makes no progress at all for the window's duration.
  kStall,
  /// Every byte on the host<->device link takes `magnitude`x longer.
  kLinkDegrade,
  /// The device dies at `start` and never comes back. `duration` and
  /// `magnitude` are ignored. Device 0 (the host CPU, which orchestrates
  /// the run) cannot fail.
  kDeviceFailure,
};

const char* fault_kind_name(FaultKind kind);
FaultKind fault_kind_from_name(const std::string& name);

struct FaultEvent {
  FaultKind kind = FaultKind::kSlowdown;
  /// Target device (ignored for kLinkDegrade — the platform has one link).
  hw::DeviceId device = 1;
  SimTime start = 0;
  SimTime duration = 0;
  /// Throughput divisor for kSlowdown / kLinkDegrade; must be >= 1.
  double magnitude = 1.0;
};

/// How the runtime reacts when a device failure displaces queued chunks.
struct RetryPolicy {
  /// Give up on a chunk after this many re-announcements.
  int max_retries = 3;
  /// Virtual-time delay before the first re-announcement.
  SimTime backoff_base = 50 * kMicrosecond;
  /// Each further retry multiplies the delay by this factor.
  double backoff_multiplier = 2.0;
  /// A chunk whose observed completion time exceeds the model prediction by
  /// more than this factor counts as diverged: the executor re-partitions
  /// the device's remaining (dynamically placed) queue through the
  /// scheduler.
  double divergence_threshold = 1.5;
};

struct FaultPlan {
  std::string name = "custom";
  std::vector<FaultEvent> events;
  RetryPolicy retry;

  bool empty() const { return events.empty(); }

  /// Throws InvalidArgument on malformed plans: device ids out of range,
  /// magnitudes below 1, negative times, or a failure of device 0.
  void validate(std::size_t device_count) const;

  json::Value to_json() const;
  static FaultPlan from_json(const json::Value& value);

  /// Byte-stable serialization (dump of to_json) — the determinism key.
  std::string canonical_key() const;
};

struct GeneratorOptions {
  /// Number of perturbation events to draw.
  int events = 4;
  /// Window start is drawn uniformly in [0, start_fraction * horizon].
  double start_fraction = 0.7;
  /// Window duration is drawn uniformly in this fraction range of horizon.
  double min_duration_fraction = 0.05;
  double max_duration_fraction = 0.3;
  /// Slowdown / link-degrade magnitude range.
  double min_magnitude = 1.5;
  double max_magnitude = 6.0;
  /// Whether the generator may also draw permanent device failures.
  bool allow_failures = false;
};

/// Draws a plan from a seed: every stochastic choice goes through hs::Rng,
/// so equal (seed, device_count, horizon, options) yield byte-identical
/// plans. Devices 1..device_count-1 are eligible targets; with a single
/// device only link faults are drawn.
FaultPlan generate_fault_plan(std::uint64_t seed, std::size_t device_count,
                              SimTime horizon, GeneratorOptions options = {});

/// Built-in plan families, scaled to `horizon` (typically the fault-free
/// makespan of the scenario under test):
///   gpu-slowdown  device 1 computes 4x slower over [0.2, 0.8] of horizon
///   gpu-stall     device 1 frozen over [0.3, 0.5] of horizon
///   link-degrade  link 4x slower over [0.1, 0.9] of horizon
///   gpu-failure   device 1 dies at 0.35 of horizon
///   storm         a seeded random mix over devices {1} (see
///                 generate_fault_plan; frozen at device_count=2 so storm
///                 scenario cache keys never change)
///   storm-all     a seeded random mix over ALL accelerator devices
///                 1..device_count-1, permanent failures included — the
///                 N-device migration stressor
/// `seed` only affects the storm families; `device_count` only affects
/// "storm-all". Throws InvalidArgument for unknown names.
FaultPlan make_named_plan(const std::string& name, SimTime horizon,
                          std::uint64_t seed = 0,
                          std::size_t device_count = 2);

/// The names make_named_plan accepts, in deterministic order.
std::vector<std::string> named_fault_plans();

}  // namespace hetsched::faults
