#include "faults/injector.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace hetsched::faults {

FaultInjector::FaultInjector(FaultPlan plan, std::size_t device_count)
    : plan_(std::move(plan)) {
  plan_.validate(device_count);
  compute_windows_.resize(device_count);
  failure_.resize(device_count);

  std::vector<const FaultEvent*> link_events;
  std::vector<std::vector<const FaultEvent*>> device_events(device_count);
  for (const FaultEvent& event : plan_.events) {
    switch (event.kind) {
      case FaultKind::kSlowdown:
      case FaultKind::kStall:
        device_events[event.device].push_back(&event);
        break;
      case FaultKind::kLinkDegrade:
        link_events.push_back(&event);
        break;
      case FaultKind::kDeviceFailure: {
        std::optional<SimTime>& at = failure_[event.device];
        if (!at || event.start < *at) at = event.start;
        break;
      }
    }
  }
  for (std::size_t d = 0; d < device_count; ++d) {
    compute_windows_[d] = build_profile(device_events[d]);
  }
  link_windows_ = build_profile(link_events);
}

std::vector<FaultInjector::Window> FaultInjector::build_profile(
    const std::vector<const FaultEvent*>& events) {
  if (events.empty()) return {};
  std::vector<SimTime> edges;
  edges.reserve(events.size() * 2);
  for (const FaultEvent* event : events) {
    edges.push_back(event->start);
    edges.push_back(event->start + event->duration);
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  std::vector<Window> profile;
  for (std::size_t i = 0; i + 1 < edges.size(); ++i) {
    const SimTime lo = edges[i];
    const SimTime hi = edges[i + 1];
    double rate = 1.0;
    for (const FaultEvent* event : events) {
      if (event->start <= lo && lo < event->start + event->duration) {
        if (event->kind == FaultKind::kStall) {
          rate = 0.0;
        } else if (rate > 0.0) {
          rate /= event->magnitude;
        }
      }
    }
    if (rate == 1.0) continue;
    if (!profile.empty() && profile.back().end == lo &&
        profile.back().rate == rate) {
      profile.back().end = hi;
    } else {
      profile.push_back({lo, hi, rate});
    }
  }
  return profile;
}

SimTime FaultInjector::stretch(const std::vector<Window>& windows,
                               SimTime start, SimTime nominal) {
  if (nominal <= 0) return nominal;
  double remaining = static_cast<double>(nominal);
  double elapsed = 0.0;
  SimTime cursor = start;
  for (const Window& window : windows) {
    if (window.end <= cursor) continue;
    if (window.start > cursor) {
      const double gap = static_cast<double>(window.start - cursor);
      if (remaining <= gap) {
        return static_cast<SimTime>(std::llround(elapsed + remaining));
      }
      remaining -= gap;
      elapsed += gap;
      cursor = window.start;
    }
    const double length = static_cast<double>(window.end - cursor);
    const double capacity = length * window.rate;
    if (window.rate > 0.0 && remaining <= capacity) {
      return static_cast<SimTime>(
          std::llround(elapsed + remaining / window.rate));
    }
    remaining -= capacity;
    elapsed += length;
    cursor = window.end;
  }
  // Nominal speed after the last perturbation window.
  return static_cast<SimTime>(std::llround(elapsed + remaining));
}

SimTime FaultInjector::stretch_compute(hw::DeviceId device, SimTime start,
                                       SimTime nominal) const {
  HS_ASSERT(device < compute_windows_.size());
  return stretch(compute_windows_[device], start, nominal);
}

SimTime FaultInjector::stretch_link(SimTime start, SimTime nominal) const {
  return stretch(link_windows_, start, nominal);
}

std::optional<SimTime> FaultInjector::failure_time(
    hw::DeviceId device) const {
  HS_ASSERT(device < failure_.size());
  return failure_[device];
}

std::optional<SimTime> FaultInjector::observed_failure_time(
    hw::DeviceId device, SimTime detection_latency) const {
  const std::optional<SimTime> at = failure_time(device);
  if (!at) return std::nullopt;
  return *at + std::max<SimTime>(detection_latency, 0);
}

std::vector<FaultEvent> FaultInjector::events_started_by(
    SimTime horizon) const {
  std::vector<FaultEvent> started;
  for (const FaultEvent& event : plan_.events) {
    if (event.start < horizon) started.push_back(event);
  }
  return started;
}

}  // namespace hetsched::faults
