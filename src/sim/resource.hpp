#pragma once

#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/time.hpp"

/// FIFO-serialized virtual resources (an execution lane, a PCIe link, ...).
///
/// A Resource models a server that processes one request at a time in
/// reservation order. Callers reserve capacity analytically: `reserve(now,
/// duration)` answers "if I hand this resource a job of `duration` at time
/// `now`, when does it start and finish?" and commits the reservation. This
/// reservation style fits an event-driven runtime: the dispatcher reserves
/// the device and schedules a completion event at the returned finish time.
namespace hetsched::sim {

struct BusySpan {
  SimTime start = 0;
  SimTime end = 0;
  /// Free-form label for traces ("k=copy inst=3", "H2D 64MB", ...).
  std::string label;
};

class Resource {
 public:
  explicit Resource(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Earliest time a request arriving at `now` could begin service.
  SimTime earliest_start(SimTime now) const {
    return available_at_ > now ? available_at_ : now;
  }

  /// Commits a reservation of `duration` arriving at `now`.
  /// Returns the span actually occupied. `duration` may be zero (the span is
  /// still recorded if labeled, so traces show zero-cost milestones).
  BusySpan reserve(SimTime now, SimTime duration, std::string label = {});

  /// Time this resource becomes free given all committed reservations.
  SimTime available_at() const { return available_at_; }

  /// Total time spent serving requests.
  SimTime busy_time() const { return busy_time_; }

  /// Utilization over [0, horizon]; 0 if horizon == 0.
  double utilization(SimTime horizon) const {
    return horizon <= 0 ? 0.0
                        : static_cast<double>(busy_time_) /
                              static_cast<double>(horizon);
  }

  std::size_t request_count() const { return requests_; }
  const std::vector<BusySpan>& history() const { return history_; }

  /// Enables/disables per-span history recording (on by default; large
  /// simulations may turn it off to save memory).
  void set_record_history(bool record) { record_history_ = record; }

  void reset();

 private:
  std::string name_;
  SimTime available_at_ = 0;
  SimTime busy_time_ = 0;
  std::size_t requests_ = 0;
  bool record_history_ = true;
  std::vector<BusySpan> history_;
};

}  // namespace hetsched::sim
