#include "sim/trace_stats.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/strings.hpp"

namespace hetsched::sim {

TraceStats analyze_trace(const TraceRecorder& trace) {
  TraceStats stats;
  stats.makespan = trace.makespan();

  std::map<std::string, LaneStats> lanes;
  // Per-lane busy intervals for the union / concurrency computation.
  std::map<std::string, std::vector<std::pair<SimTime, SimTime>>> busy;

  for (const TraceEvent& event : trace.events()) {
    switch (event.kind) {
      case TraceKind::kCompute:
        stats.total_compute += event.duration();
        break;
      case TraceKind::kTransferH2D:
        stats.total_h2d += event.duration();
        break;
      case TraceKind::kTransferD2H:
        stats.total_d2h += event.duration();
        break;
      case TraceKind::kOverhead:
        stats.total_overhead += event.duration();
        break;
      case TraceKind::kSync:
        stats.total_sync += event.duration();
        continue;  // waiting, not work: skip lane accounting
      case TraceKind::kFault:
        stats.total_fault += event.duration();
        continue;  // annotation, not work: skip lane accounting
      case TraceKind::kRecovery:
        stats.total_recovery += event.duration();
        continue;  // annotation, not work: skip lane accounting
    }
    LaneStats& lane = lanes[event.lane];
    lane.lane = event.lane;
    if (event.kind == TraceKind::kCompute) lane.compute += event.duration();
    if (event.kind == TraceKind::kTransferH2D ||
        event.kind == TraceKind::kTransferD2H)
      lane.transfer += event.duration();
    if (event.kind == TraceKind::kOverhead) lane.overhead += event.duration();
    if (event.duration() > 0)
      busy[event.lane].emplace_back(event.start, event.end);
  }

  // Union per lane (events on one lane may abut/overlap across categories).
  std::vector<std::vector<std::pair<SimTime, SimTime>>> merged_per_lane;
  for (auto& [name, intervals] : busy) {
    std::sort(intervals.begin(), intervals.end());
    std::vector<std::pair<SimTime, SimTime>> merged;
    for (const auto& [start, end] : intervals) {
      if (!merged.empty() && start <= merged.back().second) {
        merged.back().second = std::max(merged.back().second, end);
      } else {
        merged.emplace_back(start, end);
      }
    }
    SimTime lane_busy = 0;
    for (const auto& [start, end] : merged) lane_busy += end - start;
    lanes[name].busy = lane_busy;
    lanes[name].utilization =
        stats.makespan <= 0 ? 0.0
                            : static_cast<double>(lane_busy) /
                                  static_cast<double>(stats.makespan);
    merged_per_lane.push_back(std::move(merged));
  }

  // Concurrency sweep: +1 at interval starts, -1 at ends.
  std::vector<std::pair<SimTime, int>> edges;
  for (const auto& intervals : merged_per_lane) {
    for (const auto& [start, end] : intervals) {
      edges.emplace_back(start, +1);
      edges.emplace_back(end, -1);
    }
  }
  std::sort(edges.begin(), edges.end());
  SimTime cursor = 0;
  int depth = 0;
  for (const auto& [at, delta] : edges) {
    if (at > cursor) {
      const SimTime span = at - cursor;
      if (depth >= 2) {
        stats.overlapped_time += span;
      } else if (depth == 1) {
        stats.serial_time += span;
      } else {
        stats.idle_time += span;
      }
      cursor = at;
    }
    depth += delta;
  }
  if (stats.makespan > cursor) stats.idle_time += stats.makespan - cursor;

  stats.lanes.reserve(lanes.size());
  for (auto& [name, lane] : lanes) stats.lanes.push_back(std::move(lane));
  return stats;
}

std::string format_trace_stats(const TraceStats& stats) {
  std::ostringstream os;
  os << "makespan: " << format_time(stats.makespan) << "\n";
  os << "totals: compute " << format_time(stats.total_compute) << ", H2D "
     << format_time(stats.total_h2d) << ", D2H "
     << format_time(stats.total_d2h) << ", overhead "
     << format_time(stats.total_overhead) << ", sync "
     << format_time(stats.total_sync) << "\n";
  if (stats.total_fault > 0 || stats.total_recovery > 0)
    os << "faults: perturbation windows " << format_time(stats.total_fault)
       << ", recovery actions " << format_time(stats.total_recovery) << "\n";
  os << "concurrency: overlapped " << format_time(stats.overlapped_time)
     << " (" << format_percent(stats.overlap_fraction()) << "), serial "
     << format_time(stats.serial_time) << ", idle "
     << format_time(stats.idle_time) << "\n";
  os << "lanes:\n";
  for (const LaneStats& lane : stats.lanes) {
    os << "  " << lane.lane << ": busy " << format_time(lane.busy) << " ("
       << format_percent(lane.utilization) << ") = compute "
       << format_time(lane.compute) << " + transfer "
       << format_time(lane.transfer) << " + overhead "
       << format_time(lane.overhead) << "\n";
  }
  return os.str();
}

}  // namespace hetsched::sim
