#pragma once

#include <string>
#include <vector>

#include "common/time.hpp"

/// Execution trace recording and export.
///
/// The runtime records one TraceEvent per task execution, data transfer, and
/// synchronization. Traces power (a) the per-device busy/utilization numbers
/// in ExecutionReport and (b) `to_chrome_json`, which emits a file loadable
/// in chrome://tracing / Perfetto for visual timeline inspection.
namespace hetsched::sim {

enum class TraceKind {
  kCompute,
  kTransferH2D,
  kTransferD2H,
  kOverhead,
  kSync,
  /// An injected perturbation window (fault subsystem): slowdown, stall,
  /// link degradation, or device failure, painted on a dedicated lane.
  kFault,
  /// A resilience action: chunk retry/migration, queue re-partitioning, or
  /// an abandoned chunk.
  kRecovery,
};

const char* trace_kind_name(TraceKind kind);

struct TraceEvent {
  std::string lane;   ///< Resource the event occupied ("gpu0", "cpu.t3", ...).
  std::string label;  ///< Human-readable description.
  TraceKind kind = TraceKind::kCompute;
  SimTime start = 0;
  SimTime end = 0;

  SimTime duration() const { return end - start; }
};

class TraceRecorder {
 public:
  void record(TraceEvent event) { events_.push_back(std::move(event)); }
  void record(std::string lane, std::string label, TraceKind kind,
              SimTime start, SimTime end) {
    events_.push_back({std::move(lane), std::move(label), kind, start, end});
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }
  void clear() { events_.clear(); }
  /// Pre-sizes the event vector (recorders that know the approximate event
  /// count avoid growth reallocations in the record hot loop).
  void reserve(std::size_t capacity) { events_.reserve(capacity); }

  /// Latest end time across all events (0 when empty).
  SimTime makespan() const;

  /// Sum of durations of events on `lane` with the given kind.
  SimTime lane_time(const std::string& lane, TraceKind kind) const;

  /// Sum of durations of all events with the given kind.
  SimTime total_time(TraceKind kind) const;

  /// Chrome trace-event JSON ("traceEvents" array of complete events).
  std::string to_chrome_json() const;

  /// Same, with pre-rendered event objects (e.g. Perfetto "ph":"C" counter
  /// samples from the observability layer) appended to the array. Each
  /// string must be one complete JSON object, no trailing comma.
  std::string to_chrome_json(
      const std::vector<std::string>& extra_event_objects) const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace hetsched::sim
