#pragma once

#include <string>

#include "sim/trace.hpp"

/// ASCII Gantt rendering of execution traces.
///
/// Turns a TraceRecorder into a terminal timeline — one row per lane, one
/// character column per time bucket:
///   '#' compute   '>' host-to-device   '<' device-to-host
///   'o' overhead  '~' synchronization  '.' idle
/// A bucket showing multiple categories keeps the most salient one
/// (compute > transfers > overhead > sync). Used by `hetsched_cli analyze
/// --gantt` and handy in tests for eyeballing schedules.
namespace hetsched::sim {

struct GanttOptions {
  /// Character columns for the time axis.
  int width = 100;
  /// Hide lanes that never got any work (idle CPU threads).
  bool hide_idle_lanes = true;
};

std::string render_gantt(const TraceRecorder& trace,
                         GanttOptions options = {});

}  // namespace hetsched::sim
