#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/error.hpp"
#include "common/inline_function.hpp"
#include "common/time.hpp"

/// Discrete-event simulation engine.
///
/// The engine owns a virtual clock and a priority queue of events. Events
/// with equal timestamps fire in scheduling order (a monotonically
/// increasing sequence number breaks ties), which makes every simulation in
/// hetsched fully deterministic: same inputs, same event order, same result,
/// on any machine.
///
/// The queue is a hand-rolled binary min-heap over a flat, pre-sizable
/// vector keyed on (at, seq). Sequence numbers are unique, so the key is a
/// strict total order and the heap pops events in exactly the order the old
/// std::priority_queue did. Two things make it fast: sifts relocate events
/// with moves (trivially copyable callbacks degrade to memcpy), and the
/// callback type stores its callable inline — scheduling an event performs
/// no allocation once the backing vector is warm.
namespace hetsched::sim {

class Engine {
 public:
  /// Event callbacks are stored inline in the heap; 64 bytes covers the
  /// largest capture list in the runtime (8 pointer-sized captures) and is
  /// enforced at compile time by InlineFunction.
  using Callback = InlineFunction<void(), 64>;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current virtual time.
  SimTime now() const { return now_; }

  /// Schedules `fn` to run at absolute virtual time `at` (>= now()).
  void schedule_at(SimTime at, Callback fn);

  /// Schedules `fn` to run `delay` after now().
  void schedule_in(SimTime delay, Callback fn) {
    HS_REQUIRE(delay >= 0, "schedule_in with negative delay " << delay);
    schedule_at(now_ + delay, std::move(fn));
  }

  /// Runs events until the queue is empty. Returns the final clock value.
  SimTime run();

  /// Runs events with timestamp <= `until`; leaves later events queued.
  /// The clock advances to min(until, time of last fired event).
  SimTime run_until(SimTime until);

  /// Fires exactly one event if any is queued. Returns false when empty.
  bool step();

  /// Schedule exploration hook: when set, every group of events sharing
  /// the minimal timestamp becomes a decision site — the callback receives
  /// the group size n (>= 2) and returns which of the n events (indexed in
  /// canonical scheduling order) fires next; the rest are re-queued with
  /// their original sequence numbers, so each subsequent firing at the same
  /// timestamp is its own decision. Null (the default) keeps the canonical
  /// scheduling-order tie-break.
  using TieBreaker = std::function<std::size_t(std::size_t)>;
  void set_tie_breaker(TieBreaker breaker) {
    tie_breaker_ = std::move(breaker);
  }

  bool idle() const { return heap_.empty(); }
  std::size_t pending_events() const { return heap_.size(); }
  std::uint64_t fired_events() const { return fired_; }

  /// Pre-sizes the event heap's backing vector so steady-state scheduling
  /// never reallocates (callers typically know roughly how many events are
  /// in flight: tasks + lanes + a constant).
  void reserve_events(std::size_t capacity) { heap_.reserve(capacity); }

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;
    Callback fn;
  };
  /// Min-first: earliest timestamp, then lowest sequence number. seq is
  /// unique per event, so this is a strict total order and pop order is
  /// fully determined.
  static bool before(const Event& a, const Event& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  void heap_push(Event event);
  Event heap_pop();

  void fire(Event event);
  Event pop_next();

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t fired_ = 0;
  std::vector<Event> heap_;
  TieBreaker tie_breaker_;
};

}  // namespace hetsched::sim
