#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/error.hpp"
#include "common/time.hpp"

/// Discrete-event simulation engine.
///
/// The engine owns a virtual clock and a priority queue of events. Events
/// with equal timestamps fire in scheduling order (a monotonically
/// increasing sequence number breaks ties), which makes every simulation in
/// hetsched fully deterministic: same inputs, same event order, same result,
/// on any machine.
namespace hetsched::sim {

class Engine {
 public:
  using Callback = std::function<void()>;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current virtual time.
  SimTime now() const { return now_; }

  /// Schedules `fn` to run at absolute virtual time `at` (>= now()).
  void schedule_at(SimTime at, Callback fn);

  /// Schedules `fn` to run `delay` after now().
  void schedule_in(SimTime delay, Callback fn) {
    HS_REQUIRE(delay >= 0, "schedule_in with negative delay " << delay);
    schedule_at(now_ + delay, std::move(fn));
  }

  /// Runs events until the queue is empty. Returns the final clock value.
  SimTime run();

  /// Runs events with timestamp <= `until`; leaves later events queued.
  /// The clock advances to min(until, time of last fired event).
  SimTime run_until(SimTime until);

  /// Fires exactly one event if any is queued. Returns false when empty.
  bool step();

  /// Schedule exploration hook: when set, every group of events sharing
  /// the minimal timestamp becomes a decision site — the callback receives
  /// the group size n (>= 2) and returns which of the n events (indexed in
  /// canonical scheduling order) fires next; the rest are re-queued with
  /// their original sequence numbers, so each subsequent firing at the same
  /// timestamp is its own decision. Null (the default) keeps the canonical
  /// scheduling-order tie-break.
  using TieBreaker = std::function<std::size_t(std::size_t)>;
  void set_tie_breaker(TieBreaker breaker) {
    tie_breaker_ = std::move(breaker);
  }

  bool idle() const { return queue_.empty(); }
  std::size_t pending_events() const { return queue_.size(); }
  std::uint64_t fired_events() const { return fired_; }

  /// Pre-sizes the event queue's backing vector so steady-state scheduling
  /// never reallocates (callers typically know roughly how many events are
  /// in flight: tasks + lanes + a constant).
  void reserve_events(std::size_t capacity) { queue_.reserve(capacity); }

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };
  /// priority_queue with access to the protected backing container, so the
  /// engine can reserve capacity up front and pop by moving the element out
  /// (std::priority_queue::top() is const&, and moving from it through a
  /// const_cast is UB-adjacent; going through the container is not).
  struct EventQueue : std::priority_queue<Event, std::vector<Event>, Later> {
    void reserve(std::size_t capacity) { c.reserve(capacity); }
    /// Removes and returns the minimal element (what top()+pop() would
    /// discard), moved out of the heap instead of copied.
    Event pop_top() {
      std::pop_heap(c.begin(), c.end(), comp);
      Event event = std::move(c.back());
      c.pop_back();
      return event;
    }
  };

  void fire(Event event);
  Event pop_next();

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t fired_ = 0;
  EventQueue queue_;
  TieBreaker tie_breaker_;
};

}  // namespace hetsched::sim
