#include "sim/trace.hpp"

#include <algorithm>
#include <sstream>

namespace hetsched::sim {

const char* trace_kind_name(TraceKind kind) {
  switch (kind) {
    case TraceKind::kCompute: return "compute";
    case TraceKind::kTransferH2D: return "h2d";
    case TraceKind::kTransferD2H: return "d2h";
    case TraceKind::kOverhead: return "overhead";
    case TraceKind::kSync: return "sync";
    case TraceKind::kFault: return "fault";
    case TraceKind::kRecovery: return "recovery";
  }
  return "unknown";
}

SimTime TraceRecorder::makespan() const {
  SimTime latest = 0;
  for (const auto& event : events_) latest = std::max(latest, event.end);
  return latest;
}

SimTime TraceRecorder::lane_time(const std::string& lane,
                                 TraceKind kind) const {
  SimTime total = 0;
  for (const auto& event : events_)
    if (event.kind == kind && event.lane == lane) total += event.duration();
  return total;
}

SimTime TraceRecorder::total_time(TraceKind kind) const {
  SimTime total = 0;
  for (const auto& event : events_)
    if (event.kind == kind) total += event.duration();
  return total;
}

namespace {
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += ch;
    }
  }
  return out;
}
}  // namespace

std::string TraceRecorder::to_chrome_json() const {
  return to_chrome_json({});
}

std::string TraceRecorder::to_chrome_json(
    const std::vector<std::string>& extra_event_objects) const {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& event : events_) {
    if (!first) os << ",";
    first = false;
    // Chrome traces use microseconds; "X" = complete event with duration.
    os << "{\"name\":\"" << json_escape(event.label) << "\",\"cat\":\""
       << trace_kind_name(event.kind) << "\",\"ph\":\"X\",\"ts\":"
       << to_micros(event.start) << ",\"dur\":"
       << to_micros(event.end - event.start)
       << ",\"pid\":1,\"tid\":\"" << json_escape(event.lane) << "\"}";
  }
  for (const auto& object : extra_event_objects) {
    if (!first) os << ",";
    first = false;
    os << object;
  }
  os << "]}";
  return os.str();
}

}  // namespace hetsched::sim
