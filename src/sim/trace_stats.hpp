#pragma once

#include <string>
#include <vector>

#include "sim/trace.hpp"

/// Timeline analysis over recorded traces.
///
/// Turns a raw TraceRecorder into the quantities one actually argues with:
/// per-lane busy/utilization breakdowns, aggregate time per category, and a
/// concurrency profile — how much of the makespan had two or more lanes
/// working (the "perfect execution overlap" the paper's static partitioning
/// aims for), exactly one, or none (serialization: sync flushes, lone
/// transfers).
namespace hetsched::sim {

struct LaneStats {
  std::string lane;
  SimTime compute = 0;
  SimTime transfer = 0;  ///< h2d + d2h occupying this lane
  SimTime overhead = 0;
  SimTime busy = 0;      ///< union of the above (per recorded events)
  double utilization = 0.0;  ///< busy / makespan
};

struct TraceStats {
  SimTime makespan = 0;
  std::vector<LaneStats> lanes;  ///< sorted by lane name

  SimTime total_compute = 0;
  SimTime total_h2d = 0;
  SimTime total_d2h = 0;
  SimTime total_overhead = 0;
  SimTime total_sync = 0;
  /// Injected perturbation window time and resilience action (retry
  /// backoff) time — annotations, excluded from lane busy accounting.
  SimTime total_fault = 0;
  SimTime total_recovery = 0;

  /// Concurrency profile over [0, makespan]: time with >= 2 busy lanes
  /// (overlap), exactly 1 (serial), and 0 (gaps: barrier waits etc.).
  SimTime overlapped_time = 0;
  SimTime serial_time = 0;
  SimTime idle_time = 0;

  /// overlapped / makespan — 1.0 means the devices never waited on each
  /// other.
  double overlap_fraction() const {
    return makespan <= 0 ? 0.0
                         : static_cast<double>(overlapped_time) /
                               static_cast<double>(makespan);
  }
};

/// Computes the statistics. Sync events span the whole "host" pseudo-lane
/// and are excluded from the concurrency profile (they describe waiting,
/// not work).
TraceStats analyze_trace(const TraceRecorder& trace);

/// Multi-line human-readable rendering.
std::string format_trace_stats(const TraceStats& stats);

}  // namespace hetsched::sim
