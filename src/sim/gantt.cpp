#include "sim/gantt.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace hetsched::sim {

namespace {

/// Salience order for a bucket showing several categories.
int salience(TraceKind kind) {
  switch (kind) {
    case TraceKind::kCompute: return 4;
    case TraceKind::kTransferH2D: return 3;
    case TraceKind::kTransferD2H: return 3;
    case TraceKind::kOverhead: return 2;
    case TraceKind::kSync: return 1;
    // Fault/recovery annotations live on their own lane, so a high salience
    // only ever outranks other annotations sharing a bucket there.
    case TraceKind::kFault: return 5;
    case TraceKind::kRecovery: return 4;
  }
  return 0;
}

char glyph(TraceKind kind) {
  switch (kind) {
    case TraceKind::kCompute: return '#';
    case TraceKind::kTransferH2D: return '>';
    case TraceKind::kTransferD2H: return '<';
    case TraceKind::kOverhead: return 'o';
    case TraceKind::kSync: return '~';
    case TraceKind::kFault: return 'X';
    case TraceKind::kRecovery: return '+';
  }
  return '?';
}

}  // namespace

std::string render_gantt(const TraceRecorder& trace, GanttOptions options) {
  HS_REQUIRE(options.width >= 4, "gantt width " << options.width);
  const SimTime makespan = trace.makespan();
  if (makespan <= 0 || trace.empty()) return "(empty trace)\n";

  std::map<std::string, std::vector<std::pair<char, int>>> rows;
  for (const TraceEvent& event : trace.events()) {
    auto [it, inserted] = rows.try_emplace(
        event.lane,
        std::vector<std::pair<char, int>>(
            static_cast<std::size_t>(options.width), {'.', 0}));
    auto& row = it->second;
    if (event.duration() <= 0) continue;  // milestones paint nothing
    // Bucket range covered by this event (at least one bucket).
    const auto first = static_cast<std::size_t>(
        event.start * options.width / makespan);
    auto last = static_cast<std::size_t>(
        (event.end * options.width + makespan - 1) / makespan);
    last = std::max(last, first + 1);
    for (std::size_t bucket = first;
         bucket < std::min<std::size_t>(last, row.size()); ++bucket) {
      if (salience(event.kind) > row[bucket].second)
        row[bucket] = {glyph(event.kind), salience(event.kind)};
    }
  }

  std::size_t label_width = 0;
  for (const auto& [lane, row] : rows)
    label_width = std::max(label_width, lane.size());

  std::ostringstream os;
  os << "timeline: 0 .. " << format_time(makespan) << "  ('#' compute, "
     << "'>' H2D, '<' D2H, 'o' overhead, '~' sync, 'X' fault, "
     << "'+' recovery)\n";
  for (const auto& [lane, row] : rows) {
    bool has_work = false;
    std::string cells;
    cells.reserve(row.size());
    for (const auto& [ch, sal] : row) {
      cells += ch;
      has_work |= ch != '.';
    }
    if (options.hide_idle_lanes && !has_work) continue;
    os << lane << std::string(label_width - lane.size(), ' ') << " |"
       << cells << "|\n";
  }
  return os.str();
}

}  // namespace hetsched::sim
