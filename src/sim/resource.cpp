#include "sim/resource.hpp"

namespace hetsched::sim {

BusySpan Resource::reserve(SimTime now, SimTime duration, std::string label) {
  HS_REQUIRE(now >= 0, "reserve at negative time " << now);
  HS_REQUIRE(duration >= 0, "reserve with negative duration " << duration);
  const SimTime start = earliest_start(now);
  const SimTime end = start + duration;
  available_at_ = end;
  busy_time_ += duration;
  ++requests_;
  BusySpan span{start, end, std::move(label)};
  if (record_history_) history_.push_back(span);
  return span;
}

void Resource::reset() {
  available_at_ = 0;
  busy_time_ = 0;
  requests_ = 0;
  history_.clear();
}

}  // namespace hetsched::sim
