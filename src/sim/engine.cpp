#include "sim/engine.hpp"

namespace hetsched::sim {

void Engine::schedule_at(SimTime at, Callback fn) {
  HS_REQUIRE(at >= now_,
             "schedule_at in the past: at=" << at << " now=" << now_);
  HS_REQUIRE(fn != nullptr, "schedule_at with empty callback");
  heap_push(Event{at, next_seq_++, std::move(fn)});
}

/// Sift-up with a hole: the new event is held aside while parents shift
/// down into the vacancy, so each level costs one move instead of a swap.
void Engine::heap_push(Event event) {
  heap_.push_back(std::move(event));
  std::size_t i = heap_.size() - 1;
  if (i == 0) return;
  Event lifted = std::move(heap_[i]);
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!before(lifted, heap_[parent])) break;
    heap_[i] = std::move(heap_[parent]);
    i = parent;
  }
  heap_[i] = std::move(lifted);
}

/// Removes and returns the minimal event. The last element sifts down into
/// the hole left at the root, again one move per level.
Engine::Event Engine::heap_pop() {
  Event min = std::move(heap_.front());
  Event last = std::move(heap_.back());
  heap_.pop_back();
  if (!heap_.empty()) {
    std::size_t i = 0;
    const std::size_t n = heap_.size();
    for (;;) {
      std::size_t child = 2 * i + 1;
      if (child >= n) break;
      if (child + 1 < n && before(heap_[child + 1], heap_[child])) ++child;
      if (!before(heap_[child], last)) break;
      heap_[i] = std::move(heap_[child]);
      i = child;
    }
    heap_[i] = std::move(last);
  }
  return min;
}

void Engine::fire(Event event) {
  now_ = event.at;
  ++fired_;
  // Move the callback out before invoking: the callback may schedule new
  // events (reallocating the heap's storage) or even re-enter step().
  Callback fn = std::move(event.fn);
  fn();
}

Engine::Event Engine::pop_next() {
  Event event = heap_pop();
  if (!tie_breaker_ || heap_.empty() || heap_.front().at != event.at)
    return event;
  // Equal-timestamp cohort: the heap pops it in canonical (seq) order, so
  // index i below IS the i-th event of the canonical schedule. The chosen
  // event fires; the rest return with their original seq, preserving the
  // canonical order among them for the next decision.
  std::vector<Event> cohort;
  cohort.push_back(std::move(event));
  while (!heap_.empty() && heap_.front().at == cohort.front().at) {
    cohort.push_back(heap_pop());
  }
  std::size_t pick = tie_breaker_(cohort.size());
  if (pick >= cohort.size()) pick = 0;
  Event chosen = std::move(cohort[pick]);
  for (std::size_t i = 0; i < cohort.size(); ++i)
    if (i != pick) heap_push(std::move(cohort[i]));
  return chosen;
}

bool Engine::step() {
  if (heap_.empty()) return false;
  fire(pop_next());
  return true;
}

SimTime Engine::run() {
  while (step()) {
  }
  return now_;
}

SimTime Engine::run_until(SimTime until) {
  while (!heap_.empty() && heap_.front().at <= until) step();
  return now_;
}

}  // namespace hetsched::sim
