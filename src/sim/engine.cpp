#include "sim/engine.hpp"

namespace hetsched::sim {

void Engine::schedule_at(SimTime at, Callback fn) {
  HS_REQUIRE(at >= now_,
             "schedule_at in the past: at=" << at << " now=" << now_);
  HS_REQUIRE(fn != nullptr, "schedule_at with empty callback");
  queue_.push(Event{at, next_seq_++, std::move(fn)});
}

void Engine::fire(Event event) {
  now_ = event.at;
  ++fired_;
  // Move the callback out before invoking: the callback may schedule new
  // events (reallocating the queue's storage) or even re-enter step().
  Callback fn = std::move(event.fn);
  fn();
}

Engine::Event Engine::pop_next() {
  Event event = queue_.pop_top();
  if (!tie_breaker_ || queue_.empty() || queue_.top().at != event.at)
    return event;
  // Equal-timestamp cohort: the heap pops it in canonical (seq) order, so
  // index i below IS the i-th event of the canonical schedule. The chosen
  // event fires; the rest return with their original seq, preserving the
  // canonical order among them for the next decision.
  std::vector<Event> cohort;
  cohort.push_back(std::move(event));
  while (!queue_.empty() && queue_.top().at == cohort.front().at) {
    cohort.push_back(queue_.pop_top());
  }
  std::size_t pick = tie_breaker_(cohort.size());
  if (pick >= cohort.size()) pick = 0;
  Event chosen = std::move(cohort[pick]);
  for (std::size_t i = 0; i < cohort.size(); ++i)
    if (i != pick) queue_.push(std::move(cohort[i]));
  return chosen;
}

bool Engine::step() {
  if (queue_.empty()) return false;
  fire(pop_next());
  return true;
}

SimTime Engine::run() {
  while (step()) {
  }
  return now_;
}

SimTime Engine::run_until(SimTime until) {
  while (!queue_.empty() && queue_.top().at <= until) step();
  return now_;
}

}  // namespace hetsched::sim
