#include "sim/engine.hpp"

namespace hetsched::sim {

void Engine::schedule_at(SimTime at, Callback fn) {
  HS_REQUIRE(at >= now_,
             "schedule_at in the past: at=" << at << " now=" << now_);
  HS_REQUIRE(fn != nullptr, "schedule_at with empty callback");
  queue_.push(Event{at, next_seq_++, std::move(fn)});
}

void Engine::fire(Event event) {
  now_ = event.at;
  ++fired_;
  // Move the callback out before invoking: the callback may schedule new
  // events (reallocating the queue's storage) or even re-enter step().
  Callback fn = std::move(event.fn);
  fn();
}

bool Engine::step() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const&; const_cast is the standard idiom for
  // moving out of it just before pop (the element is discarded either way).
  Event event = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  fire(std::move(event));
  return true;
}

SimTime Engine::run() {
  while (step()) {
  }
  return now_;
}

SimTime Engine::run_until(SimTime until) {
  while (!queue_.empty() && queue_.top().at <= until) step();
  return now_;
}

}  // namespace hetsched::sim
