#include "sweep/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <unordered_map>

#include "common/error.hpp"
#include "faults/fault_plan.hpp"
#include "hw/platform.hpp"
#include "obs/metrics.hpp"
#include "obs/phase_profiler.hpp"
#include "obs/validate.hpp"
#include "runtime/thread_pool.hpp"
#include "strategies/strategy_runner.hpp"

namespace hetsched::sweep {

namespace {

using Clock = std::chrono::steady_clock;

double elapsed_ms(Clock::time_point since) {
  return std::chrono::duration<double, std::milli>(Clock::now() - since)
      .count();
}

json::Value metrics_to_json(const ScenarioMetrics& metrics) {
  json::Value per_kernel;
  for (double fraction : metrics.gpu_fraction_per_kernel)
    per_kernel.push_back(json::Value(fraction));
  if (metrics.gpu_fraction_per_kernel.empty())
    per_kernel = json::Value(json::Value::Array{});

  json::Value value;
  value.set("time_ms", json::Value(metrics.time_ms));
  value.set("gpu_fraction_overall",
            json::Value(metrics.gpu_fraction_overall));
  value.set("gpu_fraction_per_kernel", std::move(per_kernel));
  value.set("h2d_bytes", json::Value(metrics.h2d_bytes));
  value.set("d2h_bytes", json::Value(metrics.d2h_bytes));
  value.set("h2d_ms", json::Value(metrics.h2d_ms));
  value.set("d2h_ms", json::Value(metrics.d2h_ms));
  value.set("overhead_ms", json::Value(metrics.overhead_ms));
  value.set("tasks_executed", json::Value(metrics.tasks_executed));
  value.set("barriers", json::Value(metrics.barriers));
  value.set("scheduling_decisions",
            json::Value(metrics.scheduling_decisions));
  value.set("degradation_ratio", json::Value(metrics.degradation_ratio));
  value.set("baseline_time_ms", json::Value(metrics.baseline_time_ms));
  value.set("faults_injected", json::Value(metrics.faults_injected));
  value.set("fault_retries", json::Value(metrics.fault_retries));
  value.set("migrated_tasks", json::Value(metrics.migrated_tasks));
  value.set("repartitioned_tasks",
            json::Value(metrics.repartitioned_tasks));
  value.set("abandoned_tasks", json::Value(metrics.abandoned_tasks));
  value.set("run_completed", json::Value(metrics.run_completed));
  value.set("sim_events", json::Value(metrics.sim_events));
  return value;
}

ScenarioMetrics metrics_from_json(const json::Value& value) {
  ScenarioMetrics metrics;
  metrics.time_ms = value.at("time_ms").as_number();
  metrics.gpu_fraction_overall =
      value.at("gpu_fraction_overall").as_number();
  for (const json::Value& fraction :
       value.at("gpu_fraction_per_kernel").as_array())
    metrics.gpu_fraction_per_kernel.push_back(fraction.as_number());
  metrics.h2d_bytes = value.at("h2d_bytes").as_int64();
  metrics.d2h_bytes = value.at("d2h_bytes").as_int64();
  metrics.h2d_ms = value.at("h2d_ms").as_number();
  metrics.d2h_ms = value.at("d2h_ms").as_number();
  metrics.overhead_ms = value.at("overhead_ms").as_number();
  metrics.tasks_executed = value.at("tasks_executed").as_int64();
  metrics.barriers = value.at("barriers").as_int64();
  metrics.scheduling_decisions =
      value.at("scheduling_decisions").as_int64();
  metrics.degradation_ratio = value.at("degradation_ratio").as_number();
  metrics.baseline_time_ms = value.at("baseline_time_ms").as_number();
  metrics.faults_injected = value.at("faults_injected").as_int64();
  metrics.fault_retries = value.at("fault_retries").as_int64();
  metrics.migrated_tasks = value.at("migrated_tasks").as_int64();
  metrics.repartitioned_tasks = value.at("repartitioned_tasks").as_int64();
  metrics.abandoned_tasks = value.at("abandoned_tasks").as_int64();
  metrics.run_completed = value.at("run_completed").as_bool();
  metrics.sim_events = value.at("sim_events").as_int64();
  return metrics;
}

ScenarioStatus status_from_name(const std::string& name) {
  if (name == "ok") return ScenarioStatus::kOk;
  if (name == "inapplicable") return ScenarioStatus::kInapplicable;
  if (name == "failed") return ScenarioStatus::kFailed;
  throw InvalidArgument("unknown scenario status '" + name + "'");
}

}  // namespace

const char* scenario_status_name(ScenarioStatus status) {
  switch (status) {
    case ScenarioStatus::kOk: return "ok";
    case ScenarioStatus::kInapplicable: return "inapplicable";
    case ScenarioStatus::kFailed: return "failed";
  }
  return "unknown";
}

std::string ScenarioOutcome::to_payload() const {
  json::Value value;
  value.set("scenario", scenario.to_json());
  value.set("status", json::Value(scenario_status_name(status)));
  if (status != ScenarioStatus::kOk) {
    value.set("error", json::Value(error));
    return value.dump();
  }
  value.set("metrics", metrics_to_json(metrics));
  // Embedded as a JSON object; rt::report_to_json formats doubles through
  // json::format_double, so re-dumping the parsed object reproduces the
  // exact original bytes.
  value.set("report", json::Value::parse(report_json));
  if (!trace_json.empty()) {
    // Traced outcomes persist trace + validator findings so a --trace run
    // that hits the cache still returns them (stored as an opaque string:
    // the trace is already serialized chrome JSON and must round-trip
    // byte-exactly).
    value.set("trace", json::Value(trace_json));
    json::Value violations{json::Value::Array{}};
    for (const std::string& violation : trace_violations)
      violations.push_back(json::Value(violation));
    value.set("trace_violations", std::move(violations));
  }
  return value.dump();
}

ScenarioOutcome ScenarioOutcome::from_payload(const std::string& payload) {
  const json::Value value = json::Value::parse(payload);
  ScenarioOutcome outcome;
  outcome.scenario = Scenario::from_json(value.at("scenario"));
  outcome.status = status_from_name(value.at("status").as_string());
  if (outcome.status != ScenarioStatus::kOk) {
    outcome.error = value.at("error").as_string();
    return outcome;
  }
  outcome.metrics = metrics_from_json(value.at("metrics"));
  outcome.report_json = value.at("report").dump();
  // Lenient: entries cached by an untraced run have no trace members.
  if (const json::Value* trace = value.find("trace")) {
    outcome.trace_json = trace->as_string();
    for (const json::Value& violation :
         value.at("trace_violations").as_array())
      outcome.trace_violations.push_back(violation.as_string());
  }
  return outcome;
}

SweepEngine::SweepEngine(SweepOptions options)
    : options_(std::move(options)) {
  // The scenario cache key does not close over the explore spec, so a
  // cached canonical result would shadow an explored one (and vice versa).
  HS_REQUIRE(!(options_.use_cache && options_.explore.active()),
             "schedule exploration is incompatible with the result cache");
}

ScenarioOutcome SweepEngine::compute(const Scenario& scenario) const {
  return compute_scenario(scenario, nullptr);
}

ScenarioOutcome SweepEngine::compute_scenario(const Scenario& scenario,
                                              MemoShard* memo) const {
  const obs::ScopedPhase profile_phase(obs::kPhaseSweepScenario);
  ScenarioOutcome outcome;
  outcome.scenario = scenario;
  const Clock::time_point start = Clock::now();

  // Faulted scenarios are measured against their own fault-free twin: the
  // baseline run fixes the horizon the named plan's relative offsets
  // resolve against, and its makespan is the degradation denominator. The
  // twin is part of this scenario's deterministic closure, not a separate
  // sweep entry — but within one run() every faulted scenario that maps to
  // the same healthy key shares ONE twin computation through the memo
  // instead of recomputing it per fault seed / plan.
  double baseline_ms = 0.0;
  if (!scenario.fault_plan.empty()) {
    Scenario healthy = scenario;
    healthy.fault_plan.clear();
    healthy.fault_seed = 0;
    ScenarioMemo::OutcomePtr shared_base;
    ScenarioOutcome owned_base;
    const ScenarioOutcome* base = nullptr;
    if (memo != nullptr) {
      const ScenarioMemo::Lookup lookup = memo->get_or_compute(
          scenario_key(healthy),
          [this, &healthy, memo] { return compute_scenario(healthy, memo); });
      memo->note_twin_lookup(lookup.shared);
      shared_base = lookup.outcome;
      base = shared_base.get();
    } else {
      owned_base = compute_scenario(healthy, nullptr);
      base = &owned_base;
    }
    if (!base->ok()) {
      outcome.status = base->status;
      outcome.error = base->error;
      outcome.wall_ms = elapsed_ms(start);
      return outcome;
    }
    baseline_ms = base->metrics.time_ms;
  }

  try {
    const hw::PlatformSpec platform =
        hw::platform_by_name(scenario.platform);
    apps::Application::Config config =
        scenario.small ? apps::test_config(scenario.app)
                       : apps::paper_config(scenario.app);
    config.costs = scenario.costs;
    config.record_trace = options_.record_trace;
    // Spans ride along with the trace so validate_trace can check the
    // chunk-lifecycle chains, not just lane overlap.
    config.record_observability = options_.record_trace;
    std::unique_ptr<apps::Application> application =
        apps::make_paper_app(scenario.app, platform, config);

    strategies::StrategyOptions strategy_options;
    strategy_options.sync_between_kernels = scenario.sync;
    strategy_options.task_count = scenario.task_count;
    strategy_options.explore = options_.explore;
    if (!scenario.fault_plan.empty()) {
      const SimTime horizon =
          std::max<SimTime>(1, std::llround(baseline_ms * 1e6));
      strategy_options.fault_plan =
          faults::make_named_plan(scenario.fault_plan, horizon,
                                  scenario.fault_seed,
                                  platform.device_count());
    }
    strategies::StrategyRunner runner(*application, strategy_options);
    const strategies::StrategyResult result = runner.run(scenario.strategy);

    outcome.metrics.time_ms = result.time_ms();
    outcome.metrics.gpu_fraction_overall = result.gpu_fraction_overall;
    outcome.metrics.gpu_fraction_per_kernel = result.gpu_fraction_per_kernel;
    const rt::TransferReport& transfers = result.report.transfers;
    outcome.metrics.h2d_bytes = transfers.h2d_bytes;
    outcome.metrics.d2h_bytes = transfers.d2h_bytes;
    outcome.metrics.h2d_ms = to_millis(transfers.h2d_time);
    outcome.metrics.d2h_ms = to_millis(transfers.d2h_time);
    outcome.metrics.overhead_ms = to_millis(result.report.overhead_time);
    outcome.metrics.tasks_executed =
        static_cast<std::int64_t>(result.report.tasks_executed);
    outcome.metrics.barriers =
        static_cast<std::int64_t>(result.report.barriers);
    outcome.metrics.scheduling_decisions =
        static_cast<std::int64_t>(result.report.scheduling_decisions);
    outcome.metrics.sim_events =
        static_cast<std::int64_t>(result.report.sim_events);
    const faults::FaultReport& fault_report = result.report.faults;
    outcome.metrics.faults_injected = fault_report.injected_faults;
    outcome.metrics.fault_retries = fault_report.retries;
    outcome.metrics.migrated_tasks = fault_report.migrated_tasks;
    outcome.metrics.repartitioned_tasks = fault_report.repartitioned_tasks;
    outcome.metrics.abandoned_tasks = fault_report.abandoned_tasks;
    outcome.metrics.run_completed = fault_report.run_completed;
    if (!scenario.fault_plan.empty()) {
      outcome.metrics.baseline_time_ms = baseline_ms;
      if (fault_report.run_completed && baseline_ms > 0.0)
        outcome.metrics.degradation_ratio = result.time_ms() / baseline_ms;
    }
    outcome.report_json =
        rt::report_to_json(result.report, application->executor().kernels());
    if (options_.record_trace) {
      outcome.trace_json = result.report.trace.to_chrome_json();
      outcome.trace_violations = obs::validate_trace(
          result.report.trace, result.report.makespan,
          result.report.obs ? &result.report.obs->spans : nullptr);
    }
  } catch (const InvalidArgument& error) {
    outcome.status = ScenarioStatus::kInapplicable;
    outcome.error = error.what();
  } catch (const std::exception& error) {
    outcome.status = ScenarioStatus::kFailed;
    outcome.error = error.what();
  }
  outcome.wall_ms = elapsed_ms(start);
  return outcome;
}

SweepRun SweepEngine::run(const std::vector<Scenario>& scenarios) const {
  const Clock::time_point start = Clock::now();
  SweepRun run;
  run.outcomes.resize(scenarios.size());

  std::unique_ptr<ResultCache> cache;
  if (options_.use_cache)
    cache = std::make_unique<ResultCache>(options_.cache_dir);

  // The scenario key is the unit of identity for every layer below: it is
  // hashed for the disk cache, compared for in-run dedup, and derived again
  // for every baseline twin. Compute each input's key exactly once here
  // instead of once per use inside the loops.
  std::vector<std::string> keys;
  keys.reserve(scenarios.size());
  for (const Scenario& scenario : scenarios)
    keys.push_back(scenario_key(scenario));

  // Group duplicate inputs: only the first occurrence of a key touches the
  // cache or a worker; later occurrences copy its outcome (scenario dedup).
  std::unordered_map<std::string_view, std::size_t> first_by_key;
  first_by_key.reserve(keys.size());
  std::vector<std::size_t> primaries;
  primaries.reserve(scenarios.size());
  std::vector<std::pair<std::size_t, std::size_t>> duplicates;  // dup, primary
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const auto [it, inserted] = first_by_key.emplace(keys[i], i);
    if (inserted) {
      primaries.push_back(i);
    } else {
      duplicates.emplace_back(i, it->second);
    }
  }

  // Resolve cache hits up front; only misses are dispatched to workers.
  std::vector<std::size_t> misses;
  misses.reserve(primaries.size());
  for (std::size_t i : primaries) {
    bool hit = false;
    if (cache) {
      const Clock::time_point lookup = Clock::now();
      if (const auto payload = cache->load(keys[i])) {
        try {
          ScenarioOutcome outcome = ScenarioOutcome::from_payload(*payload);
          if (outcome.status == ScenarioStatus::kFailed) {
            // Failed outcomes are never stored (transient failures must not
            // replay as permanent hits); an entry like this predates that
            // rule, so drop it and recompute.
            cache->evict(keys[i]);
          } else if (options_.record_trace && outcome.ok() &&
                     outcome.trace_json.empty()) {
            // The entry predates trace persistence (or was written by an
            // untraced run). It is still valid for untraced consumers, so
            // leave it in place, but this traced run must recompute — the
            // fresh store below upgrades the entry with its trace.
          } else {
            if (!options_.record_trace) {
              // Untraced runs return exactly what a fresh compute would.
              outcome.trace_json.clear();
              outcome.trace_violations.clear();
            }
            run.outcomes[i] = std::move(outcome);
            run.outcomes[i].cache_hit = true;
            run.outcomes[i].wall_ms = elapsed_ms(lookup);
            hit = true;
          }
        } catch (const InvalidArgument&) {
          // An entry that passed the byte-level checks but no longer
          // deserializes (e.g. written by a different build): drop it and
          // recompute.
          cache->evict(keys[i]);
          run.outcomes[i] = ScenarioOutcome{};
        }
      }
    }
    if (!hit) misses.push_back(i);
  }

  // One memo per run: shares fault-free baseline twins across all faulted
  // scenarios (and catches a twin doubling as a top-level scenario, in
  // either order). `crossover_hits` counts top-level scenarios whose result
  // materialized from a twin somebody else computed.
  ScenarioMemo memo;
  std::atomic<std::size_t> crossover_hits{0};
  const auto compute_into = [&](std::size_t index, MemoShard& shard) {
    const Clock::time_point begin = Clock::now();
    const ScenarioMemo::Lookup lookup = shard.get_or_compute(
        keys[index],
        [this, &scenarios, &shard, index] {
          return compute_scenario(scenarios[index], &shard);
        });
    run.outcomes[index] = *lookup.outcome;
    // Equal keys imply equal results, but echo this row's own descriptor.
    run.outcomes[index].scenario = scenarios[index];
    if (lookup.shared) {
      run.outcomes[index].memo_hit = true;
      run.outcomes[index].wall_ms = elapsed_ms(begin);
      crossover_hits.fetch_add(1, std::memory_order_relaxed);
    }
  };
  if (options_.parallel && misses.size() > 1) {
    // Batched dispatch: K scenarios per worker job (K = 1 preserves the
    // historical one-job-per-scenario shape). Each job reads through its
    // own memo shard, so repeated twin lookups within a batch skip the
    // shared table's mutex entirely.
    const std::size_t batch = std::max<std::size_t>(1, options_.batch);
    rt::ThreadPool pool(options_.jobs);
    for (std::size_t first = 0; first < misses.size(); first += batch) {
      const std::size_t last = std::min(misses.size(), first + batch);
      pool.enqueue([&compute_into, &memo, &misses, first, last] {
        MemoShard shard(memo);
        for (std::size_t j = first; j < last; ++j)
          compute_into(misses[j], shard);
      });
    }
    pool.wait_idle();
  } else {
    MemoShard shard(memo);
    for (std::size_t index : misses) compute_into(index, shard);
  }

  if (cache) {
    for (std::size_t index : misses) {
      // Never persist kFailed: a transient failure (OOM, interrupted run)
      // must not replay as a permanent cache hit.
      if (run.outcomes[index].status == ScenarioStatus::kFailed) continue;
      cache->store(keys[index], run.outcomes[index].to_payload());
    }
  }

  // Duplicates copy their primary's outcome — computed, cache-loaded, or
  // shared, it is the same bytes a fresh compute would produce.
  for (const auto& [dup, primary] : duplicates) {
    const Clock::time_point begin = Clock::now();
    run.outcomes[dup] = run.outcomes[primary];
    run.outcomes[dup].scenario = scenarios[dup];
    run.outcomes[dup].cache_hit = false;
    run.outcomes[dup].memo_hit = true;
    run.outcomes[dup].wall_ms = elapsed_ms(begin);
  }

  run.summary.scenarios = scenarios.size();
  run.summary.computed = misses.size() - crossover_hits.load();
  run.summary.cache_hits = primaries.size() - misses.size();
  run.summary.scenario_dedup_hits = duplicates.size() + crossover_hits.load();
  const MemoCounters memo_counters = memo.counters();
  run.summary.twin_memo_hits =
      static_cast<std::size_t>(memo_counters.twin_hits);
  run.summary.twin_computes =
      static_cast<std::size_t>(memo_counters.twin_computes);
  if (cache) {
    run.summary.cache_misses = misses.size();
    const CacheCounters cache_counters = cache->counters();
    run.summary.cache_evictions =
        static_cast<std::size_t>(cache_counters.evictions);
    run.summary.cache_dropped_stores =
        static_cast<std::size_t>(cache_counters.dropped_stores);
  }
  for (const ScenarioOutcome& outcome : run.outcomes) {
    switch (outcome.status) {
      case ScenarioStatus::kOk: ++run.summary.ok; break;
      case ScenarioStatus::kInapplicable: ++run.summary.inapplicable; break;
      case ScenarioStatus::kFailed: ++run.summary.failed; break;
    }
  }
  run.summary.wall_ms = elapsed_ms(start);

  if (options_.metrics != nullptr) {
    obs::MetricsRegistry& registry = *options_.metrics;
    registry.counter_add(obs::kSweepTwinMemoHits,
                         static_cast<std::int64_t>(run.summary.twin_memo_hits));
    registry.counter_add(obs::kSweepTwinComputes,
                         static_cast<std::int64_t>(run.summary.twin_computes));
    registry.counter_add(
        obs::kSweepScenarioDedupHits,
        static_cast<std::int64_t>(run.summary.scenario_dedup_hits));
    registry.counter_add(obs::kSweepCacheHits,
                         static_cast<std::int64_t>(run.summary.cache_hits));
    registry.counter_add(obs::kSweepCacheMisses,
                         static_cast<std::int64_t>(run.summary.cache_misses));
    registry.counter_add(
        obs::kSweepCacheDroppedStores,
        static_cast<std::int64_t>(run.summary.cache_dropped_stores));
  }
  return run;
}

std::vector<GroupRanking> compute_rankings(
    const std::vector<ScenarioOutcome>& outcomes) {
  std::vector<GroupRanking> rankings;
  const auto group_of = [&rankings](const std::string& name) -> GroupRanking& {
    for (GroupRanking& ranking : rankings) {
      if (ranking.group == name) return ranking;
    }
    rankings.push_back(GroupRanking{name, {}, analyzer::StrategyKind::kOnlyCpu});
    return rankings.back();
  };
  for (const ScenarioOutcome& outcome : outcomes) {
    if (!outcome.ok()) continue;
    group_of(outcome.scenario.group())
        .order.emplace_back(outcome.scenario.strategy, outcome.time_ms());
  }
  for (GroupRanking& ranking : rankings) {
    // Stable ordering: ties broken by strategy enum position.
    std::sort(ranking.order.begin(), ranking.order.end(),
              [](const auto& a, const auto& b) {
                if (a.second != b.second) return a.second < b.second;
                return static_cast<int>(a.first) < static_cast<int>(b.first);
              });
    for (const auto& [kind, time] : ranking.order) {
      (void)time;
      if (kind != analyzer::StrategyKind::kOnlyCpu &&
          kind != analyzer::StrategyKind::kOnlyGpu) {
        ranking.winner = kind;
        break;
      }
    }
  }
  return rankings;
}

std::string sweep_to_json(const SweepRun& run) {
  json::Value summary;
  summary.set("scenarios",
              json::Value(static_cast<std::int64_t>(run.summary.scenarios)));
  summary.set("ok", json::Value(static_cast<std::int64_t>(run.summary.ok)));
  summary.set("inapplicable", json::Value(static_cast<std::int64_t>(
                                  run.summary.inapplicable)));
  summary.set("failed",
              json::Value(static_cast<std::int64_t>(run.summary.failed)));
  summary.set("cache_hits", json::Value(static_cast<std::int64_t>(
                                run.summary.cache_hits)));
  summary.set("cache_misses", json::Value(static_cast<std::int64_t>(
                                  run.summary.cache_misses)));
  summary.set("cache_evictions", json::Value(static_cast<std::int64_t>(
                                     run.summary.cache_evictions)));
  summary.set("cache_dropped_stores",
              json::Value(static_cast<std::int64_t>(
                  run.summary.cache_dropped_stores)));
  summary.set("computed",
              json::Value(static_cast<std::int64_t>(run.summary.computed)));
  summary.set("twin_memo_hits", json::Value(static_cast<std::int64_t>(
                                    run.summary.twin_memo_hits)));
  summary.set("twin_computes", json::Value(static_cast<std::int64_t>(
                                   run.summary.twin_computes)));
  summary.set("scenario_dedup_hits",
              json::Value(static_cast<std::int64_t>(
                  run.summary.scenario_dedup_hits)));
  summary.set("wall_ms", json::Value(run.summary.wall_ms));

  json::Value scenarios{json::Value::Array{}};
  for (const ScenarioOutcome& outcome : run.outcomes) {
    json::Value entry;
    entry.set("scenario", outcome.scenario.to_json());
    entry.set("label", json::Value(outcome.scenario.label()));
    entry.set("status",
              json::Value(scenario_status_name(outcome.status)));
    entry.set("cache_hit", json::Value(outcome.cache_hit));
    entry.set("memo_hit", json::Value(outcome.memo_hit));
    entry.set("wall_ms", json::Value(outcome.wall_ms));
    if (!outcome.trace_violations.empty()) {
      json::Value violations{json::Value::Array{}};
      for (const std::string& violation : outcome.trace_violations)
        violations.push_back(json::Value(violation));
      entry.set("trace_violations", std::move(violations));
    }
    if (outcome.ok()) {
      entry.set("metrics", metrics_to_json(outcome.metrics));
      entry.set("report", json::Value::parse(outcome.report_json));
    } else {
      entry.set("error", json::Value(outcome.error));
    }
    scenarios.push_back(std::move(entry));
  }

  json::Value rankings{json::Value::Array{}};
  for (const GroupRanking& ranking : compute_rankings(run.outcomes)) {
    json::Value order{json::Value::Array{}};
    for (const auto& [kind, time] : ranking.order) {
      json::Value entry;
      entry.set("strategy", json::Value(analyzer::strategy_name(kind)));
      entry.set("time_ms", json::Value(time));
      order.push_back(std::move(entry));
    }
    json::Value entry;
    entry.set("group", json::Value(ranking.group));
    entry.set("winner", json::Value(analyzer::strategy_name(ranking.winner)));
    entry.set("order", std::move(order));
    rankings.push_back(std::move(entry));
  }

  json::Value document;
  document.set("summary", std::move(summary));
  document.set("scenarios", std::move(scenarios));
  document.set("rankings", std::move(rankings));
  return document.dump();
}

}  // namespace hetsched::sweep
