#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "sweep/sweep.hpp"

/// Reproducible sweep benchmark harness (the `hetsched_cli bench` verb).
///
/// Times the canonical three-phase sweep that exercises every layer of the
/// hot path:
///   cold   — fresh cache directory, every scenario simulated and stored;
///   warm   — identical sweep again, every scenario served from disk;
///   twins  — N fault seeds of one seeded plan on one scenario, all sharing
///            a single fault-free baseline twin through the in-run memo.
/// Each phase reports wall-clock, the total simulated events its results
/// represent, and the resulting events-per-second throughput (for the warm
/// phase that is the cache's effective serving rate: N events' worth of
/// results per second without simulating any of them).
namespace hetsched::sweep {

struct BenchOptions {
  /// Small functional app configurations (the CI smoke size); false runs
  /// the paper problem sizes.
  bool small = true;
  bool parallel = true;
  /// Worker count when parallel (0 = hardware concurrency).
  unsigned jobs = 0;
  /// Seed count for the shared-twin phase (S seeds -> 1 baseline compute,
  /// S - 1 twin memo hits).
  int fault_seeds = 6;
  /// Timed repetitions of the sim_core phase's execution loop. Lower it for
  /// smoke runs (`bench --quick`) where the JSON contract matters and the
  /// measurement does not.
  int sim_core_reps = 20;
  /// Cache directory for the cold/warm phases; cleared before the cold run
  /// so phase one is genuinely cold.
  std::string cache_dir = ".hs-bench-cache";
};

struct BenchPhase {
  std::string name;
  SweepSummary summary;
  /// Sum of ScenarioMetrics::sim_events over ok outcomes.
  std::int64_t sim_events = 0;
  double wall_ms = 0.0;
  /// Unset when wall_ms rounds to zero (rate unknown — serialized as null,
  /// never inf/NaN).
  std::optional<double> events_per_second;
};

struct BenchResult {
  BenchOptions options;
  /// Pure simulator-core throughput: repeated direct executions of one
  /// paper-size application, nothing but the discrete-event core and the
  /// scheduler in the timed region.
  BenchPhase sim_core;
  BenchPhase cold;
  BenchPhase warm;
  BenchPhase twins;
  /// The sim_core workload again on the 4-device "quad" platform
  /// (CPU + 2x GPU + Phi) — guards the event core's N-device paths. Always
  /// serialized after the four phases above so the phase-name contract on
  /// phases[0..3] stays frozen.
  BenchPhase sim_core_quad;
};

/// Runs the three phases in order and returns their measurements.
BenchResult run_bench(const BenchOptions& options = {});

/// Serializes a BenchResult. Workload-describing fields (scenario counts,
/// cache/memo counters, sim_events) are deterministic for a given build, so
/// two runs differ only in the wall_ms / events_per_second timing fields;
/// key order and double formatting are byte-stable. `extra_phases` are
/// appended to the "phases" array verbatim — how the CLI folds the serve
/// daemon's phase (serve::run_serve_bench) into the same document.
std::string bench_to_json(const BenchResult& result,
                          const std::vector<json::Value>& extra_phases = {});

}  // namespace hetsched::sweep
