#include "sweep/scenario.hpp"

#include <cctype>
#include <sstream>

#include "hw/platform.hpp"

namespace hetsched::sweep {

namespace {

std::string strategy_id(analyzer::StrategyKind kind) {
  std::string id = analyzer::strategy_name(kind);
  for (char& ch : id)
    ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
  return id;
}

void append_device(std::ostringstream& os, const hw::DeviceSpec& device) {
  os << "device{name=" << device.name
     << ",class=" << hw::device_class_name(device.cls)
     << ",cores=" << device.cores << ",lanes=" << device.lanes
     << ",freq=" << json::format_double(device.frequency_ghz)
     << ",sp=" << json::format_double(device.peak_sp_gflops)
     << ",dp=" << json::format_double(device.peak_dp_gflops)
     << ",bw=" << json::format_double(device.mem_bandwidth_gbs)
     << ",cap=" << json::format_double(device.mem_capacity_gb)
     << ",gran=" << device.partition_granularity
     << ",launch_ns=" << device.launch_overhead << "}";
}

}  // namespace

namespace {

std::string fault_suffix(const Scenario& scenario) {
  if (scenario.fault_plan.empty()) return "";
  std::string out = "+fault:" + scenario.fault_plan;
  if (scenario.fault_seed != 0)
    out += "#" + std::to_string(scenario.fault_seed);
  return out;
}

}  // namespace

std::string Scenario::label() const {
  std::string out = apps::paper_app_id(app);
  out += "/";
  out += strategy_id(strategy);
  if (platform != "reference") out += "@" + platform;
  if (sync) out += "+sync";
  if (small) out += "+small";
  out += fault_suffix(*this);
  return out;
}

std::string Scenario::group() const {
  std::string out = apps::paper_app_id(app);
  out += "@";
  out += platform.empty() ? "reference" : platform;
  if (sync) out += "+sync";
  if (small) out += "+small";
  out += fault_suffix(*this);
  return out;
}

json::Value Scenario::to_json() const {
  json::Value costs_json;
  costs_json.set("task_creation_ns", json::Value(costs.task_creation));
  costs_json.set("dispatch_ns", json::Value(costs.dispatch_overhead));
  costs_json.set("taskwait_ns", json::Value(costs.taskwait_overhead));

  json::Value value;
  value.set("app", json::Value(apps::paper_app_id(app)));
  value.set("strategy", json::Value(analyzer::strategy_name(strategy)));
  value.set("platform", json::Value(platform));
  value.set("sync", json::Value(sync));
  value.set("small", json::Value(small));
  value.set("task_count", json::Value(task_count));
  value.set("costs", std::move(costs_json));
  value.set("fault_plan", json::Value(fault_plan));
  value.set("fault_seed",
            json::Value(static_cast<std::int64_t>(fault_seed)));
  return value;
}

Scenario Scenario::from_json(const json::Value& value) {
  Scenario scenario;
  scenario.app = apps::paper_app_from_name(value.at("app").as_string());
  scenario.strategy =
      analyzer::strategy_from_name(value.at("strategy").as_string());
  scenario.platform = value.at("platform").as_string();
  scenario.sync = value.at("sync").as_bool();
  scenario.small = value.at("small").as_bool();
  scenario.task_count = static_cast<int>(value.at("task_count").as_int64());
  const json::Value& costs = value.at("costs");
  scenario.costs.task_creation = costs.at("task_creation_ns").as_int64();
  scenario.costs.dispatch_overhead = costs.at("dispatch_ns").as_int64();
  scenario.costs.taskwait_overhead = costs.at("taskwait_ns").as_int64();
  // Lenient reads: scenario files written before the fault axes existed.
  if (const json::Value* plan = value.find("fault_plan"))
    scenario.fault_plan = plan->as_string();
  if (const json::Value* seed = value.find("fault_seed"))
    scenario.fault_seed = static_cast<std::uint64_t>(seed->as_int64());
  return scenario;
}

std::string scenario_key(const Scenario& scenario) {
  const apps::Application::Config config = scenario.small
                                               ? apps::test_config(scenario.app)
                                               : apps::paper_config(scenario.app);
  const hw::PlatformSpec platform = hw::platform_by_name(scenario.platform);

  std::ostringstream os;
  os << "hs-sweep-key/" << kSweepCodeVersion << "\n";
  os << "app=" << apps::paper_app_id(scenario.app) << " items=" << config.items
     << " iterations=" << config.iterations
     << " functional=" << (config.functional ? 1 : 0) << "\n";
  os << "strategy=" << strategy_id(scenario.strategy)
     << " sync=" << (scenario.sync ? 1 : 0)
     << " task_count=" << scenario.task_count << "\n";
  os << "costs task_creation_ns=" << scenario.costs.task_creation
     << " dispatch_ns=" << scenario.costs.dispatch_overhead
     << " taskwait_ns=" << scenario.costs.taskwait_overhead << "\n";
  os << "fault_plan=" << scenario.fault_plan
     << " fault_seed=" << scenario.fault_seed << "\n";
  os << "platform=" << platform.name << "\n";
  for (const hw::DeviceSpec& device : platform.all_devices()) {
    append_device(os, device);
    os << "\n";
  }
  os << "link{name=" << platform.link.name
     << ",bw=" << json::format_double(platform.link.bandwidth_gbs)
     << ",latency_ns=" << platform.link.latency << "}\n";
  return os.str();
}

std::uint64_t fnv1a64(const std::string& text) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (char ch : text) {
    hash ^= static_cast<unsigned char>(ch);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

std::string scenario_hash(const Scenario& scenario) {
  const std::uint64_t hash = fnv1a64(scenario_key(scenario));
  std::ostringstream os;
  os << std::hex;
  for (int shift = 60; shift >= 0; shift -= 4)
    os << ((hash >> shift) & 0xF);
  return os.str();
}

std::vector<Scenario> enumerate_matrix(
    const std::vector<apps::PaperApp>& app_list,
    const std::vector<analyzer::StrategyKind>& strategies,
    const std::vector<std::string>& platforms,
    const std::vector<bool>& sync_variants, bool small) {
  std::vector<Scenario> scenarios;
  scenarios.reserve(app_list.size() * strategies.size() * platforms.size() *
                    sync_variants.size());
  for (apps::PaperApp app : app_list) {
    for (analyzer::StrategyKind strategy : strategies) {
      for (const std::string& platform : platforms) {
        for (bool sync : sync_variants) {
          Scenario scenario;
          scenario.app = app;
          scenario.strategy = strategy;
          scenario.platform = platform;
          scenario.sync = sync;
          scenario.small = small;
          scenarios.push_back(std::move(scenario));
        }
      }
    }
  }
  return scenarios;
}

std::vector<Scenario> default_matrix(bool small) {
  return enumerate_matrix(apps::all_paper_apps(), analyzer::paper_strategies(),
                          {"reference"}, {false, true}, small);
}

}  // namespace hetsched::sweep
