#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

/// Content-addressed on-disk result cache for the sweep engine.
///
/// Entries are keyed by the full canonical scenario key (see
/// sweep::scenario_key); the file name is the FNV-1a digest of the key, and
/// the file stores the key itself ahead of the payload so a digest
/// collision or a stale/corrupt file degrades to a miss, never to a wrong
/// result. Corrupt entries (bad magic, torn framing, trailing garbage) are
/// deleted on discovery — counted as evictions — so they cannot shadow the
/// slot forever. Writes go through a temporary file + rename so concurrent
/// sweeps sharing a cache directory cannot observe torn entries.
namespace hetsched::sweep {

/// Snapshot of the cache's activity counters (per ResultCache instance).
struct CacheCounters {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t stores = 0;
  std::int64_t evictions = 0;
  /// Store attempts that could not land (unwritable directory, failed
  /// rename). Stores are best-effort: a drop loses reuse, never a result.
  std::int64_t dropped_stores = 0;
};

class ResultCache {
 public:
  /// Opens (and lazily creates) the cache rooted at `directory`.
  explicit ResultCache(std::string directory);

  const std::string& directory() const { return directory_; }

  /// Returns the payload stored for `key`, or nullopt on a miss (no entry,
  /// unreadable entry, or an entry whose stored key does not match `key`).
  std::optional<std::string> load(const std::string& key) const;

  /// Stores `payload` under `key`, replacing any previous entry. Best
  /// effort: on an I/O failure (unwritable directory, failed rename) the
  /// temp file is cleaned up, a warning is logged, dropped_stores is
  /// counted, and false is returned — one bad slot never aborts the rest of
  /// a sweep's store loop.
  bool store(const std::string& key, const std::string& payload) const;

  /// Deletes the entry for `key` (e.g. its payload failed deserialization
  /// downstream). Counted as an eviction when a file was actually removed.
  void evict(const std::string& key) const;

  /// Removes every entry. Returns the number of entries removed.
  std::size_t clear() const;

  /// The file an entry for `key` lives in (exposed for tests).
  std::string path_for(const std::string& key) const;

  CacheCounters counters() const {
    return {hits_.load(), misses_.load(), stores_.load(), evictions_.load(),
            dropped_stores_.load()};
  }

 private:
  std::string directory_;
  /// Atomics: loads run on the coordinating thread but stores/evictions may
  /// land from sweep worker threads.
  mutable std::atomic<std::int64_t> hits_{0};
  mutable std::atomic<std::int64_t> misses_{0};
  mutable std::atomic<std::int64_t> stores_{0};
  mutable std::atomic<std::int64_t> evictions_{0};
  mutable std::atomic<std::int64_t> dropped_stores_{0};
};

}  // namespace hetsched::sweep
