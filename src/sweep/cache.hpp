#pragma once

#include <optional>
#include <string>

/// Content-addressed on-disk result cache for the sweep engine.
///
/// Entries are keyed by the full canonical scenario key (see
/// sweep::scenario_key); the file name is the FNV-1a digest of the key, and
/// the file stores the key itself ahead of the payload so a digest
/// collision or a stale/corrupt file degrades to a miss, never to a wrong
/// result. Writes go through a temporary file + rename so concurrent
/// sweeps sharing a cache directory cannot observe torn entries.
namespace hetsched::sweep {

class ResultCache {
 public:
  /// Opens (and lazily creates) the cache rooted at `directory`.
  explicit ResultCache(std::string directory);

  const std::string& directory() const { return directory_; }

  /// Returns the payload stored for `key`, or nullopt on a miss (no entry,
  /// unreadable entry, or an entry whose stored key does not match `key`).
  std::optional<std::string> load(const std::string& key) const;

  /// Stores `payload` under `key`, replacing any previous entry.
  void store(const std::string& key, const std::string& payload) const;

  /// Removes every entry. Returns the number of entries removed.
  std::size_t clear() const;

  /// The file an entry for `key` lives in (exposed for tests).
  std::string path_for(const std::string& key) const;

 private:
  std::string directory_;
};

}  // namespace hetsched::sweep
