#pragma once

#include <map>
#include <string>
#include <vector>

#include "runtime/explore.hpp"
#include "sweep/cache.hpp"
#include "sweep/memo.hpp"
#include "sweep/scenario.hpp"

namespace hetsched::obs {
class MetricsRegistry;
}  // namespace hetsched::obs

/// Batch scenario-sweep engine.
///
/// Takes a list of Scenarios (typically an app x strategy x platform
/// matrix), fans them out over a worker-thread pool — every scenario builds
/// its own Application + Executor, so simulations share nothing and the
/// sweep is embarrassingly parallel — and memoizes results in a
/// content-addressed on-disk cache so repeated sweeps only recompute
/// scenarios whose key closure changed. Results are exact: a cache hit
/// reconstructs the same bytes a fresh simulation would produce.
///
/// This is the substrate for the golden-shape regression suite
/// (tests/golden) and for the `hetsched_cli sweep` verb.
namespace hetsched::sweep {

enum class ScenarioStatus {
  kOk,
  /// The strategy does not apply to the application class / platform
  /// (e.g. SP-Single on STREAM, Only-GPU on cpu-only) — expected when
  /// sweeping a full matrix.
  kInapplicable,
  /// The simulation raised an unexpected error (message in `error`).
  kFailed,
};

const char* scenario_status_name(ScenarioStatus status);

/// Everything the figures and rankings are computed from, flattened out of
/// the StrategyResult so it can round-trip through the cache.
struct ScenarioMetrics {
  double time_ms = 0.0;
  double gpu_fraction_overall = 0.0;
  std::vector<double> gpu_fraction_per_kernel;
  std::int64_t h2d_bytes = 0;
  std::int64_t d2h_bytes = 0;
  double h2d_ms = 0.0;
  double d2h_ms = 0.0;
  double overhead_ms = 0.0;
  std::int64_t tasks_executed = 0;
  std::int64_t barriers = 0;
  std::int64_t scheduling_decisions = 0;
  /// Fault axis (meaningful only when Scenario::fault_plan is set; zeros
  /// and run_completed=true otherwise). The engine first computes the same
  /// scenario fault-free to obtain `baseline_time_ms`, resolves the named
  /// plan against that makespan, and reports the slowdown as
  /// degradation_ratio = faulted time / baseline time (0 when the faulted
  /// run did not complete — an honest DNF, not a number).
  double degradation_ratio = 0.0;
  double baseline_time_ms = 0.0;
  std::int64_t faults_injected = 0;
  std::int64_t fault_retries = 0;
  std::int64_t migrated_tasks = 0;
  std::int64_t repartitioned_tasks = 0;
  std::int64_t abandoned_tasks = 0;
  bool run_completed = true;
  /// Discrete events the simulator fired for this scenario (the measured
  /// run only, not the baseline twin) — the bench harness's throughput
  /// denominator.
  std::int64_t sim_events = 0;
};

struct ScenarioOutcome {
  Scenario scenario;
  ScenarioStatus status = ScenarioStatus::kOk;
  std::string error;  ///< set when status != kOk
  ScenarioMetrics metrics;
  /// Full rt::report_to_json serialization of the ExecutionReport (empty
  /// when status != kOk). Byte-identical whether computed or cache-loaded.
  std::string report_json;
  /// Chrome-trace timeline (only when SweepOptions::record_trace). Part of
  /// the canonical payload when present, so a traced run that hits the
  /// cache still returns its trace.
  std::string trace_json;
  /// obs::validate_trace findings for the recorded timeline (only when
  /// SweepOptions::record_trace; empty = clean). Persisted alongside
  /// trace_json.
  std::vector<std::string> trace_violations;

  /// Run metadata — not part of the canonical payload.
  bool cache_hit = false;
  /// Result was copied from an identical scenario computed earlier in the
  /// same run (in-process dedup, no simulation and no disk involved).
  bool memo_hit = false;
  double wall_ms = 0.0;

  double time_ms() const { return metrics.time_ms; }
  double gpu_fraction_overall() const {
    return metrics.gpu_fraction_overall;
  }
  const std::vector<double>& gpu_fraction_per_kernel() const {
    return metrics.gpu_fraction_per_kernel;
  }
  bool ok() const { return status == ScenarioStatus::kOk; }

  /// Canonical serialization: scenario + status + metrics + report. This is
  /// the cache payload and the determinism-comparison string; run metadata
  /// (cache_hit, wall_ms, trace) is excluded.
  std::string to_payload() const;
  static ScenarioOutcome from_payload(const std::string& payload);
};

struct SweepOptions {
  /// Fan scenarios out over a thread pool; false runs them in submission
  /// order on the calling thread (reference mode for determinism tests).
  bool parallel = true;
  /// Worker count when parallel (0 = hardware concurrency).
  unsigned jobs = 0;
  /// Scenarios per worker job when parallel (0 and 1 both mean one job per
  /// scenario). Batching amortizes pool dispatch and lets each job answer
  /// repeated baseline-twin lookups from a thread-local memo shard instead
  /// of the shared single-flight table. Outcomes and summary counters are
  /// identical for every batch size — this is purely a throughput knob for
  /// large matrices of small scenarios.
  std::size_t batch = 1;
  /// Reuse / populate the on-disk result cache.
  bool use_cache = false;
  std::string cache_dir = ".hs-sweep-cache";
  /// Record a chrome trace per scenario. Traced outcomes persist their
  /// trace in the cache; a traced run that hits an entry cached without a
  /// trace recomputes the scenario instead of silently dropping it.
  bool record_trace = false;
  /// When set, run() mirrors its summary counters (twin_memo_hits,
  /// scenario_dedup_hits, cache hit/miss/dropped-store totals) into this
  /// registry under the obs::kSweep* names. Not owned; must outlive run().
  obs::MetricsRegistry* metrics = nullptr;
  /// Schedule-exploration spec threaded into every scenario's measured
  /// execution (see runtime/explore.hpp). Incompatible with use_cache: the
  /// scenario cache key does not close over the spec, so mixing them would
  /// poison the cache — the engine rejects the combination up front.
  /// Baseline twins run under the same spec, keeping the whole outcome a
  /// deterministic function of (scenario, spec).
  rt::ExploreSpec explore;
};

struct SweepSummary {
  std::size_t scenarios = 0;
  std::size_t ok = 0;
  std::size_t inapplicable = 0;
  std::size_t failed = 0;
  std::size_t cache_hits = 0;
  /// Cache lookups that found no usable entry (0 when the cache is off).
  std::size_t cache_misses = 0;
  /// Entries the cache discarded this run (corrupt files plus entries whose
  /// payload failed deserialization).
  std::size_t cache_evictions = 0;
  /// Store attempts the cache dropped (unwritable directory, failed
  /// rename); the sweep result is unaffected, only future reuse is lost.
  std::size_t cache_dropped_stores = 0;
  std::size_t computed = 0;
  /// Fault-free baseline twins served from the in-run memo instead of being
  /// recomputed (S faulted scenarios sharing one twin => S - 1 hits).
  std::size_t twin_memo_hits = 0;
  /// Baseline twins actually computed this run.
  std::size_t twin_computes = 0;
  /// Scenarios whose key matched an earlier scenario in the same input list
  /// and were copied instead of recomputed.
  std::size_t scenario_dedup_hits = 0;
  double wall_ms = 0.0;
};

struct SweepRun {
  std::vector<ScenarioOutcome> outcomes;  ///< same order as the input
  SweepSummary summary;
};

class SweepEngine {
 public:
  explicit SweepEngine(SweepOptions options = {});

  const SweepOptions& options() const { return options_; }

  /// Runs every scenario (resolving cache hits first) and returns outcomes
  /// in input order plus the run summary.
  SweepRun run(const std::vector<Scenario>& scenarios) const;

  /// Runs one scenario without touching the cache or the in-run memo (the
  /// reference path memoized runs are compared against).
  ScenarioOutcome compute(const Scenario& scenario) const;

 private:
  /// compute() with an optional memo shard: baseline twins resolve through
  /// `memo` (one shard per worker job, all backed by the run's shared
  /// single-flight table) when it is non-null.
  ScenarioOutcome compute_scenario(const Scenario& scenario,
                                   MemoShard* memo) const;

  SweepOptions options_;
};

/// Per-group ranking: scenarios that share Scenario::group() (same app,
/// platform, sync, size) ordered by ascending time, inapplicable/failed
/// ones excluded.
struct GroupRanking {
  std::string group;
  /// Strategies best-first with their times.
  std::vector<std::pair<analyzer::StrategyKind, double>> order;
  /// Best strategy excluding the Only-CPU/Only-GPU baselines (the paper's
  /// "winner"); kOnlyCpu if the group has no partitioning strategy at all.
  analyzer::StrategyKind winner = analyzer::StrategyKind::kOnlyCpu;
};

std::vector<GroupRanking> compute_rankings(
    const std::vector<ScenarioOutcome>& outcomes);

/// Machine-readable form of a whole run: summary, per-scenario outcomes
/// (reports embedded as objects), and the per-group rankings.
std::string sweep_to_json(const SweepRun& run);

}  // namespace hetsched::sweep
