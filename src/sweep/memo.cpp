#include "sweep/memo.hpp"

#include "sweep/sweep.hpp"

namespace hetsched::sweep {

ScenarioMemo::Lookup ScenarioMemo::get_or_compute(const std::string& key,
                                                  const ComputeFn& compute) {
  std::promise<OutcomePtr> promise;
  std::shared_future<OutcomePtr> future;
  bool owner = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = futures_.find(key);
    if (it == futures_.end()) {
      owner = true;
      future = promise.get_future().share();
      futures_.emplace(key, future);
    } else {
      future = it->second;
    }
  }
  if (owner) {
    // compute() reports failures through ScenarioOutcome::status, but guard
    // anyway: an escaped exception must not leave waiters blocked forever.
    try {
      promise.set_value(
          std::make_shared<const ScenarioOutcome>(compute()));
    } catch (...) {
      promise.set_exception(std::current_exception());
    }
  }
  return {future.get(), !owner};
}

std::size_t ScenarioMemo::entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return futures_.size();
}

}  // namespace hetsched::sweep
