#include "sweep/bench.hpp"

#include <chrono>

#include "analyzer/strategy.hpp"
#include "apps/registry.hpp"
#include "common/json.hpp"
#include "hw/platform.hpp"
#include "obs/phase_profiler.hpp"
#include "strategies/strategy_runner.hpp"
#include "sweep/cache.hpp"
#include "sweep/scenario.hpp"

namespace hetsched::sweep {

namespace {

using Clock = std::chrono::steady_clock;

double elapsed_ms(Clock::time_point since) {
  return std::chrono::duration<double, std::milli>(Clock::now() - since)
      .count();
}

/// The cold/warm workload: two structurally different apps under every
/// paper strategy on the reference platform — big enough to exercise the
/// worker pool and the store loop, small enough for a CI smoke run.
std::vector<Scenario> canonical_matrix(bool small) {
  return enumerate_matrix(
      {apps::PaperApp::kMatrixMul, apps::PaperApp::kNbody},
      analyzer::paper_strategies(), {"reference"}, {false}, small);
}

/// The shared-twin workload: S seeds of the seeded "storm" plan on one
/// scenario. Every seed's fault-free twin has the same healthy key, so the
/// in-run memo computes exactly one baseline.
std::vector<Scenario> twin_matrix(bool small, int seeds) {
  std::vector<Scenario> scenarios;
  for (int seed = 1; seed <= seeds; ++seed) {
    Scenario scenario;
    scenario.app = apps::PaperApp::kMatrixMul;
    scenario.strategy = analyzer::StrategyKind::kDPPerf;
    scenario.small = small;
    scenario.fault_plan = "storm";
    scenario.fault_seed = static_cast<std::uint64_t>(seed);
    scenarios.push_back(scenario);
  }
  return scenarios;
}

/// Pure simulator-core throughput. One application is built once outside
/// the timed region; the timed region is nothing but repeated direct
/// executions of the paper's dynamic-partitioning strategy — the
/// discrete-event loop, the executor, and the scheduler, with no cache,
/// no JSON serialization, and no sweep machinery around them. This is the
/// number the event-core optimizations move, and the honest denominator
/// for the cold phase's pipeline overhead.
BenchPhase measure_sim_core(const BenchOptions& options, std::string name,
                            const std::string& platform_name) {
  BenchPhase phase;
  phase.name = std::move(name);

  Scenario scenario;
  scenario.app = apps::PaperApp::kMatrixMul;
  scenario.strategy = analyzer::StrategyKind::kDPPerf;
  scenario.platform = platform_name;
  scenario.small = options.small;

  const hw::PlatformSpec platform = hw::platform_by_name(scenario.platform);
  apps::Application::Config config = scenario.small
                                         ? apps::test_config(scenario.app)
                                         : apps::paper_config(scenario.app);
  config.costs = scenario.costs;
  const std::unique_ptr<apps::Application> application =
      apps::make_paper_app(scenario.app, platform, config);
  strategies::StrategyOptions strategy_options;
  strategy_options.sync_between_kernels = scenario.sync;
  strategy_options.task_count = scenario.task_count;
  strategies::StrategyRunner runner(*application, strategy_options);

  // One untimed execution warms the executor's arena and the allocator.
  runner.run(scenario.strategy);

  const int repetitions = options.sim_core_reps > 0 ? options.sim_core_reps : 1;
  const Clock::time_point start = Clock::now();
  for (int rep = 0; rep < repetitions; ++rep) {
    const strategies::StrategyResult result = runner.run(scenario.strategy);
    phase.sim_events +=
        static_cast<std::int64_t>(result.report.sim_events);
  }
  phase.wall_ms = elapsed_ms(start);
  phase.summary.scenarios = repetitions;
  phase.summary.ok = repetitions;
  phase.summary.computed = repetitions;
  if (phase.wall_ms > 0.0) {
    phase.events_per_second =
        static_cast<double>(phase.sim_events) / (phase.wall_ms / 1000.0);
  }
  return phase;
}

BenchPhase measure(std::string name, const SweepEngine& engine,
                   const std::vector<Scenario>& scenarios) {
  BenchPhase phase;
  phase.name = std::move(name);
  const Clock::time_point start = Clock::now();
  const SweepRun run = engine.run(scenarios);
  phase.wall_ms = elapsed_ms(start);
  phase.summary = run.summary;
  for (const ScenarioOutcome& outcome : run.outcomes) {
    if (outcome.ok()) phase.sim_events += outcome.metrics.sim_events;
  }
  // A 0ms wall clock (timer granularity on a fast run) must not divide:
  // the rate is unknown, not infinite, and stays unset — serialized as
  // null, which json::format_double would otherwise reject as non-finite.
  if (phase.wall_ms > 0.0) {
    phase.events_per_second =
        static_cast<double>(phase.sim_events) / (phase.wall_ms / 1000.0);
  }
  return phase;
}

json::Value phase_to_json(const BenchPhase& phase) {
  const SweepSummary& summary = phase.summary;
  json::Value value;
  value.set("name", json::Value(phase.name));
  value.set("scenarios",
            json::Value(static_cast<std::int64_t>(summary.scenarios)));
  value.set("ok", json::Value(static_cast<std::int64_t>(summary.ok)));
  value.set("computed",
            json::Value(static_cast<std::int64_t>(summary.computed)));
  value.set("cache_hits",
            json::Value(static_cast<std::int64_t>(summary.cache_hits)));
  value.set("cache_misses",
            json::Value(static_cast<std::int64_t>(summary.cache_misses)));
  value.set("twin_memo_hits",
            json::Value(static_cast<std::int64_t>(summary.twin_memo_hits)));
  value.set("twin_computes",
            json::Value(static_cast<std::int64_t>(summary.twin_computes)));
  value.set("scenario_dedup_hits",
            json::Value(static_cast<std::int64_t>(
                summary.scenario_dedup_hits)));
  value.set("sim_events", json::Value(phase.sim_events));
  value.set("wall_ms", json::Value(phase.wall_ms));
  value.set("sim_events_per_second", phase.events_per_second
                                         ? json::Value(*phase.events_per_second)
                                         : json::Value());
  return value;
}

}  // namespace

BenchResult run_bench(const BenchOptions& options) {
  BenchResult result;
  result.options = options;

  SweepOptions sweep_options;
  sweep_options.parallel = options.parallel;
  sweep_options.jobs = options.jobs;
  sweep_options.use_cache = true;
  sweep_options.cache_dir = options.cache_dir;

  // Phase one must be genuinely cold: drop whatever a previous bench left.
  ResultCache(options.cache_dir).clear();

  result.sim_core = measure_sim_core(options, "sim_core", "reference");

  const std::vector<Scenario> matrix = canonical_matrix(options.small);
  const SweepEngine cached_engine(sweep_options);
  result.cold = measure("cold_cache", cached_engine, matrix);
  result.warm = measure("warm_cache", cached_engine, matrix);

  // Shared twins are an in-run effect; the cache would hide them.
  SweepOptions twin_options = sweep_options;
  twin_options.use_cache = false;
  result.twins = measure("faulted_shared_twins", SweepEngine(twin_options),
                         twin_matrix(options.small, options.fault_seeds));

  // Same direct-execution workload on the 4-device quad platform: the
  // event core's multi-accelerator slab paths, timed without the sweep
  // machinery. Measured last so the pinned phases[0..3] stay untouched.
  result.sim_core_quad = measure_sim_core(options, "sim_core_quad", "quad");
  return result;
}

std::string bench_to_json(const BenchResult& result,
                          const std::vector<json::Value>& extra_phases) {
  json::Value workload;
  workload.set("small", json::Value(result.options.small));
  workload.set("parallel", json::Value(result.options.parallel));
  workload.set("fault_seeds",
               json::Value(static_cast<std::int64_t>(
                   result.options.fault_seeds)));
  workload.set("sweep_code_version", json::Value(kSweepCodeVersion));

  json::Value phases{json::Value::Array{}};
  phases.push_back(phase_to_json(result.sim_core));
  phases.push_back(phase_to_json(result.cold));
  phases.push_back(phase_to_json(result.warm));
  phases.push_back(phase_to_json(result.twins));
  phases.push_back(phase_to_json(result.sim_core_quad));
  for (const json::Value& phase : extra_phases)
    phases.push_back(json::Value(phase));

  json::Value document;
  document.set("bench", json::Value("sweep"));
  document.set("workload", std::move(workload));
  document.set("phases", std::move(phases));
  // Wall-clock attribution across the pipeline stages the run exercised
  // (sweep-scenario, sim-event-loop, partition-solve, and — when the serve
  // phase ran in this process — the serving stages). Timing data, so the
  // values vary run to run; the stage set does not.
  document.set("phase_profile", obs::phase_profiler().to_json());
  return document.dump();
}

}  // namespace hetsched::sweep
