#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

/// In-process scenario memo table for one SweepEngine::run.
///
/// The on-disk ResultCache deduplicates work *across* sweeps; this table
/// deduplicates work *within* one run: identical scenarios in the input
/// list compute once, and every faulted scenario's fault-free baseline twin
/// is shared by all faulted scenarios that map to the same healthy key — N
/// fault seeds x M plans cost one baseline instead of N x M.
///
/// Thread-safety follows the single-flight pattern: the first caller of a
/// key becomes its owner and computes the value; concurrent callers receive
/// a std::shared_future and block on that one computation instead of racing
/// their own. Ownership is decided under the mutex, the computation itself
/// runs outside it, so distinct keys never serialize each other.
namespace hetsched::sweep {

struct ScenarioOutcome;

/// Counters the sweep summary (and the obs registry, when wired) report.
struct MemoCounters {
  /// Baseline-twin lookups served from the table (a twin somebody else
  /// computed, or is computing, this run).
  std::int64_t twin_hits = 0;
  /// Baseline twins actually computed (the acceptance bar: S faulted
  /// scenarios sharing one healthy twin => exactly 1).
  std::int64_t twin_computes = 0;
};

class ScenarioMemo {
 public:
  using OutcomePtr = std::shared_ptr<const ScenarioOutcome>;
  using ComputeFn = std::function<ScenarioOutcome()>;

  struct Lookup {
    OutcomePtr outcome;
    /// True when the value came from (or was being computed for) another
    /// caller — i.e. this lookup did not pay for the computation.
    bool shared = false;
  };

  ScenarioMemo() = default;
  ScenarioMemo(const ScenarioMemo&) = delete;
  ScenarioMemo& operator=(const ScenarioMemo&) = delete;

  /// Returns the memoized outcome for `key`, invoking `compute` exactly
  /// once per key across all threads. Blocks until the owning computation
  /// finishes when another thread got there first.
  Lookup get_or_compute(const std::string& key, const ComputeFn& compute);

  /// Marks one baseline-twin lookup in the counters (`shared` is the flag
  /// returned by get_or_compute for that lookup).
  void note_twin_lookup(bool shared) {
    if (shared) {
      twin_hits_.fetch_add(1, std::memory_order_relaxed);
    } else {
      twin_computes_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  MemoCounters counters() const {
    return {twin_hits_.load(std::memory_order_relaxed),
            twin_computes_.load(std::memory_order_relaxed)};
  }

  std::size_t entries() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::shared_future<OutcomePtr>> futures_;
  std::atomic<std::int64_t> twin_hits_{0};
  std::atomic<std::int64_t> twin_computes_{0};
};

/// Worker-local read-through shard over a shared ScenarioMemo.
///
/// Batched sweeps give each worker job K scenarios; within a batch the same
/// baseline twin tends to recur (K fault seeds of one plan share one healthy
/// key). The shard answers repeat lookups from a local, lock-free map and
/// only takes the shared table's mutex on first sight of a key — the shared
/// single-flight semantics (and therefore the twin_hits / twin_computes
/// counters) are unchanged: a shard hit is by construction a lookup the
/// shared table would also have answered as `shared`.
///
/// Single-threaded by design: one shard per worker job, never shared.
class MemoShard {
 public:
  explicit MemoShard(ScenarioMemo& shared) : shared_(shared) {}
  MemoShard(const MemoShard&) = delete;
  MemoShard& operator=(const MemoShard&) = delete;

  ScenarioMemo::Lookup get_or_compute(const std::string& key,
                                      const ScenarioMemo::ComputeFn& compute) {
    const auto it = local_.find(key);
    if (it != local_.end()) return {it->second, /*shared=*/true};
    const ScenarioMemo::Lookup lookup = shared_.get_or_compute(key, compute);
    local_.emplace(key, lookup.outcome);
    return lookup;
  }

  void note_twin_lookup(bool shared) { shared_.note_twin_lookup(shared); }

  std::size_t entries() const { return local_.size(); }

 private:
  ScenarioMemo& shared_;
  std::unordered_map<std::string, ScenarioMemo::OutcomePtr> local_;
};

}  // namespace hetsched::sweep
