#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

/// In-process scenario memo table for one SweepEngine::run.
///
/// The on-disk ResultCache deduplicates work *across* sweeps; this table
/// deduplicates work *within* one run: identical scenarios in the input
/// list compute once, and every faulted scenario's fault-free baseline twin
/// is shared by all faulted scenarios that map to the same healthy key — N
/// fault seeds x M plans cost one baseline instead of N x M.
///
/// Thread-safety follows the single-flight pattern: the first caller of a
/// key becomes its owner and computes the value; concurrent callers receive
/// a std::shared_future and block on that one computation instead of racing
/// their own. Ownership is decided under the mutex, the computation itself
/// runs outside it, so distinct keys never serialize each other.
namespace hetsched::sweep {

struct ScenarioOutcome;

/// Counters the sweep summary (and the obs registry, when wired) report.
struct MemoCounters {
  /// Baseline-twin lookups served from the table (a twin somebody else
  /// computed, or is computing, this run).
  std::int64_t twin_hits = 0;
  /// Baseline twins actually computed (the acceptance bar: S faulted
  /// scenarios sharing one healthy twin => exactly 1).
  std::int64_t twin_computes = 0;
};

class ScenarioMemo {
 public:
  using OutcomePtr = std::shared_ptr<const ScenarioOutcome>;
  using ComputeFn = std::function<ScenarioOutcome()>;

  struct Lookup {
    OutcomePtr outcome;
    /// True when the value came from (or was being computed for) another
    /// caller — i.e. this lookup did not pay for the computation.
    bool shared = false;
  };

  ScenarioMemo() = default;
  ScenarioMemo(const ScenarioMemo&) = delete;
  ScenarioMemo& operator=(const ScenarioMemo&) = delete;

  /// Returns the memoized outcome for `key`, invoking `compute` exactly
  /// once per key across all threads. Blocks until the owning computation
  /// finishes when another thread got there first.
  Lookup get_or_compute(const std::string& key, const ComputeFn& compute);

  /// Marks one baseline-twin lookup in the counters (`shared` is the flag
  /// returned by get_or_compute for that lookup).
  void note_twin_lookup(bool shared) {
    if (shared) {
      twin_hits_.fetch_add(1, std::memory_order_relaxed);
    } else {
      twin_computes_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  MemoCounters counters() const {
    return {twin_hits_.load(std::memory_order_relaxed),
            twin_computes_.load(std::memory_order_relaxed)};
  }

  std::size_t entries() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::shared_future<OutcomePtr>> futures_;
  std::atomic<std::int64_t> twin_hits_{0};
  std::atomic<std::int64_t> twin_computes_{0};
};

}  // namespace hetsched::sweep
