#include "sweep/cache.hpp"

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "sweep/scenario.hpp"

namespace hetsched::sweep {

namespace fs = std::filesystem;

namespace {

constexpr const char* kMagic = "hs-sweep-cache-v1";

/// Distinguishes temp files written by concurrent stores in one process.
std::atomic<std::uint64_t> temp_counter{0};

}  // namespace

ResultCache::ResultCache(std::string directory)
    : directory_(std::move(directory)) {
  HS_REQUIRE(!directory_.empty(), "cache directory must not be empty");
  fs::create_directories(directory_);
}

std::string ResultCache::path_for(const std::string& key) const {
  const std::uint64_t hash = fnv1a64(key);
  std::ostringstream os;
  os << std::hex;
  for (int shift = 60; shift >= 0; shift -= 4) os << ((hash >> shift) & 0xF);
  return (fs::path(directory_) / (os.str() + ".json")).string();
}

namespace {

enum class EntryStatus { kHit, kNoEntry, kKeyMismatch, kCorrupt };

EntryStatus read_entry(const std::string& path, const std::string& key,
                       std::string& payload) {
  std::ifstream file(path, std::ios::binary);
  if (!file.good()) return EntryStatus::kNoEntry;

  // Length lines are untrusted input: a corrupt entry must not be able to
  // request a multi-GB allocation (std::bad_alloc would abort the whole
  // sweep). Nothing framed inside the file can be longer than the file.
  file.seekg(0, std::ios::end);
  const std::streamoff file_size = file.tellg();
  file.seekg(0, std::ios::beg);
  if (file_size < 0) return EntryStatus::kCorrupt;
  const auto parse_bounded_length =
      [file_size](const std::string& line, std::size_t& out) {
        try {
          const unsigned long long value = std::stoull(line);
          if (value > static_cast<unsigned long long>(file_size)) return false;
          out = static_cast<std::size_t>(value);
          return true;
        } catch (const std::exception&) {
          return false;
        }
      };

  std::string magic;
  if (!std::getline(file, magic) || magic != kMagic) {
    return EntryStatus::kCorrupt;
  }
  std::string length_line;
  if (!std::getline(file, length_line)) return EntryStatus::kCorrupt;
  std::size_t key_length = 0;
  if (!parse_bounded_length(length_line, key_length)) {
    return EntryStatus::kCorrupt;
  }
  std::string stored_key(key_length, '\0');
  if (!file.read(stored_key.data(),
                 static_cast<std::streamsize>(key_length))) {
    return EntryStatus::kCorrupt;
  }
  // Digest collision or stale entry: treat as a miss, never as a hit. The
  // entry itself may be valid for some other key, so it is not corrupt.
  if (stored_key != key) return EntryStatus::kKeyMismatch;
  if (file.get() != '\n') return EntryStatus::kCorrupt;

  std::string payload_length_line;
  if (!std::getline(file, payload_length_line)) return EntryStatus::kCorrupt;
  std::size_t payload_length = 0;
  if (!parse_bounded_length(payload_length_line, payload_length)) {
    return EntryStatus::kCorrupt;
  }
  payload.assign(payload_length, '\0');
  if (!file.read(payload.data(),
                 static_cast<std::streamsize>(payload_length))) {
    return EntryStatus::kCorrupt;  // truncated entry
  }
  if (file.get() != std::ifstream::traits_type::eof()) {
    return EntryStatus::kCorrupt;  // trailing garbage
  }
  return EntryStatus::kHit;
}

}  // namespace

std::optional<std::string> ResultCache::load(const std::string& key) const {
  const std::string path = path_for(key);
  std::string payload;
  switch (read_entry(path, key, payload)) {
    case EntryStatus::kHit:
      hits_.fetch_add(1, std::memory_order_relaxed);
      return payload;
    case EntryStatus::kCorrupt: {
      // A corrupt file would shadow this slot forever; drop it now so the
      // recomputed result can land cleanly.
      std::error_code ec;
      if (fs::remove(path, ec)) {
        evictions_.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    }
    case EntryStatus::kNoEntry:
    case EntryStatus::kKeyMismatch:
      break;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

void ResultCache::evict(const std::string& key) const {
  std::error_code ec;
  if (fs::remove(path_for(key), ec)) {
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool ResultCache::store(const std::string& key,
                        const std::string& payload) const {
  const std::string path = path_for(key);
  const std::string temp =
      path + ".tmp" +
      std::to_string(temp_counter.fetch_add(1, std::memory_order_relaxed));
  const auto drop = [&](const char* why) {
    HS_WARN << "sweep cache store dropped (" << why << "): " << path;
    std::error_code cleanup_ec;
    fs::remove(temp, cleanup_ec);
    dropped_stores_.fetch_add(1, std::memory_order_relaxed);
    return false;
  };
  {
    std::ofstream file(temp, std::ios::binary | std::ios::trunc);
    if (!file.good()) return drop("cannot open temp file");
    file << kMagic << "\n" << key.size() << "\n" << key << "\n"
         << payload.size() << "\n" << payload;
    file.flush();
    if (!file.good()) return drop("short write");
  }
  // One failed rename must not throw out of a post-sweep store loop and
  // discard the remaining computed results.
  std::error_code ec;
  fs::rename(temp, path, ec);
  if (ec) return drop(ec.message().c_str());
  stores_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::size_t ResultCache::clear() const {
  std::size_t removed = 0;
  std::error_code ec;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(directory_, ec)) {
    if (entry.is_regular_file() && fs::remove(entry.path())) ++removed;
  }
  return removed;
}

}  // namespace hetsched::sweep
