#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analyzer/strategy.hpp"
#include "apps/registry.hpp"
#include "common/json.hpp"
#include "runtime/executor.hpp"

/// Scenario descriptors for the batch sweep engine.
///
/// A Scenario pins down ONE simulated experiment completely: which paper
/// application at which problem size, which partitioning strategy, which
/// platform variant, and every knob that feeds the runtime. Because the
/// simulator is deterministic, a Scenario is a pure function of these
/// fields — which is what makes the content-addressed result cache sound:
/// two runs with equal scenario keys are guaranteed to produce identical
/// ExecutionReports.
namespace hetsched::sweep {

/// Bump whenever the meaning of a cached result changes — a scheduler or
/// cost-model behaviour change, new default StrategyOptions, a report
/// schema change. The version participates in every cache key, so bumping
/// it invalidates all previously cached results at once.
/// hs-sweep-4: payloads gained metrics.sim_events and optional persisted
/// trace/trace_violations members.
/// hs-sweep-5: a DNF run's makespan now extends to its last fault-handling
/// action (abandon/retry), so recorded recovery events stay in-window.
inline constexpr const char* kSweepCodeVersion = "hs-sweep-5";

struct Scenario {
  apps::PaperApp app = apps::PaperApp::kMatrixMul;
  analyzer::StrategyKind strategy = analyzer::StrategyKind::kSPSingle;
  /// Platform variant name, resolved via hw::platform_by_name.
  std::string platform = "reference";
  /// The paper's "w sync" scenario: taskwait after every kernel.
  bool sync = false;
  /// Use the small functional configuration instead of the paper size.
  bool small = false;
  /// Chunk count m (see StrategyOptions::task_count).
  int task_count = 12;
  /// Runtime overhead knobs charged by the executor.
  rt::RuntimeCosts costs;
  /// Named fault plan (faults::make_named_plan) injected into the measured
  /// execution; empty = healthy run. Plan horizons resolve against the
  /// scenario's own fault-free makespan, which the engine computes first.
  std::string fault_plan;
  /// Seed for seeded plan families ("storm"); ignored otherwise.
  std::uint64_t fault_seed = 0;

  /// Human-readable identifier, e.g. "matrixmul/sp-single+sync" (the
  /// platform is included only when it is not the reference one:
  /// "matrixmul/sp-single@small-gpu+sync").
  std::string label() const;

  /// Scenarios sharing a group ran the same workload under different
  /// strategies, so their times are comparable (ranking substrate):
  /// "<app>@<platform>[+sync][+small]".
  std::string group() const;

  json::Value to_json() const;
  static Scenario from_json(const json::Value& value);
};

/// The canonical cache key: a stable text serialization of everything the
/// simulation result depends on — the application configuration (problem
/// size, iterations, functional flag), the strategy and its options, the
/// full platform specification (every device/link parameter), the runtime
/// costs, and kSweepCodeVersion. Field changes anywhere in this closure
/// change the key.
std::string scenario_key(const Scenario& scenario);

/// FNV-1a 64-bit over `text` (the cache's content address).
std::uint64_t fnv1a64(const std::string& text);

/// Hex digest of `scenario_key`, used as the cache file name.
std::string scenario_hash(const Scenario& scenario);

/// The full cross product in deterministic order (apps major, then
/// strategies, then platforms, then sync variants).
std::vector<Scenario> enumerate_matrix(
    const std::vector<apps::PaperApp>& app_list,
    const std::vector<analyzer::StrategyKind>& strategies,
    const std::vector<std::string>& platforms,
    const std::vector<bool>& sync_variants, bool small);

/// Convenience: all six paper apps x all seven paper strategies on the
/// reference platform, both sync variants.
std::vector<Scenario> default_matrix(bool small = false);

}  // namespace hetsched::sweep
