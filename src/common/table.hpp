#pragma once

#include <iosfwd>
#include <string>
#include <vector>

/// ASCII table / CSV rendering for bench output.
///
/// Every bench binary prints its paper table/figure through this class so
/// that (a) output stays visually aligned for humans and (b) `--csv` gives a
/// machine-readable form for downstream plotting.
namespace hetsched {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  std::size_t row_count() const { return rows_.size(); }
  std::size_t column_count() const { return headers_.size(); }
  const std::vector<std::string>& row(std::size_t i) const { return rows_[i]; }
  const std::vector<std::string>& headers() const { return headers_; }

  /// Renders with aligned columns and a header separator.
  std::string to_ascii() const;

  /// Renders as RFC-4180-ish CSV (quotes cells containing , " or newline).
  std::string to_csv() const;

  void print(std::ostream& os, bool csv = false) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hetsched
