#pragma once

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/error.hpp"

/// Small streaming-statistics helpers used by profilers, schedulers (per
/// device/kernel throughput tracking), and bench reporting.
namespace hetsched {

/// Welford-style accumulator: numerically stable mean/variance plus extrema.
class RunningStats {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  std::size_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

  double variance() const {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
  }
  double stddev() const { return std::sqrt(variance()); }

  void reset() { *this = RunningStats{}; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exponential moving average, used by the performance-aware scheduler to
/// track per-(kernel, device) throughput as instances complete.
class Ema {
 public:
  /// `alpha` is the weight of the newest sample; must be in (0, 1].
  explicit Ema(double alpha = 0.5) : alpha_(alpha) {
    HS_REQUIRE(alpha > 0.0 && alpha <= 1.0, "Ema alpha=" << alpha);
  }

  void add(double x) {
    value_ = has_value_ ? alpha_ * x + (1.0 - alpha_) * value_ : x;
    has_value_ = true;
    ++count_;
  }

  bool has_value() const { return has_value_; }
  double value() const { return value_; }
  std::size_t count() const { return count_; }

  /// Discards all history but keeps alpha. Used by probe-and-forgive: after
  /// a transient perturbation ends, the poisoned average is dropped and the
  /// next observation re-seeds the estimate outright.
  void reset() {
    value_ = 0.0;
    has_value_ = false;
    count_ = 0;
  }

 private:
  double alpha_;
  double value_ = 0.0;
  bool has_value_ = false;
  std::size_t count_ = 0;
};

/// Geometric mean of a sequence of positive numbers (used for the paper's
/// "average speedup" style aggregates; the paper reports arithmetic means,
/// so both are provided).
inline double geometric_mean(const std::vector<double>& xs) {
  HS_REQUIRE(!xs.empty(), "geometric_mean of empty sequence");
  double log_sum = 0.0;
  for (double x : xs) {
    HS_REQUIRE(x > 0.0, "geometric_mean requires positive values, got " << x);
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

inline double arithmetic_mean(const std::vector<double>& xs) {
  HS_REQUIRE(!xs.empty(), "arithmetic_mean of empty sequence");
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

}  // namespace hetsched
