#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

/// Error handling policy (follows the C++ Core Guidelines: exceptions for
/// errors that cannot be handled locally; assertions for programmer errors).
///
/// - `Error` and subclasses are thrown for user-facing misuse of the public
///   API (invalid configuration, malformed application descriptions).
/// - `HS_ASSERT` guards internal invariants; it throws `InternalError` so
///   that tests can verify invariants fire, while release builds keep the
///   checks (this library is a research instrument: silent corruption is
///   worse than the branch cost).
namespace hetsched {

/// Base class for all errors raised by hetsched's public API.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// The caller supplied an invalid argument or configuration.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// The requested operation is not valid in the current state.
class StateError : public Error {
 public:
  explicit StateError(const std::string& what) : Error(what) {}
};

/// An internal invariant was violated (a bug in hetsched, not in the caller).
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "internal invariant violated: (" << expr << ") at " << file << ":"
     << line;
  if (!msg.empty()) os << " — " << msg;
  throw InternalError(os.str());
}
}  // namespace detail

}  // namespace hetsched

/// Checks an internal invariant; throws InternalError with location info.
#define HS_ASSERT(expr)                                                   \
  do {                                                                    \
    if (!(expr))                                                          \
      ::hetsched::detail::assert_fail(#expr, __FILE__, __LINE__, "");     \
  } while (0)

/// Like HS_ASSERT but with a streamed message: HS_ASSERT_MSG(x>0, "x=" << x).
#define HS_ASSERT_MSG(expr, stream_expr)                                  \
  do {                                                                    \
    if (!(expr)) {                                                        \
      std::ostringstream hs_assert_os_;                                   \
      hs_assert_os_ << stream_expr;                                       \
      ::hetsched::detail::assert_fail(#expr, __FILE__, __LINE__,          \
                                      hs_assert_os_.str());               \
    }                                                                     \
  } while (0)

/// Validates a public-API precondition; throws InvalidArgument.
#define HS_REQUIRE(expr, stream_expr)                                     \
  do {                                                                    \
    if (!(expr)) {                                                        \
      std::ostringstream hs_require_os_;                                  \
      hs_require_os_ << stream_expr;                                      \
      throw ::hetsched::InvalidArgument(hs_require_os_.str());            \
    }                                                                     \
  } while (0)
