#pragma once

#include <map>
#include <utility>
#include <vector>

#include "common/interval_set.hpp"

/// RangeMap<T>: a map from half-open integer intervals to values, where a
/// later assignment overwrites the overlapped parts of earlier ones
/// (splitting them as needed).
///
/// This is exactly the bookkeeping the dependency analyzer needs: "who last
/// wrote byte range [a, b) of buffer X?" is a RangeMap<TaskId> updated by
/// writes and queried by reads.
namespace hetsched {

template <typename T>
class RangeMap {
 public:
  struct Entry {
    Interval range;
    T value;
  };

  bool empty() const { return spans_.empty(); }
  std::size_t span_count() const { return spans_.size(); }

  /// Assigns `value` to every point in `range`, overwriting previous values.
  void assign(Interval range, T value) {
    if (range.empty()) return;
    erase(range);
    spans_.emplace(range.begin, Span{range.end, std::move(value)});
    // Merge with equal-valued neighbours to keep the map compact.
    coalesce_around(range.begin);
  }

  /// Removes all points of `range` from the map.
  void erase(Interval range) {
    if (range.empty() || spans_.empty()) return;
    auto it = spans_.lower_bound(range.begin);
    if (it != spans_.begin()) {
      auto prev = std::prev(it);
      if (prev->second.end > range.begin) it = prev;
    }
    std::vector<std::pair<Interval, T>> to_add;
    while (it != spans_.end() && it->first < range.end) {
      const Interval span{it->first, it->second.end};
      T value = std::move(it->second.value);
      it = spans_.erase(it);
      if (span.begin < range.begin)
        to_add.emplace_back(Interval{span.begin, range.begin}, value);
      if (span.end > range.end)
        to_add.emplace_back(Interval{range.end, span.end}, std::move(value));
    }
    for (auto& [piece, value] : to_add)
      spans_.emplace(piece.begin, Span{piece.end, std::move(value)});
  }

  /// All (sub-range, value) pieces overlapping `range`, in order.
  std::vector<Entry> query(Interval range) const {
    std::vector<Entry> result;
    for_each_overlapping(range, [&result](Interval piece, const T& value) {
      result.push_back({piece, value});
    });
    return result;
  }

  /// Visits every (sub-range, value) piece overlapping `range`, in order —
  /// the allocation-free form of query() for hot paths.
  template <typename Fn>
  void for_each_overlapping(Interval range, Fn&& fn) const {
    if (range.empty() || spans_.empty()) return;
    auto it = spans_.upper_bound(range.begin);
    if (it != spans_.begin()) --it;
    for (; it != spans_.end() && it->first < range.end; ++it) {
      const Interval piece =
          intersect({it->first, it->second.end}, range);
      if (!piece.empty()) fn(piece, it->second.value);
    }
  }

  /// Distinct values overlapping `range` (order of first appearance).
  std::vector<T> values_overlapping(Interval range) const {
    std::vector<T> result;
    for (const Entry& entry : query(range)) {
      bool seen = false;
      for (const T& v : result)
        if (v == entry.value) {
          seen = true;
          break;
        }
      if (!seen) result.push_back(entry.value);
    }
    return result;
  }

  void clear() { spans_.clear(); }

  std::vector<Entry> to_vector() const {
    std::vector<Entry> result;
    result.reserve(spans_.size());
    for (const auto& [begin, span] : spans_)
      result.push_back({{begin, span.end}, span.value});
    return result;
  }

 private:
  struct Span {
    std::int64_t end;
    T value;
  };

  void coalesce_around(std::int64_t begin) {
    auto it = spans_.find(begin);
    if (it == spans_.end()) return;
    // Merge with the predecessor if touching and equal-valued.
    if (it != spans_.begin()) {
      auto prev = std::prev(it);
      if (prev->second.end == it->first &&
          prev->second.value == it->second.value) {
        prev->second.end = it->second.end;
        spans_.erase(it);
        it = prev;
      }
    }
    // Merge with the successor likewise.
    auto next = std::next(it);
    if (next != spans_.end() && it->second.end == next->first &&
        it->second.value == next->second.value) {
      it->second.end = next->second.end;
      spans_.erase(next);
    }
  }

  // begin -> (end, value); spans are disjoint.
  std::map<std::int64_t, Span> spans_;
};

}  // namespace hetsched
