#pragma once

#include <string>
#include <vector>

/// String formatting helpers for reports and diagnostics.
namespace hetsched {

/// "1.50 GB", "64.0 MB", "512 B" — decimal units, like the paper's figures.
std::string format_bytes(double bytes);

/// Fixed-precision double ("3.14"), trailing zeros kept for column alignment.
std::string format_fixed(double value, int decimals);

/// "41.2%" from a 0..1 fraction.
std::string format_percent(double fraction, int decimals = 1);

/// Joins parts with a separator.
std::string join(const std::vector<std::string>& parts,
                 const std::string& separator);

}  // namespace hetsched
