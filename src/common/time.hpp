#pragma once

#include <cstdint>
#include <string>

/// Virtual-time primitives shared by the simulator and every layer above it.
///
/// All simulated durations and timestamps in hetsched are expressed as
/// integer nanoseconds. Integer time keeps the discrete-event engine
/// deterministic across platforms (no FP rounding drift in event ordering)
/// and is wide enough for ~292 years of simulated time.
namespace hetsched {

/// A point in virtual time or a duration, in nanoseconds.
using SimTime = std::int64_t;

inline constexpr SimTime kNanosecond = 1;
inline constexpr SimTime kMicrosecond = 1000 * kNanosecond;
inline constexpr SimTime kMillisecond = 1000 * kMicrosecond;
inline constexpr SimTime kSecond = 1000 * kMillisecond;

/// Converts a duration in (possibly fractional) seconds to SimTime.
/// Negative durations are clamped to zero: every physical quantity we model
/// (compute time, transfer time, overhead) is non-negative by construction.
constexpr SimTime from_seconds(double seconds) {
  if (seconds <= 0.0) return 0;
  return static_cast<SimTime>(seconds * static_cast<double>(kSecond) + 0.5);
}

constexpr SimTime from_micros(double micros) {
  return from_seconds(micros * 1e-6);
}

constexpr SimTime from_millis(double millis) {
  return from_seconds(millis * 1e-3);
}

constexpr double to_seconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

constexpr double to_millis(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}

constexpr double to_micros(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kMicrosecond);
}

/// Renders a duration with an auto-selected unit ("12.34 ms", "1.20 s").
std::string format_time(SimTime t);

}  // namespace hetsched
