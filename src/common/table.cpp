#include "common/table.hpp"

#include <algorithm>
#include <ostream>

#include "common/error.hpp"

namespace hetsched {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  HS_REQUIRE(!headers_.empty(), "Table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  HS_REQUIRE(cells.size() == headers_.size(),
             "Table row has " << cells.size() << " cells, expected "
                              << headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::to_ascii() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) line += "  ";
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
    }
    // Trim trailing padding.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    line += '\n';
    return line;
  };

  std::string out = render_row(headers_);
  std::string rule;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    if (c != 0) rule += "  ";
    rule.append(widths[c], '-');
  }
  out += rule + '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

std::string Table::to_csv() const {
  std::string out;
  auto render = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out += ',';
      out += csv_escape(row[c]);
    }
    out += '\n';
  };
  render(headers_);
  for (const auto& row : rows_) render(row);
  return out;
}

void Table::print(std::ostream& os, bool csv) const {
  os << (csv ? to_csv() : to_ascii());
}

}  // namespace hetsched
