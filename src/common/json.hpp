#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/error.hpp"

/// Minimal JSON document model: parse, navigate, dump.
///
/// Scope is deliberately small — the machine-readable surfaces of this
/// library (sweep cache payloads, golden-shape expectation files, report
/// exports) are all JSON we generate or check in ourselves, so the parser
/// targets standard JSON without extensions (no comments, no NaN/Infinity).
/// Objects preserve insertion order, and doubles are formatted with the
/// shortest representation that round-trips exactly, so parse → dump is
/// byte-stable for documents this library produced. That byte-stability is
/// what the sweep cache's "hit equals recompute" contract rests on.
namespace hetsched::json {

class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<Value>;
  /// Insertion-ordered; duplicate keys are rejected at parse time.
  using Object = std::vector<std::pair<std::string, Value>>;

  Value() : type_(Type::kNull) {}
  Value(bool value) : type_(Type::kBool), bool_(value) {}
  Value(double value) : type_(Type::kNumber), number_(value) {}
  Value(std::int64_t value)
      : type_(Type::kNumber), number_(static_cast<double>(value)) {}
  Value(int value) : type_(Type::kNumber), number_(value) {}
  Value(std::string value) : type_(Type::kString), string_(std::move(value)) {}
  Value(const char* value) : type_(Type::kString), string_(value) {}
  Value(Array value) : type_(Type::kArray), array_(std::move(value)) {}
  Value(Object value) : type_(Type::kObject), object_(std::move(value)) {}

  /// Parses one JSON document (throws InvalidArgument on malformed input or
  /// trailing garbage).
  static Value parse(std::string_view text);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; throw InvalidArgument on a type mismatch.
  bool as_bool() const;
  double as_number() const;
  std::int64_t as_int64() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Object member lookup; `at` throws when the key is missing, `find`
  /// returns nullptr instead.
  const Value& at(std::string_view key) const;
  const Value* find(std::string_view key) const;

  /// Appends to an array / object under construction (converts a null value
  /// to the container type on first use).
  void push_back(Value element);
  void set(std::string key, Value value);

  /// Compact deterministic serialization (no whitespace, member order
  /// preserved).
  std::string dump() const;

 private:
  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Escapes `text` for inclusion inside a JSON string literal (quotes not
/// included).
std::string escape(const std::string& text);

/// Shortest decimal form of `value` that parses back to exactly `value`.
/// Integral doubles print without a decimal point ("12", not "12.0").
std::string format_double(double value);

}  // namespace hetsched::json
