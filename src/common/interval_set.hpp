#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "common/error.hpp"

/// Half-open integer intervals and interval sets.
///
/// These are the workhorses of both the dependency analyzer (which tasks
/// touch overlapping byte ranges of a buffer?) and the coherence manager
/// (which byte ranges of a buffer are valid in which memory space?).
namespace hetsched {

/// A half-open interval [begin, end). Empty iff begin >= end.
struct Interval {
  std::int64_t begin = 0;
  std::int64_t end = 0;

  constexpr bool empty() const { return begin >= end; }
  constexpr std::int64_t length() const { return empty() ? 0 : end - begin; }

  constexpr bool contains(std::int64_t point) const {
    return point >= begin && point < end;
  }
  constexpr bool contains(const Interval& other) const {
    return other.empty() || (other.begin >= begin && other.end <= end);
  }
  constexpr bool overlaps(const Interval& other) const {
    return !empty() && !other.empty() && begin < other.end &&
           other.begin < end;
  }

  friend constexpr bool operator==(const Interval&, const Interval&) = default;
};

constexpr Interval intersect(const Interval& a, const Interval& b) {
  return Interval{std::max(a.begin, b.begin), std::min(a.end, b.end)};
}

/// An ordered set of disjoint, non-adjacent half-open intervals.
///
/// Maintains the canonical form invariant: intervals are sorted, non-empty,
/// and separated by gaps (adjacent/overlapping inserts coalesce).
class IntervalSet {
 public:
  IntervalSet() = default;
  explicit IntervalSet(Interval iv) { insert(iv); }

  bool empty() const { return spans_.empty(); }
  std::size_t span_count() const { return spans_.size(); }

  /// Total number of points covered.
  std::int64_t measure() const {
    std::int64_t total = 0;
    for (const auto& [b, e] : spans_) total += e - b;
    return total;
  }

  /// Adds an interval, coalescing with any overlapping/adjacent spans.
  void insert(Interval iv) {
    if (iv.empty()) return;
    // Find the first span that could merge: the first with end >= iv.begin.
    auto it = spans_.lower_bound(iv.begin);
    if (it != spans_.begin()) {
      auto prev = std::prev(it);
      if (prev->second >= iv.begin) it = prev;
    }
    while (it != spans_.end() && it->first <= iv.end) {
      iv.begin = std::min(iv.begin, it->first);
      iv.end = std::max(iv.end, it->second);
      it = spans_.erase(it);
    }
    spans_.emplace(iv.begin, iv.end);
  }

  void insert(const IntervalSet& other) {
    for (const auto& [b, e] : other.spans_) insert({b, e});
  }

  /// Removes all points of `iv` from the set (splitting spans as needed).
  void erase(Interval iv) {
    if (iv.empty() || spans_.empty()) return;
    auto it = spans_.lower_bound(iv.begin);
    if (it != spans_.begin()) {
      auto prev = std::prev(it);
      if (prev->second > iv.begin) it = prev;
    }
    std::vector<Interval> to_add;
    while (it != spans_.end() && it->first < iv.end) {
      const Interval span{it->first, it->second};
      it = spans_.erase(it);
      if (span.begin < iv.begin) to_add.push_back({span.begin, iv.begin});
      if (span.end > iv.end) to_add.push_back({iv.end, span.end});
    }
    for (const auto& piece : to_add) spans_.emplace(piece.begin, piece.end);
  }

  /// True iff every point of `iv` is covered.
  bool covers(Interval iv) const {
    if (iv.empty()) return true;
    auto it = spans_.upper_bound(iv.begin);
    if (it == spans_.begin()) return false;
    --it;
    return it->first <= iv.begin && it->second >= iv.end;
  }

  /// True iff any point of `iv` is covered.
  bool intersects(Interval iv) const {
    if (iv.empty() || spans_.empty()) return false;
    auto it = spans_.lower_bound(iv.begin);
    if (it != spans_.end() && it->first < iv.end) return true;
    if (it == spans_.begin()) return false;
    --it;
    return it->second > iv.begin;
  }

  /// The parts of `iv` NOT covered by this set (in order).
  std::vector<Interval> gaps_within(Interval iv) const {
    std::vector<Interval> result;
    if (iv.empty()) return result;
    std::int64_t cursor = iv.begin;
    auto it = spans_.upper_bound(iv.begin);
    if (it != spans_.begin()) {
      auto prev = std::prev(it);
      if (prev->second > iv.begin) cursor = std::min(prev->second, iv.end);
    }
    for (; it != spans_.end() && it->first < iv.end; ++it) {
      if (it->first > cursor) result.push_back({cursor, it->first});
      cursor = std::min(it->second, iv.end);
    }
    if (cursor < iv.end) result.push_back({cursor, iv.end});
    return result;
  }

  /// The parts of `iv` covered by this set (in order).
  std::vector<Interval> pieces_within(Interval iv) const {
    std::vector<Interval> result;
    if (iv.empty()) return result;
    auto it = spans_.upper_bound(iv.begin);
    if (it != spans_.begin()) --it;
    for (; it != spans_.end() && it->first < iv.end; ++it) {
      const Interval piece = intersect({it->first, it->second}, iv);
      if (!piece.empty()) result.push_back(piece);
    }
    return result;
  }

  std::vector<Interval> to_vector() const {
    std::vector<Interval> result;
    result.reserve(spans_.size());
    for (const auto& [b, e] : spans_) result.push_back({b, e});
    return result;
  }

  friend bool operator==(const IntervalSet& a, const IntervalSet& b) {
    return a.spans_ == b.spans_;
  }

 private:
  // begin -> end, canonical form.
  std::map<std::int64_t, std::int64_t> spans_;
};

}  // namespace hetsched
