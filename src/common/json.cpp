#include "common/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace hetsched::json {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw InvalidArgument("json parse error at offset " +
                          std::to_string(pos_) + ": " + what);
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_whitespace();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char ch) {
    if (peek() != ch) fail(std::string("expected '") + ch + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Value parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't':
        if (consume_literal("true")) return Value(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Value(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Value();
        fail("invalid literal");
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Value::Object members;
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(members));
    }
    for (;;) {
      std::string key = parse_string_at_peek();
      expect(':');
      for (const auto& [existing, unused] : members) {
        (void)unused;
        if (existing == key) fail("duplicate object key '" + key + "'");
      }
      members.emplace_back(std::move(key), parse_value());
      const char next = peek();
      ++pos_;
      if (next == '}') return Value(std::move(members));
      if (next != ',') fail("expected ',' or '}' in object");
    }
  }

  Value parse_array() {
    expect('[');
    Value::Array elements;
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(elements));
    }
    for (;;) {
      elements.push_back(parse_value());
      const char next = peek();
      ++pos_;
      if (next == ']') return Value(std::move(elements));
      if (next != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string_at_peek() {
    if (peek() != '"') fail("expected string");
    return parse_string();
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char ch = text_[pos_++];
      if (ch == '"') return out;
      if (static_cast<unsigned char>(ch) < 0x20)
        fail("raw control character in string");
      if (ch != '\\') {
        out += ch;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': out += parse_unicode_escape(); break;
        default: fail("invalid escape character");
      }
    }
  }

  /// \uXXXX — decoded to UTF-8. Surrogate pairs are not combined (the
  /// library never emits them); lone surrogates are rejected.
  std::string parse_unicode_escape() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char ch = text_[pos_++];
      code <<= 4;
      if (ch >= '0' && ch <= '9') code |= static_cast<unsigned>(ch - '0');
      else if (ch >= 'a' && ch <= 'f') code |= static_cast<unsigned>(ch - 'a' + 10);
      else if (ch >= 'A' && ch <= 'F') code |= static_cast<unsigned>(ch - 'A' + 10);
      else fail("invalid \\u escape digit");
    }
    if (code >= 0xD800 && code <= 0xDFFF) fail("surrogate \\u escape");
    std::string out;
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
    return out;
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    auto digits = [&] {
      std::size_t n = 0;
      while (pos_ < text_.size() && std::isdigit(
                 static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        ++n;
      }
      return n;
    };
    if (digits() == 0) fail("invalid number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) fail("digits required after decimal point");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      if (digits() == 0) fail("digits required in exponent");
    }
    const std::string token(text_.substr(start, pos_ - start));
    return Value(std::strtod(token.c_str(), nullptr));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void require_type(Value::Type actual, Value::Type expected,
                  const char* what) {
  if (actual != expected)
    throw InvalidArgument(std::string("json value is not ") + what);
}

void dump_value(const Value& value, std::string& out);

void dump_string(const std::string& text, std::string& out) {
  out += '"';
  out += escape(text);
  out += '"';
}

void dump_value(const Value& value, std::string& out) {
  switch (value.type()) {
    case Value::Type::kNull: out += "null"; return;
    case Value::Type::kBool: out += value.as_bool() ? "true" : "false"; return;
    case Value::Type::kNumber: out += format_double(value.as_number()); return;
    case Value::Type::kString: dump_string(value.as_string(), out); return;
    case Value::Type::kArray: {
      out += '[';
      bool first = true;
      for (const Value& element : value.as_array()) {
        if (!first) out += ',';
        first = false;
        dump_value(element, out);
      }
      out += ']';
      return;
    }
    case Value::Type::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, member] : value.as_object()) {
        if (!first) out += ',';
        first = false;
        dump_string(key, out);
        out += ':';
        dump_value(member, out);
      }
      out += '}';
      return;
    }
  }
}

}  // namespace

Value Value::parse(std::string_view text) {
  return Parser(text).parse_document();
}

bool Value::as_bool() const {
  require_type(type_, Type::kBool, "a bool");
  return bool_;
}

double Value::as_number() const {
  require_type(type_, Type::kNumber, "a number");
  return number_;
}

std::int64_t Value::as_int64() const {
  const double value = as_number();
  const auto truncated = static_cast<std::int64_t>(value);
  if (static_cast<double>(truncated) != value)
    throw InvalidArgument("json number is not an integer");
  return truncated;
}

const std::string& Value::as_string() const {
  require_type(type_, Type::kString, "a string");
  return string_;
}

const Value::Array& Value::as_array() const {
  require_type(type_, Type::kArray, "an array");
  return array_;
}

const Value::Object& Value::as_object() const {
  require_type(type_, Type::kObject, "an object");
  return object_;
}

const Value& Value::at(std::string_view key) const {
  const Value* value = find(key);
  if (value == nullptr)
    throw InvalidArgument("json object has no member '" + std::string(key) +
                          "'");
  return *value;
}

const Value* Value::find(std::string_view key) const {
  require_type(type_, Type::kObject, "an object");
  for (const auto& [name, member] : object_) {
    if (name == key) return &member;
  }
  return nullptr;
}

void Value::push_back(Value element) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  require_type(type_, Type::kArray, "an array");
  array_.push_back(std::move(element));
}

void Value::set(std::string key, Value value) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  require_type(type_, Type::kObject, "an object");
  for (auto& [name, member] : object_) {
    if (name == key) {
      member = std::move(value);
      return;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
}

std::string Value::dump() const {
  std::string out;
  dump_value(*this, out);
  return out;
}

std::string escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char ch : text) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buffer;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

std::string format_double(double value) {
  if (std::isnan(value) || std::isinf(value))
    throw InvalidArgument("json cannot represent NaN or Infinity");
  if (value == 0.0) return "0";  // normalizes -0.0 as well
  const double rounded = std::nearbyint(value);
  if (rounded == value && std::fabs(value) < 1e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.0f", value);
    return buffer;
  }
  // Shortest fixed/scientific form that parses back exactly.
  for (int precision = 6; precision <= 17; ++precision) {
    char buffer[40];
    std::snprintf(buffer, sizeof(buffer), "%.*g", precision, value);
    if (std::strtod(buffer, nullptr) == value) return buffer;
  }
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

}  // namespace hetsched::json
