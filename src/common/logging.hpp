#pragma once

#include <mutex>
#include <sstream>
#include <string>

/// Minimal leveled logger. Single global sink (stderr), thread-safe line
/// emission, runtime-settable threshold. Deliberately tiny: benches and the
/// runtime use it for diagnostics, never for experiment output (that goes
/// through common/table.hpp so it stays machine-parseable).
namespace hetsched::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global threshold; messages below it are dropped.
void set_level(Level level);
Level level();

/// Emits one formatted line (internal; use the macros below).
void emit(Level level, const std::string& message);

/// Emits `message` verbatim (plus newline) under the same sink mutex,
/// still honoring the threshold. Structured emitters (obs::Log in JSON
/// mode) use this so machine-parseable lines carry no human prefix.
void emit_raw(Level level, const std::string& message);

namespace detail {
class LineBuilder {
 public:
  explicit LineBuilder(Level lvl) : level_(lvl) {}
  LineBuilder(const LineBuilder&) = delete;
  LineBuilder& operator=(const LineBuilder&) = delete;
  ~LineBuilder() { emit(level_, os_.str()); }

  template <typename T>
  LineBuilder& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  Level level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace hetsched::log

#define HS_LOG(lvl)                                             \
  if (::hetsched::log::level() <= ::hetsched::log::Level::lvl)  \
  ::hetsched::log::detail::LineBuilder(::hetsched::log::Level::lvl)

#define HS_DEBUG HS_LOG(kDebug)
#define HS_INFO HS_LOG(kInfo)
#define HS_WARN HS_LOG(kWarn)
#define HS_ERROR HS_LOG(kError)
