#include "common/logging.hpp"

#include <atomic>
#include <cstdio>

namespace hetsched::log {

namespace {
std::atomic<Level> g_level{Level::kWarn};
std::mutex g_emit_mutex;

const char* level_tag(Level level) {
  switch (level) {
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO ";
    case Level::kWarn: return "WARN ";
    case Level::kError: return "ERROR";
    case Level::kOff: return "OFF  ";
  }
  return "?????";
}
}  // namespace

void set_level(Level level) { g_level.store(level, std::memory_order_relaxed); }

Level level() { return g_level.load(std::memory_order_relaxed); }

void emit(Level lvl, const std::string& message) {
  if (lvl < level()) return;
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[hetsched %s] %s\n", level_tag(lvl), message.c_str());
}

void emit_raw(Level lvl, const std::string& message) {
  if (lvl < level()) return;
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "%s\n", message.c_str());
}

}  // namespace hetsched::log
