#pragma once

/// Unit constants for hardware specifications.
///
/// hetsched uses decimal (SI) units throughout because vendor datasheets —
/// and the paper's Table III — quote GFLOPS and GB/s in decimal.
namespace hetsched {

inline constexpr double kKilo = 1e3;
inline constexpr double kMega = 1e6;
inline constexpr double kGiga = 1e9;
inline constexpr double kTera = 1e12;

/// Converts GFLOPS to FLOP/s.
constexpr double gflops(double g) { return g * kGiga; }

/// Converts GB/s to bytes/s.
constexpr double gb_per_s(double g) { return g * kGiga; }

/// Converts MB to bytes.
constexpr double megabytes(double m) { return m * kMega; }

/// Converts GB to bytes.
constexpr double gigabytes(double g) { return g * kGiga; }

}  // namespace hetsched
