#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

#include "common/error.hpp"

/// Deterministic pseudo-random generation.
///
/// Everything stochastic in hetsched (workload generators, perturbation
/// tests) goes through `Rng` so that every run of every bench and test is
/// bit-reproducible from its seed. The engine is xoshiro256**, seeded via
/// SplitMix64 (the construction recommended by its authors); it satisfies
/// the C++ UniformRandomBitGenerator requirements.
namespace hetsched {

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // SplitMix64 expansion of the seed into the four 64-bit lanes.
    std::uint64_t x = seed;
    for (auto& lane : state_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      lane = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    HS_REQUIRE(lo <= hi, "uniform_int: lo=" << lo << " > hi=" << hi);
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    // Rejection-free modulo is fine here: simulation inputs, not crypto.
    return lo + static_cast<std::int64_t>(span == 0 ? (*this)()
                                                    : (*this)() % span);
  }

  /// Standard normal via Box–Muller (one value per call; simple > fast here).
  double normal(double mean = 0.0, double stddev = 1.0);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

inline double Rng::normal(double mean, double stddev) {
  // Box–Muller; draws until the log argument is nonzero (probability ~1).
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  const double mag = stddev * std::sqrt(-2.0 * std::log(u1));
  return mean + mag * std::cos(kTwoPi * u2);
}

}  // namespace hetsched
