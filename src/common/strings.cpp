#include "common/strings.hpp"

#include <array>
#include <cmath>
#include <cstdio>

#include "common/time.hpp"

namespace hetsched {

std::string format_bytes(double bytes) {
  static constexpr std::array<const char*, 5> kUnits = {"B", "KB", "MB", "GB",
                                                        "TB"};
  double value = bytes;
  std::size_t unit = 0;
  while (std::abs(value) >= 1000.0 && unit + 1 < kUnits.size()) {
    value /= 1000.0;
    ++unit;
  }
  char buf[64];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%.0f %s", value, kUnits[unit]);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", value, kUnits[unit]);
  }
  return buf;
}

std::string format_fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string format_percent(double fraction, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

std::string join(const std::vector<std::string>& parts,
                 const std::string& separator) {
  std::string result;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) result += separator;
    result += parts[i];
  }
  return result;
}

std::string format_time(SimTime t) {
  char buf[64];
  const double ns = static_cast<double>(t);
  if (t < 10 * kMicrosecond) {
    std::snprintf(buf, sizeof(buf), "%.0f ns", ns);
  } else if (t < 10 * kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%.2f us", ns / 1e3);
  } else if (t < 10 * kSecond) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", ns / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f s", ns / 1e9);
  }
  return buf;
}

}  // namespace hetsched
