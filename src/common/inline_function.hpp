#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace hetsched {

/// Move-only callable wrapper with fixed inline storage and no heap
/// fallback. Unlike std::function, constructing one never allocates: the
/// callable is placement-new'd into an embedded buffer, and callables
/// larger than `InlineBytes` are rejected at compile time. Trivially
/// copyable callables (e.g. lambdas capturing pointers and scalars) are
/// relocated with memcpy, so moving a heap of these is cheap.
///
/// This exists for the simulation engine's event queue, where a
/// std::function per event made the allocator the hottest function in the
/// simulator. Only the features the engine needs are implemented: move,
/// invoke, and null checks.
template <typename Signature, std::size_t InlineBytes = 64>
class InlineFunction;

template <typename R, typename... Args, std::size_t InlineBytes>
class InlineFunction<R(Args...), InlineBytes> {
 public:
  InlineFunction() = default;
  InlineFunction(std::nullptr_t) {}  // NOLINT(runtime/explicit)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction>>>
  InlineFunction(F&& f) {  // NOLINT(runtime/explicit)
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= InlineBytes,
                  "callable exceeds InlineFunction's inline storage; "
                  "shrink the capture list or raise InlineBytes");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "callable is over-aligned for InlineFunction storage");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "callable must be nothrow-move-constructible (moves "
                  "happen during heap sifts)");
    ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
    ops_ = &kOps<Fn>;
  }

  InlineFunction(InlineFunction&& other) noexcept { move_from(other); }
  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;
  ~InlineFunction() { reset(); }

  R operator()(Args... args) {
    return ops_->invoke(storage_, std::forward<Args>(args)...);
  }

  explicit operator bool() const { return ops_ != nullptr; }
  friend bool operator==(const InlineFunction& f, std::nullptr_t) {
    return f.ops_ == nullptr;
  }
  friend bool operator!=(const InlineFunction& f, std::nullptr_t) {
    return f.ops_ != nullptr;
  }

 private:
  struct Ops {
    R (*invoke)(void*, Args&&...);
    /// Move-construct into dst from src and destroy src. Null means the
    /// callable is trivially copyable: relocate with memcpy, skip destroy.
    void (*relocate)(void*, void*);
    void (*destroy)(void*);
  };

  template <typename Fn>
  static constexpr bool kTrivial = std::is_trivially_copyable_v<Fn> &&
                                   std::is_trivially_destructible_v<Fn>;

  template <typename Fn>
  static R invoke_impl(void* s, Args&&... args) {
    return (*static_cast<Fn*>(s))(std::forward<Args>(args)...);
  }
  template <typename Fn>
  static void relocate_impl(void* dst, void* src) {
    Fn* from = static_cast<Fn*>(src);
    ::new (dst) Fn(std::move(*from));
    from->~Fn();
  }
  template <typename Fn>
  static void destroy_impl(void* s) {
    static_cast<Fn*>(s)->~Fn();
  }

  template <typename Fn>
  static constexpr Ops kOps = {
      &invoke_impl<Fn>,
      kTrivial<Fn> ? nullptr : &relocate_impl<Fn>,
      kTrivial<Fn> ? nullptr : &destroy_impl<Fn>,
  };

  void move_from(InlineFunction& other) noexcept {
    ops_ = other.ops_;
    if (ops_ == nullptr) return;
    if (ops_->relocate != nullptr) {
      ops_->relocate(storage_, other.storage_);
    } else {
      std::memcpy(storage_, other.storage_, InlineBytes);
    }
    other.ops_ = nullptr;
  }

  void reset() noexcept {
    if (ops_ != nullptr && ops_->destroy != nullptr) ops_->destroy(storage_);
    ops_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char storage_[InlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace hetsched
