#include "check/oracles.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "analyzer/matchmaker.hpp"
#include "analyzer/ranking.hpp"
#include "apps/registry.hpp"
#include "glinda/multi_device.hpp"
#include "hw/platform.hpp"
#include "sweep/sweep.hpp"

namespace hetsched::check {

namespace {

bool want(const std::string& only, const char* name) {
  return only.empty() || only == name;
}

template <typename... Parts>
void add(std::vector<Violation>& out, const char* oracle, Parts&&... parts) {
  std::ostringstream os;
  (os << ... << parts);
  out.push_back({oracle, os.str()});
}

// ---------------------------------------------------------------------------
// Planted-bug mutations (mutation-testing the oracles themselves). Applied
// to the oracle substrate AFTER the simulation: the oracles must notice a
// corrupted report exactly as they would a real accounting bug.
// ---------------------------------------------------------------------------

/// Rebuilds the report with the first positive per-kernel item count
/// decremented by one (json::Value is read-only, so mutate-by-copy).
json::Value drop_one_item(const json::Value& report, bool& dropped) {
  json::Value out;
  for (const auto& [key, member] : report.as_object()) {
    if (key != "devices") {
      out.set(key, member);
      continue;
    }
    json::Value devices{json::Value::Array{}};
    for (const json::Value& device : member.as_array()) {
      json::Value rebuilt;
      for (const auto& [field, value] : device.as_object()) {
        if (field != "items_per_kernel" || dropped) {
          rebuilt.set(field, value);
          continue;
        }
        json::Value items{json::Value::Object{}};
        for (const auto& [kernel, count] : value.as_object()) {
          std::int64_t n = count.as_int64();
          if (!dropped && n > 0) {
            --n;
            dropped = true;
          }
          items.set(kernel, json::Value(n));
        }
        rebuilt.set(field, std::move(items));
      }
      devices.push_back(std::move(rebuilt));
    }
    out.set(key, std::move(devices));
  }
  return out;
}

/// Rebuilds the report with its schedule record edited by `edit`. The two
/// schedule mutations are defined over the schedule record: on an
/// unexplored run (no record) there is nothing to corrupt, so the report
/// passes through untouched — the fuzz engine's canonical pass stays
/// clean and the planted bug surfaces on the explored schedules.
template <typename Edit>
json::Value mutate_schedule(const json::Value& report, Edit&& edit) {
  json::Value out;
  for (const auto& [key, member] : report.as_object()) {
    if (key != "schedule") {
      out.set(key, member);
      continue;
    }
    json::Value schedule = member;
    edit(schedule);
    out.set(key, std::move(schedule));
  }
  return out;
}

/// The classic tie-break bug: a dependent task's completion is recorded
/// before its predecessor's. Swaps the task ids of the two completion
/// records of one dependency edge whose endpoints both completed. A run
/// whose record has no such edge (independent tasks, or the dependent ones
/// never finished) offers nothing to corrupt and passes through — the fuzz
/// engine keeps scanning seeds until one is susceptible.
void swap_completion_before_pred(json::Value& schedule) {
  const json::Value::Array& completions =
      schedule.at("completions").as_array();
  std::map<std::int64_t, std::size_t> position;
  for (std::size_t i = 0; i < completions.size(); ++i)
    position[completions[i].as_array()[0].as_int64()] = i;
  std::size_t pred_at = 0;
  std::size_t succ_at = 0;
  bool found = false;
  for (const json::Value& edge : schedule.at("edges").as_array()) {
    const json::Value::Array& pair = edge.as_array();
    const auto pred = position.find(pair[0].as_int64());
    const auto succ = position.find(pair[1].as_int64());
    if (pred == position.end() || succ == position.end()) continue;
    if (pred->second == succ->second) continue;
    pred_at = pred->second;
    succ_at = succ->second;
    found = true;
    break;
  }
  if (!found) return;
  json::Value rebuilt{json::Value::Array{}};
  for (std::size_t i = 0; i < completions.size(); ++i) {
    const std::size_t from =
        i == pred_at ? succ_at : (i == succ_at ? pred_at : i);
    json::Value entry{json::Value::Array{}};
    entry.push_back(completions[from].as_array()[0]);
    entry.push_back(completions[i].as_array()[1]);
    rebuilt.push_back(std::move(entry));
  }
  schedule.set("completions", std::move(rebuilt));
}

/// The late-fault bug: an abandoned chunk resurfaces after the makespan.
void append_late_abandon(json::Value& schedule) {
  json::Value rebuilt = schedule.at("abandons");
  json::Value entry{json::Value::Array{}};
  entry.push_back(json::Value(std::int64_t{0}));
  entry.push_back(
      json::Value(schedule.at("makespan_ns").as_int64() + 1));
  rebuilt.push_back(std::move(entry));
  schedule.set("abandons", std::move(rebuilt));
}

void apply_mutation(sweep::ScenarioOutcome& subject,
                    const std::string& mutation) {
  if (mutation.empty()) return;
  if (mutation == "drop-items") {
    bool dropped = false;
    subject.report_json =
        drop_one_item(json::Value::parse(subject.report_json), dropped)
            .dump();
    HS_REQUIRE(dropped,
               "drop-items mutation found no executed items to drop");
    return;
  }
  if (mutation == "skew-time") {
    subject.metrics.time_ms = subject.metrics.time_ms * 1.25 + 1.0;
    return;
  }
  if (mutation == "completion-before-pred") {
    subject.report_json =
        mutate_schedule(json::Value::parse(subject.report_json),
                        swap_completion_before_pred)
            .dump();
    return;
  }
  if (mutation == "late-fault") {
    subject.report_json =
        mutate_schedule(json::Value::parse(subject.report_json),
                        append_late_abandon)
            .dump();
    return;
  }
  throw InvalidArgument("unknown mutation '" + mutation + "'");
}

// ---------------------------------------------------------------------------
// Execution oracles (over ScenarioOutcomes of c.scenario)
// ---------------------------------------------------------------------------

/// Items in == items completed + DNF'd. Expected per-kernel counts come
/// from the application itself (items_of x iterations); actuals are summed
/// by kernel name across every device of the report. A completed run must
/// match exactly — the executor reverses in-flight accounting when a
/// failure displaces a dispatch precisely so this holds across
/// migration/retry. A DNF run may only be missing work, and the deficit
/// must be explained by abandoned/unfinished tasks.
void check_conservation(const FuzzCase& c,
                        const sweep::ScenarioOutcome& outcome,
                        std::vector<Violation>& out) {
  constexpr const char* kOracle = "work-conservation";
  const hw::PlatformSpec platform =
      hw::platform_by_name(c.scenario.platform);
  const apps::Application::Config config =
      c.scenario.small ? apps::test_config(c.scenario.app)
                       : apps::paper_config(c.scenario.app);
  const auto application =
      apps::make_paper_app(c.scenario.app, platform, config);

  std::map<std::string, std::int64_t> expected;
  const std::vector<rt::KernelDef>& defs =
      application->executor().kernels();
  const std::vector<rt::KernelId>& sequence = application->kernels();
  for (std::size_t i = 0; i < sequence.size(); ++i)
    expected[defs[sequence[i]].name] +=
        application->items_of(i) * application->iterations();

  const json::Value report = json::Value::parse(outcome.report_json);
  std::map<std::string, std::int64_t> actual;
  for (const json::Value& device : report.at("devices").as_array())
    for (const auto& [kernel, items] :
         device.at("items_per_kernel").as_object())
      actual[kernel] += items.as_int64();

  for (const auto& [kernel, items] : actual)
    if (!expected.count(kernel))
      add(out, kOracle, "report executed unknown kernel '", kernel, "' (",
          items, " items)");

  const json::Value& faults = report.at("faults");
  const bool completed = faults.at("run_completed").as_bool();
  std::int64_t deficit = 0;
  for (const auto& [kernel, items] : expected) {
    const auto it = actual.find(kernel);
    const std::int64_t ran = it == actual.end() ? 0 : it->second;
    if (completed && ran != items) {
      add(out, kOracle, "completed run executed ", ran, "/", items,
          " items of kernel '", kernel, "'");
    } else if (!completed && ran > items) {
      add(out, kOracle, "DNF run over-executed kernel '", kernel, "': ",
          ran, "/", items, " items");
    }
    deficit += items - ran;
  }
  if (!completed && deficit > 0 &&
      faults.at("abandoned").as_int64() +
              faults.at("unfinished_tasks").as_int64() ==
          0)
    add(out, kOracle, "DNF run is missing ", deficit,
        " items with no abandoned or unfinished tasks to account for them");
  if (!completed && faults.at("abandoned").as_int64() == 0)
    add(out, kOracle,
        "run_completed=false but no task was ever abandoned");
}

/// The flattened ScenarioMetrics must agree with the embedded full report —
/// they are two serializations of one simulation.
void check_consistency(const sweep::ScenarioOutcome& outcome,
                       std::vector<Violation>& out) {
  constexpr const char* kOracle = "report-consistency";
  const sweep::ScenarioMetrics& m = outcome.metrics;
  const json::Value report = json::Value::parse(outcome.report_json);

  const auto expect_eq = [&](const char* what, double metric,
                             double reported) {
    if (metric != reported)
      add(out, kOracle, what, ": metrics=", json::format_double(metric),
          " report=", json::format_double(reported));
  };
  expect_eq("time_ms", m.time_ms, report.at("makespan_ms").as_number());
  expect_eq("tasks_executed", static_cast<double>(m.tasks_executed),
            report.at("tasks_executed").as_number());
  expect_eq("barriers", static_cast<double>(m.barriers),
            report.at("barriers").as_number());
  expect_eq("scheduling_decisions",
            static_cast<double>(m.scheduling_decisions),
            report.at("scheduling_decisions").as_number());
  expect_eq("sim_events", static_cast<double>(m.sim_events),
            report.at("sim_events").as_number());
  expect_eq("overhead_ms", m.overhead_ms,
            report.at("overhead_ms").as_number());
  const json::Value& transfers = report.at("transfers");
  expect_eq("h2d_bytes", static_cast<double>(m.h2d_bytes),
            transfers.at("h2d_bytes").as_number());
  expect_eq("d2h_bytes", static_cast<double>(m.d2h_bytes),
            transfers.at("d2h_bytes").as_number());
  expect_eq("h2d_ms", m.h2d_ms, transfers.at("h2d_ms").as_number());
  expect_eq("d2h_ms", m.d2h_ms, transfers.at("d2h_ms").as_number());
  const json::Value& faults = report.at("faults");
  expect_eq("faults_injected", static_cast<double>(m.faults_injected),
            faults.at("injected").as_number());
  expect_eq("fault_retries", static_cast<double>(m.fault_retries),
            faults.at("retries").as_number());
  expect_eq("migrated_tasks", static_cast<double>(m.migrated_tasks),
            faults.at("migrated").as_number());
  expect_eq("repartitioned_tasks",
            static_cast<double>(m.repartitioned_tasks),
            faults.at("repartitioned").as_number());
  expect_eq("abandoned_tasks", static_cast<double>(m.abandoned_tasks),
            faults.at("abandoned").as_number());
  if (m.run_completed != faults.at("run_completed").as_bool())
    add(out, kOracle, "run_completed: metrics=", m.run_completed,
        " report=", faults.at("run_completed").as_bool());

  if (m.gpu_fraction_overall < 0.0 || m.gpu_fraction_overall > 1.0)
    add(out, kOracle, "gpu_fraction_overall out of [0,1]: ",
        json::format_double(m.gpu_fraction_overall));
  for (std::size_t k = 0; k < m.gpu_fraction_per_kernel.size(); ++k)
    if (m.gpu_fraction_per_kernel[k] < 0.0 ||
        m.gpu_fraction_per_kernel[k] > 1.0)
      add(out, kOracle, "gpu_fraction_per_kernel[", k, "] out of [0,1]: ",
          json::format_double(m.gpu_fraction_per_kernel[k]));

  // Recompute the accelerator share from the report's device item counts.
  // Device 0 is hw::kCpuDevice by construction of every PlatformSpec.
  const json::Value::Array& devices = report.at("devices").as_array();
  std::int64_t total = 0;
  std::int64_t cpu_items = 0;
  for (std::size_t d = 0; d < devices.size(); ++d) {
    std::int64_t device_items = 0;
    for (const auto& [kernel, items] :
         devices[d].at("items_per_kernel").as_object())
      device_items += items.as_int64();
    total += device_items;
    if (d == hw::kCpuDevice) cpu_items = device_items;
  }
  if (total > 0) {
    const double recomputed =
        1.0 - static_cast<double>(cpu_items) / static_cast<double>(total);
    if (std::abs(recomputed - m.gpu_fraction_overall) > 1e-12)
      add(out, kOracle, "gpu_fraction_overall=",
          json::format_double(m.gpu_fraction_overall),
          " but device item counts give ", json::format_double(recomputed));
  }

  if (m.run_completed && m.baseline_time_ms > 0.0 &&
      m.degradation_ratio != m.time_ms / m.baseline_time_ms)
    add(out, kOracle, "degradation_ratio=",
        json::format_double(m.degradation_ratio), " but time/baseline=",
        json::format_double(m.time_ms / m.baseline_time_ms));
  if (!m.run_completed && m.degradation_ratio != 0.0)
    add(out, kOracle,
        "DNF run must report degradation_ratio=0 (an honest DNF, not a "
        "number), got ",
        json::format_double(m.degradation_ratio));
}

/// Explored-schedule oracle: the completion order the executor recorded
/// must be a linearization consistent with the dependency DAG — no task
/// completes before (or without) its predecessors, times never regress,
/// nothing happens after the makespan, no abandoned chunk resurfaces, and
/// the record agrees with the fault report's accounting. A report without
/// a schedule record (canonical, unexplored run) passes trivially.
void check_linearization(const sweep::ScenarioOutcome& outcome,
                         std::vector<Violation>& out) {
  constexpr const char* kOracle = "dag-linearization";
  const json::Value report = json::Value::parse(outcome.report_json);
  const json::Value* schedule = report.find("schedule");
  if (schedule == nullptr) return;

  const std::int64_t makespan = schedule->at("makespan_ns").as_int64();
  const std::int64_t tasks = schedule->at("tasks").as_int64();

  // Completion sequence: valid ids, no duplicates, non-decreasing times,
  // nothing past the makespan.
  std::map<std::int64_t, std::size_t> completed_at;  // task -> order index
  std::int64_t previous = 0;
  std::size_t index = 0;
  for (const json::Value& entry : schedule->at("completions").as_array()) {
    const json::Value::Array& pair = entry.as_array();
    const std::int64_t task = pair[0].as_int64();
    const std::int64_t at = pair[1].as_int64();
    if (task < 0 || task >= tasks)
      add(out, kOracle, "completion records unknown task ", task, " (graph has ",
          tasks, " tasks)");
    else if (completed_at.count(task))
      add(out, kOracle, "task ", task, " completed twice");
    else
      completed_at[task] = index;
    if (at < previous)
      add(out, kOracle, "completion times regress: task ", task,
          " completed at ", at, " ns after a completion at ", previous,
          " ns");
    if (at > makespan)
      add(out, kOracle, "task ", task, " completed at ", at,
          " ns, beyond the makespan ", makespan, " ns");
    previous = std::max(previous, at);
    ++index;
  }

  // Abandons: valid ids, disjoint from completions, inside the run window
  // (an abandoned chunk must never resurface after the makespan).
  std::int64_t abandons = 0;
  for (const json::Value& entry : schedule->at("abandons").as_array()) {
    const json::Value::Array& pair = entry.as_array();
    const std::int64_t task = pair[0].as_int64();
    const std::int64_t at = pair[1].as_int64();
    if (task < 0 || task >= tasks)
      add(out, kOracle, "abandon records unknown task ", task);
    if (completed_at.count(task))
      add(out, kOracle, "task ", task, " was both completed and abandoned");
    if (at > makespan)
      add(out, kOracle, "abandoned chunk of task ", task, " resurfaces at ",
          at, " ns, after the makespan ", makespan, " ns");
    ++abandons;
  }

  // Every dependency edge must be respected by the completion ORDER, not
  // just the timestamps: with zero-cost ties a successor may legally share
  // its predecessor's completion time, but it can never precede it in the
  // recorded sequence.
  for (const json::Value& edge : schedule->at("edges").as_array()) {
    const json::Value::Array& pair = edge.as_array();
    const std::int64_t pred = pair[0].as_int64();
    const std::int64_t succ = pair[1].as_int64();
    const auto done = completed_at.find(succ);
    if (done == completed_at.end()) continue;
    const auto before = completed_at.find(pred);
    if (before == completed_at.end())
      add(out, kOracle, "task ", succ, " completed but its predecessor ",
          pred, " never did");
    else if (before->second > done->second)
      add(out, kOracle, "completion order violates dependency ", pred,
          " -> ", succ, ": the successor completed first");
  }

  // The schedule record and the fault report are two views of one run.
  const json::Value& faults = report.at("faults");
  if (abandons != faults.at("abandoned").as_int64())
    add(out, kOracle, "schedule records ", abandons,
        " abandons but the fault report counts ",
        faults.at("abandoned").as_int64());
  if (faults.at("run_completed").as_bool() &&
      static_cast<std::int64_t>(completed_at.size()) != tasks)
    add(out, kOracle, "completed run recorded ", completed_at.size(), "/",
        tasks, " task completions");
}

// ---------------------------------------------------------------------------
// Analyzer oracles (over the generated structure)
// ---------------------------------------------------------------------------

analyzer::AppClass wrapped_in_main_loop(analyzer::AppClass cls) {
  using analyzer::AppClass;
  switch (cls) {
    case AppClass::kSKOne: return AppClass::kSKLoop;
    case AppClass::kSKLoop: return AppClass::kSKLoop;
    case AppClass::kMKSeq: return AppClass::kMKLoop;
    case AppClass::kMKLoop: return AppClass::kMKLoop;
    case AppClass::kMKDag: return AppClass::kMKDag;
  }
  return cls;
}

void check_ranking(const FuzzCase& c, std::vector<Violation>& out) {
  constexpr const char* kOracle = "ranking-relations";
  using analyzer::StrategyKind;
  const analyzer::KernelGraph& graph = c.structure.structure;
  const analyzer::AppClass cls = analyzer::classify(graph);
  const bool sync = c.structure.inter_kernel_sync();

  const analyzer::MatchResult match =
      analyzer::Matchmaker().match(c.structure);
  if (match.app_class != cls)
    add(out, kOracle, "matchmaker class ",
        analyzer::app_class_name(match.app_class), " != classify() ",
        analyzer::app_class_name(cls));
  if (match.inter_kernel_sync != sync)
    add(out, kOracle, "matchmaker sync flag ", match.inter_kernel_sync,
        " != descriptor sync ", sync);

  const std::vector<StrategyKind> table =
      analyzer::ranked_strategies(cls, sync);
  if (table.empty()) {
    add(out, kOracle, "empty Table-I ranking for class ",
        analyzer::app_class_name(cls));
    return;
  }
  if (match.ranking != table)
    add(out, kOracle, "matchmaker ranking differs from Table I for class ",
        analyzer::app_class_name(cls));
  if (match.best != table.front())
    add(out, kOracle, "matchmaker best ",
        analyzer::strategy_name(match.best), " is not the ranking head ",
        analyzer::strategy_name(table.front()));

  const auto position = [&table](StrategyKind kind) -> std::ptrdiff_t {
    const auto it = std::find(table.begin(), table.end(), kind);
    return it == table.end() ? -1 : it - table.begin();
  };
  for (std::size_t i = 0; i < table.size(); ++i)
    for (std::size_t j = i + 1; j < table.size(); ++j)
      if (table[i] == table[j])
        add(out, kOracle, "duplicate strategy ",
            analyzer::strategy_name(table[i]), " in Table-I ranking");
  // Proposition 1 holds for every class: DP-Perf >= DP-Dep.
  const std::ptrdiff_t perf = position(StrategyKind::kDPPerf);
  const std::ptrdiff_t dep = position(StrategyKind::kDPDep);
  if (perf < 0 || dep < 0 || perf > dep)
    add(out, kOracle,
        "Proposition 1 violated: DP-Perf must rank at or above DP-Dep ",
        "for class ", analyzer::app_class_name(cls));

  // The proposition expectation must describe the same order Table I
  // publishes (the expectation is the testable form of the ranking).
  const analyzer::RankingExpectation expectation =
      analyzer::ranking_expectation(cls, sync);
  if (expectation.order.size() != expectation.strict.size() + 1 &&
      !expectation.order.empty())
    add(out, kOracle, "ranking expectation has ", expectation.order.size(),
        " strategies but ", expectation.strict.size(),
        " adjacency relations");
  std::ptrdiff_t previous = -1;
  for (const StrategyKind kind : expectation.order) {
    const std::ptrdiff_t at = position(kind);
    if (at < 0) {
      add(out, kOracle, "expectation strategy ",
          analyzer::strategy_name(kind), " missing from Table-I ranking");
      continue;
    }
    if (at < previous)
      add(out, kOracle, "expectation orders ",
          analyzer::strategy_name(kind), " differently than Table I");
    previous = at;
  }

  // Metamorphic: wrapping the whole structure in a main loop moves the
  // class along SK-One->SK-Loop / MK-Seq->MK-Loop and fixes the others.
  analyzer::KernelGraph wrapped = graph;
  wrapped.main_loop = true;
  const analyzer::AppClass wrapped_class = analyzer::classify(wrapped);
  if (wrapped_class != wrapped_in_main_loop(cls))
    add(out, kOracle, "main-loop wrap of ", analyzer::app_class_name(cls),
        " classified as ", analyzer::app_class_name(wrapped_class),
        ", expected ",
        analyzer::app_class_name(wrapped_in_main_loop(cls)));

  // Metamorphic: per-kernel inner loops are unfolded for classification —
  // toggling them never changes a multi-kernel class (paper Section III-B).
  if (graph.kernel_count() > 1) {
    analyzer::KernelGraph toggled = graph;
    for (analyzer::KernelNode& kernel : toggled.kernels)
      kernel.inner_loop = !kernel.inner_loop;
    const analyzer::AppClass toggled_class = analyzer::classify(toggled);
    if (toggled_class != cls)
      add(out, kOracle, "inner-loop toggle changed multi-kernel class ",
          analyzer::app_class_name(cls), " -> ",
          analyzer::app_class_name(toggled_class));
  } else {
    // Single kernel: looped iff a main loop or its own inner loop exists.
    const bool looped = graph.main_loop || graph.kernels[0].inner_loop;
    const analyzer::AppClass expected_class =
        looped ? analyzer::AppClass::kSKLoop : analyzer::AppClass::kSKOne;
    if (cls != expected_class)
      add(out, kOracle, "single-kernel graph (main_loop=", graph.main_loop,
          ", inner_loop=", graph.kernels[0].inner_loop, ") classified as ",
          analyzer::app_class_name(cls));
  }
}

void check_dag_profile(const FuzzCase& c, std::vector<Violation>& out) {
  constexpr const char* kOracle = "dag-profile";
  const analyzer::KernelGraph& graph = c.structure.structure;
  const analyzer::DagProfile profile = analyzer::profile_dag(graph);
  std::size_t total = 0;
  std::size_t widest = 0;
  for (const std::size_t width : profile.level_widths) {
    total += width;
    widest = std::max(widest, width);
  }
  if (total != graph.kernel_count())
    add(out, kOracle, "level widths sum to ", total, " for ",
        graph.kernel_count(), " kernels");
  if (profile.depth != profile.level_widths.size())
    add(out, kOracle, "depth ", profile.depth, " != level count ",
        profile.level_widths.size());
  if (profile.depth == 0)
    add(out, kOracle, "non-empty graph profiled with depth 0");
  if (profile.max_width != widest)
    add(out, kOracle, "max_width ", profile.max_width,
        " != widest level ", widest);
  if (profile.depth > 0 &&
      profile.parallelism != static_cast<double>(graph.kernel_count()) /
                                 static_cast<double>(profile.depth))
    add(out, kOracle, "parallelism ",
        json::format_double(profile.parallelism), " != kernels/depth");
  if (profile.wide() != (profile.max_width >= 2))
    add(out, kOracle, "wide() disagrees with max_width ",
        profile.max_width);
}

// ---------------------------------------------------------------------------
// Partition-model oracles (over the generated estimate)
// ---------------------------------------------------------------------------

void check_partition(const FuzzCase& c, std::vector<Violation>& out) {
  constexpr const char* kOracle = "partition-model";
  const glinda::PartitionOptions options;
  const glinda::PartitionModel model(options);
  const std::int64_t n = c.model_items;
  const glinda::PartitionDecision decision = model.solve(c.estimate, n);

  if (decision.gpu_items + decision.cpu_items != n)
    add(out, kOracle, "split loses items: gpu=", decision.gpu_items,
        " cpu=", decision.cpu_items, " n=", n);
  if (decision.gpu_items < 0 || decision.cpu_items < 0)
    add(out, kOracle, "negative share: gpu=", decision.gpu_items, " cpu=",
        decision.cpu_items);
  if (decision.beta < 0.0 || decision.beta > 1.0)
    add(out, kOracle, "beta out of [0,1]: ",
        json::format_double(decision.beta));
  using glinda::HardwareConfig;
  if ((decision.config == HardwareConfig::kOnlyCpu &&
       decision.gpu_items != 0) ||
      (decision.config == HardwareConfig::kOnlyGpu &&
       decision.cpu_items != 0) ||
      (decision.config == HardwareConfig::kPartition &&
       (decision.gpu_items == 0 || decision.cpu_items == 0)))
    add(out, kOracle, "config ",
        glinda::hardware_config_name(decision.config),
        " contradicts split gpu=", decision.gpu_items,
        " cpu=", decision.cpu_items);

  // The chosen split can be worse than the best single device only by the
  // discretization the model applies on purpose: granularity rounding and
  // the min_share collapse. Bound both.
  const double tg = c.estimate.gpu_seconds_per_item_effective();
  const double tc = c.estimate.cpu.seconds_per_item;
  const double single = std::min(decision.predicted_cpu_seconds,
                                 decision.predicted_gpu_seconds);
  const double slack =
      (options.min_share * static_cast<double>(n) +
       2.0 * options.gpu_granularity + 2.0) *
          (tg + tc) +
      1e-9 * (1.0 + single);
  if (decision.predicted_partition_seconds > single + slack)
    add(out, kOracle, "predicted partition time ",
        json::format_double(decision.predicted_partition_seconds),
        " exceeds best single device ", json::format_double(single),
        " beyond the discretization slack ", json::format_double(slack));
  const double replayed = model.predict_split_seconds(
      c.estimate, decision.gpu_items, decision.cpu_items);
  if (replayed != decision.predicted_partition_seconds)
    add(out, kOracle, "predicted partition time ",
        json::format_double(decision.predicted_partition_seconds),
        " does not replay through predict_split_seconds (",
        json::format_double(replayed), ")");

  // Metamorphic (paper Propositions substrate): speeding the GPU up never
  // shrinks its optimal share — in beta or in rounded items.
  glinda::KernelEstimate faster = c.estimate;
  faster.gpu.seconds_per_item /= c.scale_factor;
  const glinda::PartitionDecision scaled = model.solve(faster, n);
  if (scaled.beta + 1e-15 < decision.beta)
    add(out, kOracle, "GPU sped up x",
        json::format_double(c.scale_factor), " but beta fell ",
        json::format_double(decision.beta), " -> ",
        json::format_double(scaled.beta));
  if (scaled.gpu_items < decision.gpu_items)
    add(out, kOracle, "GPU sped up x",
        json::format_double(c.scale_factor), " but its share fell ",
        decision.gpu_items, " -> ", scaled.gpu_items, " items");

  const glinda::PartitionMetrics metrics = derive_metrics(c.estimate);
  if (!(metrics.relative_capability > 0.0))
    add(out, kOracle, "relative capability R must be positive, got ",
        json::format_double(metrics.relative_capability));
  if (metrics.compute_transfer_gap < 0.0)
    add(out, kOracle, "compute/transfer gap G must be >= 0, got ",
        json::format_double(metrics.compute_transfer_gap));
}

void check_multi_partition(const FuzzCase& c, std::vector<Violation>& out) {
  constexpr const char* kOracle = "multi-partition-model";
  const glinda::PartitionOptions options;
  const std::int64_t n = c.model_items;

  glinda::MultiDeviceEstimate two;
  two.devices = {c.estimate.cpu, c.estimate.gpu};
  two.link_bytes_per_second = c.estimate.link_bytes_per_second;
  two.transfer_on_critical_path = c.estimate.transfer_on_critical_path;

  // N=2 regression wall: the vector entry point must delegate to the
  // scalar closed-form solver bit for bit — same items, same predicted
  // seconds, no numerical luck involved.
  const glinda::PartitionDecision scalar =
      glinda::PartitionModel(options).solve(c.estimate, n);
  const glinda::MultiPartitionDecision vec =
      glinda::solve_multi_partition(two, n, options);
  if (vec.items_per_device.size() != 2 ||
      vec.items_per_device[0] != scalar.cpu_items ||
      vec.items_per_device[1] != scalar.gpu_items)
    add(out, kOracle, "N=2 split diverges from the scalar solver: cpu ",
        vec.items_per_device.empty() ? -1 : vec.items_per_device[0], " vs ",
        scalar.cpu_items, ", accelerator ",
        vec.items_per_device.size() < 2 ? -1 : vec.items_per_device[1],
        " vs ", scalar.gpu_items);
  double scalar_predicted = scalar.predicted_partition_seconds;
  if (scalar.config == glinda::HardwareConfig::kOnlyCpu)
    scalar_predicted = scalar.predicted_cpu_seconds;
  if (scalar.config == glinda::HardwareConfig::kOnlyGpu)
    scalar_predicted = scalar.predicted_gpu_seconds;
  if (vec.predicted_seconds != scalar_predicted)
    add(out, kOracle, "N=2 predicted seconds diverge from the scalar ",
        "solver: ", json::format_double(vec.predicted_seconds), " vs ",
        json::format_double(scalar_predicted));

  // Three devices: the second accelerator is a strictly faster clone of
  // the first (same transfers, per-item cost / scale_factor).
  glinda::MultiDeviceEstimate three = two;
  glinda::DeviceProfile faster_clone = c.estimate.gpu;
  faster_clone.seconds_per_item /= c.scale_factor;
  three.devices.push_back(faster_clone);
  const glinda::MultiPartitionDecision multi =
      glinda::solve_multi_partition(three, n, options);

  std::int64_t total = 0;
  for (std::size_t d = 0; d < multi.items_per_device.size(); ++d) {
    if (multi.items_per_device[d] < 0)
      add(out, kOracle, "vector solve gave device ", d, " a negative ",
          "share: ", multi.items_per_device[d]);
    total += multi.items_per_device[d];
  }
  if (total != n)
    add(out, kOracle, "vector split loses items: ", total, " != ", n);
  if (!std::isfinite(multi.predicted_seconds) ||
      multi.predicted_seconds <= 0.0)
    add(out, kOracle, "vector predicted seconds not finite-positive: ",
        json::format_double(multi.predicted_seconds));

  // Shared-link bound: the makespan can never beat the total time the one
  // host link spends moving the accelerators' slabs.
  double link_seconds = 0.0;
  for (std::size_t d = 0; d < multi.items_per_device.size(); ++d)
    link_seconds += static_cast<double>(multi.items_per_device[d]) *
                    three.transfer_seconds_per_item(d);
  if (multi.predicted_seconds +
          1e-9 * (1.0 + multi.predicted_seconds) <
      link_seconds)
    add(out, kOracle, "predicted makespan ",
        json::format_double(multi.predicted_seconds),
        " beats the shared-link occupancy ",
        json::format_double(link_seconds));

  // The prediction must replay through the model's own predictor.
  const double replayed = glinda::MultiPartitionModel(options).predict_seconds(
      three, multi.items_per_device);
  if (replayed != multi.predicted_seconds)
    add(out, kOracle, "vector predicted seconds ",
        json::format_double(multi.predicted_seconds),
        " do not replay through predict_seconds (",
        json::format_double(replayed), ")");

  // Faster-clone dominance: device 2 beats device 1 in everything, so its
  // slab can only be smaller by the sequential granularity rounding /
  // final-clamp discretization (bounded by two granules).
  const std::int64_t slack = 2 * options.gpu_granularity + 2;
  if (multi.items_per_device[2] + slack < multi.items_per_device[1])
    add(out, kOracle, "device 2 is a x",
        json::format_double(c.scale_factor),
        " faster clone of device 1 but received fewer items: ",
        multi.items_per_device[2], " vs ", multi.items_per_device[1]);
}

sweep::SweepEngine plain_engine(const rt::ExploreSpec& explore) {
  sweep::SweepOptions options;
  options.parallel = false;
  options.use_cache = false;
  options.record_trace = false;
  options.explore = explore;
  return sweep::SweepEngine(options);
}

/// Shared body of run_oracles / run_schedule_oracles. With
/// `schedule_subset`, only the schedule-sensitive oracles run (the pure
/// analyzer/model oracles and the cache/trace transparency oracles see the
/// same answer on every interleaving).
std::vector<Violation> run_impl(const FuzzCase& c, const std::string& only,
                                const rt::ExploreSpec& explore,
                                bool schedule_subset) {
  if (!only.empty()) {
    const std::vector<std::string>& names = oracle_names();
    HS_REQUIRE(std::find(names.begin(), names.end(), only) != names.end(),
               "unknown oracle '" << only << "'");
  }
  std::vector<Violation> out;

  // The serve oracle is opt-in (a daemon round-trip per case): it runs
  // only when explicitly named, never as part of the default library.
  if (only == "cache-transparency-serve") {
    check_serve_transparency(c, out);
    return out;
  }

  // Pure oracles first: no simulation involved.
  if (!schedule_subset) {
    if (want(only, "ranking-relations")) check_ranking(c, out);
    if (want(only, "dag-profile")) check_dag_profile(c, out);
    if (want(only, "partition-model")) check_partition(c, out);
    if (want(only, "multi-partition-model")) check_multi_partition(c, out);
  }

  const bool need_execution =
      want(only, "no-unexpected-failure") ||
      want(only, "work-conservation") ||
      want(only, "report-consistency") || want(only, "determinism") ||
      want(only, "dag-linearization") ||
      (!schedule_subset && (want(only, "cache-transparency") ||
                            want(only, "trace-validity")));
  if (!need_execution) return out;

  const sweep::SweepEngine engine = plain_engine(explore);
  const sweep::ScenarioOutcome base = engine.compute(c.scenario);

  if (want(only, "no-unexpected-failure") &&
      base.status == sweep::ScenarioStatus::kFailed)
    add(out, "no-unexpected-failure", "scenario ", c.scenario.label(),
        " failed: ", base.error);

  if (want(only, "determinism")) {
    const sweep::ScenarioOutcome again = engine.compute(c.scenario);
    if (base.to_payload() != again.to_payload())
      add(out, "determinism", "two computations of ", c.scenario.label(),
          " produced different payloads");
  }

  if (!base.ok()) return out;  // execution substrate oracles need a report

  // The planted mutation corrupts a COPY of the outcome; conservation,
  // consistency, and linearization run over the corrupted substrate (and
  // must object), while the transparency/trace oracles keep comparing
  // genuine computations.
  sweep::ScenarioOutcome subject = base;
  apply_mutation(subject, c.mutation);
  if (want(only, "work-conservation")) check_conservation(c, subject, out);
  if (want(only, "report-consistency")) check_consistency(subject, out);
  if (want(only, "dag-linearization")) check_linearization(subject, out);

  if (schedule_subset) return out;

  if (want(only, "cache-transparency")) {
    const std::string payload = base.to_payload();
    const std::string round_trip =
        sweep::ScenarioOutcome::from_payload(payload).to_payload();
    if (round_trip != payload)
      add(out, "cache-transparency",
          "payload round-trip is not byte-identical for ",
          c.scenario.label());
    const sweep::SweepRun memoized =
        engine.run({c.scenario, c.scenario});
    for (std::size_t i = 0; i < memoized.outcomes.size(); ++i)
      if (memoized.outcomes[i].to_payload() != payload)
        add(out, "cache-transparency", "run() outcome #", i, " of ",
            c.scenario.label(),
            " differs from the standalone computation");
    if (memoized.summary.scenario_dedup_hits != 1)
      add(out, "cache-transparency",
          "duplicate scenario was not served by the in-run memo (",
          memoized.summary.scenario_dedup_hits, " dedup hits)");
  }

  if (want(only, "trace-validity")) {
    sweep::SweepOptions traced_options;
    traced_options.parallel = false;
    traced_options.record_trace = true;
    traced_options.explore = explore;
    const sweep::ScenarioOutcome traced =
        sweep::SweepEngine(traced_options).compute(c.scenario);
    for (const std::string& violation : traced.trace_violations)
      add(out, "trace-validity", violation);
    if (traced.trace_json.empty())
      add(out, "trace-validity", "traced run recorded no timeline for ",
          c.scenario.label());
    // Tracing is observation: stripped of the recording itself, a traced
    // run's canonical payload must match the untraced one byte for byte.
    sweep::ScenarioOutcome stripped = traced;
    stripped.trace_json.clear();
    stripped.trace_violations.clear();
    if (stripped.to_payload() != base.to_payload())
      add(out, "trace-validity",
          "recording a trace changed the canonical payload of ",
          c.scenario.label());
  }

  return out;
}

}  // namespace

const std::vector<std::string>& oracle_names() {
  // Append-only: the first nine names are pinned by tests and repro files.
  static const std::vector<std::string> kNames = {
      "no-unexpected-failure", "work-conservation",  "report-consistency",
      "determinism",           "cache-transparency", "trace-validity",
      "ranking-relations",     "dag-profile",        "partition-model",
      "dag-linearization",     "cache-transparency-serve",
      "multi-partition-model",
  };
  return kNames;
}

std::vector<Violation> run_oracles(const FuzzCase& c, const std::string& only,
                                   const rt::ExploreSpec& explore) {
  return run_impl(c, only, explore, /*schedule_subset=*/false);
}

std::vector<Violation> run_schedule_oracles(const FuzzCase& c,
                                            const rt::ExploreSpec& explore) {
  return run_impl(c, std::string(), explore, /*schedule_subset=*/true);
}

}  // namespace hetsched::check
