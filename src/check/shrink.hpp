#pragma once

#include <string>
#include <vector>

#include "check/gen.hpp"
#include "check/oracles.hpp"

/// Counterexample shrinking: reduce a failing FuzzCase to a minimal one
/// that still trips the SAME oracle. The shrinker applies an ordered list
/// of simplifying transforms (drop the fault plan, fall back to the
/// reference platform, halve the kernel graph, straighten the flow into a
/// chain, ...) and keeps a transform's result only when the failure
/// persists, looping to a fixpoint. Deterministic: equal inputs shrink to
/// equal minimal cases.
namespace hetsched::check {

struct ShrinkResult {
  FuzzCase minimal;
  /// Transforms accepted (in application order, names for the report).
  std::vector<std::string> applied;
  /// Oracle re-evaluations spent shrinking.
  int evaluations = 0;
};

/// Shrinks `failing` against oracle `oracle` (one of oracle_names()). The
/// caller guarantees `failing` currently violates it. `max_evaluations`
/// bounds the oracle re-runs (each one may simulate).
ShrinkResult shrink_case(const FuzzCase& failing, const std::string& oracle,
                         int max_evaluations = 64);

/// The transform names in application order (exposed for docs and tests).
const std::vector<std::string>& shrink_transform_names();

}  // namespace hetsched::check
