#pragma once

#include <string>
#include <vector>

#include "check/gen.hpp"
#include "check/oracles.hpp"

/// Counterexample shrinking: reduce a failing FuzzCase to a minimal one
/// that still trips the SAME oracle. The shrinker applies an ordered list
/// of simplifying transforms (drop the fault plan, fall back to the
/// reference platform, halve the kernel graph, straighten the flow into a
/// chain, ...) and keeps a transform's result only when the failure
/// persists, looping to a fixpoint. Deterministic: equal inputs shrink to
/// equal minimal cases.
namespace hetsched::check {

struct ShrinkResult {
  FuzzCase minimal;
  /// The (possibly shrunk) schedule-replay spec the minimal case fails
  /// under. Equal to the input spec when exploration was not involved.
  rt::ExploreSpec explore;
  /// Transforms accepted (in application order, names for the report).
  std::vector<std::string> applied;
  /// Oracle re-evaluations spent shrinking.
  int evaluations = 0;
};

/// Shrinks `failing` against oracle `oracle` (one of oracle_names()). The
/// caller guarantees `failing` currently violates it (under `explore`,
/// when active). `max_evaluations` bounds the oracle re-runs (each one may
/// simulate). When `explore` replays a recorded decision string, the
/// shrinker doubles as a round minimizor: the decision string shrinks in
/// the same fixpoint loop as the scenario (clear, halve from the tail,
/// drop the last decision), so the repro is minimal in BOTH the case and
/// the schedule.
ShrinkResult shrink_case(const FuzzCase& failing, const std::string& oracle,
                         const rt::ExploreSpec& explore = rt::ExploreSpec{},
                         int max_evaluations = 64);

/// The case-transform names in application order (exposed for docs and
/// tests). Decision-string transforms are listed separately — they act on
/// the replay spec, not the case.
const std::vector<std::string>& shrink_transform_names();

/// The decision-string transform names in application order.
const std::vector<std::string>& decision_shrink_transform_names();

}  // namespace hetsched::check
