#include "check/shrink.hpp"

#include <functional>
#include <utility>

#include "analyzer/strategy.hpp"
#include "apps/registry.hpp"

namespace hetsched::check {

namespace {

struct Transform {
  const char* name;
  /// Returns true when it changed the case (false = not applicable).
  std::function<bool(FuzzCase&)> apply;
};

/// Ordered biggest-win-first: faults and platform dominate scenario
/// complexity; the structure transforms bring the repro to <= 2 kernels;
/// the estimate transforms strip the partition-model input down to bare
/// per-item costs.
const std::vector<Transform>& transforms() {
  static const std::vector<Transform> kTransforms = {
      {"drop-fault",
       [](FuzzCase& c) {
         if (c.scenario.fault_plan.empty()) return false;
         c.scenario.fault_plan.clear();
         c.scenario.fault_seed = 0;
         return true;
       }},
      {"reference-platform",
       [](FuzzCase& c) {
         if (c.scenario.platform == "reference") return false;
         c.scenario.platform = "reference";
         return true;
       }},
      {"drop-scenario-sync",
       [](FuzzCase& c) {
         return std::exchange(c.scenario.sync, false);
       }},
      {"matrixmul-app",
       [](FuzzCase& c) {
         if (c.scenario.app == apps::PaperApp::kMatrixMul) return false;
         c.scenario.app = apps::PaperApp::kMatrixMul;
         return true;
       }},
      {"only-cpu-strategy",
       [](FuzzCase& c) {
         if (c.scenario.strategy == analyzer::StrategyKind::kOnlyCpu)
           return false;
         c.scenario.strategy = analyzer::StrategyKind::kOnlyCpu;
         return true;
       }},
      {"two-chunks",
       [](FuzzCase& c) {
         if (c.scenario.task_count <= 2) return false;
         c.scenario.task_count = 2;
         return true;
       }},
      {"halve-kernels",
       [](FuzzCase& c) {
         analyzer::KernelGraph& graph = c.structure.structure;
         const std::size_t count = graph.kernel_count();
         if (count <= 1) return false;
         const std::size_t keep = (count + 1) / 2;
         graph.kernels.resize(keep);
         std::vector<std::pair<std::size_t, std::size_t>> flow;
         for (const auto& [from, to] : graph.flow)
           if (from < keep && to < keep) flow.emplace_back(from, to);
         graph.flow = std::move(flow);
         return true;
       }},
      {"chain-flow",
       [](FuzzCase& c) {
         analyzer::KernelGraph& graph = c.structure.structure;
         if (graph.kernel_count() <= 1) return false;
         std::vector<std::pair<std::size_t, std::size_t>> chain;
         for (std::size_t k = 0; k + 1 < graph.kernel_count(); ++k)
           chain.emplace_back(k, k + 1);
         if (graph.flow == chain) return false;
         graph.flow = std::move(chain);
         return true;
       }},
      {"drop-main-loop",
       [](FuzzCase& c) {
         return std::exchange(c.structure.structure.main_loop, false);
       }},
      {"drop-inner-loops",
       [](FuzzCase& c) {
         bool changed = false;
         for (analyzer::KernelNode& kernel : c.structure.structure.kernels)
           changed |= std::exchange(kernel.inner_loop, false);
         return changed;
       }},
      {"drop-structure-sync",
       [](FuzzCase& c) {
         if (c.structure.sync == analyzer::SyncReason::kNone) return false;
         c.structure.sync = analyzer::SyncReason::kNone;
         return true;
       }},
      {"zero-fixed-costs",
       [](FuzzCase& c) {
         bool changed = false;
         for (glinda::DeviceProfile* profile :
              {&c.estimate.cpu, &c.estimate.gpu}) {
           changed |= profile->fixed_seconds != 0.0;
           changed |= profile->h2d_fixed_bytes != 0.0;
           changed |= profile->d2h_fixed_bytes != 0.0;
           profile->fixed_seconds = 0.0;
           profile->h2d_fixed_bytes = 0.0;
           profile->d2h_fixed_bytes = 0.0;
         }
         return changed;
       }},
      {"drop-transfer-path",
       [](FuzzCase& c) {
         return std::exchange(c.estimate.transfer_on_critical_path, false);
       }},
      {"shrink-model-items",
       [](FuzzCase& c) {
         if (c.model_items <= 256) return false;
         c.model_items = 256;
         return true;
       }},
  };
  return kTransforms;
}

/// Decision-string minimization (the round minimizor): a replayed schedule
/// shrinks from the back — the replay strategy takes choice 0 beyond the
/// end of the string, so truncation degrades gracefully toward the
/// canonical schedule instead of producing garbage. Ordered biggest-win
/// first, like the case transforms.
struct DecisionTransform {
  const char* name;
  std::function<bool(rt::ExploreSpec&)> apply;
};

const std::vector<DecisionTransform>& decision_transforms() {
  static const std::vector<DecisionTransform> kTransforms = {
      {"clear-decisions",
       [](rt::ExploreSpec& spec) {
         if (spec.decisions.empty()) return false;
         spec.decisions.clear();
         return true;
       }},
      {"drop-tail-half",
       [](rt::ExploreSpec& spec) {
         if (spec.decisions.size() < 2) return false;
         spec.decisions.resize(spec.decisions.size() / 2);
         return true;
       }},
      {"drop-last-decision",
       [](rt::ExploreSpec& spec) {
         if (spec.decisions.empty()) return false;
         spec.decisions.pop_back();
         return true;
       }},
  };
  return kTransforms;
}

}  // namespace

const std::vector<std::string>& shrink_transform_names() {
  static const std::vector<std::string> kNames = [] {
    std::vector<std::string> names;
    for (const Transform& transform : transforms())
      names.push_back(transform.name);
    return names;
  }();
  return kNames;
}

const std::vector<std::string>& decision_shrink_transform_names() {
  static const std::vector<std::string> kNames = [] {
    std::vector<std::string> names;
    for (const DecisionTransform& transform : decision_transforms())
      names.push_back(transform.name);
    return names;
  }();
  return kNames;
}

ShrinkResult shrink_case(const FuzzCase& failing, const std::string& oracle,
                         const rt::ExploreSpec& explore,
                         int max_evaluations) {
  ShrinkResult result;
  result.minimal = failing;
  result.explore = explore;

  const auto still_fails = [&](const FuzzCase& candidate,
                               const rt::ExploreSpec& spec) {
    ++result.evaluations;
    try {
      return !run_oracles(candidate, oracle, spec).empty();
    } catch (const std::exception&) {
      // A transform that makes the oracle itself inapplicable (e.g. a
      // mutation with nothing left to corrupt) did not preserve the
      // failure — reject it.
      return false;
    }
  };

  // Fixpoint: retry the whole transform list until a full pass accepts
  // nothing (an early transform may become applicable again after a later
  // one, e.g. halve-kernels repeats until one kernel remains). Decision
  // transforms participate in the same loop: shrinking the case can strip
  // decision sites, making further schedule truncation acceptable.
  const bool shrink_decisions =
      explore.mode == rt::ExploreMode::kReplay;
  bool progressed = true;
  while (progressed && result.evaluations < max_evaluations) {
    progressed = false;
    for (const Transform& transform : transforms()) {
      if (result.evaluations >= max_evaluations) break;
      FuzzCase candidate = result.minimal;
      if (!transform.apply(candidate)) continue;
      if (!still_fails(candidate, result.explore)) continue;
      result.minimal = std::move(candidate);
      result.applied.push_back(transform.name);
      progressed = true;
    }
    if (!shrink_decisions) continue;
    for (const DecisionTransform& transform : decision_transforms()) {
      if (result.evaluations >= max_evaluations) break;
      rt::ExploreSpec candidate = result.explore;
      if (!transform.apply(candidate)) continue;
      if (!still_fails(result.minimal, candidate)) continue;
      result.explore = std::move(candidate);
      result.applied.push_back(transform.name);
      progressed = true;
    }
  }
  return result;
}

}  // namespace hetsched::check
