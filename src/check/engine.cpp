#include "check/engine.hpp"

#include <cctype>
#include <sstream>

#include "sweep/sweep.hpp"

namespace hetsched::check {

json::Value Counterexample::to_json() const {
  json::Value transforms{json::Value::Array{}};
  for (const std::string& name : shrink_transforms)
    transforms.push_back(json::Value(name));
  json::Value value;
  value.set("version", json::Value(kCheckVersion));
  value.set("seed", json::Value(std::to_string(original.seed)));
  value.set("oracle", json::Value(violation.oracle));
  value.set("detail", json::Value(violation.detail));
  value.set("case", minimal.to_json());
  value.set("original_case", original.to_json());
  value.set("shrink_transforms", std::move(transforms));
  value.set("shrink_evaluations", json::Value(shrink_evaluations));
  // Only explored failures carry a replay spec; canonical repro files keep
  // their pre-exploration shape byte for byte.
  if (explore.active()) value.set("explore", explore.to_json());
  return value;
}

Counterexample Counterexample::from_json(const json::Value& value) {
  Counterexample out;
  out.minimal = FuzzCase::from_json(value.at("case"));
  out.original = FuzzCase::from_json(value.at("original_case"));
  out.violation.oracle = value.at("oracle").as_string();
  out.violation.detail = value.at("detail").as_string();
  for (const json::Value& name :
       value.at("shrink_transforms").as_array())
    out.shrink_transforms.push_back(name.as_string());
  out.shrink_evaluations =
      static_cast<int>(value.at("shrink_evaluations").as_int64());
  if (const json::Value* explore = value.find("explore"))
    out.explore = rt::ExploreSpec::from_json(*explore);
  return out;
}

std::string FuzzResult::render() const {
  std::ostringstream os;
  for (const Counterexample& cx : counterexamples) {
    os << "COUNTEREXAMPLE seed=" << cx.original.seed
       << " oracle=" << cx.violation.oracle << "\n";
    os << "  detail: " << cx.violation.detail << "\n";
    os << "  original: " << cx.original.describe() << "\n";
    os << "  minimal:  " << cx.minimal.describe() << "\n";
    if (cx.explore.active()) {
      os << "  schedule: explored #" << cx.explore.schedule
         << ", replay decisions=[";
      for (std::size_t i = 0; i < cx.explore.decisions.size(); ++i)
        os << (i == 0 ? "" : " ") << cx.explore.decisions[i];
      os << "]\n";
    }
    if (!cx.shrink_transforms.empty()) {
      os << "  shrunk via:";
      for (const std::string& name : cx.shrink_transforms)
        os << " " << name;
      os << " (" << cx.shrink_evaluations << " oracle evaluations)\n";
    }
    if (cx.explore.active()) {
      os << "  replay: hetsched_cli fuzz --repro <repro file> (the repro "
            "embeds the schedule replay spec)\n";
    } else {
      os << "  replay: hetsched_cli fuzz --seed " << cx.original.seed
         << " --iters 1\n";
    }
  }
  os << "fuzz: " << seeds_run.size() << " case"
     << (seeds_run.size() == 1 ? "" : "s") << " checked, ";
  if (clean()) {
    os << "all oracles passed\n";
  } else {
    os << counterexamples.size() << " counterexample"
       << (counterexamples.size() == 1 ? "" : "s") << " found\n";
  }
  return os.str();
}

namespace {

/// Re-runs the failing explored schedule once to harvest the decision
/// string it actually took, and folds it into a mode=replay spec — the
/// exact, seed-independent form of that interleaving, which the shrinker
/// then minimizes alongside the case.
rt::ExploreSpec harvest_replay_spec(const FuzzCase& c,
                                    const rt::ExploreSpec& failing) {
  rt::ExploreSpec replay;
  replay.mode = rt::ExploreMode::kReplay;
  replay.seed = failing.seed;
  replay.schedule = failing.schedule;
  replay.dfs_branch_bound = failing.dfs_branch_bound;
  sweep::SweepOptions options;
  options.parallel = false;
  options.explore = failing;
  const sweep::ScenarioOutcome outcome =
      sweep::SweepEngine(options).compute(c.scenario);
  if (!outcome.ok()) return replay;  // nothing recorded; replay canonically
  const json::Value report = json::Value::parse(outcome.report_json);
  if (const json::Value* schedule = report.find("schedule"))
    for (const json::Value& decision : schedule->at("decisions").as_array())
      replay.decisions.push_back(
          static_cast<std::uint32_t>(decision.as_int64()));
  return replay;
}

}  // namespace

FuzzResult run_fuzz(const FuzzOptions& options) {
  HS_REQUIRE(options.iters > 0 || !options.seeds.empty(),
             "fuzzing needs at least one iteration");
  HS_REQUIRE(options.schedules >= 1,
             "--schedules must be >= 1, got " << options.schedules);
  std::vector<std::uint64_t> seeds = options.seeds;
  if (seeds.empty()) {
    seeds.reserve(static_cast<std::size_t>(options.iters));
    for (int i = 0; i < options.iters; ++i)
      seeds.push_back(options.base_seed + static_cast<std::uint64_t>(i));
  }

  FuzzResult result;
  for (const std::uint64_t seed : seeds) {
    FuzzCase c = generate_case(seed);
    c.mutation = options.plant;
    result.seeds_run.push_back(seed);
    // Canonical schedule first, full oracle library.
    std::vector<Violation> violations = run_oracles(c);
    // Opt-in serve replay: the same case's query over the wire.
    if (violations.empty() && options.serve)
      violations = run_oracles(c, "cache-transparency-serve");
    // Fan the seed out into explored schedules; the first failing one wins.
    rt::ExploreSpec failing_spec;
    if (violations.empty() && options.explore != rt::ExploreMode::kNone) {
      for (int k = 0; k < options.schedules && violations.empty(); ++k) {
        rt::ExploreSpec spec;
        spec.mode = options.explore;
        spec.seed = seed;
        spec.schedule = k;
        violations = run_schedule_oracles(c, spec);
        if (!violations.empty()) failing_spec = spec;
      }
    }
    if (violations.empty()) continue;

    Counterexample cx;
    cx.original = c;
    cx.minimal = c;
    cx.violation = violations.front();
    if (failing_spec.active())
      cx.explore = harvest_replay_spec(c, failing_spec);
    if (options.shrink) {
      ShrinkResult shrunk = shrink_case(c, cx.violation.oracle, cx.explore);
      cx.minimal = std::move(shrunk.minimal);
      cx.explore = std::move(shrunk.explore);
      cx.shrink_transforms = std::move(shrunk.applied);
      cx.shrink_evaluations = shrunk.evaluations;
    }
    result.counterexamples.push_back(std::move(cx));
    break;  // first failure stops the run; later seeds replay individually
  }
  return result;
}

std::vector<Violation> replay_case(const FuzzCase& c,
                                   const rt::ExploreSpec& explore) {
  return run_oracles(c, std::string(), explore);
}

std::vector<std::uint64_t> parse_corpus(const std::string& text) {
  std::vector<std::uint64_t> seeds;
  std::istringstream lines(text);
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(lines, line)) {
    ++line_number;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::size_t begin = 0;
    while (begin < line.size() &&
           std::isspace(static_cast<unsigned char>(line[begin])))
      ++begin;
    std::size_t end = line.size();
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(line[end - 1])))
      --end;
    if (begin == end) continue;
    const std::string token = line.substr(begin, end - begin);
    try {
      for (char ch : token)
        HS_REQUIRE(std::isdigit(static_cast<unsigned char>(ch)),
                   "non-digit character");
      std::size_t consumed = 0;
      const std::uint64_t seed = std::stoull(token, &consumed);
      HS_REQUIRE(consumed == token.size(), "trailing characters");
      seeds.push_back(seed);
    } catch (const std::exception&) {
      throw InvalidArgument("corpus line " + std::to_string(line_number) +
                            ": '" + token + "' is not a decimal seed");
    }
  }
  return seeds;
}

}  // namespace hetsched::check
