#include "check/engine.hpp"

#include <cctype>
#include <sstream>

namespace hetsched::check {

json::Value Counterexample::to_json() const {
  json::Value transforms{json::Value::Array{}};
  for (const std::string& name : shrink_transforms)
    transforms.push_back(json::Value(name));
  json::Value value;
  value.set("version", json::Value(kCheckVersion));
  value.set("seed", json::Value(std::to_string(original.seed)));
  value.set("oracle", json::Value(violation.oracle));
  value.set("detail", json::Value(violation.detail));
  value.set("case", minimal.to_json());
  value.set("original_case", original.to_json());
  value.set("shrink_transforms", std::move(transforms));
  value.set("shrink_evaluations", json::Value(shrink_evaluations));
  return value;
}

Counterexample Counterexample::from_json(const json::Value& value) {
  Counterexample out;
  out.minimal = FuzzCase::from_json(value.at("case"));
  out.original = FuzzCase::from_json(value.at("original_case"));
  out.violation.oracle = value.at("oracle").as_string();
  out.violation.detail = value.at("detail").as_string();
  for (const json::Value& name :
       value.at("shrink_transforms").as_array())
    out.shrink_transforms.push_back(name.as_string());
  out.shrink_evaluations =
      static_cast<int>(value.at("shrink_evaluations").as_int64());
  return out;
}

std::string FuzzResult::render() const {
  std::ostringstream os;
  for (const Counterexample& cx : counterexamples) {
    os << "COUNTEREXAMPLE seed=" << cx.original.seed
       << " oracle=" << cx.violation.oracle << "\n";
    os << "  detail: " << cx.violation.detail << "\n";
    os << "  original: " << cx.original.describe() << "\n";
    os << "  minimal:  " << cx.minimal.describe() << "\n";
    if (!cx.shrink_transforms.empty()) {
      os << "  shrunk via:";
      for (const std::string& name : cx.shrink_transforms)
        os << " " << name;
      os << " (" << cx.shrink_evaluations << " oracle evaluations)\n";
    }
    os << "  replay: hetsched_cli fuzz --seed " << cx.original.seed
       << " --iters 1\n";
  }
  os << "fuzz: " << seeds_run.size() << " case"
     << (seeds_run.size() == 1 ? "" : "s") << " checked, ";
  if (clean()) {
    os << "all oracles passed\n";
  } else {
    os << counterexamples.size() << " counterexample"
       << (counterexamples.size() == 1 ? "" : "s") << " found\n";
  }
  return os.str();
}

FuzzResult run_fuzz(const FuzzOptions& options) {
  HS_REQUIRE(options.iters > 0 || !options.seeds.empty(),
             "fuzzing needs at least one iteration");
  std::vector<std::uint64_t> seeds = options.seeds;
  if (seeds.empty()) {
    seeds.reserve(static_cast<std::size_t>(options.iters));
    for (int i = 0; i < options.iters; ++i)
      seeds.push_back(options.base_seed + static_cast<std::uint64_t>(i));
  }

  FuzzResult result;
  for (const std::uint64_t seed : seeds) {
    FuzzCase c = generate_case(seed);
    c.mutation = options.plant;
    result.seeds_run.push_back(seed);
    const std::vector<Violation> violations = run_oracles(c);
    if (violations.empty()) continue;

    Counterexample cx;
    cx.original = c;
    cx.minimal = c;
    cx.violation = violations.front();
    if (options.shrink) {
      ShrinkResult shrunk = shrink_case(c, cx.violation.oracle);
      cx.minimal = std::move(shrunk.minimal);
      cx.shrink_transforms = std::move(shrunk.applied);
      cx.shrink_evaluations = shrunk.evaluations;
    }
    result.counterexamples.push_back(std::move(cx));
    break;  // first failure stops the run; later seeds replay individually
  }
  return result;
}

std::vector<Violation> replay_case(const FuzzCase& c) {
  return run_oracles(c);
}

std::vector<std::uint64_t> parse_corpus(const std::string& text) {
  std::vector<std::uint64_t> seeds;
  std::istringstream lines(text);
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(lines, line)) {
    ++line_number;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::size_t begin = 0;
    while (begin < line.size() &&
           std::isspace(static_cast<unsigned char>(line[begin])))
      ++begin;
    std::size_t end = line.size();
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(line[end - 1])))
      --end;
    if (begin == end) continue;
    const std::string token = line.substr(begin, end - begin);
    try {
      for (char ch : token)
        HS_REQUIRE(std::isdigit(static_cast<unsigned char>(ch)),
                   "non-digit character");
      std::size_t consumed = 0;
      const std::uint64_t seed = std::stoull(token, &consumed);
      HS_REQUIRE(consumed == token.size(), "trailing characters");
      seeds.push_back(seed);
    } catch (const std::exception&) {
      throw InvalidArgument("corpus line " + std::to_string(line_number) +
                            ": '" + token + "' is not a decimal seed");
    }
  }
  return seeds;
}

}  // namespace hetsched::check
