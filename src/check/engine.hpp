#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/gen.hpp"
#include "check/oracles.hpp"
#include "check/shrink.hpp"

/// The fuzz engine: drives seeds through generate_case -> run_oracles,
/// shrinks the first failure to a minimal counterexample, and renders a
/// deterministic report (no timestamps, no wall-clock — equal inputs
/// produce byte-identical output, which is itself one of the properties
/// the CLI smoke tests pin down).
namespace hetsched::check {

struct FuzzOptions {
  /// First seed; iteration i fuzzes seed base_seed + i, so a reported
  /// failing seed S replays exactly via --seed S --iters 1.
  std::uint64_t base_seed = 1;
  int iters = 1;
  /// Explicit seed list (corpus mode); non-empty overrides base/iters.
  std::vector<std::uint64_t> seeds;
  /// Shrink counterexamples to a minimal case (off = report raw).
  bool shrink = true;
  /// Planted mutation applied to every generated case (mutation-testing
  /// the oracles from the CLI; see known_mutations()).
  std::string plant;
  /// Schedule exploration: fan each seed out into `schedules` explored
  /// interleavings beyond the canonical run (see runtime/explore.hpp).
  /// The canonical run checks the full oracle library; each explored
  /// schedule checks the schedule-sensitive subset (run_schedule_oracles).
  rt::ExploreMode explore = rt::ExploreMode::kNone;
  /// Explored schedules per seed when `explore` is set (>= 1).
  int schedules = 1;
  /// Additionally replay each case's query through a loopback serve daemon
  /// (the opt-in cache-transparency-serve oracle; `fuzz --serve`). Off by
  /// default — it spins up a process-wide daemon and talks TCP.
  bool serve = false;
};

struct Counterexample {
  FuzzCase original;
  FuzzCase minimal;       ///< == original when shrinking is off
  Violation violation;    ///< first violation of the original case
  /// Replay spec of the failing schedule (inactive when the failure was on
  /// the canonical schedule): mode=replay with the recorded — and, after
  /// shrinking, minimized — decision string.
  rt::ExploreSpec explore;
  std::vector<std::string> shrink_transforms;
  int shrink_evaluations = 0;

  /// Replayable repro document ({version, seed, oracle, case}; explored
  /// failures add an "explore" member carrying the replay spec).
  json::Value to_json() const;
  static Counterexample from_json(const json::Value& value);
};

struct FuzzResult {
  std::vector<std::uint64_t> seeds_run;
  std::vector<Counterexample> counterexamples;  ///< engine stops at first

  bool clean() const { return counterexamples.empty(); }
  /// Deterministic multi-line report (ends with a newline).
  std::string render() const;
};

FuzzResult run_fuzz(const FuzzOptions& options);

/// Re-runs the oracles over a case loaded from a repro document and
/// returns its violations (empty = the repro no longer fails). Pass the
/// repro's replay spec to re-trip a failure found on an explored schedule.
std::vector<Violation> replay_case(
    const FuzzCase& c, const rt::ExploreSpec& explore = rt::ExploreSpec{});

/// Parses a seed-corpus text: one decimal seed per line, '#' starts a
/// comment, blank lines ignored. Throws InvalidArgument on junk.
std::vector<std::uint64_t> parse_corpus(const std::string& text);

}  // namespace hetsched::check
