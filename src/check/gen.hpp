#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analyzer/app_model.hpp"
#include "common/json.hpp"
#include "glinda/partition_model.hpp"
#include "sweep/scenario.hpp"

/// Seeded scenario generation for the property-fuzz engine (hs_check).
///
/// A FuzzCase is everything one fuzz iteration probes, drawn from a single
/// uint64 seed through hs::Rng so equal seeds yield byte-identical cases:
///   - an execution scenario (paper app x strategy x platform x sync x
///     chunking x optional fault plan) run through the sweep engine,
///   - a generated kernel-structure descriptor (random kernel count, flow
///     graph, loops, sync reason) for the analyzer/Table-I oracles,
///   - a generated Glinda kernel estimate + problem size for the
///     partition-model oracles.
/// Cases serialize to JSON (byte-stable) so a counterexample is a
/// replayable repro file, not just a seed.
namespace hetsched::check {

/// Bump when generation or case serialization changes meaning: old repro
/// files then fail loudly instead of replaying a different case.
/// hs-check-2: generation gained adversarial runtime-cost ratios, near-tie
/// device-throughput draws, and a fault-storm bias (schedule-exploration
/// axes); mutations gained the two schedule-record bugs.
/// hs-check-3: generation gained 2-4-device platforms (shipped
/// multi-accelerator presets plus the asymmetric-throughput synth-<seed>
/// family) and a per-device-fault "storm-all" bias; the original platform
/// and fault-plan draws were frozen onto constant lists so pre-widening
/// seeds keep their streams.
inline constexpr const char* kCheckVersion = "hs-check-3";

struct FuzzCase {
  std::uint64_t seed = 0;
  /// Execution probe. Always a small functional configuration — the fuzz
  /// corpus must stay cheap enough for CI.
  sweep::Scenario scenario;
  /// Generated application structure for the classification / ranking
  /// oracles (independent of `scenario`, which is limited to real apps).
  analyzer::AppDescriptor structure;
  /// Generated partition-model input for the metamorphic scaling oracle.
  glinda::KernelEstimate estimate;
  std::int64_t model_items = 1 << 16;
  /// GPU-throughput scaling factor (> 1) for the metamorphic check
  /// "a faster device never receives a smaller optimal share".
  double scale_factor = 2.0;
  /// Planted bug for mutation-testing the oracles ("" = none; see
  /// known_mutations()). Applied to the oracle substrate after the
  /// simulation, never to the simulation itself.
  std::string mutation;

  json::Value to_json() const;
  /// Throws InvalidArgument on malformed input or a version mismatch.
  static FuzzCase from_json(const json::Value& value);

  /// One-line human-readable summary (stable across runs).
  std::string describe() const;
};

/// Draws the complete case for `seed` (pure function of the seed).
FuzzCase generate_case(std::uint64_t seed);

/// The planted-bug mutations the oracles are mutation-tested against:
///   drop-items    one executed item vanishes from the report
///                 (work-conservation must catch it)
///   skew-time     metrics.time_ms drifts from the report makespan
///                 (report-consistency must catch it)
///   completion-before-pred
///                 a dependent task's completion is swapped before its
///                 predecessor's in the schedule record — the classic
///                 tie-break bug (dag-linearization must catch it);
///                 requires an explored run (schedule record present)
///   late-fault    an abandoned chunk resurfaces after the makespan in the
///                 schedule record — the late-fault bug (dag-linearization
///                 must catch it); requires an explored run
const std::vector<std::string>& known_mutations();

}  // namespace hetsched::check
