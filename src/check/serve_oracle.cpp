#include <memory>
#include <sstream>

#include "analyzer/strategy.hpp"
#include "apps/registry.hpp"
#include "check/oracles.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"

namespace hetsched::check {

namespace {

constexpr const char* kOracle = "cache-transparency-serve";

/// One process-wide loopback daemon shared by every fuzz iteration — the
/// oracle probes serving transparency, not daemon startup, and a fresh
/// Server per case would dominate the fuzz budget.
serve::Server& shared_daemon() {
  static serve::Server* daemon = [] {
    serve::ServeOptions options;
    options.workers = 2;
    auto* server = new serve::Server(options);  // lives for the process
    server->start();
    return server;
  }();
  return *daemon;
}

/// The query the case's scenario corresponds to. The op rotates by seed so
/// the corpus covers every served verb; analyze carries the scenario's own
/// strategy and chunk count.
serve::QueryRequest request_from(const FuzzCase& c) {
  serve::QueryRequest request;
  const std::vector<std::string>& ops = serve::served_ops();
  request.op = ops[static_cast<std::size_t>(c.seed) % ops.size()];
  request.app = apps::paper_app_id(c.scenario.app);
  request.platform = c.scenario.platform;
  request.sync = c.scenario.sync;
  request.small = true;  // the fuzz corpus must stay cheap
  if (request.op == "analyze") {
    request.strategy = analyzer::strategy_name(c.scenario.strategy);
    request.tasks = c.scenario.task_count;
    request.gantt = (c.seed & 8) != 0;
  }
  if (request.op == "explain") {
    request.tasks = c.scenario.task_count;
    request.json = (c.seed & 16) != 0;
  }
  return request;
}

}  // namespace

void check_serve_transparency(const FuzzCase& c,
                              std::vector<Violation>& out) {
  const serve::QueryRequest request = request_from(c);

  // The ground truth: what the offline verb would print (or that it would
  // fail — an inapplicable strategy/app pairing must fail identically over
  // the wire).
  std::string offline;
  bool offline_ok = true;
  try {
    offline = serve::answer(request);
  } catch (const Error&) {
    offline_ok = false;
  }

  serve::Server& daemon = shared_daemon();
  serve::QueryClient client("127.0.0.1", daemon.port());

  const serve::QueryResponse first = client.ask(request);
  const bool served_ok = first.status == serve::ResponseStatus::kOk;
  if (served_ok != offline_ok) {
    std::ostringstream os;
    os << "daemon " << (served_ok ? "answered" : "refused") << " op="
       << request.op << " app=" << request.app << " which offline "
       << (offline_ok ? "answers" : "refuses");
    out.push_back({kOracle, os.str()});
    return;
  }
  if (!offline_ok) return;  // both refuse: transparent failure

  if (first.output != offline) {
    std::ostringstream os;
    os << "served answer differs from the offline bytes for op="
       << request.op << " app=" << request.app << " (served "
       << first.output.size() << " bytes, offline " << offline.size()
       << ")";
    out.push_back({kOracle, os.str()});
  }

  // The repeat must be a cache hit AND still byte-identical — the shard
  // cache may never change what a query answers.
  const serve::QueryResponse second = client.ask(request);
  if (second.status != serve::ResponseStatus::kOk ||
      second.output != offline) {
    std::ostringstream os;
    os << "repeated query for op=" << request.op << " app=" << request.app
       << " changed its answer";
    out.push_back({kOracle, os.str()});
  }
  if (!second.cache_hit) {
    std::ostringstream os;
    os << "repeated query for op=" << request.op << " app=" << request.app
       << " was not served from the scenario cache";
    out.push_back({kOracle, os.str()});
  }
}

}  // namespace hetsched::check
