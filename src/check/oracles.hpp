#pragma once

#include <string>
#include <vector>

#include "check/gen.hpp"
#include "runtime/explore.hpp"

/// The invariant-oracle library of the property-fuzz engine.
///
/// Every oracle is a universally-quantified claim the paper or the runtime
/// contract makes — work conservation, trace physicality, memo/cache
/// transparency, the Table-I/Proposition ranking relations, partition-model
/// monotonicity — checked against one generated FuzzCase. Oracles return
/// violations instead of throwing so a single case can surface several
/// independent failures and the engine can keep fuzzing other seeds.
namespace hetsched::check {

struct Violation {
  std::string oracle;  ///< entry of oracle_names()
  std::string detail;  ///< human-readable description of the failure
};

/// Stable oracle identifiers, in evaluation order:
///   no-unexpected-failure  simulation never raises a non-InvalidArgument
///   work-conservation      items in == items completed (+ DNF'd deficit)
///   report-consistency     flattened metrics agree with the full report
///   determinism            same scenario twice -> byte-identical payload
///   cache-transparency     memo/dedup/payload round-trip preserve bytes
///   trace-validity         recorded timeline passes obs::validate_trace
///                          and tracing never changes results
///   ranking-relations      Table I + Propositions 1-3 + metamorphic class
///                          relations on the generated structure
///   dag-profile            DagProfile internal arithmetic invariants
///   partition-model        split sums to n, optimality bound, and beta
///                          monotonicity under GPU speedup
///   dag-linearization      an explored run's completion order is a
///                          linearization of the dependency DAG, no task
///                          completes before a predecessor, and no
///                          abandoned chunk resurfaces after the makespan
///                          (trivially true for unexplored runs, which
///                          record no schedule)
///   cache-transparency-serve
///                          opt-in (runs only when named via `only`, i.e.
///                          `fuzz --serve`): replays the case's query
///                          through a loopback serve daemon and asserts
///                          the response is byte-identical to the offline
///                          answer, and that the repeat is a cache hit
///                          with unchanged bytes
///   multi-partition-model  the vector solver: N=2 delegates to the scalar
///                          solver bit for bit, vector splits conserve
///                          items, the makespan respects the shared-link
///                          occupancy bound, predictions replay, and a
///                          faster clone device never receives a
///                          meaningfully smaller slab
const std::vector<std::string>& oracle_names();

/// The serve-daemon transparency oracle (see above). Probes one shared
/// process-wide loopback daemon; defined in serve_oracle.cpp.
void check_serve_transparency(const FuzzCase& c,
                              std::vector<Violation>& out);

/// Runs the oracle library over `c`. When `only` is non-empty, runs just
/// that oracle (the shrinker's still-fails predicate) — unknown names
/// throw InvalidArgument. A case whose scenario is kInapplicable skips the
/// execution oracles (an inapplicable strategy/app pairing is an expected
/// sweep outcome, not a bug). When `explore` is active, every simulated
/// execution runs under that schedule-exploration spec (see
/// runtime/explore.hpp) and the report carries the schedule record the
/// dag-linearization oracle checks.
std::vector<Violation> run_oracles(
    const FuzzCase& c, const std::string& only = std::string(),
    const rt::ExploreSpec& explore = rt::ExploreSpec{});

/// The schedule-sensitive oracle subset, run under `explore`:
/// no-unexpected-failure, work-conservation, report-consistency,
/// determinism, and dag-linearization. This is what the fuzz engine runs
/// on each explored schedule beyond the canonical one — the pure oracles
/// and the cache/trace transparency oracles do not depend on the
/// interleaving, so re-running them per schedule would only burn CI time.
std::vector<Violation> run_schedule_oracles(const FuzzCase& c,
                                            const rt::ExploreSpec& explore);

}  // namespace hetsched::check
