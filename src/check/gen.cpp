#include "check/gen.hpp"

#include <cmath>
#include <sstream>

#include "analyzer/strategy.hpp"
#include "apps/registry.hpp"
#include "common/rng.hpp"
#include "faults/fault_plan.hpp"
#include "hw/platform.hpp"

namespace hetsched::check {

namespace {

const char* sync_reason_id(analyzer::SyncReason reason) {
  switch (reason) {
    case analyzer::SyncReason::kNone: return "none";
    case analyzer::SyncReason::kHostPostProcessing:
      return "host-post-processing";
    case analyzer::SyncReason::kRepartitioning: return "repartitioning";
  }
  return "none";
}

analyzer::SyncReason sync_reason_from_id(const std::string& id) {
  if (id == "none") return analyzer::SyncReason::kNone;
  if (id == "host-post-processing")
    return analyzer::SyncReason::kHostPostProcessing;
  if (id == "repartitioning") return analyzer::SyncReason::kRepartitioning;
  throw InvalidArgument("unknown sync reason '" + id + "'");
}

json::Value structure_to_json(const analyzer::AppDescriptor& descriptor) {
  json::Value kernels{json::Value::Array{}};
  for (const analyzer::KernelNode& kernel : descriptor.structure.kernels) {
    json::Value node;
    node.set("name", json::Value(kernel.name));
    node.set("inner_loop", json::Value(kernel.inner_loop));
    kernels.push_back(std::move(node));
  }
  json::Value flow{json::Value::Array{}};
  for (const auto& [from, to] : descriptor.structure.flow) {
    json::Value edge{json::Value::Array{}};
    edge.push_back(json::Value(static_cast<std::int64_t>(from)));
    edge.push_back(json::Value(static_cast<std::int64_t>(to)));
    flow.push_back(std::move(edge));
  }
  json::Value value;
  value.set("name", json::Value(descriptor.name));
  value.set("kernels", std::move(kernels));
  value.set("flow", std::move(flow));
  value.set("main_loop", json::Value(descriptor.structure.main_loop));
  value.set("sync", json::Value(sync_reason_id(descriptor.sync)));
  return value;
}

analyzer::AppDescriptor structure_from_json(const json::Value& value) {
  analyzer::AppDescriptor descriptor;
  descriptor.name = value.at("name").as_string();
  for (const json::Value& node : value.at("kernels").as_array()) {
    descriptor.structure.kernels.push_back(
        {node.at("name").as_string(), node.at("inner_loop").as_bool()});
  }
  for (const json::Value& edge : value.at("flow").as_array()) {
    const json::Value::Array& pair = edge.as_array();
    HS_REQUIRE(pair.size() == 2, "flow edge must be a [from, to] pair");
    descriptor.structure.flow.emplace_back(
        static_cast<std::size_t>(pair[0].as_int64()),
        static_cast<std::size_t>(pair[1].as_int64()));
  }
  descriptor.structure.main_loop = value.at("main_loop").as_bool();
  descriptor.sync = sync_reason_from_id(value.at("sync").as_string());
  descriptor.structure.validate();
  return descriptor;
}

json::Value estimate_to_json(const glinda::KernelEstimate& estimate) {
  const auto profile_json = [](const glinda::DeviceProfile& profile) {
    json::Value value;
    value.set("seconds_per_item", json::Value(profile.seconds_per_item));
    value.set("fixed_seconds", json::Value(profile.fixed_seconds));
    value.set("h2d_bytes_per_item", json::Value(profile.h2d_bytes_per_item));
    value.set("d2h_bytes_per_item", json::Value(profile.d2h_bytes_per_item));
    value.set("h2d_fixed_bytes", json::Value(profile.h2d_fixed_bytes));
    value.set("d2h_fixed_bytes", json::Value(profile.d2h_fixed_bytes));
    return value;
  };
  json::Value value;
  value.set("cpu", profile_json(estimate.cpu));
  value.set("gpu", profile_json(estimate.gpu));
  value.set("link_bytes_per_second",
            json::Value(estimate.link_bytes_per_second));
  value.set("transfer_on_critical_path",
            json::Value(estimate.transfer_on_critical_path));
  return value;
}

glinda::KernelEstimate estimate_from_json(const json::Value& value) {
  const auto profile_from = [](const json::Value& profile) {
    glinda::DeviceProfile out;
    out.seconds_per_item = profile.at("seconds_per_item").as_number();
    out.fixed_seconds = profile.at("fixed_seconds").as_number();
    out.h2d_bytes_per_item = profile.at("h2d_bytes_per_item").as_number();
    out.d2h_bytes_per_item = profile.at("d2h_bytes_per_item").as_number();
    out.h2d_fixed_bytes = profile.at("h2d_fixed_bytes").as_number();
    out.d2h_fixed_bytes = profile.at("d2h_fixed_bytes").as_number();
    return out;
  };
  glinda::KernelEstimate estimate;
  estimate.cpu = profile_from(value.at("cpu"));
  estimate.gpu = profile_from(value.at("gpu"));
  estimate.link_bytes_per_second =
      value.at("link_bytes_per_second").as_number();
  estimate.transfer_on_critical_path =
      value.at("transfer_on_critical_path").as_bool();
  return estimate;
}

}  // namespace

json::Value FuzzCase::to_json() const {
  json::Value value;
  value.set("version", json::Value(kCheckVersion));
  // The seed is a full uint64; a JSON number (double) only round-trips 53
  // bits, so it travels as a decimal string.
  value.set("seed", json::Value(std::to_string(seed)));
  value.set("scenario", scenario.to_json());
  value.set("structure", structure_to_json(structure));
  value.set("estimate", estimate_to_json(estimate));
  value.set("model_items", json::Value(model_items));
  value.set("scale_factor", json::Value(scale_factor));
  value.set("mutation", json::Value(mutation));
  return value;
}

FuzzCase FuzzCase::from_json(const json::Value& value) {
  const std::string version = value.at("version").as_string();
  HS_REQUIRE(version == kCheckVersion,
             "repro written by '" << version << "', this build is '"
                                  << kCheckVersion
                                  << "' — regenerate from the seed");
  FuzzCase out;
  try {
    out.seed = std::stoull(value.at("seed").as_string());
  } catch (const std::exception&) {
    throw InvalidArgument("repro seed is not a decimal uint64");
  }
  out.scenario = sweep::Scenario::from_json(value.at("scenario"));
  out.structure = structure_from_json(value.at("structure"));
  out.estimate = estimate_from_json(value.at("estimate"));
  out.model_items = value.at("model_items").as_int64();
  HS_REQUIRE(out.model_items > 0, "model_items must be positive");
  out.scale_factor = value.at("scale_factor").as_number();
  HS_REQUIRE(out.scale_factor > 1.0, "scale_factor must exceed 1");
  out.mutation = value.at("mutation").as_string();
  return out;
}

std::string FuzzCase::describe() const {
  std::ostringstream os;
  os << "seed=" << seed << " scenario=" << scenario.label() << " structure="
     << structure.structure.kernel_count() << "-kernel/"
     << analyzer::app_class_name(analyzer::classify(structure.structure));
  if (structure.inter_kernel_sync()) os << "+sync";
  os << " model_items=" << model_items;
  if (!mutation.empty()) os << " mutation=" << mutation;
  return os.str();
}

FuzzCase generate_case(std::uint64_t seed) {
  Rng rng(seed);
  FuzzCase out;
  out.seed = seed;

  // --- Execution scenario -------------------------------------------------
  const std::vector<apps::PaperApp>& paper_apps = apps::all_paper_apps();
  out.scenario.app = paper_apps[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(paper_apps.size()) - 1))];
  const std::vector<analyzer::StrategyKind>& strategies =
      analyzer::paper_strategies();
  out.scenario.strategy = strategies[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(strategies.size()) - 1))];
  // Frozen copy of the original five platform names: hw::platform_names()
  // has since grown (big-little, quad), and drawing from the live list
  // would shift this draw's modulus and change every pre-hs-check-3 seed's
  // scenario. The widened platforms enter through the appended axes below.
  static constexpr const char* kOriginalPlatforms[] = {
      "reference", "small-gpu", "dual-gpu", "cpu-gpu-phi", "cpu-only"};
  out.scenario.platform = kOriginalPlatforms[rng.uniform_int(
      0, std::size(kOriginalPlatforms) - 1)];
  out.scenario.sync = rng.uniform() < 0.5;
  // Small functional configs only: the execution oracles simulate each case
  // several times (traced, twice untraced, deduped), and the corpus runs in
  // CI — paper sizes would take minutes per case.
  out.scenario.small = true;
  static constexpr int kTaskCounts[] = {2, 3, 4, 6, 8, 12, 16};
  out.scenario.task_count =
      kTaskCounts[rng.uniform_int(0, std::size(kTaskCounts) - 1)];
  if (rng.uniform() < 0.5) {
    // Frozen like the platform list above: named_fault_plans() has since
    // grown "storm-all", which enters through the appended axes below.
    static constexpr const char* kOriginalPlans[] = {
        "gpu-slowdown", "gpu-stall", "link-degrade", "gpu-failure", "storm"};
    out.scenario.fault_plan =
        kOriginalPlans[rng.uniform_int(0, std::size(kOriginalPlans) - 1)];
    // Scenario JSON stores the seed as int64; stay within 53 bits so the
    // repro file round-trips through doubles exactly.
    out.scenario.fault_seed = rng() & ((std::uint64_t{1} << 53) - 1);
  }

  // --- Kernel structure ---------------------------------------------------
  const std::int64_t kernel_count = rng.uniform_int(1, 6);
  analyzer::KernelGraph graph;
  for (std::int64_t k = 0; k < kernel_count; ++k)
    graph.kernels.push_back({"k" + std::to_string(k), rng.uniform() < 0.25});
  if (kernel_count > 1) {
    // Chain backbone with occasional gaps (gaps yield multi-source DAGs),
    // plus random forward skip edges (branching). Forward-only edges keep
    // every draw acyclic by construction.
    for (std::size_t k = 0; k + 1 < graph.kernels.size(); ++k)
      if (rng.uniform() >= 0.15) graph.flow.emplace_back(k, k + 1);
    for (std::size_t from = 0; from + 2 < graph.kernels.size(); ++from)
      for (std::size_t to = from + 2; to < graph.kernels.size(); ++to)
        if (rng.uniform() < 0.2) graph.flow.emplace_back(from, to);
  }
  graph.main_loop = rng.uniform() < 0.35;
  out.structure.name = "fuzz-" + std::to_string(seed);
  out.structure.structure = std::move(graph);
  out.structure.sync = static_cast<analyzer::SyncReason>(
      rng.uniform_int(0, 2));

  // --- Partition-model input ----------------------------------------------
  const auto log_uniform = [&rng](double lo, double hi) {
    return lo * std::pow(hi / lo, rng.uniform());
  };
  out.estimate.cpu.seconds_per_item = log_uniform(1e-9, 1e-5);
  out.estimate.gpu.seconds_per_item = log_uniform(1e-10, 1e-5);
  out.estimate.cpu.fixed_seconds =
      rng.uniform() < 0.5 ? 0.0 : log_uniform(1e-7, 1e-3);
  out.estimate.gpu.fixed_seconds =
      rng.uniform() < 0.5 ? 0.0 : log_uniform(1e-7, 1e-3);
  out.estimate.gpu.h2d_bytes_per_item =
      static_cast<double>(rng.uniform_int(0, 64));
  out.estimate.gpu.d2h_bytes_per_item =
      static_cast<double>(rng.uniform_int(0, 64));
  out.estimate.gpu.h2d_fixed_bytes =
      rng.uniform() < 0.5 ? 0.0 : static_cast<double>(rng.uniform_int(0, 1 << 20));
  out.estimate.gpu.d2h_fixed_bytes =
      rng.uniform() < 0.5 ? 0.0 : static_cast<double>(rng.uniform_int(0, 1 << 20));
  out.estimate.link_bytes_per_second = log_uniform(1e8, 1e11);
  out.estimate.transfer_on_critical_path = rng.uniform() < 0.5;
  out.model_items = rng.uniform_int(256, 1'000'000);
  out.scale_factor = rng.uniform(1.1, 8.0);

  // --- Widened axes (hs-check-2) ------------------------------------------
  // Appended after the original draws so the new axes never perturb the
  // earlier fields' streams: an hs-check-1 seed keeps its old scenario
  // unless one of the draws below deliberately overrides a field.
  //
  // Adversarial runtime-cost ratios: zero and near-zero overheads collapse
  // timestamps into large equal-time event cohorts (maximum freedom for
  // schedule exploration), huge ones starve the devices.
  static constexpr SimTime kCostDraws[] = {0,
                                           1,
                                           100,
                                           1 * kMicrosecond,
                                           2 * kMicrosecond,
                                           50 * kMicrosecond};
  if (rng.uniform() < 0.4) {
    out.scenario.costs.task_creation =
        kCostDraws[rng.uniform_int(0, std::size(kCostDraws) - 1)];
    out.scenario.costs.dispatch_overhead =
        kCostDraws[rng.uniform_int(0, std::size(kCostDraws) - 1)];
    out.scenario.costs.taskwait_overhead =
        kCostDraws[rng.uniform_int(0, std::size(kCostDraws) - 1)];
  }
  // Near-tie device throughputs: force the GPU rate onto (or within one
  // ulp of) an exact multiple of the CPU's, probing the partition model's
  // boundary arithmetic and the executor's equal-finish-time tie-breaks.
  static constexpr double kTieFactors[] = {1.0, 1.0 + 1e-9, 1.0 - 1e-9,
                                           0.5, 2.0};
  if (rng.uniform() < 0.35) {
    out.estimate.gpu.seconds_per_item =
        out.estimate.cpu.seconds_per_item *
        kTieFactors[rng.uniform_int(0, std::size(kTieFactors) - 1)];
  }
  // Synthesized fault storms: bias a quarter of all cases onto the seeded
  // "storm" plan family so multi-event fault handling (and its interaction
  // with explored schedules) is hit far more often than the uniform
  // named-plan draw reaches it.
  if (rng.uniform() < 0.25) {
    out.scenario.fault_plan = "storm";
    out.scenario.fault_seed = rng() & ((std::uint64_t{1} << 53) - 1);
  }

  // --- Widened axes (hs-check-3) ------------------------------------------
  // N-device platforms, appended after the hs-check-2 block so every
  // earlier axis keeps its stream. Roughly a third of all cases move onto
  // a 2-4-device platform: the shipped multi-accelerator presets or the
  // parametric synth-<seed> family, whose accelerators draw asymmetric
  // (log-uniform) throughputs — two accelerators on one platform can
  // differ by an order of magnitude.
  if (rng.uniform() < 0.30) {
    if (rng.uniform() < 0.35) {
      // The synth seed rides in the platform NAME, so the sweep scenario
      // key embeds the full drawn device spec and the repro file stays
      // self-contained. 53-bit mask: same JSON-double rationale as
      // fault_seed.
      out.scenario.platform =
          "synth-" + std::to_string(rng() & ((std::uint64_t{1} << 53) - 1));
    } else {
      static constexpr const char* kMultiPlatforms[] = {
          "dual-gpu", "cpu-gpu-phi", "big-little", "quad"};
      out.scenario.platform = kMultiPlatforms[rng.uniform_int(
          0, std::size(kMultiPlatforms) - 1)];
    }
    // Per-device fault pressure: bias widened-platform cases onto the
    // "storm-all" family, whose events (slowdowns, stalls, permanent
    // failures) target every accelerator 1..N-1 independently — the
    // N-device migration path gets hit far more often than the frozen
    // 2-device "storm" ever could.
    if (rng.uniform() < 0.40) {
      out.scenario.fault_plan = "storm-all";
      out.scenario.fault_seed = rng() & ((std::uint64_t{1} << 53) - 1);
    }
  }
  return out;
}

const std::vector<std::string>& known_mutations() {
  static const std::vector<std::string> kMutations = {
      "drop-items", "skew-time", "completion-before-pred", "late-fault"};
  return kMutations;
}

}  // namespace hetsched::check
