#include "strategies/explain.hpp"

#include <iomanip>
#include <sstream>

#include "common/json.hpp"

namespace hetsched::strategies {

namespace {

/// Device indices a strategy's prediction may draw capacity from.
std::vector<std::size_t> device_set_for(analyzer::StrategyKind kind,
                                        std::size_t device_count) {
  switch (kind) {
    case analyzer::StrategyKind::kOnlyCpu:
      return {0};
    case analyzer::StrategyKind::kOnlyGpu:
      return {1};
    default: {
      std::vector<std::size_t> all(device_count);
      for (std::size_t d = 0; d < device_count; ++d) all[d] = d;
      return all;
    }
  }
}

const char* basis_for(analyzer::StrategyKind kind) {
  switch (kind) {
    case analyzer::StrategyKind::kOnlyCpu: return "cpu only";
    case analyzer::StrategyKind::kOnlyGpu: return "first accelerator only";
    default: return "all devices combined";
  }
}

}  // namespace

DecisionExplanation explain_decision(apps::Application& app,
                                     const StrategyOptions& options) {
  DecisionExplanation out;
  out.app = app.name();
  const hw::PlatformSpec& platform = app.executor().platform();
  out.platform = platform.name;
  out.match = analyzer::Matchmaker{}.match(app.descriptor());

  StrategyRunner runner(app, options);
  const RateTable rates = runner.probe_rates(options.dp_perf_profile_instances);
  app.reset_data();

  const std::vector<hw::DeviceSpec> devices = platform.all_devices();
  for (const hw::DeviceSpec& device : devices)
    out.device_names.push_back(device.name);
  const std::vector<rt::KernelDef>& kernel_defs = app.executor().kernels();
  for (std::size_t k = 0; k < app.kernels().size(); ++k) {
    const rt::KernelId kernel = app.kernels()[k];
    out.kernel_names.push_back(kernel_defs[kernel].name);
    std::vector<double> caps(devices.size(), 0.0);
    for (std::size_t d = 0; d < devices.size(); ++d) {
      const auto it = rates.find({kernel, static_cast<hw::DeviceId>(d)});
      // A probe is one pinned instance — one lane — so whole-device
      // capacity scales by the lane count.
      if (it != rates.end()) caps[d] = it->second * devices[d].lanes;
    }
    out.capacities.push_back(std::move(caps));
  }

  out.device_suitability.assign(devices.size(), 0.0);
  double total_capacity = 0.0;
  for (const std::vector<double>& caps : out.capacities) {
    for (std::size_t d = 0; d < caps.size(); ++d) {
      out.device_suitability[d] += caps[d];
      total_capacity += caps[d];
    }
  }
  if (total_capacity > 0.0) {
    for (double& share : out.device_suitability) share /= total_capacity;
  }

  const auto predict = [&](analyzer::StrategyKind kind) {
    StrategyPrediction prediction;
    prediction.kind = kind;
    prediction.basis = basis_for(kind);
    const std::vector<std::size_t> set =
        device_set_for(kind, devices.size());
    double seconds = 0.0;
    for (std::size_t k = 0; k < out.capacities.size(); ++k) {
      double capacity = 0.0;
      for (std::size_t d : set) {
        if (d < out.capacities[k].size()) capacity += out.capacities[k][d];
      }
      if (capacity <= 0.0) return prediction;  // predicted_ms stays -1
      seconds += static_cast<double>(app.items_of(k)) / capacity;
    }
    prediction.predicted_ms = seconds * app.iterations() * 1000.0;
    return prediction;
  };

  for (analyzer::StrategyKind kind : out.match.ranking)
    out.predictions.push_back(predict(kind));
  for (analyzer::StrategyKind baseline :
       {analyzer::StrategyKind::kOnlyCpu, analyzer::StrategyKind::kOnlyGpu}) {
    bool present = false;
    for (const StrategyPrediction& prediction : out.predictions)
      present = present || prediction.kind == baseline;
    if (!present) out.predictions.push_back(predict(baseline));
  }
  return out;
}

std::string DecisionExplanation::to_json() const {
  json::Value ranking{json::Value::Array{}};
  for (analyzer::StrategyKind kind : match.ranking)
    ranking.push_back(json::Value(analyzer::strategy_name(kind)));

  json::Value capacity_map{json::Value::Object{}};
  for (std::size_t k = 0; k < kernel_names.size(); ++k) {
    json::Value per_device{json::Value::Object{}};
    for (std::size_t d = 0; d < device_names.size(); ++d)
      per_device.set(device_names[d], json::Value(capacities[k][d]));
    capacity_map.set(kernel_names[k], std::move(per_device));
  }

  json::Value prediction_list{json::Value::Array{}};
  for (const StrategyPrediction& prediction : predictions) {
    json::Value entry;
    entry.set("strategy",
              json::Value(analyzer::strategy_name(prediction.kind)));
    entry.set("predicted_ms", json::Value(prediction.predicted_ms));
    entry.set("basis", json::Value(prediction.basis));
    prediction_list.push_back(std::move(entry));
  }

  json::Value suitability_map{json::Value::Object{}};
  for (std::size_t d = 0; d < device_names.size(); ++d)
    suitability_map.set(device_names[d],
                        json::Value(device_suitability[d]));

  json::Value document;
  document.set("app", json::Value(app));
  document.set("platform", json::Value(platform));
  document.set("device_count",
               json::Value(static_cast<std::int64_t>(device_count())));
  document.set("class", json::Value(analyzer::app_class_name(match.app_class)));
  document.set("inter_kernel_sync", json::Value(match.inter_kernel_sync));
  document.set("device_suitability", std::move(suitability_map));
  document.set("ranking", std::move(ranking));
  document.set("selected", json::Value(analyzer::strategy_name(match.best)));
  document.set("rationale", json::Value(match.rationale));
  document.set("capacities_items_per_s", std::move(capacity_map));
  document.set("predictions", std::move(prediction_list));
  return document.dump();
}

std::string DecisionExplanation::render() const {
  std::ostringstream os;
  os << "application: " << app << " on " << platform << " ("
     << device_count() << " devices)\n";
  os << "  class: " << analyzer::app_class_name(match.app_class)
     << " (inter-kernel sync: " << (match.inter_kernel_sync ? "yes" : "no")
     << ")\n";
  os << "  device suitability (share of probed capacity):";
  for (std::size_t d = 0; d < device_names.size(); ++d) {
    os << " " << device_names[d] << "=" << std::fixed << std::setprecision(3)
       << device_suitability[d];
    os.unsetf(std::ios::fixed);
  }
  os << "\n";
  os << "  selected: " << analyzer::strategy_name(match.best) << "\n";
  os << "  rationale: " << match.rationale << "\n";
  os << "  probed capacities (items/s, whole device):\n";
  for (std::size_t k = 0; k < kernel_names.size(); ++k) {
    os << "    " << kernel_names[k] << ":";
    for (std::size_t d = 0; d < device_names.size(); ++d) {
      os << " " << device_names[d] << "="
         << json::format_double(capacities[k][d]);
    }
    os << "\n";
  }
  os << "  predicted times (ideal overlap, lower bounds):\n";
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    const StrategyPrediction& prediction = predictions[i];
    os << "    " << (i + 1) << ". " << std::left << std::setw(10)
       << analyzer::strategy_name(prediction.kind) << std::right << " ";
    if (prediction.predicted_ms < 0.0) {
      os << "n/a";
    } else {
      os << std::fixed << std::setprecision(3) << prediction.predicted_ms
         << " ms";
      os.unsetf(std::ios::fixed);
    }
    os << "  (" << prediction.basis << ")\n";
  }
  return os.str();
}

}  // namespace hetsched::strategies
