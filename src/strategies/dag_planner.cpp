#include "strategies/dag_planner.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace hetsched::strategies {

DagPlanner::DagPlanner(const hw::PlatformSpec& platform, RateTable rates)
    : platform_(platform), rates_(std::move(rates)) {
  platform_.validate();
}

double DagPlanner::rate_of(rt::KernelId kernel, hw::DeviceId device) const {
  auto it = rates_.find({kernel, device});
  HS_REQUIRE(it != rates_.end(), "no profiled rate for kernel "
                                     << kernel << " on device " << device);
  HS_REQUIRE(it->second > 0.0, "non-positive rate for kernel " << kernel);
  return it->second;
}

double DagPlanner::task_seconds(const rt::TaskNode& node,
                                hw::DeviceId device) const {
  return static_cast<double>(node.items()) / rate_of(node.kernel, device);
}

double DagPlanner::transfer_seconds(const rt::TaskNode& node) const {
  // Bytes this task reads or writes, over the link: the cost of placing it
  // "wrong" relative to its data.
  std::int64_t bytes = 0;
  for (const auto& access : node.accesses) bytes += access.region.size_bytes();
  return static_cast<double>(bytes) / (platform_.link.bandwidth_gbs * 1e9);
}

DagPlan DagPlanner::plan(const std::vector<rt::KernelDef>& kernels,
                         const rt::Program& program) const {
  const rt::TaskGraph graph(kernels, program);
  const std::size_t count = graph.size();
  const std::size_t devices = platform_.device_count();

  // Mean execution cost per task (HEFT's w_i): average over devices, plus
  // half a transfer as the communication weight.
  std::vector<double> mean_cost(count, 0.0);
  for (const rt::TaskNode& node : graph.nodes()) {
    if (node.is_barrier || node.is_host_op) continue;
    double total = 0.0;
    for (hw::DeviceId d = 0; d < devices; ++d)
      total += task_seconds(node, d);
    mean_cost[node.id] =
        total / static_cast<double>(devices) + 0.5 * transfer_seconds(node);
  }

  // Upward rank: longest mean-cost path to a sink. Computed in reverse
  // submission order (every edge points forward).
  std::vector<double> rank(count, 0.0);
  for (std::size_t i = count; i-- > 0;) {
    const rt::TaskNode& node = graph.node(i);
    double best_successor = 0.0;
    for (rt::TaskId succ : node.successors)
      best_successor = std::max(best_successor, rank[succ]);
    rank[i] = mean_cost[i] + best_successor;
  }

  // List order: rank descending; ties in submission order (deterministic).
  std::vector<rt::TaskId> order(count);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](rt::TaskId a, rt::TaskId b) {
                     return rank[a] > rank[b];
                   });

  // EFT assignment. Per device: per-lane availability; per task: finish
  // time. Cross-device data adds the transfer estimate to the start.
  const auto specs = platform_.all_devices();
  std::vector<std::vector<double>> lane_avail(devices);
  for (std::size_t d = 0; d < devices; ++d)
    lane_avail[d].assign(static_cast<std::size_t>(specs[d].lanes), 0.0);

  std::vector<double> finish(count, 0.0);
  std::vector<hw::DeviceId> device_of(count, hw::kCpuDevice);
  std::vector<std::vector<rt::TaskId>> predecessors(count);
  for (const rt::TaskNode& node : graph.nodes())
    for (rt::TaskId succ : node.successors)
      predecessors[succ].push_back(node.id);

  DagPlan result;
  result.tasks_per_device.assign(devices, 0);
  double makespan = 0.0;

  for (rt::TaskId id : order) {
    const rt::TaskNode& node = graph.node(id);
    if (node.is_barrier || node.is_host_op) {
      // Synchronization/host nodes: finish when all predecessors have.
      double ready = 0.0;
      for (rt::TaskId pred : predecessors[id])
        ready = std::max(ready, finish[pred]);
      finish[id] = ready;
      continue;
    }
    double best_finish = 0.0;
    hw::DeviceId best_device = hw::kCpuDevice;
    std::size_t best_lane = 0;
    for (hw::DeviceId d = 0; d < devices; ++d) {
      // Data-ready: predecessors' finishes, plus a transfer if they sit on
      // another device (host handoff).
      double ready = 0.0;
      for (rt::TaskId pred : predecessors[id]) {
        double pred_ready = finish[pred];
        const rt::TaskNode& pred_node = graph.node(pred);
        if (!pred_node.is_barrier && !pred_node.is_host_op &&
            device_of[pred] != d && (device_of[pred] != 0 || d != 0)) {
          pred_ready += transfer_seconds(node);
        }
        ready = std::max(ready, pred_ready);
      }
      // Earliest lane of d.
      std::size_t lane = 0;
      for (std::size_t l = 1; l < lane_avail[d].size(); ++l)
        if (lane_avail[d][l] < lane_avail[d][lane]) lane = l;
      const double start = std::max(ready, lane_avail[d][lane]);
      const double end = start + task_seconds(node, d);
      if (best_finish == 0.0 || end < best_finish) {
        best_finish = end;
        best_device = d;
        best_lane = lane;
      }
    }
    device_of[id] = best_device;
    finish[id] = best_finish;
    lane_avail[best_device][best_lane] = best_finish;
    ++result.tasks_per_device[best_device];
    makespan = std::max(makespan, best_finish);
  }

  // Export in kernel-submission order.
  for (const rt::TaskNode& node : graph.nodes()) {
    if (node.is_barrier || node.is_host_op) continue;
    result.assignment.push_back(device_of[node.id]);
  }
  result.predicted_seconds = makespan;
  return result;
}

rt::Program DagPlanner::apply(const rt::Program& program,
                              const DagPlan& plan) const {
  rt::Program pinned;
  std::size_t index = 0;
  for (const rt::ProgramOp& op : program.ops()) {
    switch (op.kind) {
      case rt::ProgramOp::Kind::kSubmit:
        HS_REQUIRE(index < plan.assignment.size(),
                   "plan does not cover the program");
        pinned.submit(op.submit.kernel, op.submit.begin, op.submit.end,
                      plan.assignment[index++]);
        break;
      case rt::ProgramOp::Kind::kTaskwait:
        pinned.taskwait();
        break;
      case rt::ProgramOp::Kind::kHostOp:
        pinned.host_op(op.host.accesses, op.host.body);
        break;
    }
  }
  HS_REQUIRE(index == plan.assignment.size(),
             "plan covers more tasks than the program has");
  return pinned;
}

}  // namespace hetsched::strategies
