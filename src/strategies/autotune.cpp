#include "strategies/autotune.hpp"

#include "common/error.hpp"

namespace hetsched::strategies {

std::vector<int> default_task_count_candidates(int cpu_lanes) {
  HS_REQUIRE(cpu_lanes >= 1, "cpu_lanes=" << cpu_lanes);
  return {cpu_lanes, 2 * cpu_lanes, 4 * cpu_lanes, 8 * cpu_lanes};
}

TuneResult tune_task_count(apps::Application& app,
                           analyzer::StrategyKind kind,
                           const std::vector<int>& candidates,
                           StrategyOptions base) {
  HS_REQUIRE(!candidates.empty(), "tune_task_count needs candidates");
  TuneResult result;
  for (int m : candidates) {
    StrategyOptions options = base;
    options.task_count = m;
    StrategyRunner runner(app, options);
    const double time_ms = runner.run(kind).time_ms();
    result.trials.push_back({m, time_ms});
    if (result.best_task_count == 0 || time_ms < result.best_time_ms) {
      result.best_task_count = m;
      result.best_time_ms = time_ms;
    }
  }
  return result;
}

}  // namespace hetsched::strategies
