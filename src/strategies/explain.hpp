#pragma once

#include <string>
#include <vector>

#include "analyzer/matchmaker.hpp"
#include "apps/app.hpp"
#include "strategies/strategy_runner.hpp"

/// Decision explanation: the matchmaker's Table-I selection for an
/// application, annotated with the predicted-time inputs that justify it.
///
/// The predictions come from the same probe pass DP-Perf and the SP-DAG
/// planner seed themselves with (StrategyRunner::probe_rates): each
/// (kernel, device) pair is probed with a few pinned chunk instances, the
/// observed items/s become per-device capacities (CPU rate scales by lane
/// count), and each strategy is scored as the sum over kernels of
/// items / capacity of the device set it may use, times the iteration
/// count. Ideal-overlap lower bounds, not simulations — their job is to
/// show WHY the ranking looks the way it does, cheaply and
/// deterministically.
namespace hetsched::strategies {

struct StrategyPrediction {
  analyzer::StrategyKind kind = analyzer::StrategyKind::kOnlyCpu;
  /// Predicted wall time; -1 when no prediction is possible (a kernel has
  /// no probed rate on any device the strategy may use).
  double predicted_ms = -1.0;
  /// Which capacities produced the number, e.g. "cpu only" or
  /// "all devices combined".
  std::string basis;
};

struct DecisionExplanation {
  std::string app;
  std::string platform;
  analyzer::MatchResult match;
  /// Ranking order first (best first), then the baselines not in the
  /// ranking.
  std::vector<StrategyPrediction> predictions;
  /// Probed whole-device capacities, items/s, per kernel then device
  /// (device order = platform order, CPU first); 0 = no rate observed.
  std::vector<std::string> kernel_names;
  std::vector<std::string> device_names;
  std::vector<std::vector<double>> capacities;
  /// Per-device suitability: the device's share of the platform's total
  /// probed capacity, summed over kernels (0..1, sums to 1 when any rate
  /// was observed). The N-device ranking signal: on a CPU+2×GPU platform
  /// the second GPU's score shows how much the partition strategies gain.
  std::vector<double> device_suitability;

  std::size_t device_count() const { return device_names.size(); }

  /// Byte-stable JSON document (json::Value ordering rules).
  std::string to_json() const;
  /// Human-readable multi-line rendering for the CLI.
  std::string render() const;
};

/// Runs the matchmaker on `app` and scores every ranked strategy plus the
/// baselines from a fresh probe pass. Deterministic for a fixed app +
/// platform + options.
DecisionExplanation explain_decision(apps::Application& app,
                                     const StrategyOptions& options = {});

}  // namespace hetsched::strategies
