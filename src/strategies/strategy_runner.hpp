#pragma once

#include <map>
#include <optional>
#include <vector>

#include "analyzer/matchmaker.hpp"
#include "analyzer/strategy.hpp"
#include "apps/app.hpp"
#include "faults/fault_plan.hpp"
#include "glinda/multi_device.hpp"
#include "glinda/partition_model.hpp"
#include "runtime/explore.hpp"
#include "strategies/dag_planner.hpp"

/// Strategy drivers (paper Section III-C): given an application, each
/// strategy shapes a Program (how the item space is chunked and where the
/// chunks are pinned), runs any profiling it needs, executes, and reports.
///
/// Implementation map (paper -> this module):
///   SP-Single   Glinda profiling + optimal split of the single kernel; the
///               GPU task is one pinned instance, the CPU side is m pinned
///               instances (one per thread).
///   SP-Unified  The kernels are fused for profiling; one unified split is
///               applied to every kernel; no synchronization between
///               kernels, so data stays resident per device.
///   SP-Varied   Each kernel is profiled and split separately; a taskwait
///               separates kernels (SP-Varied requires synchronization).
///   DP-Dep      Chunked, unpinned submission under the breadth-first /
///               locality scheduler.
///   DP-Perf     Chunked, unpinned submission under the performance-aware
///               scheduler, seeded by a profiling phase that gives each
///               device 3 task instances per kernel (excluded from the
///               reported time, as in the paper).
///   Only-CPU /  All work pinned to one device (the paper's baseline
///   Only-GPU    executions).
namespace hetsched::strategies {

struct StrategyOptions {
  /// m: CPU task instances per kernel under static partitioning, and the
  /// total chunk count under dynamic partitioning (task size = n / m). The
  /// paper sets m to the best-performing multiple of the CPU thread count.
  int task_count = 12;
  /// The paper's "w sync" scenario: a taskwait after every kernel.
  /// (SP-Varied always synchronizes, regardless of this flag.)
  bool sync_between_kernels = false;
  glinda::ProfileOptions profile;
  glinda::PartitionOptions partition;
  /// DP-Perf profiling instances per (kernel, device).
  int dp_perf_profile_instances = 3;
  /// Fault plan armed around the MEASURED execution only. Profiling runs
  /// (Glinda sampling, DP-Perf seeding probes) observe the healthy
  /// platform — the paper profiles before the perturbation happens — so
  /// static splits are honest pre-fault decisions and the injected faults
  /// hit every strategy's measured run identically.
  std::optional<faults::FaultPlan> fault_plan;
  /// Schedule-exploration spec, armed (like the fault plan) around the
  /// MEASURED execution only: a fresh ExploreStrategy is built per run so
  /// decision sites are numbered from zero, and profiling stays on the
  /// canonical schedule.
  rt::ExploreSpec explore;
};

struct StrategyResult {
  analyzer::StrategyKind kind = analyzer::StrategyKind::kOnlyCpu;
  rt::ExecutionReport report;
  /// GPU share of each kernel's items (index = position in app sequence).
  std::vector<double> gpu_fraction_per_kernel;
  /// Accelerator share across all kernels (all non-CPU devices combined).
  double gpu_fraction_overall = 0.0;
  /// Glinda decisions (static strategies; one per kernel for SP-Varied,
  /// a single entry otherwise). Empty for the multi-accelerator static
  /// strategies, which report through `multi_decision`/`multi_decisions`.
  std::vector<glinda::PartitionDecision> decisions;
  /// Multi-accelerator split (SP-Single / SP-Unified on platforms with 2+
  /// accelerators; SP-Unified scales the fused shares to each kernel).
  std::optional<glinda::MultiPartitionDecision> multi_decision;
  /// Per-kernel multi-accelerator splits (SP-Varied on 2+ accelerators).
  std::vector<glinda::MultiPartitionDecision> multi_decisions;

  double time_ms() const { return report.makespan_ms(); }
};

class StrategyRunner {
 public:
  explicit StrategyRunner(apps::Application& app, StrategyOptions options = {});

  /// Runs one strategy end to end (profiling + measured execution) and
  /// reports. Throws InvalidArgument if the strategy is not applicable to
  /// the application's class (e.g. SP-Single on a multi-kernel app).
  StrategyResult run(analyzer::StrategyKind kind);

  /// Runs every strategy in the application's Table I ranking plus the two
  /// baselines; keyed by strategy.
  std::map<analyzer::StrategyKind, StrategyResult> run_ranked_and_baselines();

  /// Figure-2 end-to-end flow: classify, select the best strategy, run it.
  struct MatchedRun {
    analyzer::MatchResult match;
    StrategyResult result;
  };
  MatchedRun run_matched();

  const StrategyOptions& options() const { return options_; }

  /// Probes every (kernel, device) pair with a few pinned chunk instances
  /// in fresh memory state and returns the observed rates — the profiling
  /// phase shared by DP-Perf, the SP-DAG planner, and decision explanation.
  RateTable probe_rates(int instances_per_pair) const;

  /// The accelerator the scalar (CPU + one accelerator) paths target. On
  /// 1-accelerator platforms this is THE accelerator; multi-accelerator
  /// paths iterate every device instead of using it.
  static constexpr hw::DeviceId kFirstAccelerator = 1;

 private:
  StrategyResult run_only(hw::DeviceId device, analyzer::StrategyKind kind);
  StrategyResult run_sp_single();
  StrategyResult run_sp_single_multi();
  StrategyResult run_sp_unified();
  StrategyResult run_sp_unified_multi();
  StrategyResult run_sp_varied();
  StrategyResult run_sp_varied_multi();
  StrategyResult run_sp_dag();
  StrategyResult run_dp(analyzer::StrategyKind kind);

  /// The measured executions — the ones options_.fault_plan perturbs.
  rt::ExecutionReport measured_execute_pinned(const rt::Program& program);
  rt::ExecutionReport measured_execute(const rt::Program& program,
                                       rt::Scheduler& scheduler);

  /// Submits instances of the kernel at sequence position `kernel_index`,
  /// split at `gpu_items`: [0, gpu_items) as one instance pinned to
  /// `accelerator`, the rest of that kernel's item space as m CPU
  /// instances.
  void submit_split(rt::Program& program, std::size_t kernel_index,
                    std::int64_t gpu_items, hw::DeviceId accelerator) const;

  /// Submits one contiguous slab per accelerator (front of the item space,
  /// device order) and m CPU instances over the tail, exactly following
  /// `items_per_device` (index 0 = CPU share).
  void submit_multi_split(rt::Program& program, std::size_t kernel_index,
                          const std::vector<std::int64_t>& items_per_device)
      const;

  /// Profiles one kernel (or the fused sequence) on the CPU and the given
  /// accelerator and builds the scalar model input; `total_items` is the
  /// item space the factory's slices index.
  glinda::KernelEstimate estimate_for(
      const glinda::SampleProgramFactory& factory,
      bool transfer_on_critical_path, std::int64_t total_items,
      hw::DeviceId accelerator) const;

  /// Profiles EVERY device in the platform (CPU first) and builds the
  /// vector model input for glinda::solve_multi_partition.
  glinda::MultiDeviceEstimate multi_estimate_for(
      const glinda::SampleProgramFactory& factory,
      bool transfer_on_critical_path, std::int64_t total_items) const;

  StrategyResult finalize(analyzer::StrategyKind kind,
                          rt::ExecutionReport report,
                          std::vector<glinda::PartitionDecision> decisions);

  void require_accelerator() const;
  bool multi_accelerator() const;

  apps::Application& app_;
  StrategyOptions options_;
};

}  // namespace hetsched::strategies
