#pragma once

#include <vector>

#include "strategies/strategy_runner.hpp"

/// Task-size auto-tuning (paper Section V).
///
/// "The task size (the granularity of partitioning) impacts performance as
/// well. ... the task size variation leads to performance variation. Thus,
/// auto-tuning is recommended to find the best performing one." This
/// module is that recommendation: run the strategy across a candidate set
/// of chunk counts m and keep the winner. Deterministic simulation makes
/// each trial exact, so no repetition is needed.
namespace hetsched::strategies {

struct TuneTrial {
  int task_count = 0;
  double time_ms = 0.0;
};

struct TuneResult {
  int best_task_count = 0;
  double best_time_ms = 0.0;
  std::vector<TuneTrial> trials;  ///< in candidate order
};

/// Default candidate ladder: multiples of the CPU thread count, as the
/// paper's evaluation varies them ("we vary m to be a multiple of CPU
/// cores ... and use the best-performing one").
std::vector<int> default_task_count_candidates(int cpu_lanes);

/// Runs `kind` on `app` once per candidate task count and returns the
/// sweep. `base` supplies every other option (sync scenario etc.).
TuneResult tune_task_count(apps::Application& app,
                           analyzer::StrategyKind kind,
                           const std::vector<int>& candidates,
                           StrategyOptions base = {});

}  // namespace hetsched::strategies
