#include "strategies/strategy_runner.hpp"

#include <algorithm>
#include <memory>

#include "analyzer/ranking.hpp"
#include "glinda/profile.hpp"
#include "runtime/schedulers/breadth_first.hpp"
#include "runtime/schedulers/perf_aware.hpp"

namespace hetsched::strategies {

using analyzer::StrategyKind;

namespace {

/// Arms the application's executor with the strategy's fault plan for the
/// duration of one measured execution. Profiling probes share the same
/// executor, so scoping the plan this tightly is what keeps them on the
/// healthy platform.
class FaultPlanGuard {
 public:
  FaultPlanGuard(rt::Executor& executor,
                 const std::optional<faults::FaultPlan>& plan)
      : executor_(executor), armed_(plan.has_value()) {
    if (armed_) executor_.set_fault_plan(*plan);
  }
  ~FaultPlanGuard() {
    if (armed_) executor_.set_fault_plan(std::nullopt);
  }
  FaultPlanGuard(const FaultPlanGuard&) = delete;
  FaultPlanGuard& operator=(const FaultPlanGuard&) = delete;

 private:
  rt::Executor& executor_;
  bool armed_;
};

/// Arms a fresh ExploreStrategy for one measured execution. Fresh per run
/// so decision sites are numbered from zero each time (replay fidelity),
/// and scoped like the fault plan so profiling probes stay on the
/// canonical schedule.
class ExploreGuard {
 public:
  ExploreGuard(rt::Executor& executor, const rt::ExploreSpec& spec)
      : executor_(executor) {
    if (spec.active()) {
      strategy_ = std::make_unique<rt::ExploreStrategy>(spec);
      executor_.set_explore(strategy_.get());
    }
  }
  ~ExploreGuard() {
    if (strategy_) executor_.set_explore(nullptr);
  }
  ExploreGuard(const ExploreGuard&) = delete;
  ExploreGuard& operator=(const ExploreGuard&) = delete;

 private:
  rt::Executor& executor_;
  std::unique_ptr<rt::ExploreStrategy> strategy_;
};

}  // namespace

rt::ExecutionReport StrategyRunner::measured_execute_pinned(
    const rt::Program& program) {
  FaultPlanGuard guard(app_.executor(), options_.fault_plan);
  ExploreGuard explore(app_.executor(), options_.explore);
  return app_.executor().execute_pinned(program);
}

rt::ExecutionReport StrategyRunner::measured_execute(
    const rt::Program& program, rt::Scheduler& scheduler) {
  FaultPlanGuard guard(app_.executor(), options_.fault_plan);
  ExploreGuard explore(app_.executor(), options_.explore);
  return app_.executor().execute(program, scheduler);
}

StrategyRunner::StrategyRunner(apps::Application& app,
                               StrategyOptions options)
    : app_(app), options_(options) {
  HS_REQUIRE(options_.task_count >= 1,
             "task_count=" << options_.task_count);
}

void StrategyRunner::require_accelerator() const {
  HS_REQUIRE(app_.executor().platform().device_count() >= 2,
             "strategy needs an accelerator; platform '"
                 << app_.executor().platform().name << "' has none");
}

bool StrategyRunner::multi_accelerator() const {
  return app_.executor().platform().accelerators.size() > 1;
}

StrategyResult StrategyRunner::run(StrategyKind kind) {
  app_.reset_data();
  switch (kind) {
    case StrategyKind::kOnlyCpu:
      return run_only(hw::kCpuDevice, kind);
    case StrategyKind::kOnlyGpu:
      return run_only(kFirstAccelerator, kind);
    case StrategyKind::kSPSingle:
      return run_sp_single();
    case StrategyKind::kSPUnified:
      return run_sp_unified();
    case StrategyKind::kSPVaried:
      return run_sp_varied();
    case StrategyKind::kSPDag:
      return run_sp_dag();
    case StrategyKind::kDPDep:
    case StrategyKind::kDPPerf:
      return run_dp(kind);
  }
  throw InvalidArgument("unknown strategy");
}

std::map<StrategyKind, StrategyResult>
StrategyRunner::run_ranked_and_baselines() {
  const analyzer::MatchResult match =
      analyzer::Matchmaker{}.match(app_.descriptor());
  // The paper's "w sync" scenario flips the suitable-strategy ranking row.
  const auto ranking = analyzer::ranked_strategies(
      match.app_class,
      app_.descriptor().inter_kernel_sync() || options_.sync_between_kernels);
  std::map<StrategyKind, StrategyResult> results;
  for (StrategyKind kind : ranking) results.emplace(kind, run(kind));
  results.emplace(StrategyKind::kOnlyCpu, run(StrategyKind::kOnlyCpu));
  results.emplace(StrategyKind::kOnlyGpu, run(StrategyKind::kOnlyGpu));
  return results;
}

StrategyRunner::MatchedRun StrategyRunner::run_matched() {
  MatchedRun matched;
  analyzer::AppDescriptor descriptor = app_.descriptor();
  if (options_.sync_between_kernels &&
      descriptor.sync == analyzer::SyncReason::kNone) {
    // The scenario adds synchronization the application didn't have.
    descriptor.sync = analyzer::SyncReason::kHostPostProcessing;
  }
  matched.match = analyzer::Matchmaker{}.match(descriptor);
  matched.result = run(matched.match.best);
  return matched;
}

StrategyResult StrategyRunner::finalize(
    StrategyKind kind, rt::ExecutionReport report,
    std::vector<glinda::PartitionDecision> decisions) {
  StrategyResult result;
  result.kind = kind;
  // "GPU share" counts all accelerators (everything that is not the CPU).
  result.gpu_fraction_overall =
      1.0 - report.overall_fraction(hw::kCpuDevice);
  result.gpu_fraction_per_kernel.reserve(app_.kernels().size());
  for (rt::KernelId kernel : app_.kernels())
    result.gpu_fraction_per_kernel.push_back(
        1.0 - report.partition_fraction(hw::kCpuDevice, kernel));
  result.report = std::move(report);
  result.decisions = std::move(decisions);
  return result;
}

StrategyResult StrategyRunner::run_only(hw::DeviceId device,
                                        StrategyKind kind) {
  if (device != hw::kCpuDevice) require_accelerator();
  const int m = options_.task_count;
  const auto submit = [&](rt::Program& program, std::size_t index,
                          rt::KernelId k) {
    const std::int64_t n = app_.items_of(index);
    if (device == hw::kCpuDevice) {
      for (int i = 0; i < m; ++i) {
        program.submit(k, n * i / m, n * (i + 1) / m, hw::kCpuDevice);
      }
    } else {
      program.submit(k, 0, n, device);
    }
  };
  const rt::Program program =
      app_.build_program(submit, options_.sync_between_kernels);
  return finalize(kind, measured_execute_pinned(program), {});
}

void StrategyRunner::submit_split(rt::Program& program,
                                  std::size_t kernel_index,
                                  std::int64_t gpu_items,
                                  hw::DeviceId accelerator) const {
  const rt::KernelId kernel = app_.kernels()[kernel_index];
  const std::int64_t n = app_.items_of(kernel_index);
  gpu_items = std::min(gpu_items, n);
  if (gpu_items > 0) program.submit(kernel, 0, gpu_items, accelerator);
  const std::int64_t cpu_items = n - gpu_items;
  if (cpu_items <= 0) return;
  const int m = options_.task_count;
  for (int i = 0; i < m; ++i) {
    program.submit(kernel, gpu_items + cpu_items * i / m,
                   gpu_items + cpu_items * (i + 1) / m, hw::kCpuDevice);
  }
}

void StrategyRunner::submit_multi_split(
    rt::Program& program, std::size_t kernel_index,
    const std::vector<std::int64_t>& items_per_device) const {
  const rt::KernelId kernel = app_.kernels()[kernel_index];
  // Accelerators take contiguous slabs from the front, in device order;
  // the CPU's tail slab is split into m instances.
  std::int64_t cursor = 0;
  for (hw::DeviceId d = 1; d < items_per_device.size(); ++d) {
    const std::int64_t items = items_per_device[d];
    if (items > 0) program.submit(kernel, cursor, cursor + items, d);
    cursor += items;
  }
  const std::int64_t cpu_items = items_per_device[hw::kCpuDevice];
  const int m = options_.task_count;
  for (int i = 0; i < m && cpu_items > 0; ++i) {
    program.submit(kernel, cursor + cpu_items * i / m,
                   cursor + cpu_items * (i + 1) / m, hw::kCpuDevice);
  }
}

glinda::KernelEstimate StrategyRunner::estimate_for(
    const glinda::SampleProgramFactory& factory,
    bool transfer_on_critical_path, std::int64_t total_items,
    hw::DeviceId accelerator) const {
  glinda::Profiler profiler(options_.profile);
  rt::Executor& executor = app_.executor();
  glinda::KernelEstimate estimate;
  estimate.cpu = profiler.profile_device(executor, factory, hw::kCpuDevice,
                                         total_items);
  estimate.gpu =
      profiler.profile_device(executor, factory, accelerator, total_items);
  const glinda::LinkProfile link =
      profiler.profile_link(executor, factory, accelerator, total_items);
  estimate.link_bytes_per_second =
      link.bytes_per_second > 0.0
          ? link.bytes_per_second
          : executor.platform().link.bandwidth_gbs * 1e9;
  estimate.transfer_on_critical_path = transfer_on_critical_path;
  return estimate;
}

glinda::MultiDeviceEstimate StrategyRunner::multi_estimate_for(
    const glinda::SampleProgramFactory& factory,
    bool transfer_on_critical_path, std::int64_t total_items) const {
  glinda::Profiler profiler(options_.profile);
  rt::Executor& executor = app_.executor();
  const hw::PlatformSpec& platform = executor.platform();
  glinda::MultiDeviceEstimate estimate;
  estimate.transfer_on_critical_path = transfer_on_critical_path;
  estimate.devices.reserve(platform.device_count());
  for (hw::DeviceId d = 0; d < platform.device_count(); ++d) {
    estimate.devices.push_back(
        profiler.profile_device(executor, factory, d, total_items));
  }
  // All accelerators share the one host link; fitting it through the first
  // accelerator's samples observes that shared channel.
  const glinda::LinkProfile link = profiler.profile_link(
      executor, factory, kFirstAccelerator, total_items);
  estimate.link_bytes_per_second =
      link.bytes_per_second > 0.0 ? link.bytes_per_second
                                  : platform.link.bandwidth_gbs * 1e9;
  return estimate;
}

StrategyResult StrategyRunner::run_sp_single() {
  require_accelerator();
  HS_REQUIRE(app_.kernels().size() == 1,
             "SP-Single applies to single-kernel applications; '"
                 << app_.name() << "' has " << app_.kernels().size());
  if (multi_accelerator()) return run_sp_single_multi();
  // Profiling one iteration captures exactly the per-iteration transfer
  // pattern (SK-Loop applications pay them every iteration).
  const glinda::KernelEstimate estimate = estimate_for(
      app_.single_kernel_factory(0), true, app_.items(), kFirstAccelerator);
  glinda::PartitionModel model(options_.partition);
  // Imbalanced applications publish their prefix-weight function and get
  // the work-balancing solver; uniform ones get the closed form.
  const auto weights = app_.prefix_weight();
  const glinda::PartitionDecision decision =
      weights ? model.solve_weighted(estimate, app_.items(), weights)
              : model.solve(estimate, app_.items());

  app_.reset_data();
  const auto submit = [&](rt::Program& program, std::size_t index,
                          rt::KernelId) {
    submit_split(program, index, decision.gpu_items, kFirstAccelerator);
  };
  const rt::Program program =
      app_.build_program(submit, options_.sync_between_kernels);
  return finalize(StrategyKind::kSPSingle, measured_execute_pinned(program),
                  {decision});
}

/// SP-Single generalized to platforms with several accelerators: profile
/// every device, solve the balanced multi-way split, and submit one slab
/// per accelerator plus m CPU instances.
StrategyResult StrategyRunner::run_sp_single_multi() {
  const glinda::MultiDeviceEstimate estimate = multi_estimate_for(
      app_.single_kernel_factory(0), /*transfer_on_critical_path=*/true,
      app_.items());
  const glinda::MultiPartitionDecision decision =
      glinda::solve_multi_partition(estimate, app_.items(),
                                    options_.partition);

  app_.reset_data();
  const auto submit = [&](rt::Program& program, std::size_t index,
                          rt::KernelId) {
    submit_multi_split(program, index, decision.items_per_device);
  };
  const rt::Program program =
      app_.build_program(submit, options_.sync_between_kernels);
  StrategyResult result = finalize(StrategyKind::kSPSingle,
                                   measured_execute_pinned(program), {});
  result.multi_decision = decision;
  return result;
}

StrategyResult StrategyRunner::run_sp_unified() {
  require_accelerator();
  HS_REQUIRE(app_.kernels().size() > 1,
             "SP-Unified applies to multi-kernel applications");
  if (multi_accelerator()) return run_sp_unified_multi();
  // The kernels are regarded as one fused kernel. In a main loop without
  // per-iteration synchronization, data stays resident across iterations,
  // so the unified partitioning is determined without the data transfers
  // (paper Section IV-B4); one-shot sequences keep them on the path.
  const bool transfers_on_path =
      !(app_.iterations() > 1 && !app_.sync_each_iteration());
  const glinda::KernelEstimate estimate = estimate_for(
      app_.fused_factory(), transfers_on_path, app_.items(),
      kFirstAccelerator);
  glinda::PartitionModel model(options_.partition);
  const glinda::PartitionDecision decision =
      model.solve(estimate, app_.items());

  app_.reset_data();
  // One unified partitioning POINT: the same fraction of every kernel's
  // item space goes to the GPU (identical counts when kernels share the
  // item space; proportional for multi-pass kernels).
  const double fraction = decision.gpu_fraction(app_.items());
  const auto submit = [&](rt::Program& program, std::size_t index,
                          rt::KernelId) {
    const auto share = static_cast<std::int64_t>(
        fraction * static_cast<double>(app_.items_of(index)) + 0.5);
    submit_split(program, index, share, kFirstAccelerator);
  };
  const rt::Program program =
      app_.build_program(submit, options_.sync_between_kernels);
  return finalize(StrategyKind::kSPUnified, measured_execute_pinned(program),
                  {decision});
}

/// SP-Unified generalized: one vector split of the FUSED kernel sequence,
/// and the same per-device fractions applied to every kernel's item space.
StrategyResult StrategyRunner::run_sp_unified_multi() {
  const bool transfers_on_path =
      !(app_.iterations() > 1 && !app_.sync_each_iteration());
  const glinda::MultiDeviceEstimate estimate =
      multi_estimate_for(app_.fused_factory(), transfers_on_path,
                         app_.items());
  const glinda::MultiPartitionDecision decision =
      glinda::solve_multi_partition(estimate, app_.items(),
                                    options_.partition);

  app_.reset_data();
  const std::int64_t total = app_.items();
  const auto submit = [&](rt::Program& program, std::size_t index,
                          rt::KernelId) {
    // Scale each device's unified share to this kernel's item space; the
    // CPU absorbs the rounding remainder.
    const std::int64_t nk = app_.items_of(index);
    std::vector<std::int64_t> items(decision.device_count(), 0);
    std::int64_t assigned = 0;
    for (std::size_t d = 1; d < decision.device_count(); ++d) {
      auto share = static_cast<std::int64_t>(
          decision.share(d, total) * static_cast<double>(nk) + 0.5);
      share = std::min(share, nk - assigned);
      items[d] = share;
      assigned += share;
    }
    items[hw::kCpuDevice] = nk - assigned;
    submit_multi_split(program, index, items);
  };
  const rt::Program program =
      app_.build_program(submit, options_.sync_between_kernels);
  StrategyResult result = finalize(StrategyKind::kSPUnified,
                                   measured_execute_pinned(program), {});
  result.multi_decision = decision;
  return result;
}

StrategyResult StrategyRunner::run_sp_varied() {
  require_accelerator();
  HS_REQUIRE(app_.kernels().size() > 1,
             "SP-Varied applies to multi-kernel applications");
  if (multi_accelerator()) return run_sp_varied_multi();
  // Per-kernel optimal splits; each kernel is profiled in isolation, with
  // its transfers on the critical path (the synchronization between kernels
  // flushes data home every time).
  glinda::PartitionModel model(options_.partition);
  std::vector<glinda::PartitionDecision> decisions;
  decisions.reserve(app_.kernels().size());
  for (std::size_t k = 0; k < app_.kernels().size(); ++k) {
    const std::int64_t nk = app_.items_of(k);
    if (nk < 4) {
      // Too narrow to profile or to feed an accelerator: the hardware-
      // configuration decision is Only-CPU without measurement.
      glinda::PartitionDecision tiny;
      tiny.config = glinda::HardwareConfig::kOnlyCpu;
      tiny.cpu_items = nk;
      decisions.push_back(tiny);
      continue;
    }
    const glinda::KernelEstimate estimate = estimate_for(
        app_.single_kernel_factory(k), true, nk, kFirstAccelerator);
    decisions.push_back(model.solve(estimate, nk));
  }

  app_.reset_data();
  const auto submit = [&](rt::Program& program, std::size_t index,
                          rt::KernelId) {
    submit_split(program, index, decisions[index].gpu_items,
                 kFirstAccelerator);
  };
  // SP-Varied requires inter-kernel synchronization by construction.
  const rt::Program program =
      app_.build_program(submit, /*sync_between_kernels=*/true);
  return finalize(StrategyKind::kSPVaried, measured_execute_pinned(program),
                  std::move(decisions));
}

/// SP-Varied generalized: every kernel gets its own vector split across
/// all devices, with the inter-kernel synchronization SP-Varied implies.
StrategyResult StrategyRunner::run_sp_varied_multi() {
  const std::size_t device_count = app_.executor().platform().device_count();
  std::vector<glinda::MultiPartitionDecision> decisions;
  decisions.reserve(app_.kernels().size());
  for (std::size_t k = 0; k < app_.kernels().size(); ++k) {
    const std::int64_t nk = app_.items_of(k);
    if (nk < 4) {
      // Too narrow to profile or to feed an accelerator: all on the CPU.
      glinda::MultiPartitionDecision tiny;
      tiny.items_per_device.assign(device_count, 0);
      tiny.items_per_device[hw::kCpuDevice] = nk;
      decisions.push_back(std::move(tiny));
      continue;
    }
    const glinda::MultiDeviceEstimate estimate = multi_estimate_for(
        app_.single_kernel_factory(k), /*transfer_on_critical_path=*/true,
        nk);
    decisions.push_back(
        glinda::solve_multi_partition(estimate, nk, options_.partition));
  }

  app_.reset_data();
  const auto submit = [&](rt::Program& program, std::size_t index,
                          rt::KernelId) {
    submit_multi_split(program, index, decisions[index].items_per_device);
  };
  const rt::Program program =
      app_.build_program(submit, /*sync_between_kernels=*/true);
  StrategyResult result = finalize(StrategyKind::kSPVaried,
                                   measured_execute_pinned(program), {});
  result.multi_decisions = std::move(decisions);
  return result;
}

RateTable StrategyRunner::probe_rates(int instances_per_pair) const {
  // Each probe runs in a fresh memory state, so the observed rate includes
  // the transfer latencies a real instance pays.
  RateTable rates;
  const std::size_t devices = app_.executor().platform().device_count();
  for (std::size_t k = 0; k < app_.kernels().size(); ++k) {
    const rt::KernelId kernel = app_.kernels()[k];
    const std::int64_t chunk = std::max<std::int64_t>(
        1, app_.items_of(k) / options_.task_count);
    for (hw::DeviceId device = 0; device < devices; ++device) {
      double rate = 0.0;
      for (int probe = 0; probe < instances_per_pair; ++probe) {
        rt::Program probe_program;
        probe_program.submit(kernel, 0, chunk, device);
        probe_program.taskwait();
        const rt::ExecutionReport probe_report =
            app_.executor().execute_pinned(probe_program);
        const double seconds = to_seconds(probe_report.makespan);
        if (seconds > 0.0) rate = static_cast<double>(chunk) / seconds;
      }
      if (rate > 0.0) rates[{kernel, device}] = rate;
    }
  }
  return rates;
}

StrategyResult StrategyRunner::run_sp_dag() {
  require_accelerator();
  // Profile every (kernel, device) pair, plan the chunked task graph with
  // the HEFT-style planner, and execute the fully pinned result.
  const RateTable rates = probe_rates(options_.dp_perf_profile_instances);
  const int m = options_.task_count;
  const auto submit = [&](rt::Program& program, std::size_t index,
                          rt::KernelId k) {
    program.submit_chunked(k, 0, app_.items_of(index), m);
  };
  const rt::Program unpinned =
      app_.build_program(submit, options_.sync_between_kernels);

  DagPlanner planner(app_.executor().platform(), rates);
  const DagPlan plan = planner.plan(app_.executor().kernels(), unpinned);
  const rt::Program pinned = planner.apply(unpinned, plan);

  app_.reset_data();
  return finalize(StrategyKind::kSPDag, measured_execute_pinned(pinned),
                  {});
}

StrategyResult StrategyRunner::run_dp(StrategyKind kind) {
  require_accelerator();
  const int m = options_.task_count;
  const auto submit = [&](rt::Program& program, std::size_t index,
                          rt::KernelId k) {
    program.submit_chunked(k, 0, app_.items_of(index), m);
  };
  const rt::Program program =
      app_.build_program(submit, options_.sync_between_kernels);

  if (kind == StrategyKind::kDPDep) {
    rt::BreadthFirstScheduler scheduler;
    return finalize(kind, measured_execute(program, scheduler), {});
  }

  // DP-Perf: the profiling phase gives each device 3 task instances of the
  // dynamic task size per kernel; it is excluded from the reported time
  // (paper Section IV-A2).
  rt::PerfAwareScheduler scheduler;
  for (const auto& [pair, rate] :
       probe_rates(options_.dp_perf_profile_instances)) {
    scheduler.seed_estimate(pair.first, pair.second, rate);
  }
  app_.reset_data();
  return finalize(kind, measured_execute(program, scheduler), {});
}

}  // namespace hetsched::strategies
