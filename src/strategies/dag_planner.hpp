#pragma once

#include <map>
#include <vector>

#include "hw/platform.hpp"
#include "runtime/program.hpp"
#include "runtime/task_graph.hpp"

/// Static DAG planning (extension beyond the paper's five strategies).
///
/// For Class V the paper notes that applying static partitioning "may be
/// possible ... but this requires adding extra synchronization point(s),
/// and may or may not bring in performance improvement". This planner takes
/// the other static route: no synchronization at all — a HEFT-style list
/// schedule over the *task-instance graph*. Tasks are ranked by upward rank
/// (critical-path distance to the sinks) and assigned, in rank order, to
/// the device minimizing their earliest finish time, accounting for
/// cross-device transfer of their inputs. The result is a fully pinned
/// program the executor runs without any scheduler.
///
/// bench/ext_mk_dag compares it against the dynamic strategies the paper
/// recommends for this class.
namespace hetsched::strategies {

/// Profiled whole-lane throughput, items/s, per (kernel, device).
using RateTable = std::map<std::pair<rt::KernelId, hw::DeviceId>, double>;

struct DagPlan {
  /// Pinned device per kernel-task, indexed by the task's position among
  /// kernel submissions (program order).
  std::vector<hw::DeviceId> assignment;
  /// Planner's predicted makespan, seconds.
  double predicted_seconds = 0.0;
  /// Tasks assigned per device (diagnostics).
  std::vector<std::size_t> tasks_per_device;
};

class DagPlanner {
 public:
  /// `rates[(k, d)]` must be present for every kernel in the program and
  /// every device of the platform.
  DagPlanner(const hw::PlatformSpec& platform, RateTable rates);

  /// Plans the unpinned `program` (built against `kernels`) and returns the
  /// assignment. Barriers and host ops are left alone.
  DagPlan plan(const std::vector<rt::KernelDef>& kernels,
               const rt::Program& program) const;

  /// Convenience: re-emits `program` with the plan's pins applied.
  rt::Program apply(const rt::Program& program, const DagPlan& plan) const;

 private:
  double rate_of(rt::KernelId kernel, hw::DeviceId device) const;
  double task_seconds(const rt::TaskNode& node, hw::DeviceId device) const;
  double transfer_seconds(const rt::TaskNode& node) const;

  hw::PlatformSpec platform_;
  RateTable rates_;
};

}  // namespace hetsched::strategies
