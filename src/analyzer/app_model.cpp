#include "analyzer/app_model.hpp"

#include <algorithm>
#include <queue>

namespace hetsched::analyzer {

const char* app_class_name(AppClass cls) {
  switch (cls) {
    case AppClass::kSKOne: return "SK-One";
    case AppClass::kSKLoop: return "SK-Loop";
    case AppClass::kMKSeq: return "MK-Seq";
    case AppClass::kMKLoop: return "MK-Loop";
    case AppClass::kMKDag: return "MK-DAG";
  }
  return "unknown";
}

KernelGraph KernelGraph::sequence(std::vector<std::string> names,
                                  bool main_loop) {
  KernelGraph graph;
  graph.kernels.reserve(names.size());
  for (auto& name : names) graph.kernels.push_back({std::move(name), false});
  for (std::size_t i = 0; i + 1 < graph.kernels.size(); ++i)
    graph.flow.emplace_back(i, i + 1);
  graph.main_loop = main_loop;
  return graph;
}

KernelGraph KernelGraph::single(std::string name, bool looped) {
  KernelGraph graph;
  graph.kernels.push_back({std::move(name), looped});
  return graph;
}

void KernelGraph::validate() const {
  HS_REQUIRE(!kernels.empty(), "application must have at least one kernel");
  for (const auto& [from, to] : flow) {
    HS_REQUIRE(from < kernels.size() && to < kernels.size(),
               "flow edge (" << from << ", " << to
                             << ") references unknown kernel");
    HS_REQUIRE(from != to,
               "kernel self-edges are expressed as inner_loop, not flow");
  }
  // Acyclicity (Kahn). A time-stepping loop is main_loop, not a flow cycle.
  std::vector<std::size_t> indegree(kernels.size(), 0);
  for (const auto& [from, to] : flow) {
    (void)from;
    ++indegree[to];
  }
  std::queue<std::size_t> frontier;
  for (std::size_t k = 0; k < kernels.size(); ++k)
    if (indegree[k] == 0) frontier.push(k);
  std::size_t visited = 0;
  std::vector<std::vector<std::size_t>> successors(kernels.size());
  for (const auto& [from, to] : flow) successors[from].push_back(to);
  while (!frontier.empty()) {
    const std::size_t k = frontier.front();
    frontier.pop();
    ++visited;
    for (std::size_t succ : successors[k])
      if (--indegree[succ] == 0) frontier.push(succ);
  }
  HS_REQUIRE(visited == kernels.size(),
             "kernel flow contains a cycle; model iteration with main_loop");
}

StructureAnalysis analyze_structure(const KernelGraph& graph) {
  graph.validate();
  StructureAnalysis analysis;
  analysis.kernel_count = graph.kernel_count();
  analysis.main_loop = graph.main_loop;
  for (const KernelNode& kernel : graph.kernels)
    analysis.any_inner_loop |= kernel.inner_loop;

  // Degree counting over deduplicated edges.
  std::vector<std::size_t> indegree(graph.kernel_count(), 0);
  std::vector<std::size_t> outdegree(graph.kernel_count(), 0);
  std::vector<std::pair<std::size_t, std::size_t>> edges = graph.flow;
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  for (const auto& [from, to] : edges) {
    ++outdegree[from];
    ++indegree[to];
  }
  for (std::size_t k = 0; k < graph.kernel_count(); ++k)
    analysis.has_branching |= indegree[k] > 1 || outdegree[k] > 1;

  // A chain: exactly n-1 edges, no branching, one source, one sink —
  // which for an acyclic graph means a single linear path over all kernels.
  std::size_t sources = 0, sinks = 0;
  for (std::size_t k = 0; k < graph.kernel_count(); ++k) {
    if (indegree[k] == 0) ++sources;
    if (outdegree[k] == 0) ++sinks;
  }
  analysis.is_chain = !analysis.has_branching &&
                      edges.size() + 1 == graph.kernel_count() &&
                      sources == 1 && sinks == 1;
  if (graph.kernel_count() == 1) analysis.is_chain = true;
  return analysis;
}

DagProfile profile_dag(const KernelGraph& graph) {
  graph.validate();
  DagProfile profile;
  const std::size_t count = graph.kernel_count();

  // Level of each kernel = 1 + max level over predecessors (long-path
  // layering). Edges point acyclically, but not necessarily forward in
  // index order, so iterate to a fixed point (bounded by the kernel count;
  // the graph is validated acyclic above).
  std::vector<std::size_t> level(count, 0);
  for (std::size_t round = 0; round < count; ++round) {
    bool changed = false;
    for (const auto& [from, to] : graph.flow) {
      if (level[to] < level[from] + 1) {
        level[to] = level[from] + 1;
        changed = true;
      }
    }
    if (!changed) break;
  }

  std::size_t deepest = 0;
  for (std::size_t k = 0; k < count; ++k) deepest = std::max(deepest, level[k]);
  profile.depth = deepest + 1;
  profile.level_widths.assign(profile.depth, 0);
  for (std::size_t k = 0; k < count; ++k) ++profile.level_widths[level[k]];
  for (std::size_t width : profile.level_widths)
    profile.max_width = std::max(profile.max_width, width);
  profile.parallelism =
      static_cast<double>(count) / static_cast<double>(profile.depth);
  return profile;
}

AppClass classify(const KernelGraph& graph) {
  const StructureAnalysis analysis = analyze_structure(graph);
  if (analysis.kernel_count == 1) {
    const bool looped = analysis.main_loop || analysis.any_inner_loop;
    return looped ? AppClass::kSKLoop : AppClass::kSKOne;
  }
  if (!analysis.is_chain) return AppClass::kMKDag;
  return analysis.main_loop ? AppClass::kMKLoop : AppClass::kMKSeq;
}

}  // namespace hetsched::analyzer
