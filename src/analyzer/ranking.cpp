#include "analyzer/ranking.hpp"

#include <cctype>

#include "common/error.hpp"

namespace hetsched::analyzer {

const char* strategy_name(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kSPSingle: return "SP-Single";
    case StrategyKind::kSPUnified: return "SP-Unified";
    case StrategyKind::kSPVaried: return "SP-Varied";
    case StrategyKind::kDPPerf: return "DP-Perf";
    case StrategyKind::kDPDep: return "DP-Dep";
    case StrategyKind::kOnlyCpu: return "Only-CPU";
    case StrategyKind::kOnlyGpu: return "Only-GPU";
    case StrategyKind::kSPDag: return "SP-DAG";
  }
  return "unknown";
}

StrategyKind strategy_from_name(const std::string& name) {
  static const std::vector<StrategyKind> kAll = {
      StrategyKind::kSPSingle, StrategyKind::kSPUnified,
      StrategyKind::kSPVaried, StrategyKind::kDPPerf,
      StrategyKind::kDPDep,    StrategyKind::kOnlyCpu,
      StrategyKind::kOnlyGpu,  StrategyKind::kSPDag,
  };
  std::string lowered;
  lowered.reserve(name.size());
  for (char ch : name)
    lowered += static_cast<char>(
        std::tolower(static_cast<unsigned char>(ch)));
  for (StrategyKind kind : kAll) {
    std::string candidate = strategy_name(kind);
    for (char& ch : candidate)
      ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
    if (candidate == lowered) return kind;
  }
  throw InvalidArgument("unknown strategy '" + name +
                        "' (sp-single, sp-unified, sp-varied, dp-perf, "
                        "dp-dep, only-cpu, only-gpu, sp-dag)");
}

const std::vector<StrategyKind>& paper_strategies() {
  static const std::vector<StrategyKind> kStrategies = {
      StrategyKind::kSPSingle, StrategyKind::kSPUnified,
      StrategyKind::kSPVaried, StrategyKind::kDPPerf,
      StrategyKind::kDPDep,    StrategyKind::kOnlyCpu,
      StrategyKind::kOnlyGpu,
  };
  return kStrategies;
}

bool is_static_strategy(StrategyKind kind) {
  return kind == StrategyKind::kSPSingle ||
         kind == StrategyKind::kSPUnified ||
         kind == StrategyKind::kSPVaried || kind == StrategyKind::kSPDag;
}

bool is_dynamic_strategy(StrategyKind kind) {
  return kind == StrategyKind::kDPPerf || kind == StrategyKind::kDPDep;
}

std::vector<StrategyKind> ranked_strategies(AppClass cls,
                                            bool inter_kernel_sync) {
  switch (cls) {
    case AppClass::kSKOne:
    case AppClass::kSKLoop:
      // Table I row 1: 1. SP-Single, 2. DP-Perf, 3. DP-Dep.
      return {StrategyKind::kSPSingle, StrategyKind::kDPPerf,
              StrategyKind::kDPDep};
    case AppClass::kMKSeq:
    case AppClass::kMKLoop:
      if (!inter_kernel_sync) {
        // Table I row 2: 1. SP-Unified, 2. DP-Perf, 3. DP-Dep, 4. SP-Varied.
        return {StrategyKind::kSPUnified, StrategyKind::kDPPerf,
                StrategyKind::kDPDep, StrategyKind::kSPVaried};
      }
      // Table I row 3: 1. SP-Varied, 2. DP-Perf, 3. DP-Dep, 4. SP-Unified.
      return {StrategyKind::kSPVaried, StrategyKind::kDPPerf,
              StrategyKind::kDPDep, StrategyKind::kSPUnified};
    case AppClass::kMKDag:
      // Table I row 4: 1. DP-Perf, 2. DP-Dep.
      return {StrategyKind::kDPPerf, StrategyKind::kDPDep};
  }
  return {};
}

RankingExpectation ranking_expectation(AppClass cls, bool inter_kernel_sync) {
  RankingExpectation expectation;
  expectation.order = ranked_strategies(cls, inter_kernel_sync);
  switch (cls) {
    case AppClass::kSKOne:
    case AppClass::kSKLoop:
      // P2: SP-Single > DP-Perf >= DP-Dep.
      expectation.strict = {true, false};
      break;
    case AppClass::kMKSeq:
    case AppClass::kMKLoop:
      // P3: first strictly beats the dynamic pair; ties allowed inside.
      expectation.strict = {true, false, false};
      break;
    case AppClass::kMKDag:
      // P1 only: DP-Perf >= DP-Dep.
      expectation.strict = {false};
      break;
  }
  return expectation;
}

std::string ranking_rationale(AppClass cls, bool inter_kernel_sync) {
  switch (cls) {
    case AppClass::kSKOne:
    case AppClass::kSKLoop:
      return "Proposition 2: SP-Single determines the optimal partitioning "
             "with a perfect execution overlap; a performance-aware dynamic "
             "scheduler may find the same split but still pays runtime "
             "scheduling overhead, and DP-Dep cannot distinguish device "
             "capabilities (Proposition 1).";
    case AppClass::kMKSeq:
    case AppClass::kMKLoop:
      if (!inter_kernel_sync) {
        return "Proposition 3(1): without inter-kernel synchronization, "
               "SP-Unified fuses the kernels, preserves per-device data "
               "locality, and transfers only once in and once out. "
               "SP-Varied would add synchronization points and transfers it "
               "does not need, so it ranks last, below both dynamic "
               "strategies.";
      }
      return "Proposition 3(2): with inter-kernel synchronization the flow "
             "is segmented; SP-Varied gives each segment its optimal "
             "partitioning. SP-Unified fixes one split regardless of kernel "
             "differences and risks severe imbalance, ranking below the "
             "dynamic strategies.";
    case AppClass::kMKDag:
      return "The execution flow is too dynamic for a static split; the "
             "feasible strategies are the dynamic ones, and by Proposition "
             "1 the performance-aware policy ranks first.";
  }
  return "";
}

}  // namespace hetsched::analyzer
