#include "analyzer/matchmaker.hpp"

#include <sstream>

namespace hetsched::analyzer {

MatchResult Matchmaker::match(const AppDescriptor& app) const {
  MatchResult result;
  result.app_class = classify(app.structure);
  result.inter_kernel_sync = app.inter_kernel_sync();
  result.ranking =
      ranked_strategies(result.app_class, result.inter_kernel_sync);
  HS_ASSERT_MSG(!result.ranking.empty(),
                "no suitable strategy for class "
                    << app_class_name(result.app_class));
  result.best = result.ranking.front();
  result.rationale =
      ranking_rationale(result.app_class, result.inter_kernel_sync);
  return result;
}

std::string Matchmaker::explain(const AppDescriptor& app) const {
  const MatchResult result = match(app);
  std::ostringstream os;
  os << "application: " << app.name << "\n";
  os << "  kernels: " << app.structure.kernel_count();
  if (app.structure.main_loop) os << " (iterated in a main loop)";
  os << "\n";
  os << "  class: " << app_class_name(result.app_class) << "\n";
  os << "  inter-kernel sync: " << (result.inter_kernel_sync ? "yes" : "no");
  switch (app.sync) {
    case SyncReason::kHostPostProcessing:
      os << " (host post-processing of intermediate outputs)";
      break;
    case SyncReason::kRepartitioning:
      os << " (outputs reassembled for the next kernel)";
      break;
    case SyncReason::kNone:
      break;
  }
  os << "\n  ranking:";
  for (std::size_t i = 0; i < result.ranking.size(); ++i)
    os << " " << (i + 1) << "." << strategy_name(result.ranking[i]);
  os << "\n  selected: " << strategy_name(result.best) << "\n";
  os << "  rationale: " << result.rationale << "\n";
  if (result.app_class == AppClass::kMKDag) {
    // Refined Class V analysis (the paper's future work).
    const DagProfile profile = profile_dag(app.structure);
    os << "  DAG profile: depth " << profile.depth << ", max width "
       << profile.max_width << ", parallelism "
       << profile.parallelism << "x — "
       << (profile.wide()
               ? "wide levels exist: level-wise static partitioning (the "
                 "SP-DAG planner) is worth trying against DP-Perf"
               : "narrow chain-like DAG: stay with dynamic scheduling")
       << "\n";
  }
  return os.str();
}

}  // namespace hetsched::analyzer
