#pragma once

#include <map>
#include <string>
#include <vector>

#include "analyzer/app_model.hpp"

/// A catalog of data-parallel applications from five public benchmark
/// suites, with their kernel structures.
///
/// The paper's classification is grounded in a study of 86 applications
/// across five suites (tech report [18], unavailable); this catalog
/// reconstructs that survey from the suites' public documentation: Rodinia,
/// Parboil, SHOC, the NVIDIA OpenCL SDK and the Mont-Blanc benchmarks. It
/// exists to validate, mechanically, the paper's claim that the five classes
/// cover every studied application — `classify` must succeed on each entry
/// and the distribution must span all five classes.
namespace hetsched::analyzer {

struct CatalogEntry {
  std::string name;
  std::string suite;
  KernelGraph structure;
  SyncReason sync = SyncReason::kNone;
};

/// All 86 catalog entries.
const std::vector<CatalogEntry>& application_catalog();

/// Class -> number of catalog applications in it.
std::map<AppClass, std::size_t> catalog_class_distribution();

}  // namespace hetsched::analyzer
