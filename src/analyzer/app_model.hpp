#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"

/// Application kernel-structure model and classification (paper Section
/// III-B).
///
/// An application is described by its kernels and their execution flow. Two
/// criteria classify it: the number of kernels, and the flow type (sequence,
/// loop, or full DAG). Per the paper, a loop around *individual* kernels is
/// unfolded and does not affect the class; only a loop around the whole
/// kernel sequence ("main loop") does.
namespace hetsched::analyzer {

/// The paper's five application classes (Figure 3).
enum class AppClass {
  kSKOne,   ///< Class I: one kernel, executed once
  kSKLoop,  ///< Class II: one kernel, iterated in a loop
  kMKSeq,   ///< Class III: multiple kernels in a sequence
  kMKLoop,  ///< Class IV: multiple kernels in a sequence inside a loop
  kMKDag,   ///< Class V: multiple kernels forming a DAG
};

const char* app_class_name(AppClass cls);

struct KernelNode {
  std::string name;
  /// This kernel alone iterates in its own loop (unfolded for
  /// classification purposes — paper Section III-B).
  bool inner_loop = false;
};

/// Kernel execution flow graph.
struct KernelGraph {
  std::vector<KernelNode> kernels;
  /// Directed flow edges (from kernel index, to kernel index).
  std::vector<std::pair<std::size_t, std::size_t>> flow;
  /// The entire kernel structure iterates (time-stepping main loop).
  bool main_loop = false;

  std::size_t kernel_count() const { return kernels.size(); }

  /// Builds a linear sequence k0 -> k1 -> ... -> kn-1.
  static KernelGraph sequence(std::vector<std::string> names,
                              bool main_loop = false);

  /// Builds a single-kernel graph.
  static KernelGraph single(std::string name, bool looped = false);

  void validate() const;
};

/// Structural facts extracted from a KernelGraph (the classifier's working
/// representation; exposed for diagnostics and tests).
struct StructureAnalysis {
  std::size_t kernel_count = 0;
  bool is_chain = false;   ///< the flow is one linear path over all kernels
  bool has_branching = false;
  bool main_loop = false;
  bool any_inner_loop = false;
};

StructureAnalysis analyze_structure(const KernelGraph& graph);

/// Refined Class V analysis (the paper's stated future work: "investigate
/// the possibility to refine the classification of MK-DAG applications for
/// a better selection of their preferred partitioning").
///
/// Characterizes a kernel DAG by its critical-path depth and level widths:
/// a WIDE, SHALLOW DAG behaves like independent sequences (level-wise
/// static partitioning can work: each level is an MK-Seq moment); a
/// NARROW, DEEP DAG serializes and only dynamic scheduling can exploit
/// what little inter-kernel parallelism exists.
struct DagProfile {
  /// Longest path length in kernels (levels).
  std::size_t depth = 0;
  /// Largest number of kernels sharing a level (peak kernel parallelism).
  std::size_t max_width = 0;
  /// Kernels per level, in topological order.
  std::vector<std::size_t> level_widths;
  /// kernels / depth: > 1 means real inter-kernel parallelism exists.
  double parallelism = 0.0;

  /// True when level-wise static partitioning is worth considering
  /// (some level holds 2+ independent kernels).
  bool wide() const { return max_width >= 2; }
};

DagProfile profile_dag(const KernelGraph& graph);

/// Classifies an application by its kernel structure. Throws
/// InvalidArgument if the graph is malformed (cycles in flow edges, edges
/// out of range, no kernels).
AppClass classify(const KernelGraph& graph);

/// Why an application requires inter-kernel synchronization (paper Section
/// III-C, SP-Varied discussion).
enum class SyncReason {
  kNone,               ///< no synchronization between kernels
  kHostPostProcessing, ///< the host consumes intermediate kernel outputs
  kRepartitioning,     ///< outputs must be reassembled for the next kernel
};

/// A full application description as the analyzer consumes it.
struct AppDescriptor {
  std::string name;
  KernelGraph structure;
  SyncReason sync = SyncReason::kNone;

  bool inter_kernel_sync() const { return sync != SyncReason::kNone; }
};

}  // namespace hetsched::analyzer
