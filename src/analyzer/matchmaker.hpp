#pragma once

#include <string>
#include <vector>

#include "analyzer/app_model.hpp"
#include "analyzer/ranking.hpp"
#include "analyzer/strategy.hpp"

/// The application analyzer (paper Section III, Figure 2): takes an
/// application description, determines its class, and selects the best
/// performing partitioning strategy for it.
namespace hetsched::analyzer {

struct MatchResult {
  AppClass app_class = AppClass::kSKOne;
  bool inter_kernel_sync = false;
  /// Suitable strategies, best first (Table I row for the class).
  std::vector<StrategyKind> ranking;
  /// The analyzer's selection: ranking.front().
  StrategyKind best = StrategyKind::kSPSingle;
  /// Theoretical justification (Propositions 1-3).
  std::string rationale;
};

class Matchmaker {
 public:
  /// Steps (2)-(3) of Figure 2: analyze the kernel structure, identify the
  /// class, and select the best ranked strategy for that class.
  MatchResult match(const AppDescriptor& app) const;

  /// Multi-line human-readable report of a match (examples use this).
  std::string explain(const AppDescriptor& app) const;
};

}  // namespace hetsched::analyzer
