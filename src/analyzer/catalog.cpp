#include "analyzer/catalog.hpp"

namespace hetsched::analyzer {

namespace {

CatalogEntry single(std::string suite, std::string name,
                    std::string kernel) {
  return {std::move(name), std::move(suite),
          KernelGraph::single(std::move(kernel), false), SyncReason::kNone};
}

CatalogEntry single_loop(std::string suite, std::string name,
                         std::string kernel,
                         SyncReason sync = SyncReason::kHostPostProcessing) {
  return {std::move(name), std::move(suite),
          KernelGraph::single(std::move(kernel), true), sync};
}

CatalogEntry seq(std::string suite, std::string name,
                 std::vector<std::string> kernels,
                 SyncReason sync = SyncReason::kNone) {
  return {std::move(name), std::move(suite),
          KernelGraph::sequence(std::move(kernels), false), sync};
}

CatalogEntry seq_loop(std::string suite, std::string name,
                      std::vector<std::string> kernels,
                      SyncReason sync = SyncReason::kNone) {
  return {std::move(name), std::move(suite),
          KernelGraph::sequence(std::move(kernels), true), sync};
}

CatalogEntry dag(std::string suite, std::string name,
                 std::vector<std::string> kernels,
                 std::vector<std::pair<std::size_t, std::size_t>> flow,
                 bool main_loop = false) {
  KernelGraph graph;
  for (auto& kernel : kernels) graph.kernels.push_back({std::move(kernel)});
  graph.flow = std::move(flow);
  graph.main_loop = main_loop;
  return {std::move(name), std::move(suite), std::move(graph),
          SyncReason::kNone};
}

std::vector<CatalogEntry> build_catalog() {
  std::vector<CatalogEntry> entries;
  entries.reserve(86);

  // --- Rodinia (20) ------------------------------------------------------
  entries.push_back(single_loop("rodinia", "hotspot", "stencil_step"));
  entries.push_back(single_loop("rodinia", "srad", "diffusion_step"));
  entries.push_back(seq_loop("rodinia", "kmeans",
                             {"assign_clusters", "update_centroids"},
                             SyncReason::kHostPostProcessing));
  entries.push_back(single_loop("rodinia", "bfs", "frontier_expand"));
  entries.push_back(seq_loop("rodinia", "cfd",
                             {"compute_flux", "time_step"},
                             SyncReason::kRepartitioning));
  entries.push_back(single("rodinia", "nn", "nearest_neighbor"));
  entries.push_back(single_loop("rodinia", "lavamd", "particle_forces"));
  entries.push_back(seq("rodinia", "backprop",
                        {"layer_forward", "adjust_weights"},
                        SyncReason::kHostPostProcessing));
  entries.push_back(single_loop("rodinia", "pathfinder", "dynproc_row"));
  entries.push_back(single_loop("rodinia", "needle", "anti_diagonal"));
  entries.push_back(single("rodinia", "gaussian", "row_eliminate"));
  entries.push_back(seq_loop("rodinia", "streamcluster",
                             {"compute_gain", "open_center"},
                             SyncReason::kHostPostProcessing));
  entries.push_back(single_loop("rodinia", "particlefilter",
                                "likelihood_update"));
  entries.push_back(single_loop("rodinia", "leukocyte", "track_cells"));
  entries.push_back(single_loop("rodinia", "heartwall", "track_points"));
  entries.push_back(seq("rodinia", "lud",
                        {"lud_diagonal", "lud_perimeter", "lud_internal"},
                        SyncReason::kRepartitioning));
  entries.push_back(single_loop("rodinia", "myocyte", "ode_solver_step"));
  entries.push_back(single("rodinia", "dwt2d", "wavelet_transform"));
  entries.push_back(dag("rodinia", "mummergpu",
                        {"build_tree", "match_queries", "print_alignment"},
                        {{0, 1}, {0, 2}, {1, 2}}));
  entries.push_back(seq_loop("rodinia", "b+tree",
                             {"find_k", "find_range"}));

  // --- Parboil (11) ------------------------------------------------------
  entries.push_back(single("parboil", "sgemm", "sgemm_tile"));
  entries.push_back(single("parboil", "stencil-7pt", "stencil_jacobi"));
  entries.push_back(single_loop("parboil", "mri-gridding", "grid_sample"));
  entries.push_back(seq("parboil", "mri-q",
                        {"compute_phi_mag", "compute_q"}));
  entries.push_back(single("parboil", "sad", "block_sad"));
  entries.push_back(seq("parboil", "spmv",
                        {"format_convert", "spmv_jds"},
                        SyncReason::kHostPostProcessing));
  entries.push_back(single_loop("parboil", "cutcp", "cutoff_potential"));
  entries.push_back(single("parboil", "tpacf", "angular_correlation"));
  entries.push_back(seq("parboil", "histo",
                        {"histo_prescan", "histo_main", "histo_final"},
                        SyncReason::kRepartitioning));
  entries.push_back(seq_loop("parboil", "lbm",
                             {"stream_collide", "boundary"},
                             SyncReason::kRepartitioning));
  entries.push_back(dag("parboil", "bfs-queue",
                        {"frontier_scan", "queue_compact", "visit"},
                        {{0, 1}, {1, 2}, {0, 2}}, true));

  // --- SHOC (12) ---------------------------------------------------------
  entries.push_back(single("shoc", "bus_speed", "memcpy_probe"));
  entries.push_back(single("shoc", "max_flops", "flops_probe"));
  entries.push_back(single("shoc", "device_memory", "bandwidth_probe"));
  entries.push_back(seq("shoc", "triad", {"triad"}));
  entries.push_back(single("shoc", "reduction", "tree_reduce"));
  entries.push_back(seq("shoc", "scan", {"scan_block", "scan_top",
                                         "scan_bottom"},
                        SyncReason::kRepartitioning));
  entries.push_back(seq("shoc", "sort",
                        {"radix_count", "radix_scan", "radix_scatter"},
                        SyncReason::kRepartitioning));
  entries.push_back(single("shoc", "spmv-csr", "spmv_csr"));
  entries.push_back(single("shoc", "md", "lj_force"));
  entries.push_back(seq_loop("shoc", "s3d",
                             {"rates", "diffusion", "integrate"},
                             SyncReason::kNone));
  entries.push_back(single_loop("shoc", "stencil2d", "stencil_9pt"));
  entries.push_back(seq("shoc", "fft", {"fft_radix", "fft_transpose"},
                        SyncReason::kRepartitioning));

  // --- NVIDIA OpenCL SDK (28) -------------------------------------------
  entries.push_back(single("nvidia-sdk", "matrixmul", "matmul_tile"));
  entries.push_back(single("nvidia-sdk", "blackscholes", "black_scholes"));
  entries.push_back(single("nvidia-sdk", "vectoradd", "vec_add"));
  entries.push_back(single("nvidia-sdk", "dotproduct", "dot"));
  entries.push_back(single("nvidia-sdk", "matvecmul", "matvec"));
  entries.push_back(single("nvidia-sdk", "transpose", "transpose_tile"));
  entries.push_back(single("nvidia-sdk", "convolution-separable",
                           "conv_row_col"));
  entries.push_back(single("nvidia-sdk", "dct8x8", "dct_block"));
  entries.push_back(single("nvidia-sdk", "dxtc", "dxt_compress"));
  entries.push_back(single("nvidia-sdk", "histogram", "hist256"));
  entries.push_back(single("nvidia-sdk", "mersenne-twister", "mt_rand"));
  entries.push_back(seq("nvidia-sdk", "monte-carlo",
                        {"path_generate", "path_reduce"}));
  entries.push_back(single_loop("nvidia-sdk", "nbody", "body_body_force",
                                SyncReason::kRepartitioning));
  entries.push_back(single("nvidia-sdk", "oclBandwidthTest", "copy_probe"));
  entries.push_back(seq("nvidia-sdk", "box-filter",
                        {"box_row", "box_col"},
                        SyncReason::kRepartitioning));
  entries.push_back(seq("nvidia-sdk", "sobel", {"gradient", "magnitude"}));
  entries.push_back(single("nvidia-sdk", "median-filter", "median3x3"));
  entries.push_back(seq("nvidia-sdk", "radix-sort",
                        {"radix_blocks", "radix_scan", "radix_reorder"},
                        SyncReason::kRepartitioning));
  entries.push_back(seq("nvidia-sdk", "bitonic-sort",
                        {"bitonic_local", "bitonic_global"},
                        SyncReason::kRepartitioning));
  entries.push_back(single("nvidia-sdk", "scalarprod", "scalar_prod"));
  entries.push_back(single_loop("nvidia-sdk", "simple-gl", "sine_wave",
                                SyncReason::kNone));
  entries.push_back(single("nvidia-sdk", "quasirandom", "sobol_generate"));
  entries.push_back(seq("nvidia-sdk", "eigenvalues",
                        {"bisect_large", "bisect_small"},
                        SyncReason::kHostPostProcessing));
  entries.push_back(single("nvidia-sdk", "tridiagonal", "cyclic_reduce"));
  entries.push_back(seq_loop("nvidia-sdk", "fdtd3d", {"fdtd_step"}));
  entries.push_back(single("nvidia-sdk", "volume-render", "ray_march"));
  entries.push_back(dag("nvidia-sdk", "ocean-fft",
                        {"spectrum_update", "fft_rows", "fft_cols",
                         "height_normal"},
                        {{0, 1}, {0, 2}, {1, 3}, {2, 3}}, true));
  entries.push_back(single_loop("nvidia-sdk", "particles",
                                "collide_integrate",
                                SyncReason::kRepartitioning));

  // --- Mont-Blanc (15) ---------------------------------------------------
  entries.push_back(single("mont-blanc", "vector-operation", "axpy"));
  entries.push_back(single("mont-blanc", "2d-convolution", "conv2d"));
  entries.push_back(seq_loop("mont-blanc", "stream",
                             {"copy", "scale", "add", "triad"}));
  entries.push_back(single_loop("mont-blanc", "nbody-mb", "force_step",
                                SyncReason::kRepartitioning));
  entries.push_back(single("mont-blanc", "atomic-monte-carlo", "mc_walk"));
  entries.push_back(single("mont-blanc", "3d-stencil", "stencil27"));
  entries.push_back(single("mont-blanc", "reduction-mb", "block_reduce"));
  entries.push_back(single("mont-blanc", "histogram-mb", "hist_local"));
  entries.push_back(seq("mont-blanc", "merge-sort",
                        {"sort_blocks", "merge_pass"},
                        SyncReason::kRepartitioning));
  entries.push_back(single("mont-blanc", "dense-matmul", "dmm_block"));
  entries.push_back(single_loop("mont-blanc", "heat-equation",
                                "jacobi_step"));
  entries.push_back(seq_loop("mont-blanc", "cg-solver",
                             {"spmv", "axpy_update", "dot_residual"},
                             SyncReason::kHostPostProcessing));
  entries.push_back(single("mont-blanc", "fft-1d", "fft_stage"));
  entries.push_back(dag("mont-blanc", "cholesky-task",
                        {"potrf", "trsm", "syrk", "gemm"},
                        {{0, 1}, {1, 2}, {1, 3}, {2, 3}}, true));
  entries.push_back(dag("mont-blanc", "qr-task",
                        {"geqrt", "larfb", "tpqrt", "tpmqrt"},
                        {{0, 1}, {0, 2}, {1, 3}, {2, 3}}, true));

  return entries;
}

}  // namespace

const std::vector<CatalogEntry>& application_catalog() {
  static const std::vector<CatalogEntry> catalog = build_catalog();
  return catalog;
}

std::map<AppClass, std::size_t> catalog_class_distribution() {
  std::map<AppClass, std::size_t> distribution;
  for (const CatalogEntry& entry : application_catalog())
    ++distribution[classify(entry.structure)];
  return distribution;
}

}  // namespace hetsched::analyzer
