#pragma once

#include <string>
#include <vector>

/// The five partitioning strategies (paper Section III-C) plus the two
/// single-device baselines the evaluation compares against.
namespace hetsched::analyzer {

enum class StrategyKind {
  kSPSingle,   ///< static partitioning of a single (possibly looped) kernel
  kSPUnified,  ///< static: all kernels fused, one unified partitioning point
  kSPVaried,   ///< static: per-kernel partitioning points, syncs between
  kDPPerf,     ///< dynamic, performance-aware scheduling
  kDPDep,      ///< dynamic, breadth-first with dependency-chain affinity
  kOnlyCpu,    ///< baseline: all work on the CPU
  kOnlyGpu,    ///< baseline: all work on the GPU
  /// Extension (not in the paper's Table I): static HEFT-style list
  /// schedule of the task-instance DAG — the "static partitioning for
  /// Class V" route the paper mentions as possible but does not evaluate.
  kSPDag,
};

const char* strategy_name(StrategyKind kind);

/// Inverse of `strategy_name`; also accepts the CLI's lower-case spelling
/// ("sp-single"). Throws InvalidArgument on an unknown name.
StrategyKind strategy_from_name(const std::string& name);

/// All strategies of the paper's evaluation: the five partitioning
/// strategies plus the two baselines (SP-DAG, the extension, excluded).
const std::vector<StrategyKind>& paper_strategies();

/// True for SP-*: the partitioning is fixed before execution.
bool is_static_strategy(StrategyKind kind);

/// True for DP-*: partitions are placed at runtime by a scheduler.
bool is_dynamic_strategy(StrategyKind kind);

}  // namespace hetsched::analyzer
