#pragma once

#include <string>
#include <vector>

#include "analyzer/app_model.hpp"
#include "analyzer/strategy.hpp"

/// The paper's Table I: suitable partitioning strategies per application
/// class, ranked by expected performance, with the theoretical justification
/// (Propositions 1-3, Section III-C).
namespace hetsched::analyzer {

/// The ranked list of suitable strategies for an application of class `cls`
/// that does (or does not) require inter-kernel synchronization. Best first.
/// The sync flag is only meaningful for MK-Seq / MK-Loop.
std::vector<StrategyKind> ranked_strategies(AppClass cls,
                                            bool inter_kernel_sync);

/// Human-readable justification of the ranking for the class (the
/// proposition texts), used by the analyzer's explain output.
std::string ranking_rationale(AppClass cls, bool inter_kernel_sync);

/// Proposition checks, exposed so tests and the ranking-validation bench can
/// assert them against empirical results:
///   P1: for all classes,              DP-Perf >= DP-Dep
///   P2: for SK-One / SK-Loop,         SP-Single > DP-Perf >= DP-Dep
///   P3a: MK-Seq / MK-Loop w/o sync,   SP-Unified > DP-Perf >= DP-Dep >= SP-Varied
///   P3b: MK-Seq / MK-Loop w/ sync,    SP-Varied > DP-Perf >= DP-Dep >= SP-Unified
struct RankingExpectation {
  /// Ordered best-to-worst; adjacent pairs may be ">=" (ties allowed) or
  /// strict ">".
  std::vector<StrategyKind> order;
  std::vector<bool> strict;  ///< strict[i]: order[i] strictly beats order[i+1]
};

RankingExpectation ranking_expectation(AppClass cls, bool inter_kernel_sync);

}  // namespace hetsched::analyzer
