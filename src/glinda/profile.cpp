#include "glinda/profile.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace hetsched::glinda {

std::pair<std::int64_t, std::int64_t> Profiler::sample_sizes(
    std::int64_t total_items) const {
  HS_REQUIRE(total_items > 0, "profiling a workload of " << total_items);
  std::int64_t small = std::max<std::int64_t>(
      options_.min_sample_items,
      static_cast<std::int64_t>(static_cast<double>(total_items) *
                                options_.small_fraction));
  std::int64_t large = std::max<std::int64_t>(
      2 * small,
      static_cast<std::int64_t>(static_cast<double>(total_items) *
                                options_.large_fraction));
  small = std::min(small, total_items);
  large = std::min(large, total_items);
  if (large <= small) {
    // Degenerate tiny workload: fall back to halves.
    small = std::max<std::int64_t>(1, total_items / 2);
    large = total_items;
  }
  HS_REQUIRE(large > small,
             "cannot derive two distinct sample sizes from " << total_items);
  return {small, large};
}

Profiler::RawSample Profiler::run_sample(rt::Executor& executor,
                                         const SampleProgramFactory& factory,
                                         hw::DeviceId device,
                                         std::int64_t items) const {
  const rt::Program program = factory(device, 0, items);
  HS_REQUIRE(program.task_count() > 0,
             "sample program factory produced no tasks");
  const rt::ExecutionReport report = executor.execute_pinned(program);

  RawSample sample;
  sample.items = items;
  const rt::DeviceReport& dr = report.devices[device];
  HS_ASSERT_MSG(dr.instances > 0, "sampled device executed nothing");
  // Whole-device wall compute: lane-time sum divided by lane count (lanes
  // run concurrently; profiling programs keep them balanced).
  sample.compute_wall_seconds =
      to_seconds(dr.compute_time) / static_cast<double>(dr.lanes);
  sample.h2d_bytes = static_cast<double>(report.transfers.h2d_bytes);
  sample.d2h_bytes = static_cast<double>(report.transfers.d2h_bytes);
  sample.transfer_seconds = to_seconds(report.transfers.total_time());
  sample.transfer_count =
      report.transfers.h2d_count + report.transfers.d2h_count;
  return sample;
}

DeviceProfile Profiler::profile_device(rt::Executor& executor,
                                       const SampleProgramFactory& factory,
                                       hw::DeviceId device,
                                       std::int64_t total_items) const {
  const auto [small, large] = sample_sizes(total_items);
  const RawSample s1 = run_sample(executor, factory, device, small);
  const RawSample s2 = run_sample(executor, factory, device, large);
  const double di = static_cast<double>(s2.items - s1.items);

  DeviceProfile profile;
  profile.seconds_per_item =
      (s2.compute_wall_seconds - s1.compute_wall_seconds) / di;
  HS_ASSERT_MSG(profile.seconds_per_item > 0.0,
                "non-increasing compute time over sample sizes "
                    << s1.items << " -> " << s2.items);
  profile.fixed_seconds = std::max(
      0.0, s1.compute_wall_seconds -
               profile.seconds_per_item * static_cast<double>(s1.items));
  profile.h2d_bytes_per_item = std::max(0.0, (s2.h2d_bytes - s1.h2d_bytes) / di);
  profile.d2h_bytes_per_item = std::max(0.0, (s2.d2h_bytes - s1.d2h_bytes) / di);
  profile.h2d_fixed_bytes =
      std::max(0.0, s1.h2d_bytes - profile.h2d_bytes_per_item *
                                       static_cast<double>(s1.items));
  profile.d2h_fixed_bytes =
      std::max(0.0, s1.d2h_bytes - profile.d2h_bytes_per_item *
                                       static_cast<double>(s1.items));
  return profile;
}

LinkProfile Profiler::profile_link(rt::Executor& executor,
                                   const SampleProgramFactory& factory,
                                   hw::DeviceId device,
                                   std::int64_t total_items) const {
  const auto [small, large] = sample_sizes(total_items);
  const RawSample s1 = run_sample(executor, factory, device, small);
  const RawSample s2 = run_sample(executor, factory, device, large);

  LinkProfile link;
  const double dbytes =
      (s2.h2d_bytes + s2.d2h_bytes) - (s1.h2d_bytes + s1.d2h_bytes);
  const double dseconds = s2.transfer_seconds - s1.transfer_seconds;
  if (dbytes > 0.0 && dseconds > 0.0) {
    link.bytes_per_second = dbytes / dseconds;
    if (s1.transfer_count > 0) {
      const double per_item_seconds =
          dseconds / dbytes * (s1.h2d_bytes + s1.d2h_bytes);
      link.fixed_seconds_per_transfer =
          std::max(0.0, (s1.transfer_seconds - per_item_seconds) /
                            static_cast<double>(s1.transfer_count));
    }
  }
  return link;
}

}  // namespace hetsched::glinda
