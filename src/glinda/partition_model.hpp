#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "glinda/profile.hpp"

/// The Glinda partitioning model (paper Section II-A, refs [9][10]).
///
/// From the profiled per-item costs the model derives the paper's two key
/// metrics — the *relative hardware capability* R (GPU throughput over CPU
/// throughput) and the *GPU computation to data transfer gap* G (GPU
/// throughput over transfer throughput) — solves for the optimal split, and
/// makes the practical hardware-configuration decision (Only-CPU, Only-GPU,
/// or CPU+GPU with the predicted partitioning).
namespace hetsched::glinda {

/// Everything the model needs about one kernel (or fused kernel sequence)
/// on one platform, in profiled units.
struct KernelEstimate {
  DeviceProfile cpu;
  DeviceProfile gpu;
  /// Link throughput, bytes/s (profiled; falls back to spec if profiling
  /// observed no transfers).
  double link_bytes_per_second = 0.0;
  /// Whether host<->device transfers sit on the critical path of every
  /// execution (true for one-shot kernels and per-iteration-synced loops;
  /// false for loops that keep data resident across iterations).
  bool transfer_on_critical_path = true;

  /// Seconds of transfer per GPU item (0 when off the critical path).
  double transfer_seconds_per_item() const {
    if (!transfer_on_critical_path || link_bytes_per_second <= 0.0) return 0.0;
    return (gpu.h2d_bytes_per_item + gpu.d2h_bytes_per_item) /
           link_bytes_per_second;
  }

  /// Effective GPU seconds per item, including critical-path transfers.
  double gpu_seconds_per_item_effective() const {
    return gpu.seconds_per_item + transfer_seconds_per_item();
  }

  /// Fixed GPU-side seconds (launch + fixed transfers when on the path).
  double gpu_fixed_seconds_effective() const {
    double fixed = gpu.fixed_seconds;
    if (transfer_on_critical_path && link_bytes_per_second > 0.0)
      fixed += (gpu.h2d_fixed_bytes + gpu.d2h_fixed_bytes) /
               link_bytes_per_second;
    return fixed;
  }
};

/// The paper's two derived metrics.
struct PartitionMetrics {
  /// R: ratio of GPU throughput to CPU throughput (compute only).
  double relative_capability = 0.0;
  /// G: ratio of GPU throughput to data-transfer throughput, in items
  /// (how many items the GPU computes in the time one item transfers).
  double compute_transfer_gap = 0.0;
};

PartitionMetrics derive_metrics(const KernelEstimate& estimate);

enum class HardwareConfig { kOnlyCpu, kOnlyGpu, kPartition };

const char* hardware_config_name(HardwareConfig config);

struct PartitionDecision {
  HardwareConfig config = HardwareConfig::kPartition;
  /// Items for each side; gpu_items is rounded up to the device granularity
  /// (warp multiple) and cpu_items = n - gpu_items (paper footnote 5).
  std::int64_t gpu_items = 0;
  std::int64_t cpu_items = 0;
  /// The un-rounded optimum fraction assigned to the GPU.
  double beta = 0.0;
  /// Model-predicted execution times for the three configurations.
  double predicted_partition_seconds = 0.0;
  double predicted_cpu_seconds = 0.0;
  double predicted_gpu_seconds = 0.0;

  double gpu_fraction(std::int64_t n) const {
    return n == 0 ? 0.0
                  : static_cast<double>(gpu_items) / static_cast<double>(n);
  }
};

struct PartitionOptions {
  /// GPU partitions are rounded up to a multiple of this (warp size).
  int gpu_granularity = 32;
  /// A side whose share falls below this fraction cannot use its hardware
  /// efficiently; the decision collapses to the other device (the paper's
  /// "making the decision in practice" step).
  double min_share = 0.02;
};

class PartitionModel {
 public:
  explicit PartitionModel(PartitionOptions options = {})
      : options_(options) {}

  /// Solves the optimal split of `n` uniform items and takes the hardware-
  /// configuration decision.
  PartitionDecision solve(const KernelEstimate& estimate,
                          std::int64_t n) const;

  /// Imbalanced workloads (ref [9]): `prefix_weight(i)` is the total work of
  /// items [0, i) in arbitrary units, non-decreasing. The GPU receives the
  /// contiguous head [0, p); the solver finds p equalizing weighted finish
  /// times.
  PartitionDecision solve_weighted(
      const KernelEstimate& estimate, std::int64_t n,
      const std::function<double(std::int64_t)>& prefix_weight) const;

  /// Predicted makespan of a given split (used by tests and what-if benches).
  double predict_split_seconds(const KernelEstimate& estimate,
                               std::int64_t gpu_items,
                               std::int64_t cpu_items) const;

 private:
  PartitionDecision decide(const KernelEstimate& estimate, std::int64_t n,
                           double beta) const;

  PartitionOptions options_;
};

}  // namespace hetsched::glinda
