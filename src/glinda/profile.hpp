#pragma once

#include <cstdint>
#include <functional>

#include "hw/platform.hpp"
#include "runtime/executor.hpp"

/// Glinda's low-cost profiling step (paper Section II-A, step 2).
///
/// The profiler runs a small fraction of the workload on each device through
/// the runtime and *observes* execution times and transfer volumes — it
/// never reads the cost model's parameters directly, exactly as the paper's
/// profiling observes wall-clock behaviour. Two sample sizes give a linear
/// fit, separating per-item rates from fixed costs (kernel launch, transfer
/// latency, broadcast inputs such as MatrixMul's full B matrix).
namespace hetsched::glinda {

/// Linear cost fit of one device executing one kernel (or kernel sequence).
struct DeviceProfile {
  /// Wall-clock seconds of device compute per work item (whole device: all
  /// CPU lanes working, or the GPU queue).
  double seconds_per_item = 0.0;
  /// Fixed compute seconds per invocation (launch overhead and friends).
  double fixed_seconds = 0.0;
  /// Host->device / device->host traffic per item, bytes.
  double h2d_bytes_per_item = 0.0;
  double d2h_bytes_per_item = 0.0;
  /// Size-independent traffic, bytes (broadcast inputs, whole-problem data).
  double h2d_fixed_bytes = 0.0;
  double d2h_fixed_bytes = 0.0;

  /// Whole-device throughput, items/s.
  double items_per_second() const { return 1.0 / seconds_per_item; }
};

/// Observed link performance (bytes/s end to end, fitted over the sampled
/// transfers; 0 when the samples produced no transfers).
struct LinkProfile {
  double bytes_per_second = 0.0;
  double fixed_seconds_per_transfer = 0.0;
};

/// Builds the program that exercises the workload slice [begin, end) pinned
/// on `device` — a single-kernel app submits one chunk per CPU lane (or one
/// GPU chunk); a multi-kernel app submits its whole kernel sequence over the
/// slice. Must end with a taskwait.
using SampleProgramFactory = std::function<rt::Program(
    hw::DeviceId device, std::int64_t begin, std::int64_t end)>;

struct ProfileOptions {
  /// Fractions of the full problem used for the two sample runs.
  double small_fraction = 0.01;
  double large_fraction = 0.02;
  /// Samples are at least this many items (keeps tiny problems meaningful).
  std::int64_t min_sample_items = 64;
};

class Profiler {
 public:
  explicit Profiler(ProfileOptions options = {}) : options_(options) {}

  /// Profiles `device` executing the factory's program over two sample
  /// sizes. The executor's buffers/kernels must already be registered.
  DeviceProfile profile_device(rt::Executor& executor,
                               const SampleProgramFactory& factory,
                               hw::DeviceId device,
                               std::int64_t total_items) const;

  /// Fits the link from the same two sample runs (uses the H2D+D2H volumes
  /// and times observed while profiling `device`; meaningful for
  /// accelerator devices only).
  LinkProfile profile_link(rt::Executor& executor,
                           const SampleProgramFactory& factory,
                           hw::DeviceId device,
                           std::int64_t total_items) const;

  /// The two sample sizes used for `total_items`.
  std::pair<std::int64_t, std::int64_t> sample_sizes(
      std::int64_t total_items) const;

 private:
  struct RawSample {
    std::int64_t items = 0;
    double compute_wall_seconds = 0.0;
    double h2d_bytes = 0.0;
    double d2h_bytes = 0.0;
    double transfer_seconds = 0.0;
    std::size_t transfer_count = 0;
  };

  RawSample run_sample(rt::Executor& executor,
                       const SampleProgramFactory& factory,
                       hw::DeviceId device, std::int64_t items) const;

  ProfileOptions options_;
};

}  // namespace hetsched::glinda
