#include "glinda/partition_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "obs/phase_profiler.hpp"

namespace hetsched::glinda {

const char* hardware_config_name(HardwareConfig config) {
  switch (config) {
    case HardwareConfig::kOnlyCpu: return "Only-CPU";
    case HardwareConfig::kOnlyGpu: return "Only-GPU";
    case HardwareConfig::kPartition: return "CPU+GPU";
  }
  return "unknown";
}

PartitionMetrics derive_metrics(const KernelEstimate& estimate) {
  HS_REQUIRE(estimate.cpu.seconds_per_item > 0.0 &&
                 estimate.gpu.seconds_per_item > 0.0,
             "metrics need positive per-item costs");
  PartitionMetrics metrics;
  metrics.relative_capability =
      estimate.cpu.seconds_per_item / estimate.gpu.seconds_per_item;
  const double transfer = estimate.transfer_seconds_per_item();
  metrics.compute_transfer_gap =
      transfer <= 0.0 ? 0.0 : transfer / estimate.gpu.seconds_per_item;
  return metrics;
}

double PartitionModel::predict_split_seconds(const KernelEstimate& estimate,
                                             std::int64_t gpu_items,
                                             std::int64_t cpu_items) const {
  const double tg = estimate.gpu_seconds_per_item_effective();
  const double tc = estimate.cpu.seconds_per_item;
  const double gpu_time =
      gpu_items == 0 ? 0.0
                     : static_cast<double>(gpu_items) * tg +
                           estimate.gpu_fixed_seconds_effective();
  const double cpu_time =
      cpu_items == 0 ? 0.0
                     : static_cast<double>(cpu_items) * tc +
                           estimate.cpu.fixed_seconds;
  return std::max(gpu_time, cpu_time);
}

PartitionDecision PartitionModel::decide(const KernelEstimate& estimate,
                                         std::int64_t n, double beta) const {
  beta = std::clamp(beta, 0.0, 1.0);

  PartitionDecision decision;
  decision.beta = beta;

  // Round the GPU side up to the device granularity (paper footnote 5).
  const auto granularity = static_cast<std::int64_t>(options_.gpu_granularity);
  std::int64_t gpu_items = static_cast<std::int64_t>(
      std::llround(beta * static_cast<double>(n)));
  gpu_items = std::min(n, (gpu_items + granularity - 1) / granularity *
                              granularity);
  std::int64_t cpu_items = n - gpu_items;

  decision.predicted_cpu_seconds = predict_split_seconds(estimate, 0, n);
  decision.predicted_gpu_seconds = predict_split_seconds(estimate, n, 0);

  // The practical decision: shares too small to matter collapse to a single
  // device (they could not efficiently use the hardware they'd occupy).
  const double share_gpu =
      n == 0 ? 0.0 : static_cast<double>(gpu_items) / static_cast<double>(n);
  const double share_cpu =
      n == 0 ? 0.0 : static_cast<double>(cpu_items) / static_cast<double>(n);
  if (share_gpu < options_.min_share) {
    gpu_items = 0;
    cpu_items = n;
  } else if (share_cpu < options_.min_share) {
    gpu_items = n;
    cpu_items = 0;
  }

  decision.predicted_partition_seconds =
      predict_split_seconds(estimate, gpu_items, cpu_items);

  if (gpu_items == 0) {
    decision.config = HardwareConfig::kOnlyCpu;
  } else if (cpu_items == 0) {
    decision.config = HardwareConfig::kOnlyGpu;
  } else {
    decision.config = HardwareConfig::kPartition;
  }
  decision.gpu_items = gpu_items;
  decision.cpu_items = cpu_items;
  return decision;
}

PartitionDecision PartitionModel::solve(const KernelEstimate& estimate,
                                        std::int64_t n) const {
  const obs::ScopedPhase phase(obs::kPhasePartitionSolve);
  HS_REQUIRE(n > 0, "partitioning a workload of " << n << " items");
  HS_REQUIRE(estimate.cpu.seconds_per_item > 0.0,
             "CPU per-item cost must be positive");
  HS_REQUIRE(estimate.gpu.seconds_per_item > 0.0,
             "GPU per-item cost must be positive");

  // Perfect-overlap condition: beta*n*tg + Fg == (1-beta)*n*tc + Fc.
  const double tg = estimate.gpu_seconds_per_item_effective();
  const double tc = estimate.cpu.seconds_per_item;
  const double fg = estimate.gpu_fixed_seconds_effective();
  const double fc = estimate.cpu.fixed_seconds;
  const double nn = static_cast<double>(n);
  const double beta = (nn * tc + fc - fg) / (nn * (tg + tc));
  return decide(estimate, n, beta);
}

PartitionDecision PartitionModel::solve_weighted(
    const KernelEstimate& estimate, std::int64_t n,
    const std::function<double(std::int64_t)>& prefix_weight) const {
  const obs::ScopedPhase phase(obs::kPhasePartitionSolve);
  HS_REQUIRE(n > 0, "partitioning a workload of " << n << " items");
  HS_REQUIRE(prefix_weight != nullptr, "solve_weighted needs prefix weights");
  const double total = prefix_weight(n);
  HS_REQUIRE(total > 0.0, "total workload weight must be positive");

  // Work in weight units: the GPU takes head items [0, p). Finish times:
  //   Tg(p) = W(p) * tg_w + Fg,   Tc(p) = (W(n) - W(p)) * tc_w + Fc
  // where the per-weight costs are per-item costs scaled by the mean item
  // weight (the profiles measured average items).
  const double mean_weight = total / static_cast<double>(n);
  const double tg =
      estimate.gpu_seconds_per_item_effective() / mean_weight;
  const double tc = estimate.cpu.seconds_per_item / mean_weight;
  const double fg = estimate.gpu_fixed_seconds_effective();
  const double fc = estimate.cpu.fixed_seconds;

  auto diff = [&](std::int64_t p) {
    const double wg = prefix_weight(p);
    return (wg * tg + fg) - ((total - wg) * tc + fc);
  };

  // diff is non-decreasing in p; binary-search the sign change.
  std::int64_t lo = 0, hi = n;
  if (diff(0) >= 0.0) {
    hi = 0;
  } else if (diff(n) <= 0.0) {
    lo = n;
  } else {
    while (hi - lo > 1) {
      const std::int64_t mid = lo + (hi - lo) / 2;
      (diff(mid) <= 0.0 ? lo : hi) = mid;
    }
  }
  const std::int64_t p = (lo == n || std::abs(diff(lo)) <= std::abs(diff(hi)))
                             ? lo
                             : hi;
  return decide(estimate, n,
                static_cast<double>(p) / static_cast<double>(n));
}

}  // namespace hetsched::glinda
