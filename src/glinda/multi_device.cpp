#include "glinda/multi_device.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace hetsched::glinda {

double MultiDeviceEstimate::effective_seconds_per_item(std::size_t d) const {
  HS_REQUIRE(d < devices.size(), "unknown device " << d);
  double seconds = devices[d].seconds_per_item;
  if (d != 0 && transfer_on_critical_path && link_bytes_per_second > 0.0) {
    seconds += (devices[d].h2d_bytes_per_item + devices[d].d2h_bytes_per_item) /
               link_bytes_per_second;
  }
  return seconds;
}

double MultiDeviceEstimate::effective_fixed_seconds(std::size_t d) const {
  HS_REQUIRE(d < devices.size(), "unknown device " << d);
  double fixed = devices[d].fixed_seconds;
  if (d != 0 && transfer_on_critical_path && link_bytes_per_second > 0.0) {
    fixed += (devices[d].h2d_fixed_bytes + devices[d].d2h_fixed_bytes) /
             link_bytes_per_second;
  }
  return fixed;
}

double MultiDeviceEstimate::transfer_seconds_per_item(std::size_t d) const {
  HS_REQUIRE(d < devices.size(), "unknown device " << d);
  if (d == 0 || !transfer_on_critical_path || link_bytes_per_second <= 0.0)
    return 0.0;
  return (devices[d].h2d_bytes_per_item + devices[d].d2h_bytes_per_item) /
         link_bytes_per_second;
}

double MultiPartitionModel::predict_seconds(
    const MultiDeviceEstimate& estimate,
    const std::vector<std::int64_t>& items) const {
  HS_REQUIRE(items.size() == estimate.devices.size(),
             "assignment size mismatch");
  double makespan = 0.0;
  double link_seconds = 0.0;
  for (std::size_t d = 0; d < items.size(); ++d) {
    if (items[d] == 0) continue;
    makespan = std::max(
        makespan, static_cast<double>(items[d]) *
                          estimate.effective_seconds_per_item(d) +
                      estimate.effective_fixed_seconds(d));
    link_seconds +=
        static_cast<double>(items[d]) * estimate.transfer_seconds_per_item(d);
  }
  return std::max(makespan, link_seconds);
}

MultiPartitionDecision MultiPartitionModel::solve(
    const MultiDeviceEstimate& estimate, std::int64_t n) const {
  HS_REQUIRE(n > 0, "partitioning a workload of " << n);
  const std::size_t count = estimate.devices.size();
  HS_REQUIRE(count >= 1, "need at least the host CPU profile");
  for (std::size_t d = 0; d < count; ++d) {
    HS_REQUIRE(estimate.devices[d].seconds_per_item > 0.0,
               "device " << d << " per-item cost must be positive");
  }

  // Balanced finish times with fixed costs: find the common finish time T
  // with sum_d max(0, (T - F_d) / tau_d) = n, by bisection over T (the
  // left side is monotone in T).
  std::vector<bool> active(count, true);
  std::vector<double> shares(count, 0.0);
  for (int round = 0; round < static_cast<int>(count); ++round) {
    auto items_at = [&](double t) {
      double total = 0.0;
      for (std::size_t d = 0; d < count; ++d) {
        if (!active[d]) continue;
        total += std::max(0.0, (t - estimate.effective_fixed_seconds(d)) /
                                   estimate.effective_seconds_per_item(d));
      }
      return total;
    };
    double lo = 0.0, hi = 1.0;
    while (items_at(hi) < static_cast<double>(n)) hi *= 2.0;
    for (int step = 0; step < 200; ++step) {
      const double mid = 0.5 * (lo + hi);
      (items_at(mid) < static_cast<double>(n) ? lo : hi) = mid;
    }
    for (std::size_t d = 0; d < count; ++d) {
      shares[d] = !active[d]
                      ? 0.0
                      : std::max(0.0,
                                 (hi - estimate.effective_fixed_seconds(d)) /
                                     estimate.effective_seconds_per_item(d)) /
                            static_cast<double>(n);
    }

    // Hardware-configuration decision: deactivate devices whose share is
    // too small to use their hardware efficiently, then re-solve.
    bool dropped = false;
    for (std::size_t d = 0; d < count; ++d) {
      if (active[d] && shares[d] > 0.0 && shares[d] < options_.min_share) {
        active[d] = false;
        dropped = true;
      }
    }
    if (!dropped) break;
  }

  // Shared-link repair: if the accelerators' combined transfers exceed the
  // balanced makespan, the link is the bottleneck — scale their shares by
  // s in [0, 1] (the CPU absorbing the difference) until the CPU's finish
  // time meets the link's occupancy. Both sides are monotone in s.
  if (active[0]) {
    auto cpu_time = [&](double s) {
      double accelerator_share = 0.0;
      for (std::size_t d = 1; d < count; ++d) accelerator_share += shares[d];
      const double cpu_items =
          static_cast<double>(n) * (1.0 - s * accelerator_share);
      return cpu_items * estimate.effective_seconds_per_item(0) +
             estimate.effective_fixed_seconds(0);
    };
    auto link_time = [&](double s) {
      double seconds = 0.0;
      for (std::size_t d = 1; d < count; ++d) {
        seconds += s * shares[d] * static_cast<double>(n) *
                   estimate.transfer_seconds_per_item(d);
      }
      return seconds;
    };
    if (link_time(1.0) > cpu_time(1.0)) {
      double lo = 0.0, hi = 1.0;
      for (int step = 0; step < 100; ++step) {
        const double mid = 0.5 * (lo + hi);
        (link_time(mid) > cpu_time(mid) ? hi : lo) = mid;
      }
      for (std::size_t d = 1; d < count; ++d) shares[d] *= hi;
    }
  }

  // Integer assignment: accelerators get granularity-rounded slabs, the
  // CPU absorbs the remainder (or the largest active device does, if the
  // CPU was dropped).
  MultiPartitionDecision decision;
  decision.items_per_device.assign(count, 0);
  std::int64_t assigned = 0;
  for (std::size_t d = 1; d < count; ++d) {
    if (!active[d]) continue;
    const auto granularity =
        static_cast<std::int64_t>(options_.gpu_granularity);
    std::int64_t items = static_cast<std::int64_t>(
        std::llround(shares[d] * static_cast<double>(n)));
    items = std::min<std::int64_t>(
        n - assigned,
        (items + granularity - 1) / granularity * granularity);
    decision.items_per_device[d] = items;
    assigned += items;
  }
  if (active[0]) {
    decision.items_per_device[0] = n - assigned;
  } else {
    // All work on accelerators: give the remainder to the fastest one.
    std::size_t best = 1;
    for (std::size_t d = 2; d < count; ++d) {
      if (!active[d]) continue;
      if (!active[best] || estimate.effective_seconds_per_item(d) <
                               estimate.effective_seconds_per_item(best))
        best = d;
    }
    decision.items_per_device[best] += n - assigned;
  }

  const std::int64_t total =
      std::accumulate(decision.items_per_device.begin(),
                      decision.items_per_device.end(), std::int64_t{0});
  HS_ASSERT_MSG(total == n, "assignment lost items: " << total << " != " << n);
  decision.predicted_seconds =
      predict_seconds(estimate, decision.items_per_device);
  return decision;
}

KernelEstimate to_kernel_estimate(const MultiDeviceEstimate& estimate) {
  HS_REQUIRE(estimate.devices.size() == 2,
             "scalar view needs exactly CPU + one accelerator, got "
                 << estimate.devices.size() << " devices");
  KernelEstimate scalar;
  scalar.cpu = estimate.devices[0];
  scalar.gpu = estimate.devices[1];
  scalar.link_bytes_per_second = estimate.link_bytes_per_second;
  scalar.transfer_on_critical_path = estimate.transfer_on_critical_path;
  return scalar;
}

MultiPartitionDecision solve_multi_partition(
    const MultiDeviceEstimate& estimate, std::int64_t n,
    PartitionOptions options) {
  if (estimate.devices.size() != 2)
    return MultiPartitionModel(options).solve(estimate, n);

  // Two devices: the scalar closed-form β path, verbatim. This is what
  // makes the N=2 byte-identity guarantee hold by construction rather than
  // by numerical luck — same solver, same rounding, same prediction.
  const PartitionDecision scalar =
      PartitionModel(options).solve(to_kernel_estimate(estimate), n);
  MultiPartitionDecision decision;
  decision.items_per_device = {scalar.cpu_items, scalar.gpu_items};
  switch (scalar.config) {
    case HardwareConfig::kOnlyCpu:
      decision.predicted_seconds = scalar.predicted_cpu_seconds;
      break;
    case HardwareConfig::kOnlyGpu:
      decision.predicted_seconds = scalar.predicted_gpu_seconds;
      break;
    case HardwareConfig::kPartition:
      decision.predicted_seconds = scalar.predicted_partition_seconds;
      break;
  }
  return decision;
}

}  // namespace hetsched::glinda
