#pragma once

#include <cstdint>
#include <vector>

#include "glinda/partition_model.hpp"

/// Multi-accelerator static partitioning.
///
/// Glinda "supports various platforms, with one or more accelerators,
/// identical or non-identical" (paper Section II-A); extending the analyzer
/// to other accelerator types is the paper's stated future work. This
/// solver generalizes the two-way split: given per-device profiles (one
/// host CPU + any number of accelerators behind the shared link), it
/// assigns every device a contiguous slab sized so all finish together.
///
/// Model: device d's finish time for n_d items is
///     T_d = n_d * tau_d + F_d
/// where tau_d is the device's effective per-item cost (accelerators add
/// their critical-path transfer term) and F_d its fixed cost. On top of
/// the per-device times, all accelerators share ONE host link, so the
/// makespan is also bounded below by the total transfer time
///     T_link = sum_{d>0} n_d * x_d
/// (x_d = transfer seconds per item). The solver first balances the
/// per-device times, then — if the shared link is the binding constraint —
/// scales the accelerator shares back until the CPU's finish time meets
/// the link's, so a transfer-bound workload is not over-fed to a second
/// accelerator that the link cannot serve.
namespace hetsched::glinda {

struct MultiDeviceEstimate {
  /// Index 0 is the host CPU; 1.. are the accelerators (hw::DeviceId
  /// order). CPU transfers are ignored even if present.
  std::vector<DeviceProfile> devices;
  double link_bytes_per_second = 0.0;
  bool transfer_on_critical_path = true;

  /// Effective per-item seconds of device d (transfer included for
  /// accelerators when on the critical path).
  double effective_seconds_per_item(std::size_t d) const;
  /// Effective fixed seconds of device d.
  double effective_fixed_seconds(std::size_t d) const;
  /// Link seconds per item of accelerator d (0 for the CPU or when
  /// transfers are off the critical path).
  double transfer_seconds_per_item(std::size_t d) const;
};

struct MultiPartitionDecision {
  /// Items per device, same indexing as the estimate. Sums to n.
  std::vector<std::int64_t> items_per_device;
  /// Predicted makespan of the split, seconds.
  double predicted_seconds = 0.0;

  double share(std::size_t d, std::int64_t n) const {
    return n == 0 ? 0.0
                  : static_cast<double>(items_per_device[d]) /
                        static_cast<double>(n);
  }
  std::size_t device_count() const { return items_per_device.size(); }
};

/// The scalar two-device view of a CPU+1-accelerator estimate (device 0 =
/// CPU, device 1 = the accelerator). Requires exactly two device profiles.
KernelEstimate to_kernel_estimate(const MultiDeviceEstimate& estimate);

/// Single entry point for strategy-level partitioning across any device
/// count. For exactly TWO devices (CPU + one accelerator) this delegates to
/// the scalar closed-form β solver (`PartitionModel::solve`), so two-device
/// splits — items AND predicted seconds — are bit-identical with the legacy
/// CPU+GPU path; for three or more devices it runs MultiPartitionModel's
/// balanced-finish bisection with the shared-link repair. The returned
/// decision always covers all `estimate.devices` (dropped devices get 0).
MultiPartitionDecision solve_multi_partition(
    const MultiDeviceEstimate& estimate, std::int64_t n,
    PartitionOptions options = {});

class MultiPartitionModel {
 public:
  explicit MultiPartitionModel(PartitionOptions options = {})
      : options_(options) {}

  /// Solves the balanced split of `n` items across all devices. Devices
  /// whose share falls below PartitionOptions::min_share are dropped and
  /// their work redistributed (the multi-device form of the paper's
  /// hardware-configuration decision).
  MultiPartitionDecision solve(const MultiDeviceEstimate& estimate,
                               std::int64_t n) const;

  /// Predicted makespan of a given assignment.
  double predict_seconds(const MultiDeviceEstimate& estimate,
                         const std::vector<std::int64_t>& items) const;

 private:
  PartitionOptions options_;
};

}  // namespace hetsched::glinda
