#pragma once

#include <cstdint>
#include <string>

#include "common/interval_set.hpp"

/// Buffers and byte-range regions.
///
/// A Buffer is a named, sized allocation handle. The runtime tracks *where*
/// each byte range of each buffer currently holds a valid copy (host memory
/// vs. device memories); the actual payload lives in application-owned host
/// arrays, because functional execution always happens on the host while
/// device placement is simulated.
namespace hetsched::mem {

using BufferId = std::size_t;

/// Identifies one memory space: 0 is always host RAM; space d >= 1 is the
/// on-board memory of accelerator d (matching hw::DeviceId).
using SpaceId = std::size_t;
inline constexpr SpaceId kHostSpace = 0;

struct BufferDesc {
  BufferId id = 0;
  std::string name;
  std::int64_t size_bytes = 0;
};

/// A byte range within one buffer.
struct Region {
  BufferId buffer = 0;
  Interval range;  ///< half-open byte interval within the buffer

  std::int64_t size_bytes() const { return range.length(); }
  bool empty() const { return range.empty(); }

  friend bool operator==(const Region&, const Region&) = default;
};

/// How a task accesses a region — OmpSs in/out/inout directionality.
enum class AccessMode { kRead, kWrite, kReadWrite };

const char* access_mode_name(AccessMode mode);

struct RegionAccess {
  Region region;
  AccessMode mode = AccessMode::kRead;

  bool reads() const { return mode != AccessMode::kWrite; }
  bool writes() const { return mode != AccessMode::kRead; }
};

}  // namespace hetsched::mem
