#pragma once

#include <string>
#include <vector>

#include "common/interval_set.hpp"
#include "mem/region.hpp"

/// Range-based coherence directory.
///
/// Models the OmpSs memory model: multiple memory spaces (host + one per
/// accelerator), with the runtime keeping track of which byte ranges of
/// which buffers are valid where, generating host<->device transfers on
/// demand, and flushing everything back to the host at `taskwait`.
///
/// Protocol (per byte): a byte range may be valid in several spaces at once
/// (shared, after reads) but a write makes the writing space the *only*
/// valid holder (invalidation), like MSI without the explicit M/S split —
/// we only need to know "who has a current copy".
namespace hetsched::mem {

/// One planned host<->device (or device<->device via host) copy.
struct TransferOp {
  SpaceId src = kHostSpace;
  SpaceId dst = kHostSpace;
  Region region;

  std::int64_t size_bytes() const { return region.size_bytes(); }
};

class CoherenceDirectory {
 public:
  /// `space_count` = 1 (host) + number of accelerators.
  explicit CoherenceDirectory(std::size_t space_count);

  std::size_t space_count() const { return space_count_; }

  /// Registers a buffer. Its initial contents are valid on the host only
  /// (applications initialize data in host memory).
  BufferId register_buffer(std::string name, std::int64_t size_bytes);

  std::size_t buffer_count() const { return buffers_.size(); }
  const BufferDesc& buffer(BufferId id) const;

  /// True iff every byte of `region` holds a valid copy in `space`.
  bool is_valid(const Region& region, SpaceId space) const;

  /// The parts of `region` NOT currently valid in `space` (what an acquire
  /// would have to bring in).
  std::vector<Interval> gaps_in_space(const Region& region,
                                      SpaceId space) const;

  /// Plans the copies needed before `space` can READ `region`: one TransferOp
  /// per missing piece, sourced from a space that holds a valid copy (host
  /// preferred; the paper-era runtimes stage device-to-device data through
  /// the host, so a device source is reported as-is and the caller routes it).
  /// Does NOT mutate state; call `apply` on each op (in order) to commit.
  std::vector<TransferOp> plan_acquire(const Region& region,
                                       SpaceId space) const;

  /// Allocation-reusing variant for hot paths: clears `out` and fills it
  /// with the same plan (same ops, same order) the vector overload returns.
  void plan_acquire(const Region& region, SpaceId space,
                    std::vector<TransferOp>& out) const;

  /// Commits one planned transfer: marks op.region valid in op.dst.
  void apply(const TransferOp& op);

  /// Records that `space` WROTE `region`: `space` becomes the only valid
  /// holder of those bytes.
  void note_write(const Region& region, SpaceId space);

  /// Plans the copies needed to make the host hold a valid copy of every
  /// byte of every buffer — the `taskwait` flush.
  std::vector<TransferOp> plan_flush_to_host() const;

  /// Drops every device-space copy, leaving the host as the only valid
  /// holder. Models the OmpSs-era taskwait, which flushes data to the host
  /// and considers device copies stale afterwards — the reason statically
  /// partitioned multi-kernel codes with synchronization re-upload their
  /// partitions after every sync (paper Section IV-B3/B4). Requires that
  /// the host already covers every buffer (flush first).
  void invalidate_device_copies();

  /// Device-loss recovery: every byte valid in `space` becomes valid on the
  /// host instead, and `space` is left empty. Models a failed device whose
  /// data is recovered from a host-side shadow (the fault subsystem's
  /// checkpoint-on-host model) — unlike plan_evict, no transfer is planned,
  /// because the dead device cannot DMA its memory out. Preserves the
  /// no-byte-orphaned invariant by construction.
  void reclaim_space_to_host(SpaceId space);

  /// Bytes of `space`'s memory currently holding valid data (for device
  /// memory-capacity accounting).
  std::int64_t resident_bytes(SpaceId space) const;

  /// Bytes of ONE buffer valid in `space`.
  std::int64_t resident_bytes_of(BufferId buffer, SpaceId space) const;

  /// Plans the copies needed before `space`'s copy of `buffer` can be
  /// dropped: its ranges valid NOWHERE else go home first. Empty when the
  /// copy is clean.
  std::vector<TransferOp> plan_evict(BufferId buffer, SpaceId space) const;

  /// Drops `space`'s copy of `buffer` (eviction). Requires every byte to be
  /// valid in some other space — apply the plan_evict transfers first.
  void drop_copies(BufferId buffer, SpaceId space);

  /// Invariant check: every byte of every buffer is valid in at least one
  /// space (no data can ever be lost). Throws InternalError on violation.
  void check_no_byte_orphaned() const;

 private:
  struct BufferState {
    BufferDesc desc;
    /// One validity set per space.
    std::vector<IntervalSet> valid;
  };

  const BufferState& state(BufferId id) const;
  BufferState& state(BufferId id);

  std::size_t space_count_;
  std::vector<BufferState> buffers_;
};

}  // namespace hetsched::mem
