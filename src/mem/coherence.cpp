#include "mem/coherence.hpp"

#include "common/error.hpp"

namespace hetsched::mem {

const char* access_mode_name(AccessMode mode) {
  switch (mode) {
    case AccessMode::kRead: return "in";
    case AccessMode::kWrite: return "out";
    case AccessMode::kReadWrite: return "inout";
  }
  return "unknown";
}

CoherenceDirectory::CoherenceDirectory(std::size_t space_count)
    : space_count_(space_count) {
  HS_REQUIRE(space_count >= 1, "need at least the host space");
}

BufferId CoherenceDirectory::register_buffer(std::string name,
                                             std::int64_t size_bytes) {
  HS_REQUIRE(size_bytes > 0, "buffer '" << name << "' size " << size_bytes);
  BufferState st;
  st.desc.id = buffers_.size();
  st.desc.name = std::move(name);
  st.desc.size_bytes = size_bytes;
  st.valid.resize(space_count_);
  st.valid[kHostSpace].insert({0, size_bytes});
  buffers_.push_back(std::move(st));
  return buffers_.back().desc.id;
}

const BufferDesc& CoherenceDirectory::buffer(BufferId id) const {
  return state(id).desc;
}

const CoherenceDirectory::BufferState& CoherenceDirectory::state(
    BufferId id) const {
  HS_REQUIRE(id < buffers_.size(), "unknown buffer id " << id);
  return buffers_[id];
}

CoherenceDirectory::BufferState& CoherenceDirectory::state(BufferId id) {
  HS_REQUIRE(id < buffers_.size(), "unknown buffer id " << id);
  return buffers_[id];
}

namespace {
void require_in_bounds(const BufferDesc& desc, const Region& region) {
  HS_REQUIRE(region.range.begin >= 0 && region.range.end <= desc.size_bytes,
             "region [" << region.range.begin << ", " << region.range.end
                        << ") outside buffer '" << desc.name << "' of size "
                        << desc.size_bytes);
}
}  // namespace

bool CoherenceDirectory::is_valid(const Region& region, SpaceId space) const {
  HS_REQUIRE(space < space_count_, "unknown space " << space);
  const BufferState& st = state(region.buffer);
  require_in_bounds(st.desc, region);
  return st.valid[space].covers(region.range);
}

std::vector<Interval> CoherenceDirectory::gaps_in_space(const Region& region,
                                                        SpaceId space) const {
  HS_REQUIRE(space < space_count_, "unknown space " << space);
  const BufferState& st = state(region.buffer);
  require_in_bounds(st.desc, region);
  return st.valid[space].gaps_within(region.range);
}

std::vector<TransferOp> CoherenceDirectory::plan_acquire(const Region& region,
                                                         SpaceId space) const {
  std::vector<TransferOp> plan;
  plan_acquire(region, space, plan);
  return plan;
}

void CoherenceDirectory::plan_acquire(const Region& region, SpaceId space,
                                      std::vector<TransferOp>& plan) const {
  HS_REQUIRE(space < space_count_, "unknown space " << space);
  const BufferState& st = state(region.buffer);
  require_in_bounds(st.desc, region);

  plan.clear();
  for (const Interval& gap : st.valid[space].gaps_within(region.range)) {
    // Source each gap from valid holders, host first (cheapest path and the
    // common case: host always regains validity at sync points).
    IntervalSet remaining{gap};
    auto take_from = [&](SpaceId src) {
      if (src == space || remaining.empty()) return;
      for (const Interval& piece :
           st.valid[src].pieces_within(gap)) {
        for (const Interval& usable : remaining.pieces_within(piece)) {
          plan.push_back(TransferOp{src, space, Region{region.buffer, usable}});
        }
        remaining.erase(piece);
      }
    };
    take_from(kHostSpace);
    for (SpaceId src = 1; src < space_count_ && !remaining.empty(); ++src)
      take_from(src);
    HS_ASSERT_MSG(remaining.empty(),
                  "no valid copy anywhere for " << remaining.measure()
                                                << " bytes of buffer '"
                                                << st.desc.name << "'");
  }
}

void CoherenceDirectory::apply(const TransferOp& op) {
  HS_REQUIRE(op.dst < space_count_ && op.src < space_count_,
             "unknown space in transfer");
  BufferState& st = state(op.region.buffer);
  require_in_bounds(st.desc, op.region);
  HS_ASSERT_MSG(st.valid[op.src].covers(op.region.range),
                "transfer source space " << op.src
                                         << " lost validity for buffer '"
                                         << st.desc.name << "'");
  st.valid[op.dst].insert(op.region.range);
}

void CoherenceDirectory::note_write(const Region& region, SpaceId space) {
  HS_REQUIRE(space < space_count_, "unknown space " << space);
  BufferState& st = state(region.buffer);
  require_in_bounds(st.desc, region);
  for (SpaceId s = 0; s < space_count_; ++s) {
    if (s == space) continue;
    st.valid[s].erase(region.range);
  }
  st.valid[space].insert(region.range);
}

std::vector<TransferOp> CoherenceDirectory::plan_flush_to_host() const {
  std::vector<TransferOp> plan;
  for (const BufferState& st : buffers_) {
    for (const Interval& gap :
         st.valid[kHostSpace].gaps_within({0, st.desc.size_bytes})) {
      IntervalSet remaining{gap};
      for (SpaceId src = 1; src < space_count_ && !remaining.empty(); ++src) {
        for (const Interval& piece : st.valid[src].pieces_within(gap)) {
          for (const Interval& usable : remaining.pieces_within(piece)) {
            plan.push_back(
                TransferOp{src, kHostSpace, Region{st.desc.id, usable}});
          }
          remaining.erase(piece);
        }
      }
      HS_ASSERT_MSG(remaining.empty(),
                    "flush: no valid copy anywhere for buffer '"
                        << st.desc.name << "'");
    }
  }
  return plan;
}

void CoherenceDirectory::invalidate_device_copies() {
  for (BufferState& st : buffers_) {
    HS_ASSERT_MSG(st.valid[kHostSpace].covers({0, st.desc.size_bytes}),
                  "invalidate before flush completed for buffer '"
                      << st.desc.name << "'");
    for (SpaceId s = 1; s < space_count_; ++s) st.valid[s] = IntervalSet{};
  }
}

void CoherenceDirectory::reclaim_space_to_host(SpaceId space) {
  HS_REQUIRE(space < space_count_ && space != kHostSpace,
             "reclaim_space_to_host: space " << space);
  for (BufferState& st : buffers_) {
    st.valid[kHostSpace].insert(st.valid[space]);
    st.valid[space] = IntervalSet{};
  }
}

std::int64_t CoherenceDirectory::resident_bytes(SpaceId space) const {
  HS_REQUIRE(space < space_count_, "unknown space " << space);
  std::int64_t total = 0;
  for (const BufferState& st : buffers_) total += st.valid[space].measure();
  return total;
}

std::int64_t CoherenceDirectory::resident_bytes_of(BufferId buffer,
                                                   SpaceId space) const {
  HS_REQUIRE(space < space_count_, "unknown space " << space);
  return state(buffer).valid[space].measure();
}

std::vector<TransferOp> CoherenceDirectory::plan_evict(BufferId buffer,
                                                       SpaceId space) const {
  HS_REQUIRE(space < space_count_ && space != kHostSpace,
             "evicting from space " << space);
  const BufferState& st = state(buffer);
  std::vector<TransferOp> plan;
  for (const Interval& piece :
       st.valid[space].pieces_within({0, st.desc.size_bytes})) {
    // Only pieces valid in NO other space must travel.
    IntervalSet lonely{piece};
    for (SpaceId s = 0; s < space_count_; ++s) {
      if (s == space) continue;
      for (const Interval& covered : st.valid[s].pieces_within(piece))
        lonely.erase(covered);
    }
    for (const Interval& range : lonely.to_vector())
      plan.push_back(TransferOp{space, kHostSpace, Region{buffer, range}});
  }
  return plan;
}

void CoherenceDirectory::drop_copies(BufferId buffer, SpaceId space) {
  HS_REQUIRE(space < space_count_ && space != kHostSpace,
             "dropping from space " << space);
  BufferState& st = state(buffer);
  for (const Interval& piece :
       st.valid[space].pieces_within({0, st.desc.size_bytes})) {
    bool covered_elsewhere = true;
    IntervalSet others;
    for (SpaceId s = 0; s < space_count_; ++s) {
      if (s == space) continue;
      others.insert(st.valid[s]);
    }
    covered_elsewhere = others.covers(piece);
    HS_ASSERT_MSG(covered_elsewhere,
                  "dropping the only copy of bytes of buffer '"
                      << st.desc.name << "' — evict first");
  }
  st.valid[space] = IntervalSet{};
}

void CoherenceDirectory::check_no_byte_orphaned() const {
  for (const BufferState& st : buffers_) {
    IntervalSet anywhere;
    for (const IntervalSet& per_space : st.valid) anywhere.insert(per_space);
    HS_ASSERT_MSG(anywhere.covers({0, st.desc.size_bytes}),
                  "buffer '" << st.desc.name
                             << "' has bytes valid in no space");
  }
}

}  // namespace hetsched::mem
