#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace hetsched::mem {

/// Bump allocator backed by a chain of geometrically growing blocks.
///
/// The executor allocates many short-lived, identically-scoped objects per
/// run — task bookkeeping, transfer plans, trace entries — and frees them
/// all at once when the run ends. A bump pointer turns each of those
/// allocations into a pointer increment, and `reset()` recycles every block
/// for the next run without returning memory to the OS, so a warmed-up
/// arena allocates from resident pages only.
///
/// Only trivially destructible types may be created through `make`/
/// `make_array`: reset() rewinds the bump pointer without running
/// destructors (enforced at compile time).
class Arena {
 public:
  static constexpr std::size_t kDefaultBlockBytes = 64 * 1024;

  explicit Arena(std::size_t first_block_bytes = kDefaultBlockBytes)
      : next_block_bytes_(first_block_bytes == 0 ? kDefaultBlockBytes
                                                 : first_block_bytes) {}
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Raw aligned allocation. Alignment must be a power of two.
  void* allocate(std::size_t bytes, std::size_t align) {
    std::uintptr_t p = (cursor_ + (align - 1)) & ~std::uintptr_t(align - 1);
    if (p + bytes > limit_) {
      refill(bytes, align);
      p = (cursor_ + (align - 1)) & ~std::uintptr_t(align - 1);
    }
    cursor_ = p + bytes;
    bytes_allocated_ += bytes;
    return reinterpret_cast<void*>(p);
  }

  /// Constructs a T in the arena. T must be trivially destructible —
  /// reset() never runs destructors.
  template <typename T, typename... Args>
  T* make(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena::reset() does not run destructors");
    return ::new (allocate(sizeof(T), alignof(T)))
        T(std::forward<Args>(args)...);
  }

  /// Allocates an uninitialized array of n Ts (value-initialized).
  template <typename T>
  T* make_array(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena::reset() does not run destructors");
    T* out = static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
    for (std::size_t i = 0; i < n; ++i) ::new (out + i) T();
    return out;
  }

  /// Rewinds to empty, keeping every block for reuse. After reset, the
  /// arena serves allocations from its first block again.
  void reset() {
    block_index_ = 0;
    bytes_allocated_ = 0;
    if (blocks_.empty()) {
      cursor_ = limit_ = 0;
    } else {
      use_block(0);
    }
  }

  /// Releases all blocks back to the OS.
  void release() {
    blocks_.clear();
    block_index_ = 0;
    bytes_allocated_ = 0;
    cursor_ = limit_ = 0;
  }

  /// Live bytes handed out since the last reset (excludes padding).
  std::size_t bytes_allocated() const { return bytes_allocated_; }
  /// Total capacity currently held across all blocks.
  std::size_t bytes_reserved() const {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }
  std::size_t block_count() const { return blocks_.size(); }

 private:
  struct Block {
    std::unique_ptr<unsigned char[]> data;
    std::size_t size = 0;
  };

  void use_block(std::size_t index) {
    block_index_ = index;
    cursor_ = reinterpret_cast<std::uintptr_t>(blocks_[index].data.get());
    limit_ = cursor_ + blocks_[index].size;
  }

  /// Advances to the next block that fits `bytes` (+ worst-case padding),
  /// appending a new geometrically larger block when none does.
  void refill(std::size_t bytes, std::size_t align) {
    const std::size_t need = bytes + align;
    while (block_index_ + 1 < blocks_.size()) {
      use_block(block_index_ + 1);
      if (limit_ - cursor_ >= need) return;
    }
    std::size_t size = next_block_bytes_;
    while (size < need) size *= 2;
    next_block_bytes_ = size * 2;
    blocks_.push_back(
        Block{std::make_unique<unsigned char[]>(size), size});
    use_block(blocks_.size() - 1);
  }

  std::vector<Block> blocks_;
  std::size_t block_index_ = 0;
  std::size_t next_block_bytes_;
  std::size_t bytes_allocated_ = 0;
  std::uintptr_t cursor_ = 0;
  std::uintptr_t limit_ = 0;
};

/// std::allocator-compatible adapter so standard containers (vector, etc.)
/// can draw from an Arena. Deallocation is a no-op; memory comes back at
/// Arena::reset().
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena& arena) : arena_(&arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, std::size_t) {}

  Arena* arena() const { return arena_; }

  friend bool operator==(const ArenaAllocator& a, const ArenaAllocator& b) {
    return a.arena_ == b.arena_;
  }
  friend bool operator!=(const ArenaAllocator& a, const ArenaAllocator& b) {
    return a.arena_ != b.arena_;
  }

 private:
  Arena* arena_;
};

}  // namespace hetsched::mem
