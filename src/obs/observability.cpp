#include "obs/observability.hpp"

#include <sstream>

#include "sim/trace.hpp"

namespace hetsched::obs {

json::Value RunObservability::to_json() const {
  json::Value root{json::Value::Object{}};
  root.set("metrics", metrics.to_json());
  root.set("spans", spans.to_json());
  root.set("placements", audit.to_json());
  return root;
}

std::string chrome_trace_with_counters(const sim::TraceRecorder& trace,
                                       const MetricsRegistry& metrics) {
  std::vector<std::string> extra;
  for (const auto& [key, track] : metrics.tracks()) {
    for (const auto& sample : track.series()) {
      std::ostringstream os;
      os << "{\"name\":\"" << json::escape(key)
         << "\",\"ph\":\"C\",\"ts\":" << to_micros(sample.time)
         << ",\"pid\":1,\"args\":{\"value\":"
         << json::format_double(sample.value) << "}}";
      extra.push_back(os.str());
    }
  }
  return trace.to_chrome_json(extra);
}

}  // namespace hetsched::obs
