#include "obs/log.hpp"

#include <atomic>

#include "common/json.hpp"

namespace hetsched::obs {
namespace {

std::atomic<LogFormat> g_format{LogFormat::kText};

const char* level_name(log::Level level) {
  switch (level) {
    case log::Level::kDebug: return "debug";
    case log::Level::kInfo: return "info";
    case log::Level::kWarn: return "warn";
    case log::Level::kError: return "error";
    case log::Level::kOff: return "off";
  }
  return "unknown";
}

// true when `value` renders as a bare JSON token (number/bool) rather than
// a quoted string.
bool needs_text_quotes(const std::string& value) {
  return value.find(' ') != std::string::npos ||
         value.find('"') != std::string::npos || value.empty();
}

}  // namespace

void set_log_format(LogFormat format) {
  g_format.store(format, std::memory_order_relaxed);
}

LogFormat log_format() {
  return g_format.load(std::memory_order_relaxed);
}

Log& Log::field(std::string_view key, double value) {
  fields_.emplace_back(std::string(key), json::format_double(value));
  quoted_.push_back(false);
  return *this;
}

Log& Log::field(std::string_view key, std::int64_t value) {
  fields_.emplace_back(std::string(key), std::to_string(value));
  quoted_.push_back(false);
  return *this;
}

std::string Log::render(LogFormat format) const {
  if (format == LogFormat::kJson) {
    std::string out = "{\"level\":\"";
    out += level_name(level_);
    out += "\",\"event\":\"";
    out += json::escape(event_);
    out += "\"";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      out += ",\"";
      out += json::escape(fields_[i].first);
      out += "\":";
      if (quoted_[i]) {
        out += "\"";
        out += json::escape(fields_[i].second);
        out += "\"";
      } else {
        out += fields_[i].second;
      }
    }
    out += "}";
    return out;
  }
  std::string out = event_;
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    out += " ";
    out += fields_[i].first;
    out += "=";
    if (quoted_[i] && needs_text_quotes(fields_[i].second)) {
      out += "\"";
      out += fields_[i].second;
      out += "\"";
    } else {
      out += fields_[i].second;
    }
  }
  return out;
}

void Log::emit() const {
  if (level_ < log::level()) return;
  const LogFormat format = log_format();
  if (format == LogFormat::kJson) {
    log::emit_raw(level_, render(LogFormat::kJson));
  } else {
    log::emit(level_, render(LogFormat::kText));
  }
}

}  // namespace hetsched::obs
