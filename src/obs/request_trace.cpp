#include "obs/request_trace.hpp"

#include <atomic>
#include <chrono>

namespace hetsched::obs {
namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::string to_hex16(std::uint64_t value) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[value & 0xf];
    value >>= 4;
  }
  return out;
}

json::Value span_to_json(const RequestSpan& span) {
  json::Value out = json::Value(json::Value::Object{});
  out.set("id", json::Value(static_cast<double>(span.id)));
  out.set("parent", json::Value(static_cast<double>(span.parent)));
  out.set("stage", json::Value(span.stage));
  out.set("start_ms", json::Value(span.start_ms));
  out.set("end_ms", json::Value(span.end_ms));
  out.set("detail", json::Value(span.detail));
  return out;
}

}  // namespace

json::Value RequestTree::to_json() const {
  json::Value out = json::Value(json::Value::Object{});
  out.set("trace_id", json::Value(trace_id));
  out.set("op", json::Value(op));
  out.set("app", json::Value(app));
  out.set("status", json::Value(status));
  out.set("cache_hit", json::Value(cache_hit));
  out.set("latency_ms", json::Value(latency_ms));
  json::Value span_array = json::Value(json::Value::Array{});
  for (const RequestSpan& span : spans) span_array.push_back(span_to_json(span));
  out.set("spans", std::move(span_array));
  out.set("chunk_spans", chunk_spans.to_json());
  return out;
}

std::string mint_trace_id() {
  // The seed folds in the process start instant so two daemons (or a
  // restart) do not mint the same id sequence; the counter guarantees
  // in-process uniqueness even at equal mix inputs.
  static const std::uint64_t seed = splitmix64(now_ns());
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t n = counter.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t id = splitmix64(seed ^ (n * 0x9e3779b97f4a7c15ULL));
  if (id == 0) id = 1;  // all-zero ids read as "unset" in exemplars
  return to_hex16(id);
}

RequestTraceBuilder::RequestTraceBuilder(std::string trace_id,
                                         std::string detail, double pre_ms)
    : epoch_ns_(now_ns()) {
  if (pre_ms > 0.0) {
    const auto shift = static_cast<std::uint64_t>(pre_ms * 1e6);
    epoch_ns_ = shift < epoch_ns_ ? epoch_ns_ - shift : 0;
  }
  tree_.trace_id = std::move(trace_id);
  root_ = next_id_++;
  tree_.spans.push_back(
      {root_, 0, std::string(kStageRequest), 0.0, 0.0, std::move(detail)});
}

double RequestTraceBuilder::now_ms() const {
  return static_cast<double>(now_ns() - epoch_ns_) / 1e6;
}

std::uint64_t RequestTraceBuilder::open(std::string_view stage,
                                        std::uint64_t parent,
                                        std::string detail) {
  const std::uint64_t id = next_id_++;
  tree_.spans.push_back({id, parent == 0 ? root_ : parent, std::string(stage),
                         now_ms(), -1.0, std::move(detail)});
  return id;
}

void RequestTraceBuilder::close(std::uint64_t id) {
  for (RequestSpan& span : tree_.spans) {
    if (span.id == id) {
      span.end_ms = now_ms();
      return;
    }
  }
}

std::uint64_t RequestTraceBuilder::add_span(std::string_view stage,
                                            double start_ms, double end_ms,
                                            std::uint64_t parent,
                                            std::string detail) {
  const std::uint64_t id = next_id_++;
  tree_.spans.push_back({id, parent == 0 ? root_ : parent, std::string(stage),
                         start_ms, end_ms, std::move(detail)});
  return id;
}

void RequestTraceBuilder::annotate(std::uint64_t id, std::string_view detail) {
  for (RequestSpan& span : tree_.spans) {
    if (span.id == id) {
      if (!span.detail.empty()) span.detail += " ";
      span.detail.append(detail);
      return;
    }
  }
}

void RequestTraceBuilder::set_request(std::string op, std::string app) {
  tree_.op = std::move(op);
  tree_.app = std::move(app);
}

void RequestTraceBuilder::set_outcome(std::string status, bool cache_hit) {
  tree_.status = std::move(status);
  tree_.cache_hit = cache_hit;
}

void RequestTraceBuilder::set_chunk_spans(SpanLog spans) {
  tree_.chunk_spans = std::move(spans);
}

RequestTree RequestTraceBuilder::finish() {
  const double end = now_ms();
  for (RequestSpan& span : tree_.spans) {
    if (span.end_ms < span.start_ms) span.end_ms = end;
  }
  tree_.latency_ms = end;
  if (!tree_.spans.empty()) tree_.spans.front().end_ms = end;
  return std::move(tree_);
}

RequestTraceStore::RequestTraceStore(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void RequestTraceStore::publish(RequestTree tree) {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.push_back(std::move(tree));
  while (ring_.size() > capacity_) ring_.pop_front();
  ++published_;
}

std::optional<RequestTree> RequestTraceStore::find(
    std::string_view trace_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = ring_.rbegin(); it != ring_.rend(); ++it) {
    if (it->trace_id == trace_id) return *it;
  }
  return std::nullopt;
}

std::optional<RequestTree> RequestTraceStore::latest() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.empty()) return std::nullopt;
  return ring_.back();
}

std::size_t RequestTraceStore::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

std::uint64_t RequestTraceStore::published() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return published_;
}

}  // namespace hetsched::obs
