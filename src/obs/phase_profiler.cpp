#include "obs/phase_profiler.hpp"

#include <chrono>

namespace hetsched::obs {
namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Innermost open phase on this thread; children report their inclusive time
// to it so the parent can subtract and record self time.
thread_local ScopedPhase* g_open_phase = nullptr;

}  // namespace

void PhaseProfiler::record(std::string_view stage, double inclusive_ms,
                           double self_ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  PhaseStats& stats = stages_[std::string(stage)];
  stats.calls += 1;
  stats.total_ms += inclusive_ms;
  stats.self_ms += self_ms;
  if (inclusive_ms > stats.max_ms) stats.max_ms = inclusive_ms;
}

std::map<std::string, PhaseStats> PhaseProfiler::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stages_;
}

json::Value PhaseProfiler::to_json() const {
  const auto stages = snapshot();
  json::Value root = json::Value(json::Value::Object{});
  for (const auto& [stage, stats] : stages) {
    json::Value entry = json::Value(json::Value::Object{});
    entry.set("calls", json::Value(static_cast<double>(stats.calls)));
    entry.set("total_ms", json::Value(stats.total_ms));
    entry.set("self_ms", json::Value(stats.self_ms));
    entry.set("max_ms", json::Value(stats.max_ms));
    root.set(stage, std::move(entry));
  }
  return root;
}

void PhaseProfiler::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  stages_.clear();
}

PhaseProfiler& phase_profiler() {
  static PhaseProfiler profiler;
  return profiler;
}

ScopedPhase::ScopedPhase(std::string_view stage, PhaseProfiler& profiler)
    : profiler_(profiler), stage_(stage), start_ns_(now_ns()) {
  parent_ = g_open_phase;
  g_open_phase = this;
}

ScopedPhase::~ScopedPhase() {
  const double inclusive_ms =
      static_cast<double>(now_ns() - start_ns_) / 1e6;
  g_open_phase = parent_;
  if (parent_ != nullptr) parent_->child_ms_ += inclusive_ms;
  double self_ms = inclusive_ms - child_ms_;
  if (self_ms < 0.0) self_ms = 0.0;
  profiler_.record(stage_, inclusive_ms, self_ms);
}

}  // namespace hetsched::obs
