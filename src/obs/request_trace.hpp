#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.hpp"
#include "obs/span.hpp"

/// Request-scoped tracing for the serving path.
///
/// Every query frame the daemon accepts mints a `trace_id` (16 hex chars,
/// process-unique) and carries a `RequestTraceBuilder` through its whole
/// life: admission enqueue → worker pickup → cache lookup / flight join →
/// sweep compute → response write. The builder assembles one causal
/// `RequestTree` — wall-clock spans relative to the request's accept epoch —
/// and, when the answer ran a simulation with obs recording on, parents the
/// run's `obs::SpanLog` chunk spans under the request's compute span, so a
/// slow answer decomposes end to end: queue wait vs. flight wait vs. sim
/// event loop vs. serialization.
///
/// Published trees land in a bounded `RequestTraceStore` ring; the daemon
/// answers `trace-dump` frames from it and stamps trace ids into latency
/// histogram exemplars, so a fat `/metrics` bucket links to a concrete,
/// fully decomposed request. Stage-tree invariants are checked by
/// `obs::validate_request_tree` (validate.hpp) before a tree is served.
namespace hetsched::obs {

/// Stage names used by the serve path. Centralized so the builder, the
/// validator, and the tests agree on spelling.
inline constexpr std::string_view kStageRequest = "request";
inline constexpr std::string_view kStageQueue = "queue";
inline constexpr std::string_view kStageHandle = "handle";
inline constexpr std::string_view kStageParse = "parse";
inline constexpr std::string_view kStageCache = "cache";
inline constexpr std::string_view kStageCacheHit = "cache-hit";
inline constexpr std::string_view kStageDiskLoad = "disk-load";
inline constexpr std::string_view kStageFlightJoin = "flight-join";
inline constexpr std::string_view kStageCompute = "compute";
inline constexpr std::string_view kStageWrite = "write";

/// One timed stage of a request. Times are wall-clock milliseconds since
/// the owning tree's accept epoch (so a dumped tree is self-contained and
/// never leaks absolute clocks into cacheable payloads).
struct RequestSpan {
  std::uint64_t id = 0;      ///< 1-based; 0 is "no span"
  std::uint64_t parent = 0;  ///< enclosing span, 0 = root
  std::string stage;
  double start_ms = 0.0;
  double end_ms = 0.0;
  std::string detail;  ///< free-form: op, key prefix, leader=<trace_id>, ...
};

/// The complete causal record of one served request.
struct RequestTree {
  std::string trace_id;  ///< 16 lowercase hex chars
  std::string op;
  std::string app;
  std::string status;  ///< response status name ("ok", "error", ...)
  bool cache_hit = false;
  double latency_ms = 0.0;  ///< root span duration
  std::vector<RequestSpan> spans;
  /// Chunk-lifecycle spans of the simulation run that computed the answer
  /// (empty for cache hits and non-simulating ops). Logically parented
  /// under the tree's `compute` span.
  SpanLog chunk_spans;

  json::Value to_json() const;
};

/// Mints a process-unique trace id: an atomic counter mixed with a
/// per-process random seed (splitmix64), rendered as 16 lowercase hex
/// chars. Distinct across restarts with overwhelming probability, and
/// never colliding within one process.
std::string mint_trace_id();

/// Per-request span assembler. Not thread-safe — exactly one thread works
/// a request at any moment (acceptor hands off to one worker), and the
/// hand-off happens through the admission queue's synchronization.
class RequestTraceBuilder {
 public:
  /// Starts the tree: records the accept epoch and opens the root
  /// `request` span. `pre_ms` shifts the epoch back — the serve path
  /// constructs the builder at frame-handling time but dates the tree
  /// from the connection accept, so the queue-wait span ([0, wait]) sits
  /// inside the root.
  RequestTraceBuilder(std::string trace_id, std::string detail = {},
                      double pre_ms = 0.0);

  const std::string& trace_id() const { return tree_.trace_id; }

  /// Milliseconds elapsed since the accept epoch (wall clock).
  double now_ms() const;

  /// Opens a span at `now_ms()` under `parent` (0 = the root span's id is
  /// substituted). Returns the span id for later `close`/child use.
  std::uint64_t open(std::string_view stage, std::uint64_t parent = 0,
                     std::string detail = {});
  /// Closes an open span at `now_ms()`.
  void close(std::uint64_t id);
  /// Adds an already-timed span (start/end in epoch-relative ms).
  std::uint64_t add_span(std::string_view stage, double start_ms,
                         double end_ms, std::uint64_t parent = 0,
                         std::string detail = {});
  /// Appends to a span's detail (e.g. tagging the flight leader).
  void annotate(std::uint64_t id, std::string_view detail);

  std::uint64_t root() const { return root_; }

  /// Fills the summary fields and attaches the run's chunk spans.
  void set_request(std::string op, std::string app);
  void set_outcome(std::string status, bool cache_hit);
  void set_chunk_spans(SpanLog spans);

  /// Closes the root span (and any stragglers) and returns the finished
  /// tree. The builder must not be used afterwards.
  RequestTree finish();

 private:
  RequestTree tree_;
  std::uint64_t epoch_ns_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t root_ = 0;
};

/// Bounded thread-safe ring of recently finished request trees. The daemon
/// publishes every validated tree here; `trace-dump` frames read it back.
class RequestTraceStore {
 public:
  explicit RequestTraceStore(std::size_t capacity = 256);

  void publish(RequestTree tree);
  /// The tree with this trace id, if still retained.
  std::optional<RequestTree> find(std::string_view trace_id) const;
  /// The most recently published tree.
  std::optional<RequestTree> latest() const;

  std::size_t size() const;
  std::uint64_t published() const;

 private:
  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::deque<RequestTree> ring_;
  std::uint64_t published_ = 0;
};

}  // namespace hetsched::obs
