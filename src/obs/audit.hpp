#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/time.hpp"

/// Decision audit log: every scheduler placement records the per-device
/// estimates it compared and why the winner won, so "why did chunk 17 land
/// on the CPU" is answerable from the export instead of from a debugger.
/// The matchmaker's ranking audit lives in strategies::DecisionExplanation;
/// this log covers the dynamic per-chunk decisions.
namespace hetsched::obs {

/// One candidate the scheduler considered for a placement.
struct PlacementEstimate {
  std::string device;
  double finish_ms = -1.0;        ///< predicted finish time, <0 = unknown
  double rate_items_per_s = 0.0;  ///< EMA rate backing the prediction, 0 = none
};

struct PlacementRecord {
  std::uint64_t task = 0;
  std::string kernel;
  std::string device;  ///< the winner
  /// "earliest-finish" | "explore" | "locality" | "probe"
  std::string reason;
  SimTime time = 0;
  std::vector<PlacementEstimate> estimates;
};

class AuditLog {
 public:
  void enable(bool on = true) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  void add(PlacementRecord record) {
    if (enabled_) records_.push_back(std::move(record));
  }

  const std::vector<PlacementRecord>& placements() const { return records_; }

  json::Value to_json() const;

 private:
  bool enabled_ = false;
  std::vector<PlacementRecord> records_;
};

}  // namespace hetsched::obs
