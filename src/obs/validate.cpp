#include "obs/validate.hpp"

#include <algorithm>
#include <map>

#include "sim/trace.hpp"

namespace hetsched::obs {
namespace {

std::string task_tag(std::uint64_t task) {
  return "chunk " + std::to_string(task);
}

}  // namespace

void append_span_violations(const SpanLog& spans,
                            std::vector<std::string>& problems) {
  for (std::uint64_t task : spans.tasks()) {
    const auto chain = spans.chain(task);
    if (chain.empty()) continue;
    if (chain.front()->phase != SpanPhase::kAnnounce) {
      problems.push_back(task_tag(task) + ": chain opens with '" +
                         span_phase_name(chain.front()->phase) +
                         "', expected 'announce'");
    }
    const SpanPhase last = chain.back()->phase;
    if (last != SpanPhase::kComplete && last != SpanPhase::kAbandon) {
      problems.push_back(task_tag(task) + ": chain is not closed (ends in '" +
                         span_phase_name(last) + "')");
    }
    std::uint64_t expected_parent = 0;
    SimTime prev_start = 0;
    for (const ChunkSpan* span : chain) {
      if (span->start < 0 || span->end < span->start) {
        problems.push_back(task_tag(task) + ": span '" +
                           span_phase_name(span->phase) +
                           "' has an invalid time range");
      }
      if (span->parent != expected_parent) {
        problems.push_back(task_tag(task) + ": span '" +
                           span_phase_name(span->phase) +
                           "' has a broken parent link");
      }
      // Recovery phases interrupt a dispatch whose compute span was already
      // recorded with a future start, so they may begin before their parent.
      const bool recovery = span->phase == SpanPhase::kRetry ||
                            span->phase == SpanPhase::kMigrate ||
                            span->phase == SpanPhase::kAbandon;
      if (!recovery && span->start < prev_start) {
        problems.push_back(task_tag(task) + ": span '" +
                           span_phase_name(span->phase) +
                           "' starts before its parent");
      }
      prev_start = recovery ? span->start : std::max(prev_start, span->start);
      expected_parent = span->id;
    }
  }
}

std::vector<std::string> validate_trace(const sim::TraceRecorder& trace,
                                        SimTime makespan,
                                        const SpanLog* spans) {
  std::vector<std::string> problems;

  std::map<std::string, std::vector<const sim::TraceEvent*>> compute_by_lane;
  for (const sim::TraceEvent& event : trace.events()) {
    if (event.start < 0 || event.end < event.start) {
      problems.push_back("event '" + event.label + "' on lane '" + event.lane +
                         "' has an invalid time range");
      continue;
    }
    if (event.kind == sim::TraceKind::kCompute) {
      compute_by_lane[event.lane].push_back(&event);
    }
    if ((event.kind == sim::TraceKind::kFault ||
         event.kind == sim::TraceKind::kRecovery) &&
        makespan > 0 && event.start > makespan) {
      problems.push_back(std::string(sim::trace_kind_name(event.kind)) +
                         " event '" + event.label +
                         "' begins after the run window ends");
    }
  }

  for (auto& [lane, events] : compute_by_lane) {
    std::stable_sort(events.begin(), events.end(),
                     [](const sim::TraceEvent* a, const sim::TraceEvent* b) {
                       return a->start < b->start;
                     });
    for (std::size_t i = 1; i < events.size(); ++i) {
      if (events[i]->start < events[i - 1]->end) {
        problems.push_back("lane '" + lane + "': compute events '" +
                           events[i - 1]->label + "' and '" +
                           events[i]->label + "' overlap");
      }
    }
  }

  if (spans != nullptr) append_span_violations(*spans, problems);
  return problems;
}

std::vector<std::string> validate_request_tree(const RequestTree& tree) {
  std::vector<std::string> problems;
  const std::string tag = "trace " + tree.trace_id;

  // Wall-clock spans close in program order, not in one atomic instant, so
  // containment checks tolerate a small slack.
  constexpr double kSlackMs = 1.0;

  const RequestSpan* root = nullptr;
  std::map<std::uint64_t, const RequestSpan*> by_id;
  std::map<std::string, int> stage_count;
  for (const RequestSpan& span : tree.spans) {
    if (span.id == 0 || by_id.count(span.id) != 0) {
      problems.push_back(tag + ": span id " + std::to_string(span.id) +
                         " is zero or duplicated");
      continue;
    }
    by_id[span.id] = &span;
    stage_count[span.stage] += 1;
    if (span.stage == kStageRequest) {
      if (root != nullptr) {
        problems.push_back(tag + ": more than one root 'request' span");
      }
      root = &span;
    }
  }
  if (root == nullptr) {
    problems.push_back(tag + ": no root 'request' span");
    return problems;
  }
  if (root->parent != 0) {
    problems.push_back(tag + ": root span has a parent");
  }

  for (const RequestSpan& span : tree.spans) {
    if (span.end_ms < span.start_ms) {
      problems.push_back(tag + ": span '" + span.stage +
                         "' has an invalid time range");
    }
    if (&span == root) continue;
    auto parent = by_id.find(span.parent);
    if (parent == by_id.end()) {
      problems.push_back(tag + ": span '" + span.stage +
                         "' has a dangling parent link");
      continue;
    }
    if (span.start_ms + kSlackMs < parent->second->start_ms ||
        span.end_ms > parent->second->end_ms + kSlackMs) {
      problems.push_back(tag + ": span '" + span.stage +
                         "' escapes its parent '" + parent->second->stage +
                         "'");
    }
    // Nothing may dangle past the response write: the root closes last.
    if (span.end_ms > root->end_ms + kSlackMs) {
      problems.push_back(tag + ": span '" + span.stage +
                         "' outlives the request");
    }
  }

  // Queue wait precedes worker pickup.
  const RequestSpan* queue = nullptr;
  const RequestSpan* handle = nullptr;
  for (const RequestSpan& span : tree.spans) {
    if (span.stage == kStageQueue && queue == nullptr) queue = &span;
    if (span.stage == kStageHandle && handle == nullptr) handle = &span;
  }
  if (queue == nullptr) {
    problems.push_back(tag + ": no 'queue' span (queue wait unrecorded)");
  }
  if (handle != nullptr && queue != nullptr &&
      queue->end_ms > handle->start_ms + kSlackMs) {
    problems.push_back(tag + ": 'queue' span ends after 'handle' starts");
  }

  // Cache-transparency of the tree itself: hits never compute, misses do.
  const int computes = stage_count[std::string(kStageCompute)];
  const int hit_like = stage_count[std::string(kStageCacheHit)] +
                       stage_count[std::string(kStageDiskLoad)] +
                       stage_count[std::string(kStageFlightJoin)];
  if (tree.cache_hit && computes > 0) {
    problems.push_back(tag + ": cache-hit tree contains a 'compute' span");
  }
  if (tree.cache_hit && hit_like == 0) {
    problems.push_back(tag +
                       ": cache-hit tree has no cache-hit/disk-load/"
                       "flight-join span");
  }
  if (!tree.cache_hit && tree.status == "ok" && computes == 0 &&
      stage_count[std::string(kStageCache)] > 0) {
    problems.push_back(tag + ": cache-miss tree has no 'compute' span");
  }

  // Flight joiners must name their leader: their answer was computed under
  // another request's compute span.
  for (const RequestSpan& span : tree.spans) {
    if (span.stage == kStageFlightJoin &&
        span.detail.find("leader=") == std::string::npos) {
      problems.push_back(tag + ": 'flight-join' span does not name a leader");
    }
  }

  // Chunk spans need a compute span to hang under, and must themselves be
  // well-formed chains.
  if (!tree.chunk_spans.spans().empty() && computes == 0) {
    problems.push_back(tag + ": chunk spans attached but no 'compute' span");
  }
  append_span_violations(tree.chunk_spans, problems);
  return problems;
}

}  // namespace hetsched::obs
