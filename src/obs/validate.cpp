#include "obs/validate.hpp"

#include <algorithm>
#include <map>

#include "sim/trace.hpp"

namespace hetsched::obs {
namespace {

std::string task_tag(std::uint64_t task) {
  return "chunk " + std::to_string(task);
}

}  // namespace

void append_span_violations(const SpanLog& spans,
                            std::vector<std::string>& problems) {
  for (std::uint64_t task : spans.tasks()) {
    const auto chain = spans.chain(task);
    if (chain.empty()) continue;
    if (chain.front()->phase != SpanPhase::kAnnounce) {
      problems.push_back(task_tag(task) + ": chain opens with '" +
                         span_phase_name(chain.front()->phase) +
                         "', expected 'announce'");
    }
    const SpanPhase last = chain.back()->phase;
    if (last != SpanPhase::kComplete && last != SpanPhase::kAbandon) {
      problems.push_back(task_tag(task) + ": chain is not closed (ends in '" +
                         span_phase_name(last) + "')");
    }
    std::uint64_t expected_parent = 0;
    SimTime prev_start = 0;
    for (const ChunkSpan* span : chain) {
      if (span->start < 0 || span->end < span->start) {
        problems.push_back(task_tag(task) + ": span '" +
                           span_phase_name(span->phase) +
                           "' has an invalid time range");
      }
      if (span->parent != expected_parent) {
        problems.push_back(task_tag(task) + ": span '" +
                           span_phase_name(span->phase) +
                           "' has a broken parent link");
      }
      // Recovery phases interrupt a dispatch whose compute span was already
      // recorded with a future start, so they may begin before their parent.
      const bool recovery = span->phase == SpanPhase::kRetry ||
                            span->phase == SpanPhase::kMigrate ||
                            span->phase == SpanPhase::kAbandon;
      if (!recovery && span->start < prev_start) {
        problems.push_back(task_tag(task) + ": span '" +
                           span_phase_name(span->phase) +
                           "' starts before its parent");
      }
      prev_start = recovery ? span->start : std::max(prev_start, span->start);
      expected_parent = span->id;
    }
  }
}

std::vector<std::string> validate_trace(const sim::TraceRecorder& trace,
                                        SimTime makespan,
                                        const SpanLog* spans) {
  std::vector<std::string> problems;

  std::map<std::string, std::vector<const sim::TraceEvent*>> compute_by_lane;
  for (const sim::TraceEvent& event : trace.events()) {
    if (event.start < 0 || event.end < event.start) {
      problems.push_back("event '" + event.label + "' on lane '" + event.lane +
                         "' has an invalid time range");
      continue;
    }
    if (event.kind == sim::TraceKind::kCompute) {
      compute_by_lane[event.lane].push_back(&event);
    }
    if ((event.kind == sim::TraceKind::kFault ||
         event.kind == sim::TraceKind::kRecovery) &&
        makespan > 0 && event.start > makespan) {
      problems.push_back(std::string(sim::trace_kind_name(event.kind)) +
                         " event '" + event.label +
                         "' begins after the run window ends");
    }
  }

  for (auto& [lane, events] : compute_by_lane) {
    std::stable_sort(events.begin(), events.end(),
                     [](const sim::TraceEvent* a, const sim::TraceEvent* b) {
                       return a->start < b->start;
                     });
    for (std::size_t i = 1; i < events.size(); ++i) {
      if (events[i]->start < events[i - 1]->end) {
        problems.push_back("lane '" + lane + "': compute events '" +
                           events[i - 1]->label + "' and '" +
                           events[i]->label + "' overlap");
      }
    }
  }

  if (spans != nullptr) append_span_violations(*spans, problems);
  return problems;
}

}  // namespace hetsched::obs
