#pragma once

#include <string>

#include "common/json.hpp"
#include "obs/audit.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace hetsched::sim {
class TraceRecorder;
}  // namespace hetsched::sim

namespace hetsched::obs {

/// Everything observed about one run: the metrics registry, the chunk span
/// log, and the placement audit. Owned by the ExecutionReport (shared_ptr,
/// so it survives report moves) and created only when
/// RuntimeOptions::record_observability is set — otherwise the runtime
/// carries a null pointer and pays one branch per instrumentation site.
struct RunObservability {
  MetricsRegistry metrics;
  SpanLog spans;
  AuditLog audit;

  void enable() {
    metrics.enable();
    spans.enable();
    audit.enable();
  }
  bool enabled() const { return metrics.enabled(); }

  /// Byte-stable combined export: {"metrics":…,"spans":…,"placements":…}.
  json::Value to_json() const;
};

/// Renders the chrome-trace JSON with one Perfetto counter track ("ph":"C")
/// merged in per registry counter track, so queue depth / EMA / in-flight
/// transfer curves appear alongside the Gantt lanes in the trace viewer.
std::string chrome_trace_with_counters(const sim::TraceRecorder& trace,
                                       const MetricsRegistry& metrics);

}  // namespace hetsched::obs
