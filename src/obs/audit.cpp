#include "obs/audit.hpp"

namespace hetsched::obs {

json::Value AuditLog::to_json() const {
  json::Value root{json::Value::Array{}};
  for (const PlacementRecord& record : records_) {
    json::Value r{json::Value::Object{}};
    r.set("task", json::Value(static_cast<double>(record.task)));
    r.set("kernel", json::Value(record.kernel));
    r.set("device", json::Value(record.device));
    r.set("reason", json::Value(record.reason));
    r.set("time_ms", json::Value(to_millis(record.time)));
    json::Value estimates{json::Value::Array{}};
    for (const PlacementEstimate& est : record.estimates) {
      json::Value e{json::Value::Object{}};
      e.set("device", json::Value(est.device));
      e.set("finish_ms", json::Value(est.finish_ms));
      e.set("rate_items_per_s", json::Value(est.rate_items_per_s));
      estimates.push_back(std::move(e));
    }
    r.set("estimates", std::move(estimates));
    root.push_back(std::move(r));
  }
  return root;
}

}  // namespace hetsched::obs
