#include "obs/span.hpp"

#include <algorithm>

namespace hetsched::obs {

const char* span_phase_name(SpanPhase phase) {
  switch (phase) {
    case SpanPhase::kAnnounce: return "announce";
    case SpanPhase::kSchedule: return "schedule";
    case SpanPhase::kH2D: return "h2d";
    case SpanPhase::kCompute: return "compute";
    case SpanPhase::kD2H: return "d2h";
    case SpanPhase::kComplete: return "complete";
    case SpanPhase::kRetry: return "retry";
    case SpanPhase::kMigrate: return "migrate";
    case SpanPhase::kAbandon: return "abandon";
  }
  return "?";
}

std::uint64_t SpanLog::record(std::uint64_t task, int attempt, SpanPhase phase,
                              SimTime start, SimTime end, std::string detail) {
  if (!enabled_) return 0;
  ChunkSpan span;
  span.id = spans_.size() + 1;
  span.task = task;
  span.attempt = attempt;
  span.phase = phase;
  span.start = start;
  span.end = end;
  span.detail = std::move(detail);
  auto it = last_span_.find(task);
  span.parent = it == last_span_.end() ? 0 : it->second;
  last_span_[task] = span.id;
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

std::vector<const ChunkSpan*> SpanLog::chain(std::uint64_t task) const {
  std::vector<const ChunkSpan*> out;
  for (const ChunkSpan& span : spans_) {
    if (span.task == task) out.push_back(&span);
  }
  return out;
}

std::vector<std::uint64_t> SpanLog::tasks() const {
  std::vector<std::uint64_t> out;
  out.reserve(last_span_.size());
  for (const auto& [task, _] : last_span_) out.push_back(task);
  return out;
}

json::Value SpanLog::to_json() const {
  json::Value root = json::Value(json::Value::Array{});
  for (const ChunkSpan& span : spans_) {
    json::Value s = json::Value(json::Value::Object{});
    s.set("id", json::Value(static_cast<double>(span.id)));
    s.set("task", json::Value(static_cast<double>(span.task)));
    s.set("attempt", json::Value(static_cast<double>(span.attempt)));
    s.set("phase", json::Value(span_phase_name(span.phase)));
    s.set("start", json::Value(static_cast<double>(span.start)));
    s.set("end", json::Value(static_cast<double>(span.end)));
    s.set("detail", json::Value(span.detail));
    s.set("parent", json::Value(static_cast<double>(span.parent)));
    root.push_back(std::move(s));
  }
  return root;
}

}  // namespace hetsched::obs
