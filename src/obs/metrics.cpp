#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

namespace hetsched::obs {
namespace {

// Splits `name{a=b,c=d}` into the bare name and label pairs. Returns false
// when the key is structurally malformed.
bool split_key(std::string_view key, std::string& name,
               std::vector<std::pair<std::string, std::string>>& labels) {
  name.clear();
  labels.clear();
  const std::size_t brace = key.find('{');
  if (brace == std::string_view::npos) {
    if (key.empty() || key.find('}') != std::string_view::npos) return false;
    name.assign(key);
    return true;
  }
  if (brace == 0 || key.back() != '}') return false;
  name.assign(key.substr(0, brace));
  std::string_view body = key.substr(brace + 1, key.size() - brace - 2);
  if (body.empty()) return false;
  while (!body.empty()) {
    const std::size_t comma = body.find(',');
    const std::string_view item =
        comma == std::string_view::npos ? body : body.substr(0, comma);
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos || eq == 0) return false;
    labels.emplace_back(std::string(item.substr(0, eq)),
                        std::string(item.substr(eq + 1)));
    if (comma == std::string_view::npos) break;
    body.remove_prefix(comma + 1);
  }
  return true;
}

// Prometheus metric names allow [a-zA-Z0-9_:] only.
std::string prom_name(std::string_view raw) {
  std::string out = "hs_";
  for (char c : raw) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string prom_labels(
    const std::vector<std::pair<std::string, std::string>>& labels,
    const char* extra_key = nullptr, const std::string& extra_value = "") {
  if (labels.empty() && extra_key == nullptr) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k + "=\"" + json::escape(v) + "\"";
  }
  if (extra_key != nullptr) {
    if (!first) out += ",";
    out += std::string(extra_key) + "=\"" + json::escape(extra_value) + "\"";
  }
  out += "}";
  return out;
}

struct PromEntry {
  std::string labels;  // rendered {..} suffix, may be empty
  std::string body;    // the sample line(s), already name-prefixed
};

}  // namespace

std::string metric_key(
    std::string_view name,
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        labels) {
  std::string key(name);
  if (labels.size() == 0) return key;
  std::vector<std::pair<std::string_view, std::string_view>> sorted(labels);
  std::sort(sorted.begin(), sorted.end());
  key.push_back('{');
  bool first = true;
  for (const auto& [k, v] : sorted) {
    if (!first) key.push_back(',');
    first = false;
    key.append(k);
    key.push_back('=');
    key.append(v);
  }
  key.push_back('}');
  return key;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  weights_.assign(bounds_.size() + 1, 0.0);
  exemplars_.assign(bounds_.size() + 1, Exemplar{});
}

void Histogram::observe(double value, double weight,
                        std::string_view exemplar_trace) {
  std::size_t bucket = bounds_.size();
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  weights_[bucket] += weight;
  sum_ += value * weight;
  total_weight_ += weight;
  if (!exemplar_trace.empty()) {
    // Last writer wins: the exemplar is a *recent* representative of the
    // bucket, not an extreme, matching OpenMetrics practice.
    exemplars_[bucket] = {value, std::string(exemplar_trace), true};
    has_exemplars_ = true;
  }
}

double histogram_quantile(const Histogram& hist, double q) {
  const double total = hist.total_weight();
  if (total <= 0.0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double rank = q * total;
  double cumulative = 0.0;
  for (std::size_t i = 0; i < hist.bounds().size(); ++i) {
    const double w = hist.weights()[i];
    if (cumulative + w >= rank && w > 0.0) {
      const double lower = i == 0 ? 0.0 : hist.bounds()[i - 1];
      const double upper = hist.bounds()[i];
      const double fraction = (rank - cumulative) / w;
      return lower + (upper - lower) * fraction;
    }
    cumulative += w;
  }
  // Overflow bucket: no finite upper bound, clamp to the largest one.
  return hist.bounds().empty() ? 0.0 : hist.bounds().back();
}

std::vector<double> Histogram::default_bounds() {
  // 0.01 ms .. ~164 s, powers of 4: wide enough for chunk computes and
  // whole-run distributions alike.
  std::vector<double> bounds;
  double b = 0.01;
  for (int i = 0; i < 12; ++i) {
    bounds.push_back(b);
    b *= 4.0;
  }
  return bounds;
}

std::vector<CounterTrack::Sample> CounterTrack::series() const {
  std::vector<Event> sorted = events_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Event& a, const Event& b) { return a.time < b.time; });
  std::vector<Sample> out;
  double value = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (sorted[i].absolute) {
      value = sorted[i].value;
    } else {
      value += sorted[i].value;
    }
    // Emit one sample per distinct timestamp: the value after the last
    // event at that instant.
    if (i + 1 == sorted.size() || sorted[i + 1].time != sorted[i].time) {
      out.push_back({sorted[i].time, value});
    }
  }
  return out;
}

void MetricsRegistry::counter_add(std::string_view key, std::int64_t delta) {
  if (!enabled_) return;
  counters_[std::string(key)] += delta;
}

void MetricsRegistry::gauge_set(std::string_view key, double value) {
  if (!enabled_) return;
  gauges_[std::string(key)] = value;
}

void MetricsRegistry::observe(std::string_view key, double value,
                              double weight,
                              std::string_view exemplar_trace) {
  if (!enabled_) return;
  auto it = histograms_.find(std::string(key));
  if (it == histograms_.end()) {
    std::vector<double> bounds = Histogram::default_bounds();
    auto pending = pending_bounds_.find(std::string(key));
    if (pending != pending_bounds_.end()) {
      bounds = pending->second;
      pending_bounds_.erase(pending);
    }
    it = histograms_.emplace(std::string(key), Histogram(std::move(bounds)))
             .first;
  }
  it->second.observe(value, weight, exemplar_trace);
}

void MetricsRegistry::histogram_bounds(std::string_view key,
                                       std::vector<double> bounds) {
  if (!enabled_) return;
  if (histograms_.count(std::string(key)) != 0) return;
  pending_bounds_[std::string(key)] = std::move(bounds);
}

void MetricsRegistry::track_add(std::string_view key, SimTime time,
                                double delta) {
  if (!enabled_) return;
  tracks_[std::string(key)].add(time, delta);
}

void MetricsRegistry::track_set(std::string_view key, SimTime time,
                                double value) {
  if (!enabled_) return;
  tracks_[std::string(key)].set(time, value);
}

std::int64_t MetricsRegistry::counter(std::string_view key) const {
  auto it = counters_.find(std::string(key));
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::gauge(std::string_view key) const {
  auto it = gauges_.find(std::string(key));
  return it == gauges_.end() ? 0.0 : it->second;
}

const Histogram* MetricsRegistry::find_histogram(std::string_view key) const {
  auto it = histograms_.find(std::string(key));
  return it == histograms_.end() ? nullptr : &it->second;
}

const CounterTrack* MetricsRegistry::find_track(std::string_view key) const {
  auto it = tracks_.find(std::string(key));
  return it == tracks_.end() ? nullptr : &it->second;
}

json::Value MetricsRegistry::to_json() const {
  json::Value root = json::Value(json::Value::Object{});
  root.set("enabled", json::Value(enabled_));
  json::Value counters = json::Value(json::Value::Object{});
  for (const auto& [key, value] : counters_) {
    counters.set(key, json::Value(static_cast<double>(value)));
  }
  root.set("counters", std::move(counters));
  json::Value gauges = json::Value(json::Value::Object{});
  for (const auto& [key, value] : gauges_) {
    gauges.set(key, json::Value(value));
  }
  root.set("gauges", std::move(gauges));
  json::Value histograms = json::Value(json::Value::Object{});
  for (const auto& [key, hist] : histograms_) {
    json::Value h = json::Value(json::Value::Object{});
    json::Value bounds = json::Value(json::Value::Array{});
    for (double b : hist.bounds()) bounds.push_back(json::Value(b));
    h.set("bounds", std::move(bounds));
    json::Value weights = json::Value(json::Value::Array{});
    for (double w : hist.weights()) weights.push_back(json::Value(w));
    h.set("weights", std::move(weights));
    h.set("sum", json::Value(hist.sum()));
    h.set("count", json::Value(hist.total_weight()));
    // Only histograms that actually carry exemplars grow the member, so
    // pre-exemplar documents (and cache payloads) stay byte-identical.
    if (hist.has_exemplars()) {
      json::Value exemplars = json::Value(json::Value::Array{});
      for (std::size_t i = 0; i < hist.exemplars().size(); ++i) {
        const Histogram::Exemplar& ex = hist.exemplars()[i];
        if (!ex.valid) continue;
        json::Value e = json::Value(json::Value::Object{});
        e.set("bucket", json::Value(static_cast<double>(i)));
        e.set("value", json::Value(ex.value));
        e.set("trace_id", json::Value(ex.trace_id));
        exemplars.push_back(std::move(e));
      }
      h.set("exemplars", std::move(exemplars));
    }
    histograms.set(key, std::move(h));
  }
  root.set("histograms", std::move(histograms));
  json::Value tracks = json::Value(json::Value::Object{});
  for (const auto& [key, track] : tracks_) {
    json::Value series = json::Value(json::Value::Array{});
    for (const auto& sample : track.series()) {
      json::Value point = json::Value(json::Value::Array{});
      point.push_back(json::Value(static_cast<double>(sample.time)));
      point.push_back(json::Value(sample.value));
      series.push_back(std::move(point));
    }
    tracks.set(key, std::move(series));
  }
  root.set("tracks", std::move(tracks));
  return root;
}

std::string MetricsRegistry::to_prometheus() const {
  // Group samples by bare metric name so each `# TYPE` line covers one
  // contiguous block, as the exposition format requires.
  std::ostringstream out;
  auto emit_section = [&out](const std::map<std::string, std::vector<PromEntry>>&
                                 groups,
                             const char* type) {
    for (const auto& [name, entries] : groups) {
      out << "# TYPE " << name << " " << type << "\n";
      for (const auto& entry : entries) out << entry.body;
    }
  };

  std::map<std::string, std::vector<PromEntry>> counter_groups;
  for (const auto& [key, value] : counters_) {
    std::string name;
    std::vector<std::pair<std::string, std::string>> labels;
    if (!split_key(key, name, labels)) continue;
    const std::string pname = prom_name(name);
    counter_groups[pname].push_back(
        {prom_labels(labels),
         pname + prom_labels(labels) + " " + std::to_string(value) + "\n"});
  }
  emit_section(counter_groups, "counter");

  std::map<std::string, std::vector<PromEntry>> gauge_groups;
  for (const auto& [key, value] : gauges_) {
    std::string name;
    std::vector<std::pair<std::string, std::string>> labels;
    if (!split_key(key, name, labels)) continue;
    const std::string pname = prom_name(name);
    gauge_groups[pname].push_back(
        {prom_labels(labels),
         pname + prom_labels(labels) + " " + json::format_double(value) +
             "\n"});
  }
  // Counter tracks expose their final value as a gauge.
  for (const auto& [key, track] : tracks_) {
    std::string name;
    std::vector<std::pair<std::string, std::string>> labels;
    if (!split_key(key, name, labels)) continue;
    const auto series = track.series();
    const double last = series.empty() ? 0.0 : series.back().value;
    const std::string pname = prom_name(name);
    gauge_groups[pname].push_back(
        {prom_labels(labels),
         pname + prom_labels(labels) + " " + json::format_double(last) +
             "\n"});
  }
  emit_section(gauge_groups, "gauge");

  std::map<std::string, std::vector<PromEntry>> hist_groups;
  for (const auto& [key, hist] : histograms_) {
    std::string name;
    std::vector<std::pair<std::string, std::string>> labels;
    if (!split_key(key, name, labels)) continue;
    const std::string pname = prom_name(name);
    std::ostringstream body;
    // Exemplar suffixes follow OpenMetrics: `# {trace_id="..."} value`
    // appended to the bucket line, emitted only when a traced observation
    // actually landed in that bucket (untraced output is byte-identical
    // to the pre-exemplar format).
    auto exemplar_suffix = [&hist](std::size_t bucket) -> std::string {
      const Histogram::Exemplar& ex = hist.exemplars()[bucket];
      if (!ex.valid) return "";
      return " # {trace_id=\"" + json::escape(ex.trace_id) + "\"} " +
             json::format_double(ex.value);
    };
    double cumulative = 0.0;
    for (std::size_t i = 0; i < hist.bounds().size(); ++i) {
      cumulative += hist.weights()[i];
      body << pname << "_bucket"
           << prom_labels(labels, "le", json::format_double(hist.bounds()[i]))
           << " " << json::format_double(cumulative) << exemplar_suffix(i)
           << "\n";
    }
    cumulative += hist.weights().back();
    body << pname << "_bucket" << prom_labels(labels, "le", "+Inf") << " "
         << json::format_double(cumulative)
         << exemplar_suffix(hist.bounds().size()) << "\n";
    body << pname << "_sum" << prom_labels(labels) << " "
         << json::format_double(hist.sum()) << "\n";
    body << pname << "_count" << prom_labels(labels) << " "
         << json::format_double(hist.total_weight()) << "\n";
    hist_groups[pname].push_back({prom_labels(labels), body.str()});
  }
  emit_section(hist_groups, "histogram");
  return out.str();
}

std::vector<std::string> MetricsRegistry::validate() const {
  std::vector<std::string> problems;
  std::string name;
  std::vector<std::pair<std::string, std::string>> labels;
  auto check_key = [&](const std::string& key, const char* kind) {
    if (!split_key(key, name, labels)) {
      problems.push_back(std::string(kind) + " key '" + key +
                         "' is malformed");
    }
  };
  for (const auto& [key, value] : counters_) {
    check_key(key, "counter");
    if (value < 0) {
      problems.push_back("counter '" + key + "' is negative (" +
                         std::to_string(value) + ")");
    }
  }
  for (const auto& [key, value] : gauges_) {
    check_key(key, "gauge");
    if (!std::isfinite(value)) {
      problems.push_back("gauge '" + key + "' is not finite");
    }
  }
  for (const auto& [key, hist] : histograms_) {
    check_key(key, "histogram");
    for (double w : hist.weights()) {
      if (w < 0.0 || !std::isfinite(w)) {
        problems.push_back("histogram '" + key + "' has an invalid weight");
        break;
      }
    }
    if (!std::isfinite(hist.sum())) {
      problems.push_back("histogram '" + key + "' sum is not finite");
    }
  }
  for (const auto& [key, track] : tracks_) {
    check_key(key, "track");
    for (const auto& sample : track.series()) {
      if (sample.time < 0) {
        problems.push_back("track '" + key + "' has a negative-time sample");
        break;
      }
      if (!std::isfinite(sample.value)) {
        problems.push_back("track '" + key + "' has a non-finite sample");
        break;
      }
    }
  }
  return problems;
}

void observe_time_weighted(MetricsRegistry& registry,
                           std::string_view hist_key,
                           const std::vector<CounterTrack::Sample>& series,
                           SimTime horizon) {
  for (std::size_t i = 0; i < series.size(); ++i) {
    const SimTime start = series[i].time;
    const SimTime end = i + 1 < series.size()
                            ? std::min(series[i + 1].time, horizon)
                            : horizon;
    if (end <= start) continue;
    registry.observe(hist_key, series[i].value, to_millis(end - start));
  }
}

}  // namespace hetsched::obs
