#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/json.hpp"
#include "common/time.hpp"

/// Deterministic metrics registry (counters, gauges, time-weighted
/// histograms, and counter tracks), keyed by `name{label=value}` strings.
///
/// Everything here runs on virtual time only — no wall clock ever enters a
/// metric — so two identical simulations produce byte-identical exports.
/// Exposition formats:
///   - `to_json()`       byte-stable JSON (sorted keys, format_double)
///   - `to_prometheus()` Prometheus text format (for script gating)
///   - counter tracks render as Perfetto "ph":"C" events via
///     obs::chrome_trace_with_counters (observability.hpp)
///
/// The registry is near-zero-cost when disabled: every mutation checks one
/// bool and returns, and nothing is allocated.
namespace hetsched::obs {

/// Canonical metric key: `name{k1=v1,k2=v2}` with labels sorted by key
/// (`name` alone when no labels). Sorted labels make the key independent of
/// call-site argument order.
std::string metric_key(
    std::string_view name,
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        labels);

/// Well-known counter names the sweep performance layer records when a
/// registry is wired through SweepOptions::metrics. Declared here so sweep
/// code, tests, and dashboards agree on the spelling.
inline constexpr std::string_view kSweepTwinMemoHits = "twin_memo_hits";
inline constexpr std::string_view kSweepTwinComputes = "twin_computes";
inline constexpr std::string_view kSweepScenarioDedupHits =
    "scenario_dedup_hits";
inline constexpr std::string_view kSweepCacheHits = "sweep_cache_hits";
inline constexpr std::string_view kSweepCacheMisses = "sweep_cache_misses";
inline constexpr std::string_view kSweepCacheDroppedStores =
    "sweep_cache_dropped_stores";

/// A histogram over explicit bucket upper bounds with weighted observations
/// (weight = duration for time-weighted distributions, 1 for plain counts).
/// Bucket i holds the total weight of values <= bounds[i] (first matching
/// bound, Prometheus `le` semantics); one overflow bucket catches the rest.
///
/// Each bucket optionally retains one OpenMetrics-style *exemplar* — the
/// most recent observation tagged with a trace id — so a fat latency bucket
/// in `/metrics` links to a concrete request tree (`# {trace_id="..."} v`
/// suffix on the bucket line). Exemplars are only recorded when the caller
/// supplies a trace id, so untraced histograms expose byte-identical
/// output to before exemplars existed.
class Histogram {
 public:
  struct Exemplar {
    double value = 0.0;
    std::string trace_id;
    bool valid = false;
  };

  explicit Histogram(std::vector<double> bounds = default_bounds());

  void observe(double value, double weight = 1.0,
               std::string_view exemplar_trace = {});

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket weights; size bounds().size() + 1 (last = overflow).
  const std::vector<double>& weights() const { return weights_; }
  /// Per-bucket exemplars; size bounds().size() + 1 (last = overflow).
  const std::vector<Exemplar>& exemplars() const { return exemplars_; }
  bool has_exemplars() const { return has_exemplars_; }
  double sum() const { return sum_; }
  /// Total observed weight (the Prometheus `_count` under weighting).
  double total_weight() const { return total_weight_; }

  /// Exponential default bounds suitable for millisecond durations.
  static std::vector<double> default_bounds();

 private:
  std::vector<double> bounds_;
  std::vector<double> weights_;
  std::vector<Exemplar> exemplars_;
  bool has_exemplars_ = false;
  double sum_ = 0.0;
  double total_weight_ = 0.0;
};

/// Prometheus-style quantile estimate (`q` in [0,1]) from a histogram's
/// cumulative buckets: finds the bucket holding the q-th weight and
/// interpolates linearly inside it. The overflow bucket clamps to the last
/// finite bound. Returns 0 for an empty histogram.
double histogram_quantile(const Histogram& hist, double q);

/// A value that evolves over virtual time (queue depth, EMA estimate,
/// in-flight transfers). Samples are recorded as absolute values or deltas
/// in any order; `series()` integrates them into one (time, value) step
/// function, deterministically (stable w.r.t. recording order at equal
/// times).
class CounterTrack {
 public:
  struct Sample {
    SimTime time = 0;
    double value = 0.0;
  };

  /// Records an absolute value at `time`.
  void set(SimTime time, double value) {
    events_.push_back({time, value, /*absolute=*/true});
  }
  /// Records a delta applied at `time`.
  void add(SimTime time, double delta) {
    events_.push_back({time, delta, /*absolute=*/false});
  }

  bool empty() const { return events_.empty(); }
  std::size_t event_count() const { return events_.size(); }

  /// The integrated step function: sorted by time, one sample per distinct
  /// timestamp (the value after all events at that timestamp applied).
  std::vector<Sample> series() const;

 private:
  struct Event {
    SimTime time = 0;
    double value = 0.0;
    bool absolute = false;
  };
  std::vector<Event> events_;
};

class MetricsRegistry {
 public:
  void enable(bool on = true) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  // --- mutation (no-ops while disabled) ---
  void counter_add(std::string_view key, std::int64_t delta = 1);
  void gauge_set(std::string_view key, double value);
  void observe(std::string_view key, double value, double weight = 1.0,
               std::string_view exemplar_trace = {});
  /// Sets the bucket bounds a histogram key will be created with (must be
  /// called before its first observe; later calls are ignored).
  void histogram_bounds(std::string_view key, std::vector<double> bounds);
  void track_add(std::string_view key, SimTime time, double delta);
  void track_set(std::string_view key, SimTime time, double value);

  // --- read access ---
  std::int64_t counter(std::string_view key) const;
  double gauge(std::string_view key) const;
  const Histogram* find_histogram(std::string_view key) const;
  const CounterTrack* find_track(std::string_view key) const;

  const std::map<std::string, std::int64_t>& counters() const {
    return counters_;
  }
  const std::map<std::string, double>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }
  const std::map<std::string, CounterTrack>& tracks() const {
    return tracks_;
  }

  // --- exposition ---
  json::Value to_json() const;
  std::string to_json_string() const { return to_json().dump(); }
  /// Prometheus text exposition: counters/gauges verbatim, histograms as
  /// cumulative `_bucket`/`_sum`/`_count` series, tracks as gauges holding
  /// their final value. Names are prefixed `hs_` and sanitized.
  std::string to_prometheus() const;

  /// Structural health check: returns one message per violation (negative
  /// counters, non-finite values, malformed keys, negative sample times).
  /// Empty means the registry is well-formed.
  std::vector<std::string> validate() const;

 private:
  bool enabled_ = false;
  std::map<std::string, std::int64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, std::vector<double>> pending_bounds_;
  std::map<std::string, CounterTrack> tracks_;
};

/// Folds a counter-track step function into `registry`'s histogram at
/// `hist_key`, weighting each value by the virtual time spent at it (ms),
/// up to `horizon`. This is how per-device queue-depth distributions are
/// derived at end of run.
void observe_time_weighted(MetricsRegistry& registry,
                           std::string_view hist_key,
                           const std::vector<CounterTrack::Sample>& series,
                           SimTime horizon);

}  // namespace hetsched::obs
