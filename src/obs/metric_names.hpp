#pragma once

#include <string_view>

/// Central registry of serve-path and profiler metric names.
///
/// Every metric the daemon registers is declared here (one `kMetric*`
/// constant per name) so the server, the bench, the tests, and the docs
/// agree on spelling. The `lint.metric_names` ctest
/// (tools/check_metric_names.cmake) parses this file and enforces:
///   - snake_case names ([a-z][a-z0-9_]*)
///   - no duplicates
///   - every name documented in docs/observability.md
///
/// Sweep-layer counter names predate this header and live in
/// obs/metrics.hpp (kSweep*); the lint covers both files.
namespace hetsched::obs {

// --- serve request flow ---
inline constexpr std::string_view kMetricServeRequests = "serve_requests_total";
inline constexpr std::string_view kMetricServeResponses =
    "serve_responses_total";
inline constexpr std::string_view kMetricServeRequestLatencyMs =
    "serve_request_latency_ms";
inline constexpr std::string_view kMetricServeQueueWaitMs =
    "serve_queue_wait_ms";
inline constexpr std::string_view kMetricServeBadFrames =
    "serve_bad_frames_total";
inline constexpr std::string_view kMetricServeHttpRequests =
    "serve_http_requests_total";

// --- admission queue ---
inline constexpr std::string_view kMetricServeQueueDepth = "serve_queue_depth";
inline constexpr std::string_view kMetricServeQueueCapacity =
    "serve_queue_capacity";
inline constexpr std::string_view kMetricServeQueueMaxDepth =
    "serve_queue_max_depth";
inline constexpr std::string_view kMetricServeQueueRejected =
    "serve_queue_rejected";

// --- shard cache ---
inline constexpr std::string_view kMetricServeCacheHits =
    "serve_cache_hits_total";
inline constexpr std::string_view kMetricServeCacheMisses =
    "serve_cache_misses_total";
inline constexpr std::string_view kMetricServeCacheDiskHits =
    "serve_cache_disk_hits_total";
inline constexpr std::string_view kMetricServeCacheFlushed =
    "serve_cache_flushed_total";
inline constexpr std::string_view kMetricServeCacheEntries =
    "serve_cache_entries";
inline constexpr std::string_view kMetricServeCacheShards =
    "serve_cache_shards";
inline constexpr std::string_view kMetricServeCacheShardHits =
    "serve_cache_shard_hits";
inline constexpr std::string_view kMetricServeCacheShardMisses =
    "serve_cache_shard_misses";

// --- tracing ---
inline constexpr std::string_view kMetricServeTracesPublished =
    "serve_traces_published_total";
inline constexpr std::string_view kMetricServeTraceInvalid =
    "serve_trace_invalid_total";

// --- workers ---
inline constexpr std::string_view kMetricServeWorkers = "serve_workers";

// --- phase profiler exposition (gauge families, labeled by stage) ---
inline constexpr std::string_view kMetricPhaseTotalMs = "phase_total_ms";
inline constexpr std::string_view kMetricPhaseSelfMs = "phase_self_ms";
inline constexpr std::string_view kMetricPhaseMaxMs = "phase_max_ms";
inline constexpr std::string_view kMetricPhaseCalls = "phase_calls_total";

}  // namespace hetsched::obs
