#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/logging.hpp"

/// Leveled structured logging with trace correlation.
///
/// `obs::Log` layers key=value fields over the global `hetsched::log` sink
/// (same threshold, same stderr stream, same emission mutex) so a serve-path
/// event carries its `trace_id` on every line instead of prose that cannot
/// be grepped back to a request. Two output formats, switchable at runtime
/// (`--log-format json` on the serve verb):
///
///   text:  [hetsched INFO ] serve.request trace_id=4be9... op=match ...
///   json:  {"level":"info","event":"serve.request","trace_id":"4be9...",...}
///
/// Fields preserve insertion order; values are escaped in JSON mode. Usage:
///
///   obs::Log(log::Level::kInfo, "serve.request")
///       .field("trace_id", trace_id)
///       .field("op", request.op)
///       .field("latency_ms", latency)
///       .emit();
///
/// A Log that is never `emit()`ed logs nothing (fields are cheap to build
/// below the threshold too — callers should still guard hot paths with
/// `log::level()` when field construction itself is costly).
namespace hetsched::obs {

enum class LogFormat { kText, kJson };

/// Global output format (default text). The serve daemon sets this from
/// its --log-format flag before spawning workers.
void set_log_format(LogFormat format);
LogFormat log_format();

class Log {
 public:
  Log(log::Level level, std::string_view event)
      : level_(level), event_(event) {}

  Log& field(std::string_view key, std::string_view value) {
    fields_.emplace_back(std::string(key), std::string(value));
    quoted_.push_back(true);
    return *this;
  }
  Log& field(std::string_view key, const char* value) {
    return field(key, std::string_view(value));
  }
  Log& field(std::string_view key, const std::string& value) {
    return field(key, std::string_view(value));
  }
  Log& field(std::string_view key, bool value) {
    fields_.emplace_back(std::string(key), value ? "true" : "false");
    quoted_.push_back(false);
    return *this;
  }
  Log& field(std::string_view key, double value);
  Log& field(std::string_view key, std::int64_t value);
  Log& field(std::string_view key, std::uint64_t value) {
    return field(key, static_cast<std::int64_t>(value));
  }
  Log& field(std::string_view key, int value) {
    return field(key, static_cast<std::int64_t>(value));
  }

  /// Renders and emits one line through the global sink. Below-threshold
  /// levels emit nothing.
  void emit() const;

  /// The rendered message body (format-dependent), for tests.
  std::string render(LogFormat format) const;

 private:
  log::Level level_;
  std::string event_;
  std::vector<std::pair<std::string, std::string>> fields_;
  std::vector<bool> quoted_;  ///< whether fields_[i] is a string in JSON
};

}  // namespace hetsched::obs
