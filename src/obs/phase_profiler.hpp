#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "common/json.hpp"

/// Always-on scoped phase profiler: per-process wall-time attribution
/// across named stages of the serving and simulation pipeline.
///
/// A `ScopedPhase` is a nested RAII timer. On destruction it records its
/// inclusive wall time under its stage name, and — via a thread-local stack
/// of open phases — also attributes *self* time (inclusive minus the time
/// spent in nested phases), so "serve-compute" and the "sim-event-loop" it
/// contains do not double-count when asking "where did the wall clock go".
///
/// This is the measurement the ROADMAP's simulator-speed item tracks
/// PR-over-PR: the snapshot appears in `/metrics` (as
/// `phase_total_ms{stage=…}` / `phase_self_ms{stage=…}` /
/// `phase_calls_total{stage=…}` gauges), in the daemon's final shutdown
/// snapshot, and as the `phase_profile` section of BENCH_sweep.json.
///
/// Cost when idle is zero; cost per phase is two steady_clock reads plus
/// one short mutex hold at scope exit — negligible next to any stage worth
/// naming. Unlike the per-run MetricsRegistry (virtual time, byte-stable),
/// the profiler is explicitly wall-clock and process-global, so its numbers
/// never enter a cacheable payload.
namespace hetsched::obs {

/// Canonical stage names of the built-in instrumentation sites. Free-form
/// names are allowed, but sharing these constants keeps the `/metrics`
/// stage labels, the bench `phase_profile` section, and docs/observability
/// in agreement.
inline constexpr std::string_view kPhaseAdmission = "admission";
inline constexpr std::string_view kPhaseCache = "cache";
inline constexpr std::string_view kPhaseCompute = "compute";
inline constexpr std::string_view kPhasePartitionSolve = "partition-solve";
inline constexpr std::string_view kPhaseSimEventLoop = "sim-event-loop";
inline constexpr std::string_view kPhaseSweepScenario = "sweep-scenario";
inline constexpr std::string_view kPhaseSerialize = "serialize";

struct PhaseStats {
  std::int64_t calls = 0;
  double total_ms = 0.0;  ///< inclusive wall time
  double self_ms = 0.0;   ///< inclusive minus nested phases
  double max_ms = 0.0;    ///< worst single inclusive call
};

class PhaseProfiler {
 public:
  /// Records one finished phase (normally called by ScopedPhase).
  void record(std::string_view stage, double inclusive_ms, double self_ms);

  /// Snapshot of every stage seen so far, sorted by stage name.
  std::map<std::string, PhaseStats> snapshot() const;

  /// Byte-stable JSON: {"stage": {"calls":…,"total_ms":…,"self_ms":…,
  /// "max_ms":…}, …} in sorted stage order.
  json::Value to_json() const;

  /// Drops all recorded stages (tests and bench phase isolation).
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, PhaseStats> stages_;
};

/// The process-wide profiler every instrumentation site records into.
PhaseProfiler& phase_profiler();

/// RAII timer for one named stage. Nesting is tracked per thread: a parent
/// phase's self time excludes the inclusive time of phases opened inside
/// it on the same thread.
class ScopedPhase {
 public:
  explicit ScopedPhase(std::string_view stage,
                       PhaseProfiler& profiler = phase_profiler());
  ~ScopedPhase();

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseProfiler& profiler_;
  std::string stage_;
  std::uint64_t start_ns_ = 0;
  double child_ms_ = 0.0;       ///< accumulated inclusive time of children
  ScopedPhase* parent_ = nullptr;
};

}  // namespace hetsched::obs
