#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/time.hpp"

/// Causal chunk-lifecycle spans, layered over the flat TraceRecorder.
///
/// Each chunk's life is a chain `announce → schedule → h2d → compute → d2h →
/// complete`; faults splice extra links in (`retry`, `migrate`, then a fresh
/// `announce`), and the chain ends in `complete` or `abandon`. Parent links
/// are assigned automatically: a new span's parent is the chunk's previous
/// span, so the chain survives retries, migrations, and re-partitions and a
/// faulted chunk's full odyssey is one queryable trail.
namespace hetsched::obs {

enum class SpanPhase {
  kAnnounce,
  kSchedule,
  kH2D,
  kCompute,
  kD2H,
  kComplete,
  kRetry,
  kMigrate,
  kAbandon,
};

const char* span_phase_name(SpanPhase phase);

struct ChunkSpan {
  std::uint64_t id = 0;       ///< 1-based; 0 is "no span"
  std::uint64_t task = 0;     ///< chunk (task graph node) this belongs to
  int attempt = 0;            ///< retry count at record time
  SpanPhase phase = SpanPhase::kAnnounce;
  SimTime start = 0;
  SimTime end = 0;
  std::string detail;         ///< device/lane name or human note
  std::uint64_t parent = 0;   ///< previous span of the same chunk, 0 = root
};

class SpanLog {
 public:
  void enable(bool on = true) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  /// Appends a span and links it to the chunk's previous span. Returns the
  /// new span id (0 while disabled).
  std::uint64_t record(std::uint64_t task, int attempt, SpanPhase phase,
                       SimTime start, SimTime end, std::string detail = {});

  const std::vector<ChunkSpan>& spans() const { return spans_; }

  /// All spans of one chunk, in causal (recording) order.
  std::vector<const ChunkSpan*> chain(std::uint64_t task) const;

  /// Distinct chunk ids present in the log, ascending.
  std::vector<std::uint64_t> tasks() const;

  json::Value to_json() const;

 private:
  bool enabled_ = false;
  std::vector<ChunkSpan> spans_;
  std::map<std::uint64_t, std::uint64_t> last_span_;  // task -> last span id
};

}  // namespace hetsched::obs
