#pragma once

#include <string>
#include <vector>

#include "common/time.hpp"
#include "obs/request_trace.hpp"
#include "obs/span.hpp"

namespace hetsched::sim {
class TraceRecorder;
}  // namespace hetsched::sim

namespace hetsched::obs {

/// Lints a finished run's trace (and optionally its span log) for physical
/// impossibilities and broken causality. Returns one message per violation;
/// empty means clean. Checks:
///   - every event has start >= 0 and end >= start
///   - no two kCompute events overlap on the same lane (a lane is one
///     execution resource; overlap means the simulator double-booked it)
///   - kFault / kRecovery events begin inside the run window [0, makespan]
///   - span chains (when given): each chunk's chain opens with `announce`,
///     closes with `complete` or `abandon`, has valid parent links, and
///     span start times never go backwards along the chain
void append_span_violations(const SpanLog& spans,
                            std::vector<std::string>& problems);

std::vector<std::string> validate_trace(const sim::TraceRecorder& trace,
                                        SimTime makespan,
                                        const SpanLog* spans = nullptr);

/// Lints one served request's span tree for request-flow invariants.
/// Returns one message per violation; empty means clean. Checks:
///   - exactly one root span, stage `request`, covering [0, latency_ms]
///   - every span's parent exists and temporally contains it (spans never
///     start before their parent or end after it, within a small clock
///     slack), and nothing dangles past the response write (root end)
///   - a `queue` span exists and ends before the `handle` span starts
///     (queue wait precedes worker pickup)
///   - a tree marked cache_hit contains a `cache-hit`, `disk-load`, or
///     `flight-join` span and no `compute` span; a miss contains `compute`
///   - a flight-join span names its leader (`leader=<trace_id>` detail) —
///     joiners parent to the leader's computation, not their own
///   - when chunk spans are attached, a `compute` span exists to own them,
///     and the chunk-span chains themselves pass append_span_violations
std::vector<std::string> validate_request_tree(const RequestTree& tree);

}  // namespace hetsched::obs
