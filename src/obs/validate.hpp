#pragma once

#include <string>
#include <vector>

#include "common/time.hpp"
#include "obs/span.hpp"

namespace hetsched::sim {
class TraceRecorder;
}  // namespace hetsched::sim

namespace hetsched::obs {

/// Lints a finished run's trace (and optionally its span log) for physical
/// impossibilities and broken causality. Returns one message per violation;
/// empty means clean. Checks:
///   - every event has start >= 0 and end >= start
///   - no two kCompute events overlap on the same lane (a lane is one
///     execution resource; overlap means the simulator double-booked it)
///   - kFault / kRecovery events begin inside the run window [0, makespan]
///   - span chains (when given): each chunk's chain opens with `announce`,
///     closes with `complete` or `abandon`, has valid parent links, and
///     span start times never go backwards along the chain
void append_span_violations(const SpanLog& spans,
                            std::vector<std::string>& problems);

std::vector<std::string> validate_trace(const sim::TraceRecorder& trace,
                                        SimTime makespan,
                                        const SpanLog* spans = nullptr);

}  // namespace hetsched::obs
