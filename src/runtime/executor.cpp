#include "runtime/executor.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

#include "common/logging.hpp"
#include "common/range_map.hpp"
#include "runtime/task_graph.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"

namespace hetsched::rt {

Executor::Executor(hw::PlatformSpec platform, RuntimeCosts costs,
                   RuntimeOptions options)
    : platform_(std::move(platform)),
      costs_(costs),
      options_(options) {
  platform_.validate();
}

mem::BufferId Executor::register_buffer(std::string name,
                                        std::int64_t size_bytes) {
  HS_REQUIRE(size_bytes > 0, "buffer '" << name << "' size " << size_bytes);
  buffers_.push_back(BufferInfo{std::move(name), size_bytes});
  return buffers_.size() - 1;
}

KernelId Executor::register_kernel(KernelDef def) {
  def.validate();
  kernels_.push_back(std::move(def));
  return kernels_.size() - 1;
}

namespace {

/// All mutable state of one simulated execution.
class Run {
 public:
  Run(const hw::PlatformSpec& platform, const RuntimeCosts& costs,
      const RuntimeOptions& options, const hw::RooflineCostModel& cost_model,
      const std::vector<KernelDef>& kernels,
      const std::vector<std::pair<std::string, std::int64_t>>& buffers,
      const Program& program, Scheduler& scheduler)
      : platform_(platform),
        costs_(costs),
        options_(options),
        cost_model_(cost_model),
        kernels_(kernels),
        scheduler_(scheduler),
        devices_(platform.all_devices()),
        coherence_(platform.device_count()),
        link_(platform.link.name),
        graph_(kernels, program) {
    for (const auto& [name, size] : buffers) {
      coherence_.register_buffer(name, size);
    }
    device_states_.resize(devices_.size());
    for (std::size_t d = 0; d < devices_.size(); ++d) {
      for (int lane = 0; lane < devices_[d].lanes; ++lane) {
        device_states_[d].lanes.emplace_back(
            devices_[d].cls == hw::DeviceClass::kCpu
                ? "cpu.t" + std::to_string(lane)
                : "dev" + std::to_string(d));
      }
    }
    remaining_deps_.reserve(graph_.size());
    for (const TaskNode& node : graph_.nodes())
      remaining_deps_.push_back(node.predecessor_count);
    sched_info_.resize(graph_.size());
    affinity_.resize(graph_.size());
    completed_.assign(graph_.size(), false);

    report_.devices.resize(devices_.size());
    for (std::size_t d = 0; d < devices_.size(); ++d) {
      report_.devices[d].name = devices_[d].name;
      report_.devices[d].cls = devices_[d].cls;
      report_.devices[d].lanes = devices_[d].lanes;
    }
    report_.peak_resident_bytes.assign(devices_.size(), 0);
  }

  ExecutionReport execute() {
    scheduler_.begin_run(platform_, kernels_);
    // Task creation happens on the host thread as the program runs; task i
    // becomes announceable no earlier than its creation time.
    for (TaskId id : graph_.initial_ready()) {
      engine_.schedule_at(creation_time(id), [this, id] {
        announce(id, engine_.now());
      });
    }
    report_.overhead_time +=
        static_cast<SimTime>(graph_.size()) * costs_.task_creation;
    engine_.run();

    for (std::size_t id = 0; id < graph_.size(); ++id) {
      HS_ASSERT_MSG(completed_[id],
                    "deadlock: task " << id << " never completed");
    }
    coherence_.check_no_byte_orphaned();
    report_.makespan = last_completion_;
    return std::move(report_);
  }

 private:
  SimTime creation_time(TaskId id) const {
    return static_cast<SimTime>(id + 1) * costs_.task_creation;
  }

  mem::SpaceId space_of(hw::DeviceId device) const { return device; }

  /// A task just became unblocked at `now`; enters scheduling once both its
  /// dependencies and its host-side creation have happened.
  void make_ready(TaskId id, SimTime now) {
    const SimTime at = std::max(now, creation_time(id));
    if (at > now) {
      engine_.schedule_at(at, [this, id] { announce(id, engine_.now()); });
    } else {
      announce(id, now);
    }
  }

  void announce(TaskId id, SimTime now) {
    const TaskNode& node = graph_.node(id);
    if (node.is_barrier) {
      run_barrier(id, now);
      return;
    }
    if (node.is_host_op) {
      run_host_op(id, now);
      return;
    }
    const KernelDef& kernel = kernels_[node.kernel];
    SchedTask st;
    st.id = id;
    st.kernel = node.kernel;
    st.items = node.items();
    st.cpu_ok = kernel.has_cpu_impl;
    st.gpu_ok = kernel.has_gpu_impl;
    st.locality = affinity_[id];
    sched_info_[id] = st;

    if (node.pinned_device) {
      const hw::DeviceId d = *node.pinned_device;
      HS_REQUIRE(d < devices_.size(),
                 "task pinned to unknown device " << d);
      HS_REQUIRE(st.runs_on(d), "kernel '" << kernel.name
                                           << "' pinned to device " << d
                                           << " without an implementation");
      device_states_[d].queue.push_back(id);
    } else if (auto chosen = scheduler_.on_ready(st, now)) {
      HS_REQUIRE(*chosen < devices_.size(),
                 "scheduler chose unknown device " << *chosen);
      HS_REQUIRE(st.runs_on(*chosen),
                 "scheduler placed kernel '"
                     << kernel.name << "' on device " << *chosen
                     << " without an implementation");
      device_states_[d_checked(*chosen)].queue.push_back(id);
    } else {
      pool_.push_back(st);
    }
    pump(now);
  }

  hw::DeviceId d_checked(hw::DeviceId d) const { return d; }

  /// Hands work to every idle lane that can get some. Accelerators are
  /// served before the CPU: with a breadth-first scheduler and a fresh pool
  /// this reproduces the OmpSs behaviour the paper observes (the GPU claims
  /// one instance, CPU threads claim one each).
  void pump(SimTime now) {
    bool progress = true;
    while (progress) {
      progress = false;
      for (std::size_t i = 0; i < devices_.size(); ++i) {
        // Order: devices 1..N (accelerators), then 0 (CPU).
        const hw::DeviceId d =
            (i + 1 < devices_.size()) ? (i + 1) : hw::kCpuDevice;
        auto& state = device_states_[d];
        for (std::size_t lane = 0; lane < state.lanes.size(); ++lane) {
          if (state.lanes[lane].available_at() > now) continue;
          std::optional<TaskId> task;
          bool via_scheduler = false;
          if (!state.queue.empty()) {
            task = state.queue.front();
            state.queue.pop_front();
            via_scheduler = !graph_.node(*task).pinned_device.has_value();
          } else if (!pool_.empty()) {
            if (auto index = scheduler_.pick(d, pool_, now)) {
              HS_REQUIRE(*index < pool_.size(),
                         "scheduler picked out-of-range pool index");
              HS_REQUIRE(pool_[*index].runs_on(d),
                         "scheduler picked a task the device cannot run");
              task = pool_[*index].id;
              pool_.erase(pool_.begin() +
                          static_cast<std::ptrdiff_t>(*index));
              via_scheduler = true;
            }
          }
          if (!task) break;  // nothing runnable for this device
          dispatch(*task, d, lane, via_scheduler, now);
          progress = true;
        }
      }
    }
  }

  void dispatch(TaskId id, hw::DeviceId d, std::size_t lane_index,
                bool via_scheduler, SimTime now) {
    const TaskNode& node = graph_.node(id);
    const KernelDef& kernel = kernels_[node.kernel];
    const hw::DeviceSpec& device = devices_[d];
    sim::Resource& lane = device_states_[d].lanes[lane_index];

    SimTime overhead = costs_.dispatch_overhead;
    if (via_scheduler) {
      overhead += scheduler_.decision_cost();
      ++report_.scheduling_decisions;
    }
    report_.overhead_time += overhead;

    // Capacity: make room for this task's working set before staging it.
    SimTime evict_done = now + overhead;
    if (options_.enforce_memory_capacity && d != hw::kCpuDevice)
      evict_done = ensure_capacity(node, d, evict_done);

    // Acquire inputs in the device's memory space; missing ranges ride the
    // link, FIFO-serialized with every other transfer in flight. Ranges
    // already valid may still have their copy in flight (asynchronous
    // write-back) — wait for their recorded readiness too.
    SimTime data_ready = evict_done;
    for (const mem::RegionAccess& access : node.accesses) {
      if (access.region.empty()) continue;
      if (options_.enforce_memory_capacity && d != hw::kCpuDevice)
        last_touch_[{space_of(d), access.region.buffer}] = now;
      if (!access.reads()) continue;
      for (const mem::TransferOp& op :
           coherence_.plan_acquire(access.region, space_of(d))) {
        data_ready = std::max(data_ready, issue_transfer(op, evict_done));
      }
      data_ready =
          std::max(data_ready, region_ready_time(access.region, space_of(d)));
    }

    const SimTime compute = cost_model_.instance_time(kernel.traits, device,
                                                      node.begin, node.end);
    const SimTime end = data_ready + compute;
    lane.reserve(now, end - now,
                 kernel.name + " [" + std::to_string(node.begin) + "," +
                     std::to_string(node.end) + ")");

    if (options_.functional_execution && kernel.body)
      kernel.body(node.begin, node.end);

    for (const mem::RegionAccess& access : node.accesses) {
      if (access.writes() && !access.region.empty()) {
        coherence_.note_write(access.region, space_of(d));
        // Locally produced data is ready when the producing task completes;
        // clear any stale in-flight arrival times for the range.
        region_ready_[{space_of(d), access.region.buffer}].assign(
            access.region.range, end);
        last_writer_[access.region.buffer].assign(access.region.range, id);
      }
    }
    note_residency();

    DeviceReport& dr = report_.devices[d];
    dr.compute_time += compute;
    ++dr.instances;
    dr.items_per_kernel[node.kernel] += node.items();

    if (options_.record_trace) {
      report_.trace.record(lane.name(), kernel.name,
                           sim::TraceKind::kCompute, end - compute, end);
      if (overhead > 0)
        report_.trace.record(lane.name(), "dispatch",
                             sim::TraceKind::kOverhead, now, now + overhead);
    }

    const SimTime occupancy = end - now;
    engine_.schedule_at(end, [this, id, d, compute, occupancy] {
      complete(id, d, compute, occupancy, engine_.now());
    });
  }

  /// Reserves the link (and, when given, a device lane that the transfer
  /// also occupies) for one coherence transfer and applies it. Returns the
  /// transfer's completion time.
  SimTime issue_transfer(const mem::TransferOp& op, SimTime arrival,
                         sim::Resource* co_lane = nullptr) {
    const SimTime duration = cost_model_.transfer_time(
        platform_.link, static_cast<double>(op.size_bytes()));
    const bool to_host = op.dst == mem::kHostSpace;
    const std::string label =
        std::string(to_host ? "D2H " : "H2D ") +
        coherence_.buffer(op.region.buffer).name + "[" +
        std::to_string(op.region.range.begin) + "," +
        std::to_string(op.region.range.end) + ")";
    SimTime start = link_.earliest_start(arrival);
    if (co_lane != nullptr) {
      start = std::max(start, co_lane->earliest_start(arrival));
      co_lane->reserve(start, duration, label);
    }
    const sim::BusySpan span = link_.reserve(start, duration, label);
    coherence_.apply(op);
    region_ready_[{op.dst, op.region.buffer}].assign(op.region.range,
                                                     span.end);
    if (to_host) {
      ++report_.transfers.d2h_count;
      report_.transfers.d2h_bytes += op.size_bytes();
      report_.transfers.d2h_time += duration;
    } else {
      ++report_.transfers.h2d_count;
      report_.transfers.h2d_bytes += op.size_bytes();
      report_.transfers.h2d_time += duration;
    }
    if (options_.record_trace) {
      report_.trace.record(link_.name(), span.label,
                           to_host ? sim::TraceKind::kTransferD2H
                                   : sim::TraceKind::kTransferH2D,
                           span.start, span.end);
    }
    return span.end;
  }

  /// Host-side sequential code: acquires its inputs into host memory (may
  /// pull device-written data home), runs the functional body, and records
  /// its writes — invalidating device copies.
  void run_host_op(TaskId id, SimTime now) {
    const TaskNode& node = graph_.node(id);
    SimTime done = now;
    for (const mem::RegionAccess& access : node.accesses) {
      if (!access.reads() || access.region.empty()) continue;
      for (const mem::TransferOp& op :
           coherence_.plan_acquire(access.region, mem::kHostSpace)) {
        done = std::max(done, issue_transfer(op, now));
      }
      done = std::max(done,
                      region_ready_time(access.region, mem::kHostSpace));
    }
    if (options_.functional_execution && node.host_body) node.host_body();
    for (const mem::RegionAccess& access : node.accesses) {
      if (access.writes() && !access.region.empty())
        coherence_.note_write(access.region, mem::kHostSpace);
    }
    if (done > now) {
      engine_.schedule_at(done, [this, id] {
        finish_task(id, std::nullopt, engine_.now());
      });
    } else {
      finish_task(id, std::nullopt, now);
    }
  }

  void run_barrier(TaskId id, SimTime now) {
    ++report_.barriers;
    SimTime done = now;
    for (const mem::TransferOp& op : coherence_.plan_flush_to_host()) {
      const SimTime flush_end = issue_transfer(op, now);
      done = std::max(done, flush_end);
      // Bill the flush to the tasks that produced the data, so a
      // performance-aware scheduler learns the true synchronization cost
      // of accelerator placement.
      auto writer_map = last_writer_.find(op.region.buffer);
      if (writer_map == last_writer_.end()) continue;
      for (const auto& entry : writer_map->second.query(op.region.range)) {
        const TaskNode& writer = graph_.node(entry.value);
        if (writer.is_host_op || writer.is_barrier) continue;
        // Bill the wall time from the barrier's start to this op's landing
        // (what a runtime's stopwatch around the flush would read —
        // including the queueing behind earlier flush ops).
        scheduler_.on_flush(sched_info_[entry.value], op.src,
                            flush_end - now, now);
      }
    }
    // The flush also waits for write-backs still in flight (queue drain),
    // then drops the device copies: after an OmpSs-era taskwait, device
    // data is considered stale and later kernels re-fetch from the host.
    done = std::max(done, link_.available_at());
    coherence_.invalidate_device_copies();
    done += costs_.taskwait_overhead;
    report_.overhead_time += costs_.taskwait_overhead;
    if (options_.record_trace)
      report_.trace.record("host", "taskwait", sim::TraceKind::kSync, now,
                           done);
    engine_.schedule_at(done, [this, id] {
      finish_task(id, std::nullopt, engine_.now());
    });
  }

  void complete(TaskId id, hw::DeviceId d, SimTime compute,
                SimTime occupancy, SimTime now) {
    // Asynchronous write-back: final outputs (no later kernel touches them)
    // head home immediately, overlapping the copy with the OTHER devices'
    // compute so the eventual taskwait finds them already in host memory.
    // The copy-back shares the accelerator's in-order queue: it blocks the
    // device lane for its duration (OpenCL-style), and the scheduler
    // observes it as part of the instance's occupancy.
    if (d != hw::kCpuDevice) {
      const TaskNode& node = graph_.node(id);
      sim::Resource& lane = device_states_[d].lanes[0];
      for (std::size_t a = 0; a < node.accesses.size(); ++a) {
        if (!node.writeback_eligible[a]) continue;
        for (const mem::TransferOp& op : coherence_.plan_acquire(
                 node.accesses[a].region, mem::kHostSpace)) {
          issue_transfer(op, now, &lane);
        }
      }
      if (lane.available_at() > now) {
        occupancy += lane.available_at() - now;
        // Wake the dispatcher when the queue drains so waiting work resumes.
        engine_.schedule_at(lane.available_at(),
                            [this] { pump(engine_.now()); });
      }
    }
    scheduler_.on_complete(sched_info_[id], d, compute, occupancy, now);
    finish_task(id, d, now);
  }

  void finish_task(TaskId id, std::optional<hw::DeviceId> device,
                   SimTime now) {
    HS_ASSERT_MSG(!completed_[id], "task " << id << " completed twice");
    completed_[id] = true;
    last_completion_ = std::max(last_completion_, now);
    if (!graph_.node(id).is_barrier && !graph_.node(id).is_host_op)
      ++report_.tasks_executed;

    for (TaskId succ : graph_.node(id).successors) {
      // Dependency-chain affinity: a consumer inherits its producer's device
      // as a locality hint (barriers break chains — data is flushed home).
      if (device && !graph_.node(succ).is_barrier) affinity_[succ] = *device;
      HS_ASSERT_MSG(remaining_deps_[succ] > 0,
                    "dependency count underflow at task " << succ);
      if (--remaining_deps_[succ] == 0) make_ready(succ, now);
    }
    pump(now);
  }

  /// Evicts least-recently-used buffers from device `d` until this task's
  /// working set fits its memory capacity. Returns the time the space is
  /// ready (evictions ride the link). Throws StateError when the task's
  /// own working set cannot fit.
  SimTime ensure_capacity(const TaskNode& node, hw::DeviceId d,
                          SimTime now) {
    const auto capacity = static_cast<std::int64_t>(
        devices_[d].mem_capacity_gb * 1e9);
    const mem::SpaceId space = space_of(d);

    // Bytes this task will occupy that are not yet resident.
    std::int64_t needed = 0;
    std::int64_t own_footprint = 0;
    std::set<mem::BufferId> referenced;
    for (const mem::RegionAccess& access : node.accesses) {
      if (access.region.empty()) continue;
      referenced.insert(access.region.buffer);
      own_footprint += access.region.size_bytes();
      for (const Interval& gap :
           coherence_.gaps_in_space(access.region, space))
        needed += gap.length();
    }
    HS_REQUIRE(own_footprint <= capacity,
               "task working set of " << own_footprint
                                      << " bytes exceeds device memory of "
                                      << devices_[d].name);

    SimTime done = now;
    while (coherence_.resident_bytes(space) + needed > capacity) {
      // LRU victim among buffers resident here and not used by this task.
      std::optional<mem::BufferId> victim;
      SimTime oldest = 0;
      for (std::size_t buffer = 0; buffer < coherence_.buffer_count();
           ++buffer) {
        if (referenced.count(buffer)) continue;
        if (coherence_.resident_bytes_of(buffer, space) == 0) continue;
        auto it = last_touch_.find({space, buffer});
        const SimTime touched = it == last_touch_.end() ? 0 : it->second;
        if (!victim || touched < oldest) {
          victim = buffer;
          oldest = touched;
        }
      }
      HS_REQUIRE(victim.has_value(),
                 "cannot make room on " << devices_[d].name
                                        << ": every resident buffer is in "
                                           "use by the dispatching task");
      for (const mem::TransferOp& op :
           coherence_.plan_evict(*victim, space)) {
        done = std::max(done, issue_transfer(op, done));
      }
      coherence_.drop_copies(*victim, space);
    }
    return done;
  }

  /// Latest in-flight readiness time of any part of `region` in `space`.
  SimTime region_ready_time(const mem::Region& region,
                            mem::SpaceId space) const {
    auto it = region_ready_.find({space, region.buffer});
    if (it == region_ready_.end()) return 0;
    SimTime latest = 0;
    for (const auto& entry : it->second.query(region.range))
      latest = std::max(latest, entry.value);
    return latest;
  }

  void note_residency() {
    for (std::size_t s = 0; s < devices_.size(); ++s) {
      report_.peak_resident_bytes[s] = std::max(
          report_.peak_resident_bytes[s],
          coherence_.resident_bytes(s));
    }
  }

  const hw::PlatformSpec& platform_;
  const RuntimeCosts& costs_;
  const RuntimeOptions& options_;
  const hw::RooflineCostModel& cost_model_;
  const std::vector<KernelDef>& kernels_;
  Scheduler& scheduler_;

  std::vector<hw::DeviceSpec> devices_;
  sim::Engine engine_;
  mem::CoherenceDirectory coherence_;
  sim::Resource link_;

  struct DeviceState {
    std::vector<sim::Resource> lanes;
    std::deque<TaskId> queue;
  };
  std::vector<DeviceState> device_states_;

  TaskGraph graph_;
  std::vector<std::size_t> remaining_deps_;
  std::vector<SchedTask> sched_info_;
  std::vector<std::optional<hw::DeviceId>> affinity_;
  std::vector<bool> completed_;
  std::vector<SchedTask> pool_;

  ExecutionReport report_;
  SimTime last_completion_ = 0;
  /// (space, buffer) -> byte ranges -> time their current copy lands.
  std::map<std::pair<mem::SpaceId, mem::BufferId>, RangeMap<SimTime>>
      region_ready_;
  /// buffer -> byte ranges -> task that last wrote them (flush billing).
  std::map<mem::BufferId, RangeMap<TaskId>> last_writer_;
  /// (space, buffer) -> last dispatch that touched it (LRU eviction).
  std::map<std::pair<mem::SpaceId, mem::BufferId>, SimTime> last_touch_;
};

}  // namespace

ExecutionReport Executor::execute(const Program& program,
                                  Scheduler& scheduler) {
  std::vector<std::pair<std::string, std::int64_t>> buffer_specs;
  buffer_specs.reserve(buffers_.size());
  for (const BufferInfo& info : buffers_)
    buffer_specs.emplace_back(info.name, info.size_bytes);
  Run run(platform_, costs_, options_, cost_model_, kernels_, buffer_specs,
          program, scheduler);
  return run.execute();
}

ExecutionReport Executor::execute_pinned(const Program& program) {
  for (const ProgramOp& op : program.ops()) {
    if (op.kind == ProgramOp::Kind::kSubmit) {
      HS_REQUIRE(op.submit.pinned_device.has_value(),
                 "execute_pinned: program contains an unpinned task");
    }
  }
  FifoScheduler fifo;
  return execute(program, fifo);
}

}  // namespace hetsched::rt
