#include "runtime/executor.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <string_view>

#include "common/json.hpp"
#include "common/logging.hpp"
#include "common/range_map.hpp"
#include "faults/injector.hpp"
#include "obs/phase_profiler.hpp"
#include "runtime/task_graph.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"

namespace hetsched::rt {

Executor::Executor(hw::PlatformSpec platform, RuntimeCosts costs,
                   RuntimeOptions options)
    : platform_(std::move(platform)),
      costs_(costs),
      options_(options) {
  platform_.validate();
}

mem::BufferId Executor::register_buffer(std::string name,
                                        std::int64_t size_bytes) {
  HS_REQUIRE(size_bytes > 0, "buffer '" << name << "' size " << size_bytes);
  buffers_.push_back(BufferInfo{std::move(name), size_bytes});
  return buffers_.size() - 1;
}

KernelId Executor::register_kernel(KernelDef def) {
  def.validate();
  kernels_.push_back(std::move(def));
  return kernels_.size() - 1;
}

namespace {

/// All mutable state of one simulated execution.
class Run {
 public:
  Run(const hw::PlatformSpec& platform, const RuntimeCosts& costs,
      const RuntimeOptions& options, const hw::RooflineCostModel& cost_model,
      const std::vector<KernelDef>& kernels,
      const std::vector<std::pair<std::string, std::int64_t>>& buffers,
      const Program& program, Scheduler& scheduler,
      const std::optional<faults::FaultPlan>& fault_plan,
      ExploreStrategy* explore, mem::Arena& arena)
      : platform_(platform),
        costs_(costs),
        options_(options),
        cost_model_(cost_model),
        kernels_(kernels),
        scheduler_(scheduler),
        explore_(explore),
        arena_(arena),
        devices_(platform.all_devices()),
        coherence_(platform.device_count()),
        link_(platform.link.name),
        graph_(kernels, program) {
    // All flat bookkeeping arrays below come out of the executor's arena;
    // it is rewound here, so repeated runs reuse the same resident blocks.
    arena_.reset();
    for (const auto& [name, size] : buffers) {
      coherence_.register_buffer(name, size);
    }
    num_buffers_ = coherence_.buffer_count();
    lane_begin_ = arena_.make_array<std::uint32_t>(devices_.size() + 1);
    for (std::size_t d = 0; d < devices_.size(); ++d) {
      lane_begin_[d] = static_cast<std::uint32_t>(lanes_.size());
      for (int lane = 0; lane < devices_[d].lanes; ++lane) {
        lanes_.emplace_back(devices_[d].cls == hw::DeviceClass::kCpu
                                ? "cpu.t" + std::to_string(lane)
                                : "dev" + std::to_string(d));
      }
    }
    lane_begin_[devices_.size()] = static_cast<std::uint32_t>(lanes_.size());
    ready_.resize(devices_.size());
    remaining_deps_ = arena_.make_array<std::size_t>(graph_.size());
    for (TaskId id = 0; id < graph_.size(); ++id)
      remaining_deps_[id] = graph_.node(id).predecessor_count;
    sched_info_ = arena_.make_array<SchedTask>(graph_.size());
    affinity_ =
        arena_.make_array<std::optional<hw::DeviceId>>(graph_.size());
    completed_ = arena_.make_array<std::uint8_t>(graph_.size());
    region_ready_.resize(devices_.size() * num_buffers_);
    last_writer_.resize(num_buffers_);
    last_touch_ =
        arena_.make_array<SimTime>(devices_.size() * num_buffers_);

    report_.devices.resize(devices_.size());
    for (std::size_t d = 0; d < devices_.size(); ++d) {
      report_.devices[d].name = devices_[d].name;
      report_.devices[d].cls = devices_[d].cls;
      report_.devices[d].lanes = devices_[d].lanes;
    }
    report_.peak_resident_bytes.assign(devices_.size(), 0);

    if (fault_plan) {
      injector_.emplace(*fault_plan, devices_.size());
      report_.faults.active = true;
      report_.faults.plan_name = fault_plan->name;
    }
    failed_ = arena_.make_array<std::uint8_t>(devices_.size());
    retry_count_ = arena_.make_array<int>(graph_.size());
    dispatch_epoch_ = arena_.make_array<std::uint64_t>(graph_.size());
    body_ran_ = arena_.make_array<std::uint8_t>(graph_.size());
    running_ = arena_.make_array<InFlight>(lanes_.size());
    running_valid_ = arena_.make_array<std::uint8_t>(lanes_.size());

    // Per-span history on the lanes and the link only feeds traces and
    // tests; untraced runs (the sweep hot path) skip it so every reserve()
    // stops copying a label string into a history vector.
    for (sim::Resource& lane : lanes_)
      lane.set_record_history(options_.record_trace);
    link_.set_record_history(options_.record_trace);

    if (explore_ != nullptr) {
      // Equal-timestamp event ordering becomes the strategy's first class
      // of decision sites; queue pops and fault-detection latency are the
      // other two (see pump() and execute()).
      engine_.set_tie_breaker(
          [this](std::size_t n) { return explore_->pick(n); });
      report_.schedule.recorded = true;
      report_.schedule.tasks = graph_.size();
      for (TaskId id = 0; id < graph_.size(); ++id)
        for (TaskId succ : graph_.node(id).successors)
          report_.schedule.edges.emplace_back(id, succ);
    }

    if (options_.record_observability) {
      report_.obs = std::make_shared<obs::RunObservability>();
      report_.obs->enable();
      obs_ = report_.obs.get();
      queue_key_.reserve(devices_.size());
      compute_hist_key_.reserve(devices_.size());
      dispatch_key_.reserve(devices_.size());
      for (const hw::DeviceSpec& device : devices_) {
        queue_key_.push_back(
            obs::metric_key("queue_depth", {{"device", device.name}}));
        compute_hist_key_.push_back(
            obs::metric_key("chunk_compute_ms", {{"device", device.name}}));
        dispatch_key_.push_back(
            obs::metric_key("chunks_dispatched", {{"device", device.name}}));
      }
    }
  }

  ExecutionReport execute() {
    // Steady state keeps roughly one event in flight per announced task plus
    // one per busy lane; sizing the queue for the whole graph up front means
    // the hot scheduling loop never reallocates.
    engine_.reserve_events(graph_.size() + lanes_.size() + 16);
    if (options_.record_trace) {
      // Compute + dispatch-overhead spans per task plus transfer spans.
      report_.trace.reserve(graph_.size() * 3);
    }
    scheduler_.set_observability(obs_);
    scheduler_.begin_run(platform_, kernels_);
    if (injector_) {
      for (hw::DeviceId d = 0; d < devices_.size(); ++d) {
        // Fault-injection timing is explorable: the plan fixes when the
        // device dies, the strategy picks how long the runtime takes to
        // notice (0..2 dispatch overheads of detection latency), so fault
        // handling races against the completions scheduled around it.
        SimTime latency = 0;
        if (explore_ != nullptr && injector_->failure_time(d))
          latency = static_cast<SimTime>(explore_->pick(3)) *
                    costs_.dispatch_overhead;
        if (const auto at = injector_->observed_failure_time(d, latency)) {
          engine_.schedule_at(*at, [this, d] {
            on_device_failure(d, engine_.now());
          });
        }
      }
    }
    // Task creation happens on the host thread as the program runs; task i
    // becomes announceable no earlier than its creation time.
    for (TaskId id : graph_.initial_ready()) {
      engine_.schedule_at(creation_time(id), [this, id] {
        announce(id, engine_.now());
      });
    }
    report_.overhead_time +=
        static_cast<SimTime>(graph_.size()) * costs_.task_creation;
    engine_.run();

    std::size_t unfinished = 0;
    for (std::size_t id = 0; id < graph_.size(); ++id) {
      if (completed_[id]) continue;
      // Without abandoned chunks every task must complete; with them, the
      // abandoned chunks and their dependents legitimately never finish —
      // the run reports its degradation honestly instead of hanging.
      HS_ASSERT_MSG(report_.faults.abandoned_tasks > 0,
                    "deadlock: task " << id << " never completed");
      ++unfinished;
    }
    report_.faults.unfinished_tasks = static_cast<std::int64_t>(unfinished);
    report_.faults.run_completed = unfinished == 0;
    coherence_.check_no_byte_orphaned();
    // A DNF run can end on an abandon, after the last completion; the
    // reported window must cover that final fault-handling action or the
    // trace holds recovery events outside the run.
    report_.makespan = std::max(last_completion_, last_fault_action_);
    report_.sim_events = engine_.fired_events();
    if (explore_ != nullptr)
      report_.schedule.decisions = explore_->decisions();
    if (injector_) record_injected_faults();
    if (obs_) {
      obs_->metrics.gauge_set("makespan_ms", to_millis(report_.makespan));
      obs_->metrics.gauge_set("overhead_ms", to_millis(report_.overhead_time));
      // Fold each device's queue-depth curve into a time-weighted
      // distribution: "how deep was the backlog, for how long".
      for (hw::DeviceId d = 0; d < devices_.size(); ++d) {
        const obs::CounterTrack* track =
            obs_->metrics.find_track(queue_key_[d]);
        if (track == nullptr) continue;
        obs_->metrics.histogram_bounds(
            obs::metric_key("queue_depth_time_ms",
                            {{"device", devices_[d].name}}),
            {0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0});
        obs::observe_time_weighted(
            obs_->metrics,
            obs::metric_key("queue_depth_time_ms",
                            {{"device", devices_[d].name}}),
            track->series(), report_.makespan);
      }
    }
    scheduler_.set_observability(nullptr);
    return std::move(report_);
  }

 private:
  SimTime creation_time(TaskId id) const {
    return static_cast<SimTime>(id + 1) * costs_.task_creation;
  }

  mem::SpaceId space_of(hw::DeviceId device) const { return device; }

  // Observability helpers: one branch each when recording is off.
  void obs_count(std::string_view key, std::int64_t delta = 1) {
    if (obs_) obs_->metrics.counter_add(key, delta);
  }
  void obs_track(std::string_view key, SimTime time, double delta) {
    if (obs_) obs_->metrics.track_add(key, time, delta);
  }
  void obs_span(TaskId id, obs::SpanPhase phase, SimTime start, SimTime end,
                std::string detail = {}) {
    if (obs_)
      obs_->spans.record(id, retry_count_[id], phase, start, end,
                         std::move(detail));
  }
  std::string_view queue_key_d(hw::DeviceId d) const {
    // Empty (and unused by the guarded sinks) when recording is off.
    return queue_key_.empty() ? std::string_view{}
                              : std::string_view(queue_key_[d]);
  }

  /// A task just became unblocked at `now`; enters scheduling once both its
  /// dependencies and its host-side creation have happened.
  void make_ready(TaskId id, SimTime now) {
    const SimTime at = std::max(now, creation_time(id));
    if (at > now) {
      engine_.schedule_at(at, [this, id] { announce(id, engine_.now()); });
    } else {
      announce(id, now);
    }
  }

  void announce(TaskId id, SimTime now) {
    const TaskNode& node = graph_.node(id);
    if (node.is_barrier) {
      run_barrier(id, now);
      return;
    }
    if (node.is_host_op) {
      run_host_op(id, now);
      return;
    }
    const KernelDef& kernel = kernels_[node.kernel];
    SchedTask st;
    st.id = id;
    st.kernel = node.kernel;
    st.items = node.items();
    st.cpu_ok = kernel.has_cpu_impl;
    st.gpu_ok = kernel.has_gpu_impl;
    st.locality = affinity_[id];
    // A locality hint pointing at a failed device would strand the task in
    // the pool (the breadth-first scheduler never steals bound work).
    if (st.locality && failed_[*st.locality]) st.locality.reset();
    sched_info_[id] = st;
    if (obs_) {
      obs_span(id, obs::SpanPhase::kAnnounce, now, now, kernel.name);
      obs_count("chunks_announced");
    }

    if (node.pinned_device) {
      const hw::DeviceId d = *node.pinned_device;
      HS_REQUIRE(d < devices_.size(),
                 "task pinned to unknown device " << d);
      HS_REQUIRE(st.runs_on(d), "kernel '" << kernel.name
                                           << "' pinned to device " << d
                                           << " without an implementation");
      if (failed_[d]) {
        // Static partitioning has nowhere else to put the chunk.
        abandon(id, now, "pinned to failed " + devices_[d].name);
        return;
      }
      ready_[d].push_back(id);
      if (obs_) {
        obs_span(id, obs::SpanPhase::kSchedule, now, now,
                 devices_[d].name + " (pinned)");
        obs_track(queue_key_d(d), now, 1);
      }
    } else if (!runnable_somewhere(st)) {
      abandon(id, now, "no surviving device runs it");
      return;
    } else if (auto chosen = scheduler_.on_ready(st, now)) {
      HS_REQUIRE(*chosen < devices_.size(),
                 "scheduler chose unknown device " << *chosen);
      HS_REQUIRE(st.runs_on(*chosen),
                 "scheduler placed kernel '"
                     << kernel.name << "' on device " << *chosen
                     << " without an implementation");
      HS_REQUIRE(!failed_[*chosen],
                 "scheduler placed work on failed device " << *chosen);
      ready_[d_checked(*chosen)].push_back(id);
      if (obs_) {
        obs_span(id, obs::SpanPhase::kSchedule, now, now,
                 devices_[*chosen].name);
        obs_track(queue_key_d(*chosen), now, 1);
      }
    } else {
      pool_.push_back(st);
      obs_track("pool_depth", now, 1);
    }
    pump(now);
  }

  bool runnable_somewhere(const SchedTask& task) const {
    for (hw::DeviceId d = 0; d < devices_.size(); ++d)
      if (!failed_[d] && task.runs_on(d)) return true;
    return false;
  }

  void abandon(TaskId id, SimTime now, const std::string& why) {
    ++report_.faults.abandoned_tasks;
    last_fault_action_ = std::max(last_fault_action_, now);
    if (explore_ != nullptr) report_.schedule.abandons.emplace_back(id, now);
    obs_span(id, obs::SpanPhase::kAbandon, now, now, why);
    obs_count("chunks_abandoned");
    if (options_.record_trace)
      report_.trace.record("faults",
                           "abandon task " + std::to_string(id) + ": " + why,
                           sim::TraceKind::kRecovery, now, now);
  }

  hw::DeviceId d_checked(hw::DeviceId d) const { return d; }

  /// Hands work to every idle lane that can get some. Accelerators are
  /// served before the CPU: with a breadth-first scheduler and a fresh pool
  /// this reproduces the OmpSs behaviour the paper observes (the GPU claims
  /// one instance, CPU threads claim one each).
  void pump(SimTime now) {
    bool progress = true;
    while (progress) {
      progress = false;
      for (std::size_t i = 0; i < devices_.size(); ++i) {
        // Order: devices 1..N (accelerators), then 0 (CPU).
        const hw::DeviceId d =
            (i + 1 < devices_.size()) ? (i + 1) : hw::kCpuDevice;
        if (failed_[d]) continue;
        std::vector<TaskId>& queue = ready_[d];
        const std::size_t lane_count = lane_begin_[d + 1] - lane_begin_[d];
        for (std::size_t lane = 0; lane < lane_count; ++lane) {
          if (lanes_[lane_begin_[d] + lane].available_at() > now) continue;
          std::optional<TaskId> task;
          bool via_scheduler = false;
          bool from_pool = false;
          if (!queue.empty()) {
            // Ready-queue tie-breaking: the canonical executor always pops
            // the front; under exploration any queued chunk may go first.
            std::size_t pick = 0;
            if (explore_ != nullptr && queue.size() > 1)
              pick = explore_->pick(queue.size());
            task = queue[pick];
            queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(pick));
            obs_track(queue_key_d(d), now, -1);
            via_scheduler = !graph_.node(*task).pinned_device.has_value();
          } else if (!pool_.empty()) {
            if (auto index = scheduler_.pick(d, pool_, now)) {
              HS_REQUIRE(*index < pool_.size(),
                         "scheduler picked out-of-range pool index");
              HS_REQUIRE(pool_[*index].runs_on(d),
                         "scheduler picked a task the device cannot run");
              task = pool_[*index].id;
              pool_.erase(pool_.begin() +
                          static_cast<std::ptrdiff_t>(*index));
              obs_track("pool_depth", now, -1);
              via_scheduler = true;
              from_pool = true;
            }
          }
          if (!task) break;  // nothing runnable for this device
          dispatch(*task, d, lane, via_scheduler, from_pool, now);
          progress = true;
        }
      }
    }
  }

  void dispatch(TaskId id, hw::DeviceId d, std::size_t lane_index,
                bool via_scheduler, bool from_pool, SimTime now) {
    const TaskNode& node = graph_.node(id);
    const KernelDef& kernel = kernels_[node.kernel];
    const hw::DeviceSpec& device = devices_[d];
    sim::Resource& lane = lanes_[lane_begin_[d] + lane_index];

    SimTime overhead = costs_.dispatch_overhead;
    if (via_scheduler) {
      overhead += scheduler_.decision_cost();
      ++report_.scheduling_decisions;
    }
    report_.overhead_time += overhead;
    // Pool tasks are placed right here (pull-style); queued tasks already
    // got their schedule span at announce time.
    if (obs_ && from_pool)
      obs_span(id, obs::SpanPhase::kSchedule, now, now + overhead,
               devices_[d].name);

    // Capacity: make room for this task's working set before staging it.
    SimTime evict_done = now + overhead;
    if (options_.enforce_memory_capacity && d != hw::kCpuDevice)
      evict_done = ensure_capacity(node, d, evict_done);

    // Acquire inputs in the device's memory space; missing ranges ride the
    // link, FIFO-serialized with every other transfer in flight. Ranges
    // already valid may still have their copy in flight (asynchronous
    // write-back) — wait for their recorded readiness too.
    SimTime data_ready = evict_done;
    for (const mem::RegionAccess& access : node.accesses) {
      if (access.region.empty()) continue;
      if (options_.enforce_memory_capacity && d != hw::kCpuDevice)
        last_touch_[sb_index(space_of(d), access.region.buffer)] = now;
      if (!access.reads()) continue;
      coherence_.plan_acquire(access.region, space_of(d), acquire_scratch_);
      for (const mem::TransferOp& op : acquire_scratch_) {
        data_ready = std::max(data_ready, issue_transfer(op, evict_done));
      }
      data_ready =
          std::max(data_ready, region_ready_time(access.region, space_of(d)));
    }

    if (obs_ && data_ready > evict_done)
      obs_span(id, obs::SpanPhase::kH2D, evict_done, data_ready,
               "stage inputs on " + devices_[d].name);

    const SimTime nominal = cost_model_.instance_time(kernel.traits, device,
                                                      node.begin, node.end);
    const SimTime compute =
        injector_ ? injector_->stretch_compute(d, data_ready, nominal)
                  : nominal;
    const SimTime end = data_ready + compute;
    if (obs_) {
      obs_span(id, obs::SpanPhase::kCompute, end - compute, end, lane.name());
      obs_->metrics.counter_add(dispatch_key_[d], 1);
      obs_->metrics.observe(compute_hist_key_[d], to_millis(compute));
    }
    // The reservation label only surfaces via lane history (traces); skip
    // the three-way string concatenation on the untraced hot path.
    lane.reserve(now, end - now,
                 options_.record_trace
                     ? kernel.name + " [" + std::to_string(node.begin) + "," +
                           std::to_string(node.end) + ")"
                     : std::string());

    // At most once per task: a chunk displaced by a device failure is
    // re-dispatched elsewhere, and non-idempotent kernel bodies must not
    // observe the work twice.
    if (options_.functional_execution && kernel.body && !body_ran_[id]) {
      body_ran_[id] = true;
      kernel.body(node.begin, node.end);
    }

    for (const mem::RegionAccess& access : node.accesses) {
      if (access.writes() && !access.region.empty()) {
        coherence_.note_write(access.region, space_of(d));
        // Locally produced data is ready when the producing task completes;
        // clear any stale in-flight arrival times for the range.
        region_ready_[sb_index(space_of(d), access.region.buffer)].assign(
            access.region.range, end);
        last_writer_[access.region.buffer].assign(access.region.range, id);
      }
    }
    note_residency();

    DeviceReport& dr = report_.devices[d];
    dr.compute_time += compute;
    ++dr.instances;
    dr.items_per_kernel[node.kernel] += node.items();

    if (options_.record_trace) {
      report_.trace.record(lane.name(), kernel.name,
                           sim::TraceKind::kCompute, end - compute, end);
      if (overhead > 0)
        report_.trace.record(lane.name(), "dispatch",
                             sim::TraceKind::kOverhead, now, now + overhead);
    }

    const std::size_t flat_lane = lane_begin_[d] + lane_index;
    running_[flat_lane] = InFlight{id, compute, node.kernel, node.items()};
    running_valid_[flat_lane] = 1;
    const SimTime occupancy = end - now;
    const std::uint64_t epoch = dispatch_epoch_[id];
    engine_.schedule_at(end, [this, id, d, lane_index, compute, nominal,
                              occupancy, epoch] {
      complete(id, d, lane_index, compute, nominal, occupancy, epoch,
               engine_.now());
    });
  }

  /// Reserves the link (and, when given, a device lane that the transfer
  /// also occupies) for one coherence transfer and applies it. Returns the
  /// transfer's completion time.
  SimTime issue_transfer(const mem::TransferOp& op, SimTime arrival,
                         sim::Resource* co_lane = nullptr) {
    const SimTime nominal = cost_model_.transfer_time(
        platform_.link, static_cast<double>(op.size_bytes()));
    const bool to_host = op.dst == mem::kHostSpace;
    // Labels feed the trace (via the returned span) and lane history; an
    // untraced run never reads them, so skip the concatenation.
    std::string label;
    if (options_.record_trace) {
      label = std::string(to_host ? "D2H " : "H2D ") +
              coherence_.buffer(op.region.buffer).name + "[" +
              std::to_string(op.region.range.begin) + "," +
              std::to_string(op.region.range.end) + ")";
    }
    SimTime start = link_.earliest_start(arrival);
    if (co_lane != nullptr)
      start = std::max(start, co_lane->earliest_start(arrival));
    const SimTime duration =
        injector_ ? injector_->stretch_link(start, nominal) : nominal;
    if (co_lane != nullptr) co_lane->reserve(start, duration, label);
    const sim::BusySpan span = link_.reserve(start, duration, label);
    obs_track("inflight_transfers", start, 1);
    obs_track("inflight_transfers", start + duration, -1);
    obs_count(to_host ? "transfers_d2h" : "transfers_h2d");
    coherence_.apply(op);
    region_ready_[sb_index(op.dst, op.region.buffer)].assign(op.region.range,
                                                             span.end);
    if (to_host) {
      ++report_.transfers.d2h_count;
      report_.transfers.d2h_bytes += op.size_bytes();
      report_.transfers.d2h_time += duration;
    } else {
      ++report_.transfers.h2d_count;
      report_.transfers.h2d_bytes += op.size_bytes();
      report_.transfers.h2d_time += duration;
    }
    if (options_.record_trace) {
      report_.trace.record(link_.name(), span.label,
                           to_host ? sim::TraceKind::kTransferD2H
                                   : sim::TraceKind::kTransferH2D,
                           span.start, span.end);
    }
    return span.end;
  }

  /// Host-side sequential code: acquires its inputs into host memory (may
  /// pull device-written data home), runs the functional body, and records
  /// its writes — invalidating device copies.
  void run_host_op(TaskId id, SimTime now) {
    const TaskNode& node = graph_.node(id);
    SimTime done = now;
    for (const mem::RegionAccess& access : node.accesses) {
      if (!access.reads() || access.region.empty()) continue;
      coherence_.plan_acquire(access.region, mem::kHostSpace,
                              acquire_scratch_);
      for (const mem::TransferOp& op : acquire_scratch_) {
        done = std::max(done, issue_transfer(op, now));
      }
      done = std::max(done,
                      region_ready_time(access.region, mem::kHostSpace));
    }
    if (options_.functional_execution && node.host_body) node.host_body();
    for (const mem::RegionAccess& access : node.accesses) {
      if (access.writes() && !access.region.empty())
        coherence_.note_write(access.region, mem::kHostSpace);
    }
    if (done > now) {
      engine_.schedule_at(done, [this, id] {
        finish_task(id, std::nullopt, engine_.now());
      });
    } else {
      finish_task(id, std::nullopt, now);
    }
  }

  void run_barrier(TaskId id, SimTime now) {
    ++report_.barriers;
    SimTime done = now;
    for (const mem::TransferOp& op : coherence_.plan_flush_to_host()) {
      const SimTime flush_end = issue_transfer(op, now);
      done = std::max(done, flush_end);
      // Bill the flush to the tasks that produced the data, so a
      // performance-aware scheduler learns the true synchronization cost
      // of accelerator placement.
      const RangeMap<TaskId>& writer_map = last_writer_[op.region.buffer];
      if (writer_map.empty()) continue;
      writer_map.for_each_overlapping(
          op.region.range, [&](Interval, TaskId writer_id) {
            const TaskNode& writer = graph_.node(writer_id);
            if (writer.is_host_op || writer.is_barrier) return;
            // Bill the wall time from the barrier's start to this op's
            // landing (what a runtime's stopwatch around the flush would
            // read — including the queueing behind earlier flush ops).
            scheduler_.on_flush(sched_info_[writer_id], op.src,
                                flush_end - now, now);
          });
    }
    // The flush also waits for write-backs still in flight (queue drain),
    // then drops the device copies: after an OmpSs-era taskwait, device
    // data is considered stale and later kernels re-fetch from the host.
    done = std::max(done, link_.available_at());
    coherence_.invalidate_device_copies();
    done += costs_.taskwait_overhead;
    report_.overhead_time += costs_.taskwait_overhead;
    if (options_.record_trace)
      report_.trace.record("host", "taskwait", sim::TraceKind::kSync, now,
                           done);
    engine_.schedule_at(done, [this, id] {
      finish_task(id, std::nullopt, engine_.now());
    });
  }

  void complete(TaskId id, hw::DeviceId d, std::size_t lane_index,
                SimTime compute, SimTime nominal, SimTime occupancy,
                std::uint64_t epoch, SimTime now) {
    // A device failure displaced this dispatch after its completion event
    // was scheduled (the engine has no event cancellation): the chunk is
    // riding a retry elsewhere, or was abandoned. Ignore the stale event.
    if (dispatch_epoch_[id] != epoch) return;
    running_valid_[lane_begin_[d] + lane_index] = 0;
    // Asynchronous write-back: final outputs (no later kernel touches them)
    // head home immediately, overlapping the copy with the OTHER devices'
    // compute so the eventual taskwait finds them already in host memory.
    // The copy-back shares the accelerator's in-order queue: it blocks the
    // device lane for its duration (OpenCL-style), and the scheduler
    // observes it as part of the instance's occupancy.
    if (d != hw::kCpuDevice) {
      const TaskNode& node = graph_.node(id);
      sim::Resource& lane = lanes_[lane_begin_[d]];
      for (std::size_t a = 0; a < node.accesses.size(); ++a) {
        if (!node.writeback_eligible[a]) continue;
        coherence_.plan_acquire(node.accesses[a].region, mem::kHostSpace,
                                acquire_scratch_);
        for (const mem::TransferOp& op : acquire_scratch_) {
          issue_transfer(op, now, &lane);
        }
      }
      if (lane.available_at() > now) {
        occupancy += lane.available_at() - now;
        if (obs_)
          obs_span(id, obs::SpanPhase::kD2H, now, lane.available_at(),
                   "write-back from " + devices_[d].name);
        // Wake the dispatcher when the queue drains so waiting work resumes.
        engine_.schedule_at(lane.available_at(),
                            [this] { pump(engine_.now()); });
      }
    }
    if (obs_) {
      obs_span(id, obs::SpanPhase::kComplete, now, now, devices_[d].name);
      obs_count("chunks_completed");
    }
    scheduler_.on_complete(sched_info_[id], d, compute, occupancy, now);
    bool rediverged = false;
    if (injector_) rediverged = check_divergence(d, compute, nominal, now);
    if (probe_inflight_ && probe_inflight_->first == id &&
        probe_inflight_->second == d) {
      probe_inflight_.reset();
      // The probe survived on the once-benched device: its estimate has just
      // re-seeded from a healthy observation, so re-offer the other devices'
      // dynamic backlog and let it win work back.
      if (!rediverged) rebalance_after_probe(d, now);
    }
    if (retry_count_[id] > 0) ++report_.faults.migrated_tasks;
    finish_task(id, d, now);
    if (injector_) maybe_probe(now);
  }

  /// The chunk took `compute` against a model prediction of `nominal`. When
  /// the gap exceeds the plan's divergence threshold, the device is slower
  /// than the partitioning believed: tell the scheduler (which just saw the
  /// slow completion via on_complete, so its estimates are current) and pull
  /// the device's dynamically placed backlog back through it — the DP
  /// re-partitioning loop. Statically pinned chunks stay put: SP strategies
  /// intentionally do not adapt.
  bool check_divergence(hw::DeviceId d, SimTime compute, SimTime nominal,
                        SimTime now) {
    if (nominal <= 0) return false;
    const double threshold = injector_->retry().divergence_threshold;
    if (static_cast<double>(compute) <=
        threshold * static_cast<double>(nominal))
      return false;
    ++report_.faults.divergence_events;
    obs_count("divergence_events");
    SimTime busy_until = now;
    for (std::size_t f = lane_begin_[d]; f < lane_begin_[d + 1]; ++f)
      busy_until = std::max(busy_until, lanes_[f].available_at());
    scheduler_.on_divergence(d, busy_until, now);

    std::vector<TaskId>& queue = ready_[d];
    std::vector<TaskId> keep;
    std::vector<TaskId> drained;
    for (TaskId q : queue) {
      if (graph_.node(q).pinned_device) keep.push_back(q);
      else drained.push_back(q);
    }
    if (drained.empty()) return true;
    queue = std::move(keep);
    obs_track(queue_key_d(d), now, -static_cast<double>(drained.size()));
    report_.faults.repartitioned_tasks +=
        static_cast<std::int64_t>(drained.size());
    if (options_.record_trace)
      report_.trace.record("faults",
                           "re-partition " + std::to_string(drained.size()) +
                               " chunks off " + devices_[d].name,
                           sim::TraceKind::kRecovery, now, now);
    for (TaskId q : drained) {
      if (affinity_[q] && *affinity_[q] == d) affinity_[q].reset();
      obs_span(q, obs::SpanPhase::kMigrate, now, now,
               "re-partition off " + devices_[d].name);
      announce(q, now);
    }
    return true;
  }

  /// Probe-and-forgive: after a completion (fault plans only), ask the
  /// scheduler whether a benched device has earned a probe. If so, reroute
  /// one queued compatible chunk there; its completion re-seeds the
  /// scheduler's estimate (forgiveness) and triggers a rebalance.
  void maybe_probe(SimTime now) {
    if (probe_inflight_) return;
    const auto target = scheduler_.probe_request(now);
    if (!target || failed_[*target]) return;

    // Victim: an unpinned compatible chunk from the back of the deepest
    // other queue (least imminent work — stealing it costs the donor least).
    std::optional<hw::DeviceId> source;
    std::size_t best_depth = 0;
    for (hw::DeviceId d = 0; d < devices_.size(); ++d) {
      if (d == *target || failed_[d]) continue;
      const std::vector<TaskId>& queue = ready_[d];
      bool movable = false;
      for (TaskId q : queue) {
        if (!graph_.node(q).pinned_device && sched_info_[q].runs_on(*target)) {
          movable = true;
          break;
        }
      }
      if (movable && queue.size() > best_depth) {
        source = d;
        best_depth = queue.size();
      }
    }
    std::optional<TaskId> chosen;
    if (source) {
      std::vector<TaskId>& queue = ready_[*source];
      for (auto it = queue.rbegin(); it != queue.rend(); ++it) {
        if (!graph_.node(*it).pinned_device &&
            sched_info_[*it].runs_on(*target)) {
          chosen = *it;
          queue.erase(std::next(it).base());
          obs_track(queue_key_d(*source), now, -1);
          break;
        }
      }
    } else {
      for (std::size_t i = 0; i < pool_.size(); ++i) {
        if (!pool_[i].runs_on(*target)) continue;
        chosen = pool_[i].id;
        pool_.erase(pool_.begin() + static_cast<std::ptrdiff_t>(i));
        obs_track("pool_depth", now, -1);
        break;
      }
    }
    if (!chosen) return;

    probe_inflight_ = {*chosen, *target};
    ready_[*target].push_back(*chosen);
    obs_track(queue_key_d(*target), now, 1);
    obs_span(*chosen, obs::SpanPhase::kMigrate, now, now,
             "probe to " + devices_[*target].name);
    obs_count("probe_chunks");
    if (obs_) {
      obs::PlacementRecord record;
      record.task = *chosen;
      record.kernel = kernels_[graph_.node(*chosen).kernel].name;
      record.device = devices_[*target].name;
      record.reason = "probe";
      record.time = now;
      obs_->audit.add(std::move(record));
    }
    if (options_.record_trace)
      report_.trace.record("faults",
                           "probe chunk " + std::to_string(*chosen) + " to " +
                               devices_[*target].name,
                           sim::TraceKind::kRecovery, now, now);
    scheduler_.on_probe_dispatched(*target, now);
    pump(now);
  }

  /// The probe completed healthy: pull every other device's dynamically
  /// placed backlog back through the scheduler so the forgiven device can
  /// win work again (the reverse of the divergence drain).
  void rebalance_after_probe(hw::DeviceId probed, SimTime now) {
    std::vector<TaskId> drained;
    for (hw::DeviceId d = 0; d < devices_.size(); ++d) {
      if (d == probed || failed_[d]) continue;
      std::vector<TaskId>& queue = ready_[d];
      std::vector<TaskId> keep;
      std::size_t pulled = 0;
      for (TaskId q : queue) {
        if (graph_.node(q).pinned_device) {
          keep.push_back(q);
        } else {
          drained.push_back(q);
          ++pulled;
        }
      }
      if (pulled == 0) continue;
      queue = std::move(keep);
      obs_track(queue_key_d(d), now, -static_cast<double>(pulled));
    }
    if (drained.empty()) return;
    report_.faults.repartitioned_tasks +=
        static_cast<std::int64_t>(drained.size());
    if (options_.record_trace)
      report_.trace.record("faults",
                           "re-offer " + std::to_string(drained.size()) +
                               " chunks after probe on " +
                               devices_[probed].name,
                           sim::TraceKind::kRecovery, now, now);
    for (TaskId q : drained) {
      obs_span(q, obs::SpanPhase::kMigrate, now, now,
               "re-offer after probe on " + devices_[probed].name);
      announce(q, now);
    }
  }

  /// Permanent device failure (fault injection): displace everything the
  /// device holds and never use it again.
  void on_device_failure(hw::DeviceId d, SimTime now) {
    if (failed_[d]) return;
    failed_[d] = true;
    obs_count("device_failures");
    if (probe_inflight_ && probe_inflight_->second == d)
      probe_inflight_.reset();
    scheduler_.on_device_failed(d, now);

    // In-flight dispatches are lost. Reverse their accounting (so work
    // conservation holds once they re-run elsewhere) and invalidate their
    // pending completion events via the dispatch epoch.
    std::vector<TaskId> displaced;
    for (std::size_t f = lane_begin_[d]; f < lane_begin_[d + 1]; ++f) {
      if (!running_valid_[f]) continue;
      const InFlight& slot = running_[f];
      DeviceReport& dr = report_.devices[d];
      dr.compute_time -= slot.compute;
      --dr.instances;
      auto it = dr.items_per_kernel.find(slot.kernel);
      HS_ASSERT(it != dr.items_per_kernel.end());
      it->second -= slot.items;
      if (it->second == 0) dr.items_per_kernel.erase(it);
      ++dispatch_epoch_[slot.id];
      displaced.push_back(slot.id);
      running_valid_[f] = 0;
    }
    std::vector<TaskId>& queue = ready_[d];
    displaced.insert(displaced.end(), queue.begin(), queue.end());
    if (!queue.empty())
      obs_track(queue_key_d(d), now, -static_cast<double>(queue.size()));
    queue.clear();

    // The dead device's memory is gone. Recovery model: every byte it held
    // re-validates on the host (checkpoint-on-host shadow) with no billed
    // transfer — the dead device cannot DMA its memory out — so surviving
    // devices re-fetch what they need over the link as usual.
    coherence_.reclaim_space_to_host(space_of(d));
    for (mem::BufferId b = 0; b < num_buffers_; ++b) {
      region_ready_[sb_index(space_of(d), b)].clear();
      last_touch_[sb_index(space_of(d), b)] = 0;
    }

    // Pool tasks bound to the dead chain become free agents; pool tasks no
    // surviving device can run are abandoned.
    for (SchedTask& t : pool_) {
      if (t.locality == d) t.locality.reset();
    }
    for (std::size_t i = pool_.size(); i-- > 0;) {
      if (runnable_somewhere(pool_[i])) continue;
      abandon(pool_[i].id, now, "no surviving device runs it");
      pool_.erase(pool_.begin() + static_cast<std::ptrdiff_t>(i));
      obs_track("pool_depth", now, -1);
    }

    for (TaskId id : displaced) retry_or_abandon(id, d, now);
    pump(now);
  }

  void retry_or_abandon(TaskId id, hw::DeviceId failed_device, SimTime now) {
    const TaskNode& node = graph_.node(id);
    if (node.pinned_device) {
      // Static partitioning has nowhere to move the chunk: report honestly.
      abandon(id, now, "pinned to failed " + devices_[failed_device].name);
      return;
    }
    if (affinity_[id] && *affinity_[id] == failed_device)
      affinity_[id].reset();
    const faults::RetryPolicy& retry = injector_->retry();
    const int attempt = ++retry_count_[id];
    if (attempt > retry.max_retries) {
      abandon(id, now, "retry budget exhausted");
      return;
    }
    ++report_.faults.retries;
    last_fault_action_ = std::max(last_fault_action_, now);
    // Exponential virtual-time backoff before the chunk re-enters
    // scheduling (a real runtime would spend this re-establishing contexts).
    double delay = static_cast<double>(retry.backoff_base);
    for (int i = 1; i < attempt; ++i) delay *= retry.backoff_multiplier;
    const SimTime at =
        now + std::max<SimTime>(static_cast<SimTime>(std::llround(delay)), 0);
    obs_span(id, obs::SpanPhase::kRetry, now, at,
             "off " + devices_[failed_device].name + ", attempt " +
                 std::to_string(attempt));
    obs_count("chunks_retried");
    obs_track("retry_backlog", now, 1);
    obs_track("retry_backlog", at, -1);
    if (options_.record_trace)
      report_.trace.record("faults",
                           "retry " + std::to_string(attempt) + " task " +
                               std::to_string(id),
                           sim::TraceKind::kRecovery, now, at);
    engine_.schedule_at(at, [this, id] { announce(id, engine_.now()); });
  }

  /// Post-run: count the plan events that actually landed inside the run
  /// and, when tracing, paint them as annotated rows on a "faults" lane.
  void record_injected_faults() {
    const std::vector<faults::FaultEvent> injected =
        injector_->events_started_by(report_.makespan);
    report_.faults.injected_faults =
        static_cast<std::int64_t>(injected.size());
    std::set<hw::DeviceId> dead;
    for (const faults::FaultEvent& event : injected)
      if (event.kind == faults::FaultKind::kDeviceFailure)
        dead.insert(event.device);
    report_.faults.failed_devices = static_cast<std::int64_t>(dead.size());
    if (!options_.record_trace) return;
    for (const faults::FaultEvent& event : injected) {
      const bool failure =
          event.kind == faults::FaultKind::kDeviceFailure;
      const SimTime end =
          failure ? report_.makespan
                  : std::min(event.start + event.duration, report_.makespan);
      std::string label = faults::fault_kind_name(event.kind);
      if (event.kind != faults::FaultKind::kLinkDegrade)
        label += " " + devices_[event.device].name;
      if (event.kind == faults::FaultKind::kSlowdown ||
          event.kind == faults::FaultKind::kLinkDegrade)
        label += " x" + json::format_double(event.magnitude);
      report_.trace.record("faults", label, sim::TraceKind::kFault,
                           event.start, std::max(end, event.start));
    }
  }

  void finish_task(TaskId id, std::optional<hw::DeviceId> device,
                   SimTime now) {
    HS_ASSERT_MSG(!completed_[id], "task " << id << " completed twice");
    completed_[id] = true;
    last_completion_ = std::max(last_completion_, now);
    if (explore_ != nullptr)
      report_.schedule.completions.emplace_back(id, now);
    if (!graph_.node(id).is_barrier && !graph_.node(id).is_host_op)
      ++report_.tasks_executed;

    for (TaskId succ : graph_.node(id).successors) {
      // Dependency-chain affinity: a consumer inherits its producer's device
      // as a locality hint (barriers break chains — data is flushed home).
      if (device && !graph_.node(succ).is_barrier) affinity_[succ] = *device;
      HS_ASSERT_MSG(remaining_deps_[succ] > 0,
                    "dependency count underflow at task " << succ);
      if (--remaining_deps_[succ] == 0) make_ready(succ, now);
    }
    pump(now);
  }

  /// Evicts least-recently-used buffers from device `d` until this task's
  /// working set fits its memory capacity. Returns the time the space is
  /// ready (evictions ride the link). Throws StateError when the task's
  /// own working set cannot fit.
  SimTime ensure_capacity(const TaskNode& node, hw::DeviceId d,
                          SimTime now) {
    const auto capacity = static_cast<std::int64_t>(
        devices_[d].mem_capacity_gb * 1e9);
    const mem::SpaceId space = space_of(d);

    // Bytes this task will occupy that are not yet resident.
    std::int64_t needed = 0;
    std::int64_t own_footprint = 0;
    std::set<mem::BufferId> referenced;
    for (const mem::RegionAccess& access : node.accesses) {
      if (access.region.empty()) continue;
      referenced.insert(access.region.buffer);
      own_footprint += access.region.size_bytes();
      for (const Interval& gap :
           coherence_.gaps_in_space(access.region, space))
        needed += gap.length();
    }
    HS_REQUIRE(own_footprint <= capacity,
               "task working set of " << own_footprint
                                      << " bytes exceeds device memory of "
                                      << devices_[d].name);

    SimTime done = now;
    while (coherence_.resident_bytes(space) + needed > capacity) {
      // LRU victim among buffers resident here and not used by this task.
      std::optional<mem::BufferId> victim;
      SimTime oldest = 0;
      for (std::size_t buffer = 0; buffer < coherence_.buffer_count();
           ++buffer) {
        if (referenced.count(buffer)) continue;
        if (coherence_.resident_bytes_of(buffer, space) == 0) continue;
        const SimTime touched = last_touch_[sb_index(space, buffer)];
        if (!victim || touched < oldest) {
          victim = buffer;
          oldest = touched;
        }
      }
      HS_REQUIRE(victim.has_value(),
                 "cannot make room on " << devices_[d].name
                                        << ": every resident buffer is in "
                                           "use by the dispatching task");
      for (const mem::TransferOp& op :
           coherence_.plan_evict(*victim, space)) {
        done = std::max(done, issue_transfer(op, done));
      }
      coherence_.drop_copies(*victim, space);
    }
    return done;
  }

  /// Latest in-flight readiness time of any part of `region` in `space`.
  SimTime region_ready_time(const mem::Region& region,
                            mem::SpaceId space) const {
    SimTime latest = 0;
    region_ready_[sb_index(space, region.buffer)].for_each_overlapping(
        region.range, [&latest](Interval, SimTime ready) {
          latest = std::max(latest, ready);
        });
    return latest;
  }

  void note_residency() {
    for (std::size_t s = 0; s < devices_.size(); ++s) {
      report_.peak_resident_bytes[s] = std::max(
          report_.peak_resident_bytes[s],
          coherence_.resident_bytes(s));
    }
  }

  /// Flat (space, buffer) index into region_ready_ / last_touch_.
  std::size_t sb_index(mem::SpaceId space, mem::BufferId buffer) const {
    return space * num_buffers_ + buffer;
  }

  const hw::PlatformSpec& platform_;
  const RuntimeCosts& costs_;
  const RuntimeOptions& options_;
  const hw::RooflineCostModel& cost_model_;
  const std::vector<KernelDef>& kernels_;
  Scheduler& scheduler_;
  /// Schedule-exploration strategy (null = canonical schedule). Not owned.
  ExploreStrategy* explore_;
  /// The executor's run arena: every flat bookkeeping array below marked
  /// "arena" lives here and is freed wholesale by the next run's reset.
  mem::Arena& arena_;

  std::vector<hw::DeviceSpec> devices_;
  sim::Engine engine_;
  mem::CoherenceDirectory coherence_;
  sim::Resource link_;
  std::size_t num_buffers_ = 0;

  /// Per-device mutable state, struct-of-arrays: all devices' lanes in one
  /// flat vector (device d owns [lane_begin_[d], lane_begin_[d+1])), ready
  /// queues and failure flags in parallel arrays indexed by device, and
  /// in-flight dispatch slots in parallel arrays indexed by flat lane. The
  /// hot loops (pump/dispatch/complete) walk contiguous memory instead of
  /// chasing per-device structs of containers.
  std::vector<sim::Resource> lanes_;
  std::uint32_t* lane_begin_ = nullptr;  // arena, devices+1 entries
  std::vector<std::vector<TaskId>> ready_;
  std::uint8_t* failed_ = nullptr;  // arena, per device

  TaskGraph graph_;
  std::size_t* remaining_deps_ = nullptr;               // arena, per task
  SchedTask* sched_info_ = nullptr;                     // arena, per task
  std::optional<hw::DeviceId>* affinity_ = nullptr;     // arena, per task
  std::uint8_t* completed_ = nullptr;                   // arena, per task
  std::vector<SchedTask> pool_;
  /// Reused output buffer for coherence_.plan_acquire on the hot paths.
  std::vector<mem::TransferOp> acquire_scratch_;

  /// Fault-injection state (all empty/default when no plan is armed).
  std::optional<faults::FaultInjector> injector_;
  int* retry_count_ = nullptr;  // arena, per task
  /// Bumped when a failure displaces a task's dispatch; completion events
  /// carry the epoch they were scheduled under and stale ones are ignored.
  std::uint64_t* dispatch_epoch_ = nullptr;  // arena, per task
  std::uint8_t* body_ran_ = nullptr;         // arena, per task
  struct InFlight {
    TaskId id = 0;
    SimTime compute = 0;
    KernelId kernel = 0;
    std::int64_t items = 0;
  };
  /// The dispatch currently occupying each flat lane (valid flag beside).
  InFlight* running_ = nullptr;             // arena, per flat lane
  std::uint8_t* running_valid_ = nullptr;   // arena, per flat lane
  /// Probe chunk currently en route to a benched device (task, device).
  std::optional<std::pair<TaskId, hw::DeviceId>> probe_inflight_;

  /// Observability sinks (null when record_observability is off) and the
  /// per-device metric keys built once at construction.
  obs::RunObservability* obs_ = nullptr;
  std::vector<std::string> queue_key_;
  std::vector<std::string> compute_hist_key_;
  std::vector<std::string> dispatch_key_;

  ExecutionReport report_;
  SimTime last_completion_ = 0;
  /// Latest abandon/retry moment; on a DNF run fault handling can outlast
  /// the last completion, and the run window must still cover it.
  SimTime last_fault_action_ = 0;
  /// Flat [space × buffer]: byte ranges -> time their current copy lands.
  std::vector<RangeMap<SimTime>> region_ready_;
  /// Per buffer: byte ranges -> task that last wrote them (flush billing).
  std::vector<RangeMap<TaskId>> last_writer_;
  /// Flat [space × buffer]: last dispatch that touched it (LRU eviction;
  /// 0 = never touched). Arena-allocated.
  SimTime* last_touch_ = nullptr;
};

}  // namespace

ExecutionReport Executor::execute(const Program& program,
                                  Scheduler& scheduler) {
  const obs::ScopedPhase phase(obs::kPhaseSimEventLoop);
  std::vector<std::pair<std::string, std::int64_t>> buffer_specs;
  buffer_specs.reserve(buffers_.size());
  for (const BufferInfo& info : buffers_)
    buffer_specs.emplace_back(info.name, info.size_bytes);
  Run run(platform_, costs_, options_, cost_model_, kernels_, buffer_specs,
          program, scheduler, fault_plan_, explore_, run_arena_);
  return run.execute();
}

ExecutionReport Executor::execute_pinned(const Program& program) {
  for (const ProgramOp& op : program.ops()) {
    if (op.kind == ProgramOp::Kind::kSubmit) {
      HS_REQUIRE(op.submit.pinned_device.has_value(),
                 "execute_pinned: program contains an unpinned task");
    }
  }
  FifoScheduler fifo;
  return execute(program, fifo);
}

}  // namespace hetsched::rt
