#include "runtime/report.hpp"

#include <sstream>

#include "common/json.hpp"

namespace hetsched::rt {

double ExecutionReport::partition_fraction(hw::DeviceId device,
                                           KernelId kernel) const {
  if (device >= devices.size()) return 0.0;
  std::int64_t total = 0;
  for (const DeviceReport& dr : devices) {
    auto it = dr.items_per_kernel.find(kernel);
    if (it != dr.items_per_kernel.end()) total += it->second;
  }
  if (total == 0) return 0.0;
  auto it = devices[device].items_per_kernel.find(kernel);
  const std::int64_t mine =
      it == devices[device].items_per_kernel.end() ? 0 : it->second;
  return static_cast<double>(mine) / static_cast<double>(total);
}

double ExecutionReport::overall_fraction(hw::DeviceId device) const {
  if (device >= devices.size()) return 0.0;
  std::int64_t total = 0;
  for (const DeviceReport& dr : devices) total += dr.total_items();
  if (total == 0) return 0.0;
  return static_cast<double>(devices[device].total_items()) /
         static_cast<double>(total);
}

std::string report_to_json(const ExecutionReport& report,
                           const std::vector<KernelDef>& kernels) {
  std::ostringstream os;
  // Doubles go through json::format_double so the serialization is
  // byte-stable under parse -> dump round trips (the sweep cache contract).
  os << "{";
  os << "\"makespan_ms\":" << json::format_double(report.makespan_ms());
  os << ",\"tasks_executed\":" << report.tasks_executed;
  os << ",\"barriers\":" << report.barriers;
  os << ",\"scheduling_decisions\":" << report.scheduling_decisions;
  os << ",\"sim_events\":" << report.sim_events;
  os << ",\"overhead_ms\":"
     << json::format_double(to_millis(report.overhead_time));
  os << ",\"transfers\":{"
     << "\"h2d_count\":" << report.transfers.h2d_count
     << ",\"h2d_bytes\":" << report.transfers.h2d_bytes << ",\"h2d_ms\":"
     << json::format_double(to_millis(report.transfers.h2d_time))
     << ",\"d2h_count\":" << report.transfers.d2h_count
     << ",\"d2h_bytes\":" << report.transfers.d2h_bytes << ",\"d2h_ms\":"
     << json::format_double(to_millis(report.transfers.d2h_time)) << "}";
  os << ",\"devices\":[";
  for (std::size_t d = 0; d < report.devices.size(); ++d) {
    const DeviceReport& device = report.devices[d];
    if (d != 0) os << ",";
    os << "{\"name\":\"" << json::escape(device.name) << "\",\"class\":\""
       << hw::device_class_name(device.cls) << "\",\"lanes\":"
       << device.lanes << ",\"compute_ms\":"
       << json::format_double(to_millis(device.compute_time))
       << ",\"instances\":" << device.instances << ",\"items_per_kernel\":{";
    bool first = true;
    for (const auto& [kernel, items] : device.items_per_kernel) {
      if (!first) os << ",";
      first = false;
      const std::string name = kernel < kernels.size()
                                   ? kernels[kernel].name
                                   : "kernel" + std::to_string(kernel);
      os << "\"" << json::escape(name) << "\":" << items;
    }
    os << "}}";
  }
  os << "],\"peak_resident_bytes\":[";
  for (std::size_t s = 0; s < report.peak_resident_bytes.size(); ++s) {
    if (s != 0) os << ",";
    os << report.peak_resident_bytes[s];
  }
  os << "]";
  const faults::FaultReport& faults = report.faults;
  os << ",\"faults\":{"
     << "\"active\":" << (faults.active ? "true" : "false")
     << ",\"plan\":\"" << json::escape(faults.plan_name) << "\""
     << ",\"injected\":" << faults.injected_faults
     << ",\"retries\":" << faults.retries
     << ",\"migrated\":" << faults.migrated_tasks
     << ",\"abandoned\":" << faults.abandoned_tasks
     << ",\"repartitioned\":" << faults.repartitioned_tasks
     << ",\"divergence_events\":" << faults.divergence_events
     << ",\"failed_devices\":" << faults.failed_devices
     << ",\"unfinished_tasks\":" << faults.unfinished_tasks
     << ",\"run_completed\":" << (faults.run_completed ? "true" : "false")
     << "}";
  if (report.schedule.recorded) {
    // Times serialize as exact integer nanoseconds: the linearization
    // oracle compares them against makespan_ns without rounding slack.
    const ScheduleRecord& schedule = report.schedule;
    os << ",\"schedule\":{\"decisions\":[";
    for (std::size_t i = 0; i < schedule.decisions.size(); ++i) {
      if (i != 0) os << ",";
      os << schedule.decisions[i];
    }
    os << "],\"tasks\":" << schedule.tasks
       << ",\"makespan_ns\":" << report.makespan << ",\"completions\":[";
    for (std::size_t i = 0; i < schedule.completions.size(); ++i) {
      if (i != 0) os << ",";
      os << "[" << schedule.completions[i].first << ","
         << schedule.completions[i].second << "]";
    }
    os << "],\"abandons\":[";
    for (std::size_t i = 0; i < schedule.abandons.size(); ++i) {
      if (i != 0) os << ",";
      os << "[" << schedule.abandons[i].first << ","
         << schedule.abandons[i].second << "]";
    }
    os << "],\"edges\":[";
    for (std::size_t i = 0; i < schedule.edges.size(); ++i) {
      if (i != 0) os << ",";
      os << "[" << schedule.edges[i].first << "," << schedule.edges[i].second
         << "]";
    }
    os << "]}";
  }
  os << "}";
  return os.str();
}

}  // namespace hetsched::rt
