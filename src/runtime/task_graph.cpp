#include "runtime/task_graph.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "common/error.hpp"
#include "common/range_map.hpp"

namespace hetsched::rt {

namespace {

/// Per-buffer dependency bookkeeping during the submission sweep.
struct BufferTracker {
  /// Last task that wrote each byte range.
  RangeMap<TaskId> last_writer;
  /// Tasks that read each byte range since it was last written.
  /// (range, reader) records; written ranges are subtracted on writes.
  std::vector<std::pair<Interval, TaskId>> readers;
};

}  // namespace

TaskGraph::TaskGraph(const std::vector<KernelDef>& kernels,
                     const Program& program) {
  std::map<mem::BufferId, BufferTracker> trackers;
  std::optional<TaskId> last_barrier;
  std::vector<TaskId> since_barrier;

  for (const ProgramOp& op : program.ops()) {
    const TaskId id = nodes_.size();
    TaskNode node;
    node.id = id;

    if (op.kind == ProgramOp::Kind::kTaskwait) {
      node.is_barrier = true;
      nodes_.push_back(std::move(node));
      // The barrier waits for everything since the previous barrier (earlier
      // work is covered transitively through that barrier).
      std::set<TaskId> deps(since_barrier.begin(), since_barrier.end());
      if (last_barrier) deps.insert(*last_barrier);
      for (TaskId dep : deps) add_edge(dep, id);
      last_barrier = id;
      since_barrier.clear();
      // A barrier flushes all device copies; subsequent tasks re-source data
      // from the host, and their ordering against pre-barrier tasks flows
      // through the barrier edge — so reset the data-dependency trackers.
      trackers.clear();
      continue;
    }

    if (op.kind == ProgramOp::Kind::kHostOp) {
      node.is_host_op = true;
      node.host_body = op.host.body;
      node.accesses = op.host.accesses;
      nodes_.push_back(std::move(node));
    } else {
      const SubmitOp& submit = op.submit;
      HS_REQUIRE(submit.kernel < kernels.size(),
                 "program references unknown kernel id " << submit.kernel);
      const KernelDef& kernel = kernels[submit.kernel];

      node.kernel = submit.kernel;
      node.begin = submit.begin;
      node.end = submit.end;
      node.pinned_device = submit.pinned_device;
      node.accesses = kernel.accesses(submit.begin, submit.end);
      nodes_.push_back(std::move(node));
    }

    std::set<TaskId> deps;
    if (last_barrier) deps.insert(*last_barrier);

    for (const mem::RegionAccess& access : nodes_[id].accesses) {
      if (access.region.empty()) continue;
      BufferTracker& tracker = trackers[access.region.buffer];
      const Interval range = access.region.range;

      if (access.reads()) {
        // RAW on every overlapping earlier writer.
        for (TaskId writer : tracker.last_writer.values_overlapping(range))
          deps.insert(writer);
      }
      if (access.writes()) {
        // WAW on earlier writers.
        for (TaskId writer : tracker.last_writer.values_overlapping(range))
          deps.insert(writer);
        // WAR on readers since the last write; subtract the written range
        // from their records so they don't produce edges again.
        std::vector<std::pair<Interval, TaskId>> kept;
        kept.reserve(tracker.readers.size());
        for (auto& [read_range, reader] : tracker.readers) {
          if (read_range.overlaps(range)) {
            deps.insert(reader);
            if (read_range.begin < range.begin)
              kept.emplace_back(Interval{read_range.begin, range.begin},
                                reader);
            if (read_range.end > range.end)
              kept.emplace_back(Interval{range.end, read_range.end}, reader);
          } else {
            kept.emplace_back(read_range, reader);
          }
        }
        tracker.readers = std::move(kept);
      }
    }

    // Commit this task's effects after scanning all accesses, so a task
    // never depends on itself through its own inout regions.
    for (const mem::RegionAccess& access : nodes_[id].accesses) {
      if (access.region.empty()) continue;
      BufferTracker& tracker = trackers[access.region.buffer];
      const Interval range = access.region.range;
      if (access.writes()) tracker.last_writer.assign(range, id);
      if (access.reads()) tracker.readers.emplace_back(range, id);
    }

    deps.erase(id);
    for (TaskId dep : deps) add_edge(dep, id);
    since_barrier.push_back(id);
  }

  analyze_writeback();
  check_acyclic();
}

void TaskGraph::analyze_writeback() {
  for (TaskNode& node : nodes_) {
    if (node.is_barrier) continue;
    node.writeback_eligible.assign(node.accesses.size(), false);
    for (std::size_t a = 0; a < node.accesses.size(); ++a) {
      const mem::RegionAccess& access = node.accesses[a];
      if (!access.writes() || access.region.empty()) continue;

      // Find the first later kernel/host op touching an overlapping range.
      //  - host op next (or nothing at all): eager write-back; the copy
      //    overlaps the other devices' remaining compute.
      //  - kernel next: the data stays resident for its consumer; if a
      //    taskwait intervenes, the *barrier* flushes it synchronously
      //    (the OmpSs taskwait semantics that make per-kernel
      //    synchronization expensive).
      bool host_side_next = true;  // nothing later: program-tail output
      for (TaskId later = node.id + 1; later < nodes_.size(); ++later) {
        const TaskNode& other = nodes_[later];
        if (other.is_barrier) continue;
        bool overlaps = false;
        for (const mem::RegionAccess& theirs : other.accesses) {
          if (theirs.region.buffer == access.region.buffer &&
              theirs.region.range.overlaps(access.region.range)) {
            overlaps = true;
            break;
          }
        }
        if (overlaps) {
          host_side_next = other.is_host_op;
          break;
        }
      }
      node.writeback_eligible[a] = host_side_next;
    }
  }
}

void TaskGraph::add_edge(TaskId from, TaskId to) {
  HS_ASSERT_MSG(from < to, "dependency edge " << from << " -> " << to
                                              << " not forward in submission "
                                                 "order");
  nodes_[from].successors.push_back(to);
  ++nodes_[to].predecessor_count;
  ++edge_count_;
}

std::vector<TaskId> TaskGraph::initial_ready() const {
  std::vector<TaskId> ready;
  for (const TaskNode& node : nodes_)
    if (node.predecessor_count == 0) ready.push_back(node.id);
  return ready;
}

void TaskGraph::check_acyclic() const {
  for (const TaskNode& node : nodes_)
    for (TaskId succ : node.successors)
      HS_ASSERT_MSG(succ > node.id, "backward edge " << node.id << " -> "
                                                     << succ);
}

}  // namespace hetsched::rt
