#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"

namespace hetsched::rt {

ThreadPool::ThreadPool(unsigned threads) {
  unsigned count = threads;
  if (count == 0) count = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(count);
  for (unsigned i = 0; i < count; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  HS_REQUIRE(task != nullptr, "enqueue of empty task");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    HS_REQUIRE(!stopping_, "enqueue on a stopping pool");
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    std::rethrow_exception(error);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::int64_t begin, std::int64_t end,
                  std::int64_t grain,
                  const std::function<void(std::int64_t, std::int64_t)>& body) {
  HS_REQUIRE(grain > 0, "parallel_for grain " << grain);
  HS_REQUIRE(body != nullptr, "parallel_for without a body");
  for (std::int64_t lo = begin; lo < end; lo += grain) {
    const std::int64_t hi = std::min(end, lo + grain);
    pool.enqueue([&body, lo, hi] { body(lo, hi); });
  }
  pool.wait_idle();
}

}  // namespace hetsched::rt
