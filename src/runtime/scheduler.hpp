#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "hw/platform.hpp"
#include "runtime/kernel.hpp"
#include "runtime/task_graph.hpp"

/// Scheduler interface for dynamic partitioning.
///
/// The executor supports two placement styles, mirroring the OmpSs runtime:
///
///  - *push*: when a task becomes ready, `on_ready` may immediately bind it
///    to a device queue (the performance-aware scheduler does this, using
///    its earliest-finish-time estimate);
///  - *pull*: `on_ready` declines (returns nullopt), the task enters the
///    central ready pool, and whenever a device lane goes idle the executor
///    calls `pick` to let the scheduler choose work for that device (the
///    breadth-first scheduler works this way).
///
/// Statically partitioned programs pin every task, so the scheduler is never
/// consulted for placement.
namespace hetsched::obs {
struct RunObservability;
}  // namespace hetsched::obs

namespace hetsched::rt {

/// Scheduler-visible view of one ready task instance.
struct SchedTask {
  TaskId id = 0;
  KernelId kernel = 0;
  std::int64_t items = 0;
  bool cpu_ok = true;
  bool gpu_ok = true;
  /// Device (if any) already holding a valid copy of most input bytes — the
  /// data-locality hint behind the paper's dependency-chain affinity.
  std::optional<hw::DeviceId> locality;

  bool runs_on(hw::DeviceId device) const {
    return device == hw::kCpuDevice ? cpu_ok : gpu_ok;
  }
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual std::string name() const = 0;

  /// Charged on the critical path once per placement decision.
  virtual SimTime decision_cost() const { return 0; }

  /// Called once before execution starts.
  virtual void begin_run(const hw::PlatformSpec& platform,
                         const std::vector<KernelDef>& kernels) {
    (void)platform;
    (void)kernels;
  }

  /// Push-style placement. Return the device to enqueue the task on, or
  /// nullopt to leave it in the central ready pool.
  virtual std::optional<hw::DeviceId> on_ready(const SchedTask& task,
                                               SimTime now) {
    (void)task;
    (void)now;
    return std::nullopt;
  }

  /// Pull-style placement: a lane of `device` is idle; return the index into
  /// `pool` of the task it should run, or nullopt to leave the lane idle.
  /// `pool` is in ready order (FIFO).
  virtual std::optional<std::size_t> pick(hw::DeviceId device,
                                          const std::vector<SchedTask>& pool,
                                          SimTime now) {
    (void)device;
    (void)now;
    for (std::size_t i = 0; i < pool.size(); ++i)
      if (pool[i].runs_on(device)) return i;
    return std::nullopt;
  }

  /// A taskwait flushed `duration` worth of link time for data this task
  /// produced on `device`. Performance-aware schedulers fold this into
  /// their cost picture: the synchronization bill of placing that instance
  /// on an accelerator, which its completion-time occupancy cannot see.
  virtual void on_flush(const SchedTask& task, hw::DeviceId device,
                        SimTime duration, SimTime now) {
    (void)task;
    (void)device;
    (void)duration;
    (void)now;
  }

  /// `device` permanently failed at `now` (fault injection). The executor
  /// has already drained the device's queue; adaptive schedulers should
  /// stop placing work there. Pull schedulers whose pick never offers a
  /// task to a device it wasn't asked for need no action.
  virtual void on_device_failed(hw::DeviceId device, SimTime now) {
    (void)device;
    (void)now;
  }

  /// A completion on `device` diverged from the model prediction by more
  /// than the armed fault plan's threshold; the executor is about to pull
  /// the device's dynamically placed queue back for re-partitioning.
  /// `busy_until` is when the device's lanes actually free up — adaptive
  /// schedulers should fold it into their backlog picture so the re-offered
  /// work lands somewhere faster.
  virtual void on_divergence(hw::DeviceId device, SimTime busy_until,
                             SimTime now) {
    (void)device;
    (void)busy_until;
    (void)now;
  }

  /// Completion feedback. `compute_time` is the kernel execution time alone
  /// (launch + compute); `occupancy_time` is the full dispatch-to-completion
  /// latency the worker observed, including waits for host<->device
  /// transfers — the quantity the OmpSs performance-aware scheduler actually
  /// measures per task instance (it cannot see inside the driver).
  virtual void on_complete(const SchedTask& task, hw::DeviceId device,
                           SimTime compute_time, SimTime occupancy_time,
                           SimTime now) {
    (void)task;
    (void)device;
    (void)compute_time;
    (void)occupancy_time;
    (void)now;
  }

  /// Probe-and-forgive support. After each completion (while a fault plan
  /// is armed) the executor asks whether any benched device deserves a
  /// probe chunk; returning a device makes the executor reroute one queued
  /// compatible chunk there, then call `on_probe_dispatched`. Schedulers
  /// without a bench list never probe.
  virtual std::optional<hw::DeviceId> probe_request(SimTime now) {
    (void)now;
    return std::nullopt;
  }
  virtual void on_probe_dispatched(hw::DeviceId device, SimTime now) {
    (void)device;
    (void)now;
  }

  /// Points the scheduler at the active run's observability sinks (null
  /// between runs or when recording is off). Set by the executor before
  /// `begin_run` and cleared after the run.
  void set_observability(obs::RunObservability* obs) { obs_ = obs; }

 protected:
  obs::RunObservability* obs_ = nullptr;
};

}  // namespace hetsched::rt
