#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "hw/cost_model.hpp"
#include "mem/region.hpp"

/// Kernel definitions: the unit of parallel work an application registers
/// with the runtime (the paper's "task", annotated with OmpSs `task` +
/// `target` constructs).
namespace hetsched::rt {

using KernelId = std::size_t;

/// Functional body: computes items [begin, end) on host data. Optional —
/// benches that only need timing leave it empty; tests and examples use it
/// to verify numerical results.
using KernelBody = std::function<void(std::int64_t begin, std::int64_t end)>;

/// Maps an item range to the byte regions it reads/writes. This is the
/// analogue of OmpSs data-dependency clauses (`in`/`out`/`inout` on array
/// sections) and drives both dependency analysis and coherence transfers.
using AccessFn = std::function<std::vector<mem::RegionAccess>(
    std::int64_t begin, std::int64_t end)>;

struct KernelDef {
  std::string name;
  hw::KernelTraits traits;
  AccessFn accesses;
  KernelBody body;  ///< may be empty (timing-only execution)

  /// Which device classes have an implementation — the paper's `implements`
  /// clause. A kernel without a GPU implementation never runs on the GPU.
  bool has_cpu_impl = true;
  bool has_gpu_impl = true;

  void validate() const {
    traits.validate();
    HS_REQUIRE(!name.empty(), "KernelDef needs a name");
    HS_REQUIRE(accesses != nullptr,
               "kernel '" << name << "' needs an access function");
    HS_REQUIRE(has_cpu_impl || has_gpu_impl,
               "kernel '" << name << "' has no implementation");
  }
};

}  // namespace hetsched::rt
