#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/time.hpp"
#include "faults/fault_report.hpp"
#include "hw/platform.hpp"
#include "obs/observability.hpp"
#include "runtime/kernel.hpp"
#include "sim/trace.hpp"

/// Execution results: everything the paper's figures are computed from.
namespace hetsched::rt {

struct DeviceReport {
  std::string name;
  hw::DeviceClass cls = hw::DeviceClass::kCpu;
  int lanes = 1;
  /// Kernel execution time summed over lanes (launch + compute).
  SimTime compute_time = 0;
  std::size_t instances = 0;
  /// Work items executed, per kernel id.
  std::map<KernelId, std::int64_t> items_per_kernel;

  std::int64_t total_items() const {
    std::int64_t total = 0;
    for (const auto& [k, n] : items_per_kernel) total += n;
    return total;
  }
};

struct TransferReport {
  std::size_t h2d_count = 0;
  std::size_t d2h_count = 0;
  std::int64_t h2d_bytes = 0;
  std::int64_t d2h_bytes = 0;
  SimTime h2d_time = 0;
  SimTime d2h_time = 0;

  SimTime total_time() const { return h2d_time + d2h_time; }
  std::int64_t total_bytes() const { return h2d_bytes + d2h_bytes; }
};

/// What one explored schedule actually did, recorded by the executor when
/// an ExploreStrategy is armed (see runtime/explore.hpp). This is the
/// substrate of the DAG-linearization oracle: the completion sequence must
/// be a linearization of the dependency DAG, and no abandoned chunk may
/// resurface after the makespan. `recorded` gates serialization so
/// unexplored reports stay byte-identical with pre-exploration builds.
struct ScheduleRecord {
  bool recorded = false;
  /// The decision string: choice taken at each decision site, in order —
  /// replaying it through ExploreMode::kReplay reproduces this schedule.
  std::vector<std::uint32_t> decisions;
  /// Total tasks in the graph (completions + abandons + unfinished).
  std::size_t tasks = 0;
  /// (task, virtual time) in completion order.
  std::vector<std::pair<std::size_t, SimTime>> completions;
  /// (task, virtual time) in abandon order.
  std::vector<std::pair<std::size_t, SimTime>> abandons;
  /// Dependency edges (predecessor, successor) of the task graph.
  std::vector<std::pair<std::size_t, std::size_t>> edges;
};

struct ExecutionReport {
  /// Virtual time from start to last completion (including final flush).
  SimTime makespan = 0;

  std::vector<DeviceReport> devices;  ///< indexed by hw::DeviceId
  TransferReport transfers;

  /// Total scheduling/dispatch/taskwait overhead charged.
  SimTime overhead_time = 0;
  std::size_t scheduling_decisions = 0;
  std::size_t barriers = 0;
  std::size_t tasks_executed = 0;
  /// Discrete events fired by the simulation engine for this run — the
  /// denominator for simulated-events-per-second throughput numbers.
  std::uint64_t sim_events = 0;

  /// Peak bytes simultaneously valid in each space (capacity accounting).
  std::vector<std::int64_t> peak_resident_bytes;

  /// Optional timeline (populated when RuntimeOptions::record_trace).
  sim::TraceRecorder trace;

  /// Fault-injection accounting (all defaults when no plan was armed).
  faults::FaultReport faults;

  /// Explored-schedule record (populated only under an ExploreStrategy).
  ScheduleRecord schedule;

  /// Metrics / spans / placement audit (populated when
  /// RuntimeOptions::record_observability; null otherwise). Shared so the
  /// scheduler's pointer into it stays valid across report moves.
  std::shared_ptr<obs::RunObservability> obs;

  /// Fraction of kernel `k`'s items executed by `device`. Returns 0 when the
  /// kernel executed no items at all.
  double partition_fraction(hw::DeviceId device, KernelId kernel) const;

  /// Fraction of ALL items (across kernels) executed by `device` — the
  /// paper's per-application partitioning ratio.
  double overall_fraction(hw::DeviceId device) const;

  double makespan_ms() const { return to_millis(makespan); }
};

/// Serializes the report (minus the trace) as a JSON object — the
/// machine-readable form for downstream tooling (`hetsched_cli run
/// --json`). Kernel names resolve item counts to readable keys.
std::string report_to_json(const ExecutionReport& report,
                           const std::vector<KernelDef>& kernels);

}  // namespace hetsched::rt
