#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "hw/platform.hpp"
#include "runtime/kernel.hpp"

/// A Program is the recorded submission stream of an application run: task
/// submissions (kernel + item range, optionally pinned to a device) and
/// taskwait barriers, in program order.
///
/// Applications build a Program once per execution scenario; strategies
/// differ in how they chunk the item space and whether they pin instances
/// (static partitioning) or leave placement to a scheduler (dynamic).
namespace hetsched::rt {

struct SubmitOp {
  KernelId kernel = 0;
  std::int64_t begin = 0;
  std::int64_t end = 0;
  /// Set by static partitioning strategies; dynamic strategies leave unset.
  std::optional<hw::DeviceId> pinned_device;

  std::int64_t items() const { return end - begin; }
};

/// Host-side sequential code between tasks (e.g. a time-stepping loop
/// updating the input grid from the output grid after a taskwait). Runs in
/// host memory in negligible virtual time; its writes invalidate device
/// copies, so devices re-fetch the data — this is what makes per-iteration
/// applications (HotSpot, Nbody) pay transfers every iteration.
struct HostOp {
  std::vector<mem::RegionAccess> accesses;
  std::function<void()> body;  ///< optional functional work (pointer swap)
};

struct ProgramOp {
  enum class Kind { kSubmit, kTaskwait, kHostOp } kind = Kind::kSubmit;
  SubmitOp submit;  // valid when kind == kSubmit
  HostOp host;      // valid when kind == kHostOp
};

class Program {
 public:
  /// Submits one task instance covering items [begin, end).
  Program& submit(KernelId kernel, std::int64_t begin, std::int64_t end,
                  std::optional<hw::DeviceId> pinned_device = std::nullopt) {
    HS_REQUIRE(begin <= end, "submit with inverted range [" << begin << ", "
                                                            << end << ")");
    if (begin == end) return *this;  // empty partitions are legal no-ops
    ProgramOp op;
    op.kind = ProgramOp::Kind::kSubmit;
    op.submit = SubmitOp{kernel, begin, end, pinned_device};
    ops_.push_back(op);
    return *this;
  }

  /// Splits [begin, end) into `chunks` nearly equal task instances — the
  /// dynamic-partitioning submission pattern (task size = n / m).
  Program& submit_chunked(KernelId kernel, std::int64_t begin,
                          std::int64_t end, int chunks) {
    HS_REQUIRE(chunks >= 1, "submit_chunked with chunks=" << chunks);
    const std::int64_t n = end - begin;
    for (int c = 0; c < chunks; ++c) {
      const std::int64_t lo = begin + n * c / chunks;
      const std::int64_t hi = begin + n * (c + 1) / chunks;
      submit(kernel, lo, hi);
    }
    return *this;
  }

  /// Inserts a global synchronization point: all previously submitted tasks
  /// complete and all device-resident data is flushed to the host.
  Program& taskwait() {
    ProgramOp op;
    op.kind = ProgramOp::Kind::kTaskwait;
    ops_.push_back(op);
    return *this;
  }

  /// Inserts host-side sequential code with the given data accesses.
  Program& host_op(std::vector<mem::RegionAccess> accesses,
                   std::function<void()> body = nullptr) {
    ProgramOp op;
    op.kind = ProgramOp::Kind::kHostOp;
    op.host = HostOp{std::move(accesses), std::move(body)};
    ops_.push_back(op);
    return *this;
  }

  const std::vector<ProgramOp>& ops() const { return ops_; }

  std::size_t task_count() const {
    std::size_t count = 0;
    for (const auto& op : ops_)
      if (op.kind == ProgramOp::Kind::kSubmit) ++count;
    return count;
  }

  std::size_t taskwait_count() const {
    std::size_t count = 0;
    for (const auto& op : ops_)
      if (op.kind == ProgramOp::Kind::kTaskwait) ++count;
    return count;
  }

 private:
  std::vector<ProgramOp> ops_;
};

}  // namespace hetsched::rt
