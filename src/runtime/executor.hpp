#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "faults/fault_plan.hpp"
#include "hw/cost_model.hpp"
#include "hw/platform.hpp"
#include "mem/arena.hpp"
#include "mem/coherence.hpp"
#include "runtime/explore.hpp"
#include "runtime/kernel.hpp"
#include "runtime/program.hpp"
#include "runtime/report.hpp"
#include "runtime/scheduler.hpp"

/// The task-instance executor: an OmpSs-like runtime whose stopwatch is a
/// discrete-event simulation.
///
/// Execution semantics:
///  - Devices: the host CPU exposes one execution lane per hardware thread
///    (SMP threads); each accelerator exposes one in-order lane (command
///    queue). A lane runs one task instance at a time.
///  - Before an instance computes on device D, the runtime acquires its
///    input regions in D's memory space; missing ranges are copied over the
///    host<->device link, which serializes transfers FIFO. Writes make D the
///    only valid holder (invalidation), so consumers elsewhere pull the data
///    back on demand.
///  - `taskwait` barriers wait for all preceding tasks and flush every
///    device-resident byte back to the host (the OmpSs memory-model flush).
///  - Placement: pinned instances go straight to their device's queue
///    (static partitioning); unpinned instances are offered to the
///    Scheduler (dynamic partitioning), push- or pull-style.
///  - Functional execution: if a kernel has a body, it runs on host data at
///    dispatch time. Dispatch order respects dependencies, so results are
///    real and test-checkable; timing is virtual throughout.
namespace hetsched::rt {

struct RuntimeCosts {
  /// Host-side cost to create one task instance (dependence analysis etc.).
  SimTime task_creation = 1 * kMicrosecond;
  /// Per-dispatch bookkeeping on the worker lane (queue pop, set-up).
  SimTime dispatch_overhead = 2 * kMicrosecond;
  /// Barrier bookkeeping on top of the flush transfers.
  SimTime taskwait_overhead = 5 * kMicrosecond;
};

struct RuntimeOptions {
  /// Run kernel bodies on host data (disable for timing-only benches with
  /// data sets too large to materialize).
  bool functional_execution = true;
  /// Record a full timeline into ExecutionReport::trace.
  bool record_trace = false;
  /// Enforce each accelerator's memory capacity: before a task's inputs
  /// are staged, least-recently-used buffers not referenced by the task
  /// are evicted (dirty ranges flushed home, copies dropped) until the
  /// working set fits. A single task whose own working set exceeds the
  /// device memory throws StateError. Off by default — the paper's
  /// workloads fit the K20m's 5 GB.
  bool enforce_memory_capacity = false;
  /// Record metrics, chunk-lifecycle spans, and the placement audit into
  /// ExecutionReport::obs (src/obs). Deterministic — virtual time only —
  /// and near-zero-cost when off: the runtime carries a null pointer and
  /// pays one branch per instrumentation site.
  bool record_observability = false;
};

/// Trivial pull scheduler: first ready task that the idle device supports.
/// Used for fully pinned (static) programs, where it only ever sees
/// pre-placed work, and as the simplest dynamic baseline.
class FifoScheduler final : public Scheduler {
 public:
  std::string name() const override { return "fifo"; }
};

class Executor {
 public:
  explicit Executor(hw::PlatformSpec platform, RuntimeCosts costs = {},
                    RuntimeOptions options = {});

  /// Registers a data buffer; returns its id. Initial contents are valid in
  /// host memory.
  mem::BufferId register_buffer(std::string name, std::int64_t size_bytes);

  /// Registers a kernel; returns its id.
  KernelId register_kernel(KernelDef def);

  const std::vector<KernelDef>& kernels() const { return kernels_; }
  const hw::PlatformSpec& platform() const { return platform_; }
  const hw::RooflineCostModel& cost_model() const { return cost_model_; }
  const RuntimeCosts& costs() const { return costs_; }

  /// Arms a fault plan for subsequent execute() calls (nullopt disarms).
  /// The plan is validated against this executor's platform. Faulted runs
  /// are exactly as deterministic as fault-free ones: the plan is plain
  /// data, and every perturbation is pure arithmetic over it.
  void set_fault_plan(std::optional<faults::FaultPlan> plan) {
    if (plan) plan->validate(platform_.device_count());
    fault_plan_ = std::move(plan);
  }
  const std::optional<faults::FaultPlan>& fault_plan() const {
    return fault_plan_;
  }

  /// Arms a schedule-exploration strategy for subsequent execute() calls
  /// (nullptr disarms). Not owned; the caller scopes it around one
  /// execution (fresh strategy per run — see runtime/explore.hpp). While
  /// armed, the run's benign tie-breaks become the strategy's decision
  /// sites and the report carries a ScheduleRecord.
  void set_explore(ExploreStrategy* strategy) { explore_ = strategy; }
  ExploreStrategy* explore() const { return explore_; }

  /// Executes `program` to completion under `scheduler`, in virtual time.
  /// May be called repeatedly; each call starts from a fresh memory state
  /// (all buffers valid on host), modelling a fresh application run.
  ExecutionReport execute(const Program& program, Scheduler& scheduler);

  /// Executes a fully pinned program (static partitioning) — every task must
  /// carry a pinned device.
  ExecutionReport execute_pinned(const Program& program);

 private:
  hw::PlatformSpec platform_;
  RuntimeCosts costs_;
  RuntimeOptions options_;
  hw::RooflineCostModel cost_model_;

  std::vector<KernelDef> kernels_;
  std::optional<faults::FaultPlan> fault_plan_;
  ExploreStrategy* explore_ = nullptr;
  struct BufferInfo {
    std::string name;
    std::int64_t size_bytes;
  };
  std::vector<BufferInfo> buffers_;
  /// Bump allocator for each run's flat bookkeeping arrays (dependency
  /// counts, completion flags, in-flight slots, ...). Reset at the start of
  /// every execute(), so repeated runs on one executor — the sweep's
  /// strategy loops — reuse the same resident blocks instead of paying the
  /// general-purpose allocator per run.
  mem::Arena run_arena_;
};

}  // namespace hetsched::rt
