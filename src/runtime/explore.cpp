#include "runtime/explore.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace hetsched::rt {

namespace {

/// SplitMix64 step — the same stream the common Rng seeds itself from.
/// Self-contained here so a strategy is a pure value: state in, pick out.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

const char* explore_mode_name(ExploreMode mode) {
  switch (mode) {
    case ExploreMode::kNone: return "none";
    case ExploreMode::kRandom: return "random";
    case ExploreMode::kFair: return "fair";
    case ExploreMode::kDfs: return "dfs";
    case ExploreMode::kReplay: return "replay";
  }
  return "none";
}

ExploreMode explore_mode_from_name(const std::string& name) {
  if (name == "none") return ExploreMode::kNone;
  if (name == "random") return ExploreMode::kRandom;
  if (name == "fair") return ExploreMode::kFair;
  if (name == "dfs") return ExploreMode::kDfs;
  if (name == "replay") return ExploreMode::kReplay;
  throw InvalidArgument("unknown explore mode '" + name +
                        "' (expected none|random|fair|dfs|replay)");
}

json::Value ExploreSpec::to_json() const {
  json::Value decisions_json{json::Value::Array{}};
  for (const std::uint32_t d : decisions)
    decisions_json.push_back(json::Value(static_cast<std::int64_t>(d)));
  json::Value value;
  value.set("mode", json::Value(explore_mode_name(mode)));
  // Full uint64; a JSON double only carries 53 bits, so decimal string.
  value.set("seed", json::Value(std::to_string(seed)));
  value.set("schedule", json::Value(static_cast<std::int64_t>(schedule)));
  value.set("dfs_branch_bound",
            json::Value(static_cast<std::int64_t>(dfs_branch_bound)));
  value.set("decisions", std::move(decisions_json));
  return value;
}

ExploreSpec ExploreSpec::from_json(const json::Value& value) {
  ExploreSpec out;
  out.mode = explore_mode_from_name(value.at("mode").as_string());
  try {
    out.seed = std::stoull(value.at("seed").as_string());
  } catch (const std::exception&) {
    throw InvalidArgument("explore seed is not a decimal uint64");
  }
  out.schedule = static_cast<int>(value.at("schedule").as_int64());
  HS_REQUIRE(out.schedule >= 0, "explore schedule index must be >= 0");
  out.dfs_branch_bound =
      static_cast<int>(value.at("dfs_branch_bound").as_int64());
  HS_REQUIRE(out.dfs_branch_bound >= 2,
             "dfs_branch_bound must be >= 2, got " << out.dfs_branch_bound);
  for (const json::Value& d : value.at("decisions").as_array()) {
    const std::int64_t raw = d.as_int64();
    HS_REQUIRE(raw >= 0, "negative decision " << raw);
    out.decisions.push_back(static_cast<std::uint32_t>(raw));
  }
  return out;
}

ExploreStrategy::ExploreStrategy(ExploreSpec spec) : spec_(std::move(spec)) {
  HS_REQUIRE(spec_.active(), "ExploreStrategy needs an active spec");
  HS_REQUIRE(spec_.schedule >= 0,
             "explore schedule index must be >= 0, got " << spec_.schedule);
  HS_REQUIRE(spec_.dfs_branch_bound >= 2,
             "dfs_branch_bound must be >= 2, got " << spec_.dfs_branch_bound);
  // One stream per (seed, schedule): schedule k of a probe explores a
  // different-but-reproducible trajectory than schedule k+1.
  rng_state_ = spec_.seed ^
               (0x9e3779b97f4a7c15ull *
                (static_cast<std::uint64_t>(spec_.schedule) + 1));
}

std::size_t ExploreStrategy::pick(std::size_t n) {
  if (n <= 1) return 0;  // not a decision site: nothing to choose
  std::size_t choice = 0;
  switch (spec_.mode) {
    case ExploreMode::kNone:
      break;
    case ExploreMode::kRandom:
      choice = static_cast<std::size_t>(splitmix64(rng_state_) %
                                        static_cast<std::uint64_t>(n));
      break;
    case ExploreMode::kFair:
      // Round-robin: rotate the canonical order by the schedule index and
      // keep rotating as sites accumulate, so every alternative gets its
      // turn at the head across the fan-out.
      choice = (site_ + static_cast<std::size_t>(spec_.schedule)) % n;
      break;
    case ExploreMode::kDfs: {
      // TLA-style bounded enumeration: the schedule index, written in base
      // B (the branch bound), spells out the choices at the first decision
      // sites — least-significant digit first — and every later site takes
      // the canonical alternative. Schedule 0 is the canonical schedule;
      // K schedules cover all choice prefixes of depth log_B(K).
      const auto base =
          static_cast<std::uint64_t>(spec_.dfs_branch_bound);
      std::uint64_t rem = static_cast<std::uint64_t>(spec_.schedule);
      for (std::size_t i = 0; i < site_ && rem > 0; ++i) rem /= base;
      choice = static_cast<std::size_t>(rem % base);
      break;
    }
    case ExploreMode::kReplay:
      choice = site_ < spec_.decisions.size()
                   ? static_cast<std::size_t>(spec_.decisions[site_])
                   : 0;  // beyond the recorded string: canonical
      break;
  }
  choice = std::min(choice, n - 1);
  recorded_.push_back(static_cast<std::uint32_t>(choice));
  ++site_;
  return choice;
}

}  // namespace hetsched::rt
