#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "mem/region.hpp"
#include "runtime/kernel.hpp"
#include "runtime/program.hpp"

/// Task-instance dependency graph.
///
/// Built from a Program's submission stream by region-overlap analysis, the
/// way the OmpSs runtime derives its task dependency graph from `in`/`out`/
/// `inout` clauses:
///   - RAW: a reader depends on every earlier writer of an overlapping range
///   - WAW: a writer depends on every earlier writer of an overlapping range
///   - WAR: a writer depends on every earlier reader-since-last-write of an
///          overlapping range
/// `taskwait` inserts a barrier node: it depends on everything submitted
/// since the previous barrier, and everything after depends on it.
namespace hetsched::rt {

using TaskId = std::size_t;

struct TaskNode {
  TaskId id = 0;
  bool is_barrier = false;
  bool is_host_op = false;
  std::function<void()> host_body;  ///< valid for host-op nodes

  // Valid for kernel-task nodes:
  KernelId kernel = 0;
  std::int64_t begin = 0;
  std::int64_t end = 0;
  std::optional<hw::DeviceId> pinned_device;
  std::vector<mem::RegionAccess> accesses;

  std::vector<TaskId> successors;
  std::size_t predecessor_count = 0;

  /// Parallel to `accesses`: true for a write access whose *next* conflicting
  /// use in program order is host-side (a host op or a barrier) rather than
  /// another kernel task. Such regions are final outputs as far as the
  /// devices are concerned; the executor writes them back to the host as
  /// soon as the task completes, overlapping the copy with remaining
  /// compute (the asynchronous write-back of OmpSs-era runtimes). Regions
  /// that a later kernel will read or rewrite stay resident instead.
  std::vector<bool> writeback_eligible;

  std::int64_t items() const { return end - begin; }
};

class TaskGraph {
 public:
  /// `kernels[k]` must be the definition for KernelId k referenced by the
  /// program. Throws InvalidArgument on out-of-range kernel ids.
  TaskGraph(const std::vector<KernelDef>& kernels, const Program& program);

  const std::vector<TaskNode>& nodes() const { return nodes_; }
  const TaskNode& node(TaskId id) const { return nodes_[id]; }
  std::size_t size() const { return nodes_.size(); }

  /// Tasks with no predecessors, in submission order.
  std::vector<TaskId> initial_ready() const;

  std::size_t edge_count() const { return edge_count_; }

  /// Structural invariant: every edge points forward in submission order
  /// (which guarantees acyclicity). Throws InternalError on violation.
  void check_acyclic() const;

 private:
  void add_edge(TaskId from, TaskId to);
  void analyze_writeback();

  std::vector<TaskNode> nodes_;
  std::size_t edge_count_ = 0;
};

}  // namespace hetsched::rt
