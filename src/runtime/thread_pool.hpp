#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

/// Real (wall-clock) worker-thread pool.
///
/// The simulator gives the library its reproducible timing; this pool gives
/// it genuine parallel host execution, used by examples and by applications
/// that want to run their CPU task instances concurrently (the OmpSs "team
/// of SMP threads" execution model). Tasks are closures; `wait_idle` is the
/// `taskwait` analogue and rethrows the first exception any task raised.
namespace hetsched::rt {

class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to the hardware concurrency, minimum
  /// one).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueues one task. Never blocks.
  void enqueue(std::function<void()> task);

  /// Blocks until every enqueued task has finished; rethrows the first
  /// exception raised by any task since the last wait.
  void wait_idle();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;
  std::vector<std::thread> workers_;
};

/// Splits [begin, end) into chunks of at most `grain` items and runs `body`
/// on them concurrently. Blocks until all chunks complete.
void parallel_for(ThreadPool& pool, std::int64_t begin, std::int64_t end,
                  std::int64_t grain,
                  const std::function<void(std::int64_t, std::int64_t)>& body);

}  // namespace hetsched::rt
