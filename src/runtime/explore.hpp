#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hpp"

/// Schedule-space exploration: the executor's benign nondeterminism —
/// ready-queue tie-breaking, equal-timestamp event ordering, fault-detection
/// latency — exposed as a first-class, controllable axis.
///
/// A simulation normally resolves every such tie canonically (FIFO queues,
/// scheduling-order events, instant fault detection), so one probe input
/// executes exactly one schedule. An ExploreStrategy instead makes each tie
/// an explicit *decision site*: the runtime asks `pick(n)` which of the n
/// legal alternatives to take, and records the chosen index. The recorded
/// decision string replays any explored schedule exactly, which is what
/// turns the property-fuzz engine into a bounded schedule-space model
/// checker (lincheck-style Strategy / minimizor architecture).
namespace hetsched::rt {

enum class ExploreMode {
  kNone,    ///< canonical schedule, no decision sites consulted
  kRandom,  ///< seeded-random pick at every site
  kFair,    ///< round-robin rotation: site i of schedule k picks (i+k)%n
  kDfs,     ///< bounded DFS: schedule index enumerates choice prefixes
  kReplay,  ///< replay a recorded decision string verbatim
};

const char* explore_mode_name(ExploreMode mode);
/// Throws InvalidArgument on an unknown name.
ExploreMode explore_mode_from_name(const std::string& name);

/// Plain-data description of one explored schedule: (mode, seed, schedule
/// index) for the generative strategies, plus the decision string for
/// replay. Pure data — two strategies built from equal specs make identical
/// picks, which is the determinism contract the oracles check.
struct ExploreSpec {
  ExploreMode mode = ExploreMode::kNone;
  /// Probe seed the schedule belongs to (seeds the random strategy).
  std::uint64_t seed = 0;
  /// Schedule index k within the fan-out (0 = first explored schedule).
  int schedule = 0;
  /// DFS branching bound B: how many alternatives a DFS digit can select
  /// at one decision site (choices beyond B-1 are reachable only through
  /// clamping at narrower sites).
  int dfs_branch_bound = 3;
  /// Recorded choices for kReplay (ignored by the generative modes).
  std::vector<std::uint32_t> decisions;

  bool active() const { return mode != ExploreMode::kNone; }

  /// Repro serialization ({mode, seed, schedule, decisions}).
  json::Value to_json() const;
  static ExploreSpec from_json(const json::Value& value);
};

/// One execution's schedule controller. Instantiate fresh per run: picks
/// are a pure function of (spec, call sequence), so a fresh instance per
/// execution is what makes explored runs replayable and byte-deterministic.
class ExploreStrategy {
 public:
  explicit ExploreStrategy(ExploreSpec spec);

  /// Chooses one of `n` legal alternatives (n >= 1) at the next decision
  /// site and records the choice. Returns a value in [0, n).
  std::size_t pick(std::size_t n);

  /// Every choice made so far, in decision-site order — the schedule's
  /// replayable decision string.
  const std::vector<std::uint32_t>& decisions() const { return recorded_; }
  const ExploreSpec& spec() const { return spec_; }

 private:
  ExploreSpec spec_;
  std::size_t site_ = 0;
  std::uint64_t rng_state_ = 0;  ///< splitmix64 stream for kRandom
  std::vector<std::uint32_t> recorded_;
};

}  // namespace hetsched::rt
