#pragma once

#include "runtime/scheduler.hpp"

/// Work-stealing variant of the breadth-first scheduler.
///
/// The paper's DP-Dep never moves a task off its dependency chain's device:
/// it minimizes transfers but leaves a fast device idle once its own work
/// is done (the MatrixMul pathology: the GPU gets one of twelve instances
/// and then watches the CPU grind). This scheduler relaxes exactly that
/// rule: an idle lane that finds neither local-chain nor fresh work STEALS
/// a task bound to another device's chain, accepting the transfer.
///
/// Still performance-blind — it cannot tell whether a steal pays off, only
/// that idling earns nothing. bench/ablation_scheduler quantifies where
/// stealing helps (compute-imbalanced workloads) and where it hurts
/// (transfer-bound chains), explaining why the paper's ranking needs the
/// performance-aware policy rather than mere stealing.
namespace hetsched::rt {

class WorkStealingScheduler final : public Scheduler {
 public:
  explicit WorkStealingScheduler(SimTime decision_cost = 1 * kMicrosecond)
      : decision_cost_(decision_cost) {}

  std::string name() const override { return "work-stealing"; }
  SimTime decision_cost() const override { return decision_cost_; }

  std::optional<std::size_t> pick(hw::DeviceId device,
                                  const std::vector<SchedTask>& pool,
                                  SimTime now) override {
    (void)now;
    std::optional<std::size_t> no_affinity;
    std::optional<std::size_t> foreign;
    for (std::size_t i = 0; i < pool.size(); ++i) {
      if (!pool[i].runs_on(device)) continue;
      if (pool[i].locality == device) return i;
      if (!pool[i].locality) {
        if (!no_affinity) no_affinity = i;
      } else if (!foreign) {
        foreign = i;
      }
    }
    if (no_affinity) return no_affinity;
    if (foreign) ++steals_;
    return foreign;
  }

  /// Number of cross-chain steals performed so far.
  std::size_t steal_count() const { return steals_; }

 private:
  SimTime decision_cost_;
  std::size_t steals_ = 0;
};

}  // namespace hetsched::rt
