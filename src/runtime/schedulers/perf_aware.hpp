#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "obs/observability.hpp"
#include "runtime/scheduler.hpp"

/// Performance-aware scheduler — the substrate of the paper's DP-Perf
/// strategy (the OmpSs "versioning" scheduler of Planas et al. [20]).
///
/// For each (kernel, device) pair the scheduler keeps an estimate of the
/// device's task-instance throughput, seeded by a profiling phase (the paper
/// gives each device 3 task instances) and refined with an exponential
/// moving average as instances complete. A ready task is pushed to the
/// device with the earliest estimated finish time, accounting for work
/// already queued on each lane.
///
/// By default the estimate is built from observed *task occupancy* — the
/// dispatch-to-completion latency including transfer waits, which is what a
/// runtime scheduler can actually measure. An ablation knob switches to
/// compute-only estimates (transfers invisible), which exaggerates the
/// paper's observation that DP-Perf "overestimates the GPU capability" on
/// transfer-heavy kernels; even with occupancy-based estimates the greedy
/// earliest-finish placement over a short task stream overshoots the
/// optimal GPU share (it commits to the fast device until its backlog
/// exceeds one CPU-lane instance), reproducing Section IV-B1.
///
/// Probe-and-forgive: after a divergence drain benches a device, every
/// `probe_every` completions elsewhere the scheduler asks the executor for
/// one probe chunk to the benched device. When that chunk completes, the
/// poisoned (kernel, device) estimate is dropped and re-seeded from the
/// fresh observation — so a *transient* slowdown costs a few probes, and
/// once the perturbation ends the device wins its work share back instead
/// of starving forever (the ROADMAP's 10x-degradation item).
namespace hetsched::rt {

class PerfAwareScheduler final : public Scheduler {
 public:
  explicit PerfAwareScheduler(SimTime decision_cost = 5 * kMicrosecond,
                              double ema_alpha = 0.5,
                              bool compute_only_estimates = false,
                              double locality_margin = 1.0,
                              int probe_every = 4)
      : decision_cost_(decision_cost),
        ema_alpha_(ema_alpha),
        compute_only_estimates_(compute_only_estimates),
        locality_margin_(locality_margin),
        probe_every_(probe_every) {
    HS_REQUIRE(probe_every > 0, "probe_every=" << probe_every);
  }

  std::string name() const override { return "perf-aware"; }
  SimTime decision_cost() const override { return decision_cost_; }

  /// Seeds the (kernel, device) throughput estimate, in items/second of one
  /// lane — the output of the profiling phase. Strategies measure this by
  /// running a few small instances per device and reading the observed
  /// execution times (see strategies/dp_perf).
  void seed_estimate(KernelId kernel, hw::DeviceId device,
                     double items_per_second) {
    HS_REQUIRE(items_per_second > 0.0,
               "seed_estimate rate " << items_per_second);
    estimate(kernel, device).add(items_per_second);
  }

  bool has_estimate(KernelId kernel, hw::DeviceId device) const {
    auto it = estimates_.find({kernel, device});
    return it != estimates_.end() && it->second.has_value();
  }

  void begin_run(const hw::PlatformSpec& platform,
                 const std::vector<KernelDef>& kernels) override {
    lane_available_.clear();
    for (const hw::DeviceSpec& device : platform.all_devices())
      lane_available_.emplace_back(device.lanes, 0);
    const std::size_t n = platform.all_devices().size();
    dead_.assign(n, false);
    diverged_.assign(n, false);
    probe_outstanding_.assign(n, false);
    completions_since_probe_.assign(n, 0);
    round_robin_ = 0;
    device_names_.clear();
    for (const hw::DeviceSpec& device : platform.all_devices())
      device_names_.push_back(device.name);
    kernel_names_.clear();
    for (const KernelDef& kernel : kernels) kernel_names_.push_back(kernel.name);
    ema_keys_.clear();
  }

  std::optional<hw::DeviceId> on_ready(const SchedTask& task,
                                       SimTime now) override {
    std::optional<hw::DeviceId> best;
    SimTime best_finish = 0;
    bool missing_estimate = false;
    std::vector<obs::PlacementEstimate> compared;

    for (hw::DeviceId d = 0; d < lane_available_.size(); ++d) {
      if (dead_[d] || !task.runs_on(d)) continue;
      if (!has_estimate(task.kernel, d)) {
        missing_estimate = true;
        continue;
      }
      const SimTime finish = estimated_finish(task, d, now);
      if (obs_)
        compared.push_back({device_name(d), to_millis(finish),
                            estimated_rate(task.kernel, d)});
      if (!best || finish < best_finish) {
        best = d;
        best_finish = finish;
      }
    }

    // Online profiling fallback: while some runnable device has no estimate
    // yet, explore devices round-robin so each learns its speed (the paper's
    // "each device gets 3 task instances" phase, when no offline profiling
    // seeded the estimates).
    if (missing_estimate) {
      for (std::size_t step = 0; step < lane_available_.size(); ++step) {
        const hw::DeviceId d = (round_robin_ + step) % lane_available_.size();
        if (!dead_[d] && task.runs_on(d) && !has_estimate(task.kernel, d)) {
          round_robin_ = d + 1;
          record_placement(task, d, "explore", now, std::move(compared));
          commit(task, d, now);
          return d;
        }
      }
    }

    // Every surviving device lacks support: decline and let the task sit in
    // the pool (with fault injection, a device the task runs on may be dead).
    if (!best) return std::nullopt;

    // Locality-aware tie-breaking: the estimates cannot see the transfers a
    // cross-device placement incurs, so when the task's data already lives
    // on some device and that device's estimated finish is within the
    // margin of the best, keep the chain local (the versioning scheduler's
    // affinity heuristic).
    bool locality_won = false;
    if (task.locality && *task.locality != *best &&
        !dead_[*task.locality] && task.runs_on(*task.locality) &&
        has_estimate(task.kernel, *task.locality)) {
      const SimTime local_finish =
          estimated_finish(task, *task.locality, now);
      if (static_cast<double>(local_finish) <=
          (1.0 + locality_margin_) * static_cast<double>(best_finish)) {
        best = *task.locality;
        locality_won = true;
      }
    }

    record_placement(task, *best, locality_won ? "locality" : "earliest-finish",
                     now, std::move(compared));
    commit(task, *best, now);
    return best;
  }

  void on_device_failed(hw::DeviceId device, SimTime now) override {
    (void)now;
    if (device < dead_.size()) {
      dead_[device] = true;
      diverged_[device] = false;
      probe_outstanding_[device] = false;
    }
  }

  void on_divergence(hw::DeviceId device, SimTime busy_until,
                     SimTime now) override {
    (void)now;
    // The device is slower than the estimates believed: sync the committed
    // backlog with what its lanes actually have left, so earliest-finish
    // placement routes the re-offered work elsewhere until the EMA catches
    // up with the perturbed speed.
    if (device >= lane_available_.size()) return;
    for (SimTime& t : lane_available_[device]) t = std::max(t, busy_until);
    // Bench the device; probes start once enough completions land elsewhere.
    diverged_[device] = true;
    completions_since_probe_[device] = 0;
  }

  void on_complete(const SchedTask& task, hw::DeviceId device,
                   SimTime compute_time, SimTime occupancy_time,
                   SimTime now) override {
    if (task.items <= 0) return;
    const SimTime observed =
        compute_only_estimates_ ? compute_time : occupancy_time;
    const double seconds = to_seconds(std::max<SimTime>(observed, 1));
    const double rate = static_cast<double>(task.items) / seconds;
    Ema& ema = estimate(task.kernel, device);
    if (device < diverged_.size() && diverged_[device]) {
      // Forgive: drop the poisoned history and re-seed from this fresh
      // observation; also re-sync the backlog picture (the divergence drain
      // emptied the device's queue, so its lanes are free from here on).
      // If the device is still perturbed, the executor's divergence check
      // on this same completion benches it again.
      ema.reset();
      ema.add(rate);
      for (SimTime& t : lane_available_[device]) t = std::min(t, now);
      diverged_[device] = false;
      probe_outstanding_[device] = false;
      if (obs_) obs_->metrics.counter_add("ema_reseeds", 1);
    } else {
      ema.add(rate);
    }
    // Completions elsewhere advance each benched device toward its next
    // probe.
    for (hw::DeviceId d = 0; d < diverged_.size(); ++d)
      if (d != device && diverged_[d]) ++completions_since_probe_[d];
    if (obs_)
      obs_->metrics.track_set(ema_key(task.kernel, device), now, ema.value());
  }

  std::optional<hw::DeviceId> probe_request(SimTime now) override {
    (void)now;
    for (hw::DeviceId d = 0; d < diverged_.size(); ++d) {
      if (diverged_[d] && !dead_[d] && !probe_outstanding_[d] &&
          completions_since_probe_[d] >= probe_every_)
        return d;
    }
    return std::nullopt;
  }

  void on_probe_dispatched(hw::DeviceId device, SimTime now) override {
    (void)now;
    if (device >= probe_outstanding_.size()) return;
    probe_outstanding_[device] = true;
    completions_since_probe_[device] = 0;
  }

  void on_flush(const SchedTask& task, hw::DeviceId device, SimTime duration,
                SimTime now) override {
    (void)now;
    if (task.items <= 0 || compute_only_estimates_) return;
    // The synchronization bill: flushing this instance's output cost
    // `duration` of link time. Learned per item and added to future
    // duration estimates for the device.
    auto [it, inserted] = flush_penalty_.try_emplace(
        std::make_pair(task.kernel, device), Ema{ema_alpha_});
    it->second.add(to_seconds(duration) / static_cast<double>(task.items));
  }

  /// Estimated lane-rate (items/s) for a pair; 0 when unknown.
  double estimated_rate(KernelId kernel, hw::DeviceId device) const {
    auto it = estimates_.find({kernel, device});
    return it == estimates_.end() || !it->second.has_value()
               ? 0.0
               : it->second.value();
  }

 private:
  Ema& estimate(KernelId kernel, hw::DeviceId device) {
    auto [it, inserted] =
        estimates_.try_emplace({kernel, device}, Ema{ema_alpha_});
    return it->second;
  }

  const std::string& device_name(hw::DeviceId device) const {
    static const std::string unknown = "?";
    return device < device_names_.size() ? device_names_[device] : unknown;
  }

  const std::string& kernel_name(KernelId kernel) const {
    static const std::string unknown = "?";
    return kernel < kernel_names_.size() ? kernel_names_[kernel] : unknown;
  }

  const std::string& ema_key(KernelId kernel, hw::DeviceId device) {
    auto [it, inserted] = ema_keys_.try_emplace({kernel, device});
    if (inserted) {
      it->second =
          obs::metric_key("ema_items_per_s", {{"kernel", kernel_name(kernel)},
                                              {"device", device_name(device)}});
    }
    return it->second;
  }

  void record_placement(const SchedTask& task, hw::DeviceId chosen,
                        const char* reason, SimTime now,
                        std::vector<obs::PlacementEstimate> compared) {
    if (obs_ == nullptr) return;
    obs::PlacementRecord record;
    record.task = task.id;
    record.kernel = kernel_name(task.kernel);
    record.device = device_name(chosen);
    record.reason = reason;
    record.time = now;
    record.estimates = std::move(compared);
    obs_->audit.add(std::move(record));
  }

  SimTime estimated_duration(const SchedTask& task, hw::DeviceId d) const {
    const double rate = estimated_rate(task.kernel, d);
    HS_ASSERT_MSG(rate > 0.0, "estimated_duration without an estimate");
    double seconds = static_cast<double>(task.items) / rate;
    auto it = flush_penalty_.find({task.kernel, d});
    if (it != flush_penalty_.end() && it->second.has_value())
      seconds += static_cast<double>(task.items) * it->second.value();
    return from_seconds(seconds);
  }

  SimTime estimated_finish(const SchedTask& task, hw::DeviceId d,
                           SimTime now) const {
    SimTime earliest = lane_available_[d][0];
    for (SimTime t : lane_available_[d]) earliest = std::min(earliest, t);
    return std::max(now, earliest) + estimated_duration(task, d);
  }

  void commit(const SchedTask& task, hw::DeviceId d, SimTime now) {
    auto& lanes = lane_available_[d];
    std::size_t slot = 0;
    for (std::size_t i = 1; i < lanes.size(); ++i)
      if (lanes[i] < lanes[slot]) slot = i;
    const SimTime start = std::max(now, lanes[slot]);
    const SimTime duration = has_estimate(task.kernel, d)
                                 ? estimated_duration(task, d)
                                 : 0;  // exploring: no basis for a duration
    lanes[slot] = start + duration;
  }

  SimTime decision_cost_;
  double ema_alpha_;
  bool compute_only_estimates_;
  double locality_margin_;
  int probe_every_;
  std::map<std::pair<KernelId, hw::DeviceId>, Ema> estimates_;
  std::map<std::pair<KernelId, hw::DeviceId>, Ema> flush_penalty_;
  std::vector<std::vector<SimTime>> lane_available_;
  std::vector<bool> dead_;
  std::size_t round_robin_ = 0;

  /// Probe-and-forgive state (all reset in begin_run).
  std::vector<bool> diverged_;
  std::vector<bool> probe_outstanding_;
  std::vector<int> completions_since_probe_;

  /// Observability label caches.
  std::vector<std::string> device_names_;
  std::vector<std::string> kernel_names_;
  std::map<std::pair<KernelId, hw::DeviceId>, std::string> ema_keys_;
};

}  // namespace hetsched::rt
