#pragma once

#include "runtime/scheduler.hpp"

/// Breadth-first / locality scheduler — the substrate of the paper's DP-Dep
/// strategy (OmpSs' default breadth-first scheduler with dependency-chain
/// affinity).
///
/// Placement is pull-style and performance-blind: every idle lane, CPU
/// thread or GPU queue alike, claims the next compatible ready task. The
/// only preference is data locality: a task whose inputs were produced on
/// device D is handed to D's lanes first, keeping dependency chains on one
/// device and minimizing transfers (the paper's Section III-C description).
///
/// Because the scheduler cannot tell a GPU lane from a CPU thread, a
/// 12-instance single-kernel application on a 12-thread CPU + 1 GPU platform
/// ends up with exactly one instance on the GPU — the workload imbalance the
/// paper reports for DP-Dep on MatrixMul.
namespace hetsched::rt {

class BreadthFirstScheduler final : public Scheduler {
 public:
  explicit BreadthFirstScheduler(SimTime decision_cost = 1 * kMicrosecond)
      : decision_cost_(decision_cost) {}

  std::string name() const override { return "breadth-first"; }
  SimTime decision_cost() const override { return decision_cost_; }

  std::optional<std::size_t> pick(hw::DeviceId device,
                                  const std::vector<SchedTask>& pool,
                                  SimTime now) override {
    (void)now;
    std::optional<std::size_t> no_affinity;
    for (std::size_t i = 0; i < pool.size(); ++i) {
      if (!pool[i].runs_on(device)) continue;
      if (pool[i].locality == device) return i;  // chain stays local
      if (!pool[i].locality && !no_affinity) no_affinity = i;
    }
    // Fresh (affinity-free) tasks are fair game for any device. Tasks bound
    // to another device's chain are NOT stolen: the scheduler's one goal is
    // minimizing transfers by keeping each dependency chain where its data
    // lives (paper Section III-C), even at the price of idling — it has no
    // performance information to judge whether a steal would pay off.
    return no_affinity;
  }

 private:
  SimTime decision_cost_;
};

}  // namespace hetsched::rt
