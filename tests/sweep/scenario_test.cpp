#include "sweep/scenario.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace hetsched::sweep {
namespace {

TEST(Scenario, LabelAndGroup) {
  Scenario scenario;
  scenario.app = apps::PaperApp::kMatrixMul;
  scenario.strategy = analyzer::StrategyKind::kSPSingle;
  // The reference platform is elided from labels but kept in group names.
  EXPECT_EQ(scenario.label(), "matrixmul/sp-single");
  EXPECT_EQ(scenario.group(), "matrixmul@reference");

  scenario.app = apps::PaperApp::kStreamSeq;
  scenario.strategy = analyzer::StrategyKind::kSPVaried;
  scenario.platform = "small-gpu";
  scenario.sync = true;
  scenario.small = true;
  EXPECT_EQ(scenario.label(), "stream-seq/sp-varied@small-gpu+sync+small");
  EXPECT_EQ(scenario.group(), "stream-seq@small-gpu+sync+small");
}

TEST(Scenario, JsonRoundTrip) {
  Scenario scenario;
  scenario.app = apps::PaperApp::kHotSpot;
  scenario.strategy = analyzer::StrategyKind::kDPDep;
  scenario.platform = "dual-gpu";
  scenario.sync = true;
  scenario.small = true;
  scenario.task_count = 24;
  scenario.costs.dispatch_overhead = 1234;

  const Scenario restored = Scenario::from_json(scenario.to_json());
  EXPECT_EQ(restored.app, scenario.app);
  EXPECT_EQ(restored.strategy, scenario.strategy);
  EXPECT_EQ(restored.platform, scenario.platform);
  EXPECT_EQ(restored.sync, scenario.sync);
  EXPECT_EQ(restored.small, scenario.small);
  EXPECT_EQ(restored.task_count, scenario.task_count);
  EXPECT_EQ(restored.costs.dispatch_overhead, scenario.costs.dispatch_overhead);
  EXPECT_EQ(scenario_key(restored), scenario_key(scenario));
}

TEST(ScenarioKey, ContainsVersionAndPlatformClosure) {
  const std::string key = scenario_key(Scenario{});
  EXPECT_NE(key.find(kSweepCodeVersion), std::string::npos);
  // The full platform spec participates (devices and links).
  EXPECT_NE(key.find("device{"), std::string::npos);
  EXPECT_NE(key.find("link{"), std::string::npos);
}

TEST(ScenarioKey, EveryFieldChangesTheKey) {
  const Scenario base;
  const std::string base_key = scenario_key(base);

  Scenario mutated = base;
  mutated.app = apps::PaperApp::kNbody;
  EXPECT_NE(scenario_key(mutated), base_key);

  mutated = base;
  mutated.strategy = analyzer::StrategyKind::kDPPerf;
  EXPECT_NE(scenario_key(mutated), base_key);

  mutated = base;
  mutated.platform = "small-gpu";
  EXPECT_NE(scenario_key(mutated), base_key);

  mutated = base;
  mutated.sync = true;
  EXPECT_NE(scenario_key(mutated), base_key);

  mutated = base;
  mutated.small = true;
  EXPECT_NE(scenario_key(mutated), base_key);

  mutated = base;
  mutated.task_count = 13;
  EXPECT_NE(scenario_key(mutated), base_key);

  mutated = base;
  mutated.costs.task_creation += 1;
  EXPECT_NE(scenario_key(mutated), base_key);

  mutated = base;
  mutated.costs.dispatch_overhead += 1;
  EXPECT_NE(scenario_key(mutated), base_key);

  mutated = base;
  mutated.costs.taskwait_overhead += 1;
  EXPECT_NE(scenario_key(mutated), base_key);
}

TEST(ScenarioKey, UnknownPlatformThrows) {
  Scenario scenario;
  scenario.platform = "not-a-platform";
  EXPECT_THROW(scenario_key(scenario), InvalidArgument);
}

TEST(Fnv1a, KnownVectors) {
  // Published FNV-1a 64-bit reference values.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST(ScenarioHash, StableHexDigest) {
  const Scenario scenario;
  const std::string digest = scenario_hash(scenario);
  EXPECT_EQ(digest.size(), 16u);
  EXPECT_EQ(digest.find_first_not_of("0123456789abcdef"), std::string::npos);
  EXPECT_EQ(digest, scenario_hash(scenario));  // deterministic
  Scenario other = scenario;
  other.sync = true;
  EXPECT_NE(scenario_hash(other), digest);
}

TEST(EnumerateMatrix, DeterministicCrossProduct) {
  const auto scenarios = enumerate_matrix(
      {apps::PaperApp::kMatrixMul, apps::PaperApp::kNbody},
      {analyzer::StrategyKind::kSPSingle, analyzer::StrategyKind::kOnlyCpu},
      {"reference"}, {false, true}, /*small=*/true);
  ASSERT_EQ(scenarios.size(), 8u);
  // Apps-major order, then strategy, then sync.
  EXPECT_EQ(scenarios[0].label(), "matrixmul/sp-single+small");
  EXPECT_EQ(scenarios[1].label(), "matrixmul/sp-single+sync+small");
  EXPECT_EQ(scenarios[2].label(), "matrixmul/only-cpu+small");
  EXPECT_EQ(scenarios[4].label(), "nbody/sp-single+small");
  for (const Scenario& scenario : scenarios) EXPECT_TRUE(scenario.small);
}

TEST(EnumerateMatrix, DefaultMatrixCoversPaperGrid) {
  // 6 apps x 7 paper strategies x 2 sync variants.
  EXPECT_EQ(default_matrix().size(), 84u);
  EXPECT_EQ(default_matrix(/*small=*/true).size(), 84u);
}

}  // namespace
}  // namespace hetsched::sweep
