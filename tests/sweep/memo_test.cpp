#include "sweep/memo.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "obs/metrics.hpp"
#include "sweep/bench.hpp"
#include "sweep/sweep.hpp"

/// Tests for the in-run scenario memo: single-flight semantics, shared
/// baseline twins, input-list dedup, and the contract that memoized results
/// are byte-identical to the memo-free reference path.
namespace hetsched::sweep {
namespace {

SweepOptions serial_options() {
  SweepOptions options;
  options.parallel = false;
  options.use_cache = false;
  return options;
}

Scenario storm_scenario(std::uint64_t seed) {
  Scenario scenario;
  scenario.app = apps::PaperApp::kMatrixMul;
  scenario.strategy = analyzer::StrategyKind::kDPPerf;
  scenario.small = true;
  scenario.fault_plan = "storm";
  scenario.fault_seed = seed;
  return scenario;
}

Scenario healthy_twin_of(const Scenario& faulted) {
  Scenario healthy = faulted;
  healthy.fault_plan.clear();
  healthy.fault_seed = 0;
  return healthy;
}

TEST(ScenarioMemo, SingleFlightComputesOncePerKey) {
  ScenarioMemo memo;
  std::atomic<int> computes{0};
  std::atomic<int> shared_lookups{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      const ScenarioMemo::Lookup lookup =
          memo.get_or_compute("the-key", [&computes] {
            computes.fetch_add(1);
            ScenarioOutcome outcome;
            outcome.error = "sentinel";
            return outcome;
          });
      EXPECT_EQ(lookup.outcome->error, "sentinel");
      if (lookup.shared) shared_lookups.fetch_add(1);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(computes.load(), 1);
  EXPECT_EQ(shared_lookups.load(), 7);
  EXPECT_EQ(memo.entries(), 1u);
}

TEST(ScenarioMemo, DistinctKeysComputeIndependently) {
  ScenarioMemo memo;
  int computes = 0;
  const auto make = [&computes] {
    ++computes;
    return ScenarioOutcome{};
  };
  EXPECT_FALSE(memo.get_or_compute("a", make).shared);
  EXPECT_FALSE(memo.get_or_compute("b", make).shared);
  EXPECT_TRUE(memo.get_or_compute("a", make).shared);
  EXPECT_EQ(computes, 2);
  EXPECT_EQ(memo.entries(), 2u);
}

TEST(ScenarioMemo, TwinLookupCountersSplitHitsFromComputes) {
  ScenarioMemo memo;
  memo.note_twin_lookup(false);
  memo.note_twin_lookup(true);
  memo.note_twin_lookup(true);
  const MemoCounters counters = memo.counters();
  EXPECT_EQ(counters.twin_computes, 1);
  EXPECT_EQ(counters.twin_hits, 2);
}

// The acceptance bar: S faulted scenarios sharing one healthy twin perform
// exactly one baseline computation.
TEST(SweepMemo, FaultSeedsShareOneBaselineTwin) {
  constexpr int kSeeds = 5;
  std::vector<Scenario> scenarios;
  for (int seed = 1; seed <= kSeeds; ++seed)
    scenarios.push_back(storm_scenario(static_cast<std::uint64_t>(seed)));

  const SweepRun run = SweepEngine(serial_options()).run(scenarios);
  EXPECT_EQ(run.summary.ok, static_cast<std::size_t>(kSeeds));
  EXPECT_EQ(run.summary.twin_computes, 1u);
  EXPECT_EQ(run.summary.twin_memo_hits,
            static_cast<std::size_t>(kSeeds - 1));
  // Every faulted outcome was measured against the same baseline.
  for (const ScenarioOutcome& outcome : run.outcomes) {
    ASSERT_TRUE(outcome.ok()) << outcome.error;
    EXPECT_EQ(outcome.metrics.baseline_time_ms,
              run.outcomes[0].metrics.baseline_time_ms);
  }
}

TEST(SweepMemo, ParallelRunSharesTwinsThreadSafely) {
  constexpr int kSeeds = 6;
  std::vector<Scenario> scenarios;
  for (int seed = 1; seed <= kSeeds; ++seed)
    scenarios.push_back(storm_scenario(static_cast<std::uint64_t>(seed)));

  SweepOptions options = serial_options();
  options.parallel = true;
  const SweepRun run = SweepEngine(options).run(scenarios);
  EXPECT_EQ(run.summary.ok, static_cast<std::size_t>(kSeeds));
  EXPECT_EQ(run.summary.twin_computes, 1u);
  EXPECT_EQ(run.summary.twin_memo_hits,
            static_cast<std::size_t>(kSeeds - 1));
}

// Memoized results must be byte-identical to the memo-free reference path
// (SweepEngine::compute), fault axis included.
TEST(SweepMemo, MemoizedOutcomesMatchReferenceCompute) {
  std::vector<Scenario> scenarios = {
      storm_scenario(1), storm_scenario(2),
      healthy_twin_of(storm_scenario(1))};
  const SweepEngine engine(serial_options());
  const SweepRun run = engine.run(scenarios);
  ASSERT_EQ(run.outcomes.size(), scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const ScenarioOutcome reference = engine.compute(scenarios[i]);
    EXPECT_EQ(run.outcomes[i].to_payload(), reference.to_payload())
        << scenarios[i].label();
  }
}

TEST(SweepMemo, DuplicateInputScenariosComputeOnce) {
  const Scenario scenario = healthy_twin_of(storm_scenario(1));
  const std::vector<Scenario> scenarios = {scenario, scenario, scenario};
  const SweepRun run = SweepEngine(serial_options()).run(scenarios);
  EXPECT_EQ(run.summary.computed, 1u);
  EXPECT_EQ(run.summary.scenario_dedup_hits, 2u);
  EXPECT_FALSE(run.outcomes[0].memo_hit);
  EXPECT_TRUE(run.outcomes[1].memo_hit);
  EXPECT_TRUE(run.outcomes[2].memo_hit);
  EXPECT_EQ(run.outcomes[1].to_payload(), run.outcomes[0].to_payload());
  EXPECT_EQ(run.outcomes[2].to_payload(), run.outcomes[0].to_payload());
}

// A healthy scenario that doubles as another scenario's baseline twin is
// computed once, whichever side gets there first.
TEST(SweepMemo, TopLevelScenarioSharesWithItsTwin) {
  const Scenario faulted = storm_scenario(3);
  const Scenario healthy = healthy_twin_of(faulted);

  // Healthy first: the faulted scenario's twin lookup hits the memo.
  {
    const SweepRun run =
        SweepEngine(serial_options()).run({healthy, faulted});
    EXPECT_EQ(run.summary.computed, 2u);
    EXPECT_EQ(run.summary.twin_computes, 0u);
    EXPECT_EQ(run.summary.twin_memo_hits, 1u);
    EXPECT_EQ(run.summary.scenario_dedup_hits, 0u);
  }
  // Faulted first: the healthy top-level entry materializes from the twin
  // the faulted scenario computed (a crossover dedup hit).
  {
    const SweepRun run =
        SweepEngine(serial_options()).run({faulted, healthy});
    EXPECT_EQ(run.summary.computed, 1u);
    EXPECT_EQ(run.summary.twin_computes, 1u);
    EXPECT_EQ(run.summary.twin_memo_hits, 0u);
    EXPECT_EQ(run.summary.scenario_dedup_hits, 1u);
    EXPECT_TRUE(run.outcomes[1].memo_hit);
    // Same bytes a standalone compute of the healthy scenario produces.
    const ScenarioOutcome reference =
        SweepEngine(serial_options()).compute(healthy);
    EXPECT_EQ(run.outcomes[1].to_payload(), reference.to_payload());
  }
}

TEST(SweepMemo, SummaryCountersMirrorIntoMetricsRegistry) {
  obs::MetricsRegistry registry;
  registry.enable();
  SweepOptions options = serial_options();
  options.metrics = &registry;
  const SweepRun run = SweepEngine(options).run(
      {storm_scenario(1), storm_scenario(2), storm_scenario(2)});
  EXPECT_EQ(registry.counter(obs::kSweepTwinMemoHits),
            static_cast<std::int64_t>(run.summary.twin_memo_hits));
  EXPECT_EQ(registry.counter(obs::kSweepTwinComputes), 1);
  EXPECT_EQ(registry.counter(obs::kSweepScenarioDedupHits),
            static_cast<std::int64_t>(run.summary.scenario_dedup_hits));
  EXPECT_EQ(registry.counter(obs::kSweepCacheHits), 0);
  EXPECT_EQ(registry.counter(obs::kSweepCacheMisses), 0);
}

TEST(SweepBench, BenchPhasesReportCoherentCounters) {
  BenchOptions options;
  options.small = true;
  options.parallel = false;
  options.fault_seeds = 3;
  options.sim_core_reps = 2;
  options.cache_dir =
      (std::string(::testing::TempDir()) + "/hs_bench_test_cache");
  const BenchResult result = run_bench(options);

  EXPECT_EQ(result.sim_core.summary.computed, 2u);
  EXPECT_GT(result.sim_core.sim_events, 0);

  EXPECT_EQ(result.cold.summary.cache_hits, 0u);
  EXPECT_GT(result.cold.summary.computed, 0u);
  EXPECT_GT(result.cold.sim_events, 0);

  EXPECT_EQ(result.warm.summary.computed, 0u);
  EXPECT_EQ(result.warm.summary.cache_hits, result.cold.summary.computed);
  // The warm phase serves the same simulated work from disk.
  EXPECT_EQ(result.warm.sim_events, result.cold.sim_events);

  EXPECT_EQ(result.twins.summary.twin_computes, 1u);
  EXPECT_EQ(result.twins.summary.twin_memo_hits, 2u);

  const json::Value document = json::Value::parse(bench_to_json(result));
  ASSERT_EQ(document.at("phases").as_array().size(), 5u);
  EXPECT_EQ(document.at("phases").as_array()[0].at("name").as_string(),
            "sim_core");
  EXPECT_EQ(document.at("phases").as_array()[1].at("name").as_string(),
            "cold_cache");
  // The N-device phase rides after the four pinned ones.
  EXPECT_EQ(document.at("phases").as_array()[4].at("name").as_string(),
            "sim_core_quad");
  EXPECT_EQ(document.at("workload").at("sweep_code_version").as_string(),
            kSweepCodeVersion);
}

}  // namespace
}  // namespace hetsched::sweep
